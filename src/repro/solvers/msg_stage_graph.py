"""MSG solver: constrained TOP/TOM over a multi-stage graph of labels.

Model the chain as a layered DAG: stage ``j`` holds one node per
admissible switch (capacity/bandwidth pruning picks the switch set), and
an edge ``(j, u) → (j+1, v)`` costs ``Λ·c(u, v)`` in the objective and
``c(u, v)`` in delay.  A placement is a stage-0 → stage-(n−1) path whose
switches are distinct; the constrained optimum is the cheapest such path
with total delay within ``max_delay`` (the ParallelSFCplacements /
Sallam-et-al. layered-graph construction, adapted to the paper's
attraction decomposition: ``a_in`` folds into stage 0, ``a_out`` into
stage n−1, and TOM adds ``μ·c(p_j, ·)`` per stage).

Distinctness makes the exact problem exponential, so the solver is a
**beam search over Pareto labels**: each ``(stage, switch)`` node keeps
up to ``beam_width`` non-dominated ``(cost, delay, path)`` labels
(dominated = worse on both), extensions enforce distinctness exactly,
and an admissible delay-to-go bound (remaining hops × cheapest hop)
prunes branches that cannot finish inside the bound.

Soundness (argued in DESIGN.md §5i):

* **never infeasible-when-feasible** — if the beam drowns every label,
  the solver does not give up: an exact branch-and-bound *min-delay*
  search (:func:`~repro.core.optimal.exact_chain_search` on the delay
  metric) either produces a feasible witness placement (returned, at
  whatever cost it prices to) or proves no distinct tuple meets the
  bound, and only then is :class:`~repro.errors.InfeasibleError` raised
  — with the shortest achievable delay in the diagnosis;
* **never infeasible results** — every returned placement is re-checked
  against the constraints from scratch before it leaves the solver;
* **never better than exact** — cost optimality is heuristic only; the
  constrained exact solvers referee it in ``repro.verify.constrained``.

``beam_width=1`` degenerates to a cheap greedy sweep — the
capacity-aware fallback stage of the session's deadline chains.
"""

from __future__ import annotations

import numpy as np

from repro.constraints import Constraints, active_constraints
from repro.core.costs import CostContext, validate_placement
from repro.core.optimal import exact_chain_search
from repro.core.placement import chain_size
from repro.core.types import MigrationResult, PlacementResult
from repro.errors import InfeasibleError, SolverError
from repro.runtime.cache import ComputeCache
from repro.runtime.instrument import count
from repro.topology.base import Topology
from repro.workload.flows import FlowSet
from repro.workload.sfc import SFC

__all__ = [
    "msg_placement",
    "msg_migration",
    "msg_greedy_placement",
    "msg_greedy_migration",
]

#: beam width of the full solver (the greedy fallback uses 1)
DEFAULT_BEAM_WIDTH = 8

#: node budget for the exact min-delay witness search (small instances;
#: the witness only runs when the beam found nothing, i.e. rarely)
WITNESS_BUDGET = 2_000_000


def _min_hop(delay: np.ndarray) -> float:
    """Cheapest off-diagonal hop — the admissible per-hop delay bound."""
    if delay.shape[0] < 2:
        return 0.0
    off = delay[~np.eye(delay.shape[0], dtype=bool)]
    return float(off.min())


def _prune_labels(labels: list, beam_width: int) -> list:
    """Cost-sorted Pareto frontier of ``(cost, delay, path)``, truncated.

    After sorting by cost, a label earns its place only by strictly
    improving the best delay seen so far — anything else is dominated.
    The path tuple joins the sort key so ties break deterministically.
    """
    labels.sort()
    kept: list = []
    best_delay = np.inf
    for label in labels:
        if label[1] < best_delay:
            kept.append(label)
            best_delay = label[1]
            if len(kept) >= beam_width:
                break
    return kept


def _beam_search(
    delay: np.ndarray,
    chain_rate: float,
    position_scores: np.ndarray,
    *,
    max_delay: float | None,
    beam_width: int,
) -> tuple[tuple | None, dict]:
    """Best complete label ``(cost, delay, path)`` or None, plus stats.

    ``position_scores[j][v]`` is the additive node score of hosting VNF
    ``j`` at candidate ``v`` (attractions and migration pulls pre-folded
    by the caller); edges add ``chain_rate·delay[u, v]`` to cost and
    ``delay[u, v]`` to delay.
    """
    n, num_c = position_scores.shape
    min_hop = _min_hop(delay)
    labels_total = 0
    pruned_delay = 0

    current: dict[int, list] = {}
    lb0 = (n - 1) * min_hop
    if max_delay is None or lb0 <= max_delay:
        for u in range(num_c):
            current[u] = [(float(position_scores[0, u]), 0.0, (u,))]
            labels_total += 1
    else:
        pruned_delay += num_c

    for j in range(1, n):
        remaining = (n - 1 - j) * min_hop
        incoming: dict[int, list] = {}
        for u, labels in current.items():
            hop_delay = delay[u]
            hop_cost = chain_rate * hop_delay + position_scores[j]
            for cost, used_delay, path in labels:
                for v in range(num_c):
                    if v == u or v in path:
                        continue
                    new_delay = used_delay + float(hop_delay[v])
                    if max_delay is not None and new_delay + remaining > max_delay:
                        pruned_delay += 1
                        continue
                    incoming.setdefault(v, []).append(
                        (cost + float(hop_cost[v]), new_delay, path + (v,))
                    )
        current = {
            v: _prune_labels(labels, beam_width)
            for v, labels in sorted(incoming.items())
        }
        labels_total += sum(len(labels) for labels in current.values())

    finished = [label for labels in current.values() for label in labels]
    stats = {"labels": labels_total, "pruned_delay": pruned_delay}
    if not finished:
        return None, stats
    return min(finished), stats


def _delay_witness(
    delay: np.ndarray, n: int, max_delay: float, *, budget: int = WITNESS_BUDGET
) -> tuple[np.ndarray | None, float]:
    """Exact min-delay distinct tuple: ``(witness, min_delay)``.

    Runs the branch-and-bound engine on the pure delay metric (unit
    chain rate, zero node scores).  Returns the minimizing tuple and the
    minimum achievable delay; the tuple is ``None`` only when *no*
    distinct tuple exists at all (``n`` exceeds the candidate count —
    guarded by callers).  Whether ``min_delay`` fits ``max_delay`` is
    the caller's feasibility verdict, so solver and verifier share one
    arithmetic for the infeasibility claim.
    """
    num_c = delay.shape[0]
    zeros = np.zeros((n, num_c))
    tup, best, _explored = exact_chain_search(
        delay, 1.0, np.zeros(num_c), zeros, budget=budget
    )
    if tup.size == 0:
        return None, float(best)
    # re-accumulate in path order: the exact engine's partial sums are
    # already path-ordered, but recomputing keeps the contract explicit
    path_delay = float(delay[tup[:-1], tup[1:]].sum()) if n >= 2 else 0.0
    return tup, path_delay


def _admissible(
    topology: Topology,
    constraints: Constraints | None,
    chain_rate: float,
    n: int,
) -> np.ndarray:
    cand = (
        topology.switches
        if constraints is None
        else constraints.admissible_switches(topology, chain_rate)
    )
    if n > cand.size:
        detail = {
            "admissible": int(cand.size),
            "required": int(n),
            "switches": int(topology.num_switches),
        }
        if constraints is not None:
            raise InfeasibleError(
                f"only {cand.size} switches have capacity/bandwidth headroom "
                f"for this chain; {n} are required",
                diagnosis=constraints.diagnosis("capacity", **detail),
            )
        raise InfeasibleError(
            f"SFC of {n} VNFs cannot be placed on {cand.size} switches"
        )
    return cand


def _postcondition(
    topology: Topology,
    constraints: Constraints | None,
    placement: np.ndarray,
    chain_rate: float,
) -> None:
    if constraints is None:
        return
    problems = constraints.check_placement(topology, placement, chain_rate)
    if problems:  # pragma: no cover - internal soundness guard
        raise SolverError(
            "msg solver produced a constraint-violating placement: "
            + "; ".join(problems)
        )


def _solve_stage_graph(
    topology: Topology,
    ctx: CostContext,
    constraints: Constraints | None,
    position_scores: np.ndarray,
    cand: np.ndarray,
    *,
    beam_width: int,
) -> tuple[np.ndarray, dict]:
    """Shared TOP/TOM body: beam search, then the min-delay escape hatch."""
    n = position_scores.shape[0]
    delay = ctx.distances[np.ix_(cand, cand)]
    max_delay = constraints.max_delay if constraints is not None else None
    best, stats = _beam_search(
        delay,
        ctx.total_rate,
        position_scores,
        max_delay=max_delay,
        beam_width=beam_width,
    )
    extra = {"beam_width": int(beam_width), "candidates": int(cand.size), **stats}
    if best is not None:
        positions = np.asarray(best[2], dtype=np.int64)
        extra["chain_delay"] = float(best[1])
        return cand[positions], extra
    # the beam found nothing: decide feasibility exactly on the delay
    # metric and return the witness if one exists (completeness)
    assert max_delay is not None, "beam exhausted without a delay bound"
    witness, min_delay = _delay_witness(delay, n, max_delay)
    if witness is None or min_delay > max_delay:
        count("msg_infeasible")
        raise InfeasibleError(
            f"no placement of {n} distinct switches meets the delay bound "
            f"{max_delay!r} (shortest feasible stroll has delay {min_delay!r})",
            diagnosis=constraints.diagnosis(
                "delay", max_delay=max_delay, min_delay=min_delay
            ),
        )
    count("msg_delay_witness")
    extra["fallback"] = "min-delay-witness"
    extra["chain_delay"] = float(min_delay)
    return cand[witness], extra


def msg_placement(
    topology: Topology,
    flows: FlowSet,
    sfc: SFC | int,
    *,
    constraints: Constraints | None = None,
    beam_width: int = DEFAULT_BEAM_WIDTH,
    cache: ComputeCache | None = None,
) -> PlacementResult:
    """Constrained TOP via the multi-stage-graph beam search."""
    if beam_width < 1:
        raise SolverError(f"beam_width must be >= 1, got {beam_width}")
    constraints = active_constraints(constraints)
    n = chain_size(sfc)
    ctx = CostContext(topology, flows, cache=cache)
    cand = _admissible(topology, constraints, ctx.total_rate, n)
    position_scores = np.zeros((n, cand.size))
    position_scores[0] += ctx.ingress_attraction[cand]
    position_scores[n - 1] += ctx.egress_attraction[cand]
    count("msg_solves")
    placement, extra = _solve_stage_graph(
        topology, ctx, constraints, position_scores, cand, beam_width=beam_width
    )
    validate_placement(topology, placement, n)
    _postcondition(topology, constraints, placement, ctx.total_rate)
    return PlacementResult(
        placement=placement,
        cost=ctx.communication_cost(placement),
        algorithm="msg",
        extra=extra,
    )


def msg_migration(
    topology: Topology,
    flows: FlowSet,
    source_placement: np.ndarray,
    mu: float,
    *,
    constraints: Constraints | None = None,
    beam_width: int = DEFAULT_BEAM_WIDTH,
    cache: ComputeCache | None = None,
) -> MigrationResult:
    """Constrained TOM: the same stage graph with per-stage migration pull.

    Stage ``j``'s node score gains ``μ·c(p_j, ·)`` (Eq. 8's ``C_b``
    term), so the beam trades communication against migration exactly
    like the exact solver's search — under the same capacity, bandwidth
    and delay pruning on the *target* placement.
    """
    if beam_width < 1:
        raise SolverError(f"beam_width must be >= 1, got {beam_width}")
    constraints = active_constraints(constraints)
    src = validate_placement(topology, source_placement)
    n = src.size
    ctx = CostContext(topology, flows, cache=cache)
    cand = _admissible(topology, constraints, ctx.total_rate, n)
    position_scores = mu * ctx.distances[np.ix_(src, cand)]
    position_scores[0] += ctx.ingress_attraction[cand]
    position_scores[n - 1] += ctx.egress_attraction[cand]
    count("msg_solves")
    migration, extra = _solve_stage_graph(
        topology, ctx, constraints, position_scores, cand, beam_width=beam_width
    )
    validate_placement(topology, migration, n)
    _postcondition(topology, constraints, migration, ctx.total_rate)
    comm = ctx.communication_cost(migration)
    move = ctx.migration_cost(src, migration, mu)
    return MigrationResult(
        source=src,
        migration=migration,
        cost=comm + move,
        communication_cost=comm,
        migration_cost=move,
        algorithm="msg",
        extra=extra,
    )


def msg_greedy_placement(
    topology: Topology,
    flows: FlowSet,
    sfc: SFC | int,
    *,
    constraints: Constraints | None = None,
    cache: ComputeCache | None = None,
) -> PlacementResult:
    """Beam-width-1 MSG: the capacity-aware deadline-chain fallback."""
    result = msg_placement(
        topology, flows, sfc, constraints=constraints, beam_width=1, cache=cache
    )
    return PlacementResult(
        placement=result.placement,
        cost=result.cost,
        algorithm="msg-greedy",
        extra=result.extra,
    )


def msg_greedy_migration(
    topology: Topology,
    flows: FlowSet,
    source_placement: np.ndarray,
    mu: float,
    *,
    constraints: Constraints | None = None,
    cache: ComputeCache | None = None,
) -> MigrationResult:
    """Beam-width-1 MSG migration: the constrained migrate fallback."""
    result = msg_migration(
        topology, flows, source_placement, mu,
        constraints=constraints, beam_width=1, cache=cache,
    )
    return MigrationResult(
        source=result.source,
        migration=result.migration,
        cost=result.cost,
        communication_cost=result.communication_cost,
        migration_cost=result.migration_cost,
        algorithm="msg-greedy",
        extra=result.extra,
    )
