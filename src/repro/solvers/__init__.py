"""Constrained solver family: MSG stage-graph heuristics + contention.

The :mod:`repro.core` solvers optimize pure traffic cost; this package
holds the *constrained* placement family behind the typed
:class:`~repro.constraints.Constraints` object:

* :mod:`~repro.solvers.msg_stage_graph` — a multi-stage-graph (layered
  DAG) beam search over ``(stage, switch)`` nodes pruned by capacity and
  delay, for TOP and TOM, with an exact min-delay witness search backing
  its infeasibility claims;
* :mod:`~repro.solvers.contention` — many chains competing for one
  fabric under shared constraints (first-fit vs. contention-aware
  ordering).

The exact solvers (:func:`~repro.core.optimal.optimal_placement` /
``optimal_migration``) accept the same ``constraints=`` object and act
as size-gated oracles for this family in ``repro.verify.constrained``.
"""

from repro.solvers.contention import ContentionResult, place_chains
from repro.solvers.msg_stage_graph import (
    msg_greedy_migration,
    msg_greedy_placement,
    msg_migration,
    msg_placement,
)

__all__ = [
    "msg_placement",
    "msg_migration",
    "msg_greedy_placement",
    "msg_greedy_migration",
    "ContentionResult",
    "place_chains",
]
