"""Multi-SFC contention: many chains competing for one fabric.

The single-chain solvers answer "where does *this* chain go?"; a data
center admits chains one after another, and every accepted chain leaves
the fabric a little fuller — one occupied VNF slot and ``Λ`` of carried
traffic per switch it uses.  :func:`place_chains` runs that admission
sequence: each chain is solved by the MSG stage-graph solver under the
*current* constraint state, and on success the state advances via
:meth:`Constraints.after_placement` before the next chain is tried.

Two admission orders expose the contention axis the ``fig13_constrained``
experiment sweeps:

* ``"first-fit"`` — chains are admitted in arrival order, the naive
  baseline;
* ``"contention-aware"`` — heaviest chains (largest total rate ``Λ``)
  first, so the chains that are hardest to fit later pick their switches
  while the fabric is empty (the classic decreasing-first-fit heuristic
  from bin packing, cf. Sang et al.'s allocation ordering).

A chain the solver proves infeasible under the accumulated state is a
*rejection*, recorded with its :class:`~repro.errors.InfeasibleError`
diagnosis — an outcome of the experiment, never an exception out of this
function.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.constraints import Constraints, active_constraints
from repro.core.types import PlacementResult
from repro.errors import InfeasibleError, SolverError
from repro.runtime.cache import ComputeCache
from repro.runtime.instrument import count
from repro.solvers.msg_stage_graph import DEFAULT_BEAM_WIDTH, msg_placement
from repro.topology.base import Topology
from repro.workload.flows import FlowSet
from repro.workload.sfc import SFC

__all__ = ["ContentionResult", "place_chains", "ORDERS"]

#: admission orders :func:`place_chains` understands
ORDERS = ("first-fit", "contention-aware")


@dataclass(frozen=True)
class ContentionResult:
    """Outcome of admitting many chains onto one fabric.

    ``placements[i]`` is the :class:`PlacementResult` for input chain
    ``i`` (input order, not admission order) or ``None`` if it was
    rejected; ``rejections[i]`` then holds the diagnosis dict.
    """

    #: per-input-chain results, ``None`` where rejected
    placements: tuple[PlacementResult | None, ...]
    #: input index → infeasibility diagnosis, for rejected chains only
    rejections: tuple[tuple[int, dict], ...]
    #: the admission order actually used (input indices)
    order: tuple[int, ...]
    #: which ordering policy produced it
    policy: str
    #: constraint state after all admissions (occupancy/load filled in)
    constraints: Constraints

    def __post_init__(self) -> None:
        rejected = {idx for idx, _ in self.rejections}
        placed = {i for i, r in enumerate(self.placements) if r is not None}
        if placed & rejected or placed | rejected != set(range(len(self.placements))):
            raise SolverError("ContentionResult placements/rejections disagree")

    @property
    def accepted(self) -> int:
        return len(self.placements) - len(self.rejections)

    @property
    def total_cost(self) -> float:
        """Summed communication cost of the accepted chains."""
        return float(
            sum(r.cost for r in self.placements if r is not None)
        )

    def to_dict(self) -> dict:
        return {
            "policy": self.policy,
            "order": list(self.order),
            "accepted": self.accepted,
            "total_cost": self.total_cost,
            "placements": [
                r.to_dict() if r is not None else None for r in self.placements
            ],
            "rejections": [[idx, dict(diag)] for idx, diag in self.rejections],
            "constraints": self.constraints.to_dict(),
        }


def _admission_order(
    chains: Sequence[tuple[FlowSet, SFC | int]], policy: str
) -> list[int]:
    if policy == "first-fit":
        return list(range(len(chains)))
    if policy == "contention-aware":
        # heaviest traffic first; ties broken by input order for determinism
        return sorted(
            range(len(chains)), key=lambda i: (-chains[i][0].total_rate, i)
        )
    raise SolverError(f"unknown admission order {policy!r}; expected one of {ORDERS}")


def place_chains(
    topology: Topology,
    chains: Sequence[tuple[FlowSet, SFC | int]],
    *,
    constraints: Constraints | None = None,
    order: str = "first-fit",
    beam_width: int = DEFAULT_BEAM_WIDTH,
    cache: ComputeCache | None = None,
) -> ContentionResult:
    """Admit ``chains`` (``(flows, sfc)`` pairs) sequentially onto ``topology``.

    Constraint state accumulates across admissions; rejections are
    recorded with their diagnoses rather than raised.  With no
    constraints every chain is accepted and each placement equals the
    single-chain MSG answer (no coupling without capacity to contend
    for).
    """
    active = active_constraints(constraints)
    state = Constraints.none() if active is None else active
    placements: list[PlacementResult | None] = [None] * len(chains)
    rejections: list[tuple[int, dict]] = []
    admission = _admission_order(chains, order)
    for idx in admission:
        flows, sfc = chains[idx]
        try:
            result = msg_placement(
                topology, flows, sfc,
                constraints=state, beam_width=beam_width, cache=cache,
            )
        except InfeasibleError as exc:
            count("contention_rejected")
            diagnosis = dict(exc.diagnosis) if exc.diagnosis else {
                "reason": "infeasible", "message": str(exc)
            }
            rejections.append((idx, diagnosis))
            continue
        placements[idx] = result
        if active is not None:
            state = state.after_placement(result.placement, flows.total_rate)
    count("contention_runs")
    return ContentionResult(
        placements=tuple(placements),
        rejections=tuple(sorted(rejections)),
        order=tuple(admission),
        policy=order,
        constraints=state,
    )
