"""Data-center topology substrate.

Builders for the fat-tree PPDCs evaluated in the paper (k = 2, 4, 8, 16)
plus the linear chain of Fig. 1 and several other standard data-center
fabrics (leaf-spine, VL2, BCube, jellyfish) so the algorithms can be
exercised beyond fat trees — the paper notes its problems and solutions
"apply to any data center topology".
"""

from repro.topology.base import Topology
from repro.topology.fattree import fat_tree
from repro.topology.linear import linear_ppdc
from repro.topology.leafspine import leaf_spine
from repro.topology.vl2 import vl2
from repro.topology.bcube import bcube
from repro.topology.dcell import dcell
from repro.topology.jellyfish import jellyfish
from repro.topology.weights import (
    apply_uniform_delays,
    unit_weights,
)

__all__ = [
    "Topology",
    "fat_tree",
    "linear_ppdc",
    "leaf_spine",
    "vl2",
    "bcube",
    "dcell",
    "jellyfish",
    "apply_uniform_delays",
    "unit_weights",
]
