"""Two-tier leaf-spine (Clos) fabric.

Every leaf (top-of-rack) switch connects to every spine switch; hosts hang
off leaves.  This is the most common modern DC fabric and a useful second
topology for checking that the placement/migration algorithms are not
fat-tree-specific.
"""

from __future__ import annotations

from repro.errors import TopologyError
from repro.graphs.adjacency import GraphBuilder
from repro.topology.base import Topology

__all__ = ["leaf_spine"]


def leaf_spine(
    num_leaves: int,
    num_spines: int,
    hosts_per_leaf: int,
    edge_weight: float = 1.0,
) -> Topology:
    """Build a leaf-spine PPDC.

    Parameters mirror the physical design: ``num_leaves`` ToR switches with
    ``hosts_per_leaf`` hosts each, fully meshed to ``num_spines`` spines.
    """
    if num_leaves < 1 or num_spines < 1 or hosts_per_leaf < 1:
        raise TopologyError(
            f"leaf-spine needs positive dimensions, got leaves={num_leaves}, "
            f"spines={num_spines}, hosts_per_leaf={hosts_per_leaf}"
        )
    builder = GraphBuilder()
    num_hosts = num_leaves * hosts_per_leaf
    hosts = builder.add_nodes(f"h{i + 1}" for i in range(num_hosts))
    leaves = builder.add_nodes(f"s{i + 1}" for i in range(num_leaves))
    spines = builder.add_nodes(f"s{num_leaves + i + 1}" for i in range(num_spines))

    host_edge_switch = []
    for l_idx, leaf in enumerate(leaves):
        for h_off in range(hosts_per_leaf):
            builder.add_edge(hosts[l_idx * hosts_per_leaf + h_off], leaf, edge_weight)
            host_edge_switch.append(leaf)
    for leaf in leaves:
        for spine in spines:
            builder.add_edge(leaf, spine, edge_weight)

    return Topology(
        name=f"leaf-spine({num_leaves}x{num_spines})",
        graph=builder.build(),
        hosts=hosts,
        switches=leaves + spines,
        host_edge_switch=host_edge_switch,
        meta={
            "leaves": num_leaves,
            "spines": num_spines,
            "hosts_per_leaf": hosts_per_leaf,
        },
    )
