"""Edge-weight models for weighted PPDC experiments.

The paper evaluates both unweighted PPDCs (edge weight = 1, cost = hop
count) and weighted ones where, following the setting in Greedy [34],
"link delays follow a uniform distribution with a mean value of 1.5 ms and
variance of 0.5 ms" (Fig. 10).  :func:`apply_uniform_delays` reproduces
that model: a uniform distribution with the requested mean and *variance*
(the half-range is ``sqrt(3 * variance)``), truncated away from zero.
"""

from __future__ import annotations

import math

import numpy as np

from repro.errors import TopologyError
from repro.topology.base import Topology
from repro.utils.rng import as_generator

__all__ = ["unit_weights", "apply_uniform_delays"]


def unit_weights(topology: Topology) -> Topology:
    """Return a copy of ``topology`` with every edge weight set to 1."""
    graph = topology.graph.reweighted(lambda u, v, w: 1.0)
    return topology.with_graph(graph, name=f"{topology.name}+unit")


def apply_uniform_delays(
    topology: Topology,
    mean: float = 1.5,
    variance: float = 0.5,
    seed: int | np.random.Generator | None = 0,
    min_weight: float = 1e-3,
) -> Topology:
    """Reweight edges with i.i.d. uniform delays of given mean and variance.

    A uniform distribution on ``[mean - r, mean + r]`` has variance
    ``r^2 / 3``, so ``r = sqrt(3 * variance)``.  Draws are clipped below at
    ``min_weight`` to keep weights positive (for mean 1.5 / variance 0.5
    the support is ``[0.275, 2.725]``, so clipping never actually fires).
    """
    if mean <= 0:
        raise TopologyError(f"mean delay must be positive, got {mean}")
    if variance < 0:
        raise TopologyError(f"variance must be non-negative, got {variance}")
    half_range = math.sqrt(3.0 * variance)
    rng = as_generator(seed)

    def draw(u: int, v: int, w: float) -> float:
        sample = rng.uniform(mean - half_range, mean + half_range)
        return max(sample, min_weight)

    graph = topology.graph.reweighted(draw)
    return topology.with_graph(
        graph, name=f"{topology.name}+delay(mean={mean},var={variance})"
    )
