"""VL2-style three-tier fabric (Greenberg et al., SIGCOMM 2009).

VL2 arranges ToR switches under aggregation switches (each ToR dual-homed
to two aggs) and builds a complete bipartite graph between aggregation and
intermediate (core) switches.  We reproduce that wiring shape: it gives a
topology with different path multiplicity than a fat tree, exercising the
algorithms on a structurally distinct graph.
"""

from __future__ import annotations

from repro.errors import TopologyError
from repro.graphs.adjacency import GraphBuilder
from repro.topology.base import Topology

__all__ = ["vl2"]


def vl2(
    num_intermediate: int,
    num_aggregation: int,
    tors_per_agg_pair: int = 2,
    hosts_per_tor: int = 2,
    edge_weight: float = 1.0,
) -> Topology:
    """Build a VL2 PPDC.

    ``num_aggregation`` must be even: ToRs are attached to consecutive
    aggregation pairs ``(agg_0, agg_1), (agg_2, agg_3), ...`` with
    ``tors_per_agg_pair`` ToRs per pair.
    """
    if num_intermediate < 1 or num_aggregation < 2 or num_aggregation % 2 != 0:
        raise TopologyError(
            "vl2 needs >=1 intermediate and a positive even aggregation count, "
            f"got intermediate={num_intermediate}, aggregation={num_aggregation}"
        )
    if tors_per_agg_pair < 1 or hosts_per_tor < 1:
        raise TopologyError("tors_per_agg_pair and hosts_per_tor must be positive")

    num_pairs = num_aggregation // 2
    num_tors = num_pairs * tors_per_agg_pair
    num_hosts = num_tors * hosts_per_tor

    builder = GraphBuilder()
    hosts = builder.add_nodes(f"h{i + 1}" for i in range(num_hosts))
    tors = builder.add_nodes(f"s{i + 1}" for i in range(num_tors))
    aggs = builder.add_nodes(f"s{num_tors + i + 1}" for i in range(num_aggregation))
    cores = builder.add_nodes(
        f"s{num_tors + num_aggregation + i + 1}" for i in range(num_intermediate)
    )

    host_edge_switch = []
    for t_idx, tor in enumerate(tors):
        for h_off in range(hosts_per_tor):
            builder.add_edge(hosts[t_idx * hosts_per_tor + h_off], tor, edge_weight)
            host_edge_switch.append(tor)

    for t_idx, tor in enumerate(tors):
        pair = t_idx // tors_per_agg_pair
        builder.add_edge(tor, aggs[2 * pair], edge_weight)
        builder.add_edge(tor, aggs[2 * pair + 1], edge_weight)

    for agg in aggs:
        for core in cores:
            builder.add_edge(agg, core, edge_weight)

    return Topology(
        name=f"vl2(i={num_intermediate},a={num_aggregation})",
        graph=builder.build(),
        hosts=hosts,
        switches=tors + aggs + cores,
        host_edge_switch=host_edge_switch,
        meta={
            "intermediate": num_intermediate,
            "aggregation": num_aggregation,
            "tors": num_tors,
        },
    )
