"""Jellyfish: random regular-graph switch fabric (Singla et al., NSDI 2012).

Switches form a random ``r``-regular graph; each switch additionally
serves a fixed number of hosts.  Randomized topologies are a useful
adversarial input for the placement DP because shortest-path structure has
none of the symmetry the fat tree offers.
"""

from __future__ import annotations

import numpy as np

from repro.errors import TopologyError
from repro.graphs.adjacency import GraphBuilder
from repro.topology.base import Topology
from repro.utils.rng import as_generator

__all__ = ["jellyfish"]


def jellyfish(
    num_switches: int,
    degree: int,
    hosts_per_switch: int = 1,
    edge_weight: float = 1.0,
    seed: int | np.random.Generator | None = 0,
    max_attempts: int = 50,
) -> Topology:
    """Build a jellyfish PPDC over a connected random ``degree``-regular graph.

    Uses networkx's pairing-model generator and retries until the sampled
    graph is connected (hence ``max_attempts``).
    """
    import networkx as nx

    if num_switches < 3:
        raise TopologyError(f"need at least 3 switches, got {num_switches}")
    if degree < 2 or degree >= num_switches:
        raise TopologyError(
            f"degree must satisfy 2 <= degree < num_switches, got {degree}"
        )
    if (num_switches * degree) % 2 != 0:
        raise TopologyError("num_switches * degree must be even for a regular graph")
    if hosts_per_switch < 1:
        raise TopologyError(f"hosts_per_switch must be positive, got {hosts_per_switch}")

    rng = as_generator(seed)
    random_graph = None
    for _ in range(max_attempts):
        candidate = nx.random_regular_graph(
            degree, num_switches, seed=int(rng.integers(0, 2**31 - 1))
        )
        if nx.is_connected(candidate):
            random_graph = candidate
            break
    if random_graph is None:
        raise TopologyError(
            f"failed to sample a connected {degree}-regular graph on "
            f"{num_switches} nodes in {max_attempts} attempts"
        )

    builder = GraphBuilder()
    num_hosts = num_switches * hosts_per_switch
    hosts = builder.add_nodes(f"h{i + 1}" for i in range(num_hosts))
    switches = builder.add_nodes(f"s{i + 1}" for i in range(num_switches))

    host_edge_switch = []
    for s_idx, s_node in enumerate(switches):
        for h_off in range(hosts_per_switch):
            builder.add_edge(hosts[s_idx * hosts_per_switch + h_off], s_node, edge_weight)
            host_edge_switch.append(s_node)
    for u, v in random_graph.edges():
        builder.add_edge(switches[u], switches[v], edge_weight)

    return Topology(
        name=f"jellyfish(s={num_switches},r={degree})",
        graph=builder.build(),
        hosts=hosts,
        switches=switches,
        host_edge_switch=host_edge_switch,
        meta={"degree": degree},
    )
