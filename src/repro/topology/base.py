"""The :class:`Topology` wrapper: a PPDC graph plus host/switch structure.

A PPDC (Section III) is an undirected weighted graph whose nodes split
into hosts ``V_h`` and switches ``V_s``; VNFs live on (servers attached
to) switches, VMs live on hosts.  :class:`Topology` carries the
:class:`~repro.graphs.CostGraph` together with that split and the rack
structure (which edge switch serves each host) that the workload
generator needs for its 80 %-intra-rack placement rule.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import TopologyError
from repro.graphs.adjacency import CostGraph

__all__ = ["Topology"]


@dataclass(frozen=True, eq=False)
class Topology:
    """A PPDC: graph + host/switch partition + rack map.

    ``eq=False``: topologies compare (and hash) by identity — the
    generated field-wise ``__eq__`` would be ill-defined on ndarray
    fields, and identity semantics are what the per-topology caches
    (stroll matrices, switch-only graphs) need.

    Attributes
    ----------
    name:
        Human-readable identifier, e.g. ``"fat-tree(k=8)"``.
    graph:
        The underlying weighted graph over all hosts and switches.
    hosts:
        Node indices of the hosts ``V_h`` (ascending).
    switches:
        Node indices of the switches ``V_s`` (ascending).
    host_edge_switch:
        For each position in :attr:`hosts`, the switch index of the edge
        (top-of-rack) switch that host hangs off.  Hosts with equal values
        are "in the same rack" for workload locality purposes.
    """

    name: str
    graph: CostGraph
    hosts: np.ndarray
    switches: np.ndarray
    host_edge_switch: np.ndarray
    meta: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        hosts = np.asarray(self.hosts, dtype=np.int64)
        switches = np.asarray(self.switches, dtype=np.int64)
        rack = np.asarray(self.host_edge_switch, dtype=np.int64)
        object.__setattr__(self, "hosts", hosts)
        object.__setattr__(self, "switches", switches)
        object.__setattr__(self, "host_edge_switch", rack)
        n = self.graph.num_nodes
        all_nodes = np.concatenate([hosts, switches])
        if sorted(all_nodes.tolist()) != list(range(n)):
            raise TopologyError(
                "hosts and switches must partition the graph's node set exactly"
            )
        if rack.shape != hosts.shape:
            raise TopologyError("host_edge_switch must align with hosts")
        switch_set = set(switches.tolist())
        if not set(rack.tolist()) <= switch_set:
            raise TopologyError("host_edge_switch entries must be switches")
        for mat in (hosts, switches, rack):
            mat.setflags(write=False)
        self._validate_weights()
        if not self.meta.get("allow_disconnected", False):
            self._validate_switch_connectivity()

    def _validate_weights(self) -> None:
        """Reject NaN / negative / asymmetric weight matrices outright.

        :class:`~repro.graphs.adjacency.GraphBuilder` cannot produce such
        a matrix, but topologies can also be assembled around graphs from
        other sources (deserialized matrices, test doubles, future
        loaders); a bad ``c(u, v)`` table silently corrupts every cost
        downstream, so it is rejected here with a named cause.
        """
        w = self.graph.weights
        if np.isnan(w).any():
            raise TopologyError(
                f"topology {self.name!r}: edge-weight matrix contains NaN — "
                "replace missing edges with inf, not NaN"
            )
        if (w < 0).any():
            raise TopologyError(
                f"topology {self.name!r}: edge weights must be non-negative "
                "(the paper's c(u, v) is a metric; negative delays are "
                "meaningless)"
            )
        if not np.array_equal(w, w.T):
            u, v = np.argwhere(w != w.T)[0]
            raise TopologyError(
                f"topology {self.name!r}: edge-weight matrix is asymmetric at "
                f"({u}, {v}): {w[u, v]} != {w[v, u]} — PPDC links are "
                "undirected"
            )

    def _validate_switch_connectivity(self) -> None:
        """Every switch must reach every other through the fabric.

        Uses full-graph reachability (not the switch-induced subgraph:
        server-centric fabrics like BCube legitimately relay switch-to-
        switch traffic through hosts).  A disconnected switch layer makes
        placement costs infinite and is almost always a builder bug; the
        one legitimate producer — a fault-degraded view — opts out via
        ``meta['allow_disconnected']`` (set by
        :func:`repro.faults.degrade.degrade`).
        """
        if self.switches.size == 0:
            return
        start = int(self.switches[0])
        seen = {start}
        stack = [start]
        while stack:
            node = stack.pop()
            for nbr in self.graph.neighbors(node):
                nbr = int(nbr)
                if nbr not in seen:
                    seen.add(nbr)
                    stack.append(nbr)
        unreachable = [int(s) for s in self.switches if int(s) not in seen]
        if unreachable:
            raise TopologyError(
                f"topology {self.name!r}: switch layer is disconnected — "
                f"switches {unreachable[:5]} cannot reach switch {start}; "
                "fix the builder's link set, or pass "
                "meta={'allow_disconnected': True} if a partitioned view is "
                "intentional (fault-degraded topologies set this themselves)"
            )

    # -- derived views --------------------------------------------------------

    @property
    def num_hosts(self) -> int:
        return int(self.hosts.size)

    @property
    def num_switches(self) -> int:
        return int(self.switches.size)

    def is_host(self, node: int) -> bool:
        return bool(np.isin(node, self.hosts))

    def is_switch(self, node: int) -> bool:
        return bool(np.isin(node, self.switches))

    def rack_of_host(self, host: int) -> int:
        """Edge switch serving ``host`` (a graph node index, not a position)."""
        pos = np.searchsorted(self.hosts, host)
        if pos >= self.hosts.size or self.hosts[pos] != host:
            raise TopologyError(f"node {host} is not a host")
        return int(self.host_edge_switch[pos])

    def hosts_in_rack(self, edge_switch: int) -> np.ndarray:
        """All hosts served by ``edge_switch``."""
        return self.hosts[self.host_edge_switch == edge_switch]

    def racks(self) -> list[np.ndarray]:
        """Hosts grouped by rack, one array per distinct edge switch."""
        return [self.hosts_in_rack(sw) for sw in np.unique(self.host_edge_switch)]

    @property
    def switch_distances(self) -> np.ndarray:
        """``c(u, v)`` restricted to switch rows/columns (copy-on-read view)."""
        return self.graph.distances[np.ix_(self.switches, self.switches)]

    def host_to_switch_distances(self) -> np.ndarray:
        """``(num_hosts, num_switches)`` matrix of ``c(host, switch)``."""
        return self.graph.distances[np.ix_(self.hosts, self.switches)]

    def switch_only_graph(self) -> tuple[CostGraph, dict[int, int]]:
        """The induced subgraph over switches only (cached).

        Returns ``(graph, position_of)`` where ``position_of`` maps a
        switch's node index in the full graph to its index in the induced
        graph.  Used for VNF migration corridors: in server-centric
        fabrics (BCube) the full-graph shortest path between two switches
        may relay through hosts, but VNFs only ever sit on switches.
        """
        cached = self.meta.get("_switch_graph")
        if cached is not None:
            return cached
        position_of = {int(s): i for i, s in enumerate(self.switches)}
        labels = [self.graph.label(int(s)) for s in self.switches]
        edges = [
            (position_of[u], position_of[v], w)
            for u, v, w in self.graph.edges
            if u in position_of and v in position_of
        ]
        induced = CostGraph(labels, edges)
        self.meta["_switch_graph"] = (induced, position_of)
        return induced, position_of

    def __getstate__(self) -> dict:
        """Pickle without the underscore-prefixed memo caches in ``meta``.

        Entries like ``_switch_graph`` are per-process memoizations of
        derived structure — cheap to rebuild, and *mutable over a run*.
        Excluding them keeps a topology's pickled bytes a pure function of
        its defining structure, which two layers rely on: worker payloads
        stay small, and the resilience journal's content fingerprints
        (sha256 over pickled task specs) stay identical no matter what was
        computed on the shared topology object beforehand.
        """
        state = self.__dict__.copy()
        state["meta"] = {
            k: v for k, v in self.meta.items() if not k.startswith("_")
        }
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)

    def with_graph(
        self,
        graph: CostGraph,
        name: str | None = None,
        *,
        allow_disconnected: bool = False,
    ) -> "Topology":
        """Same structure over a reweighted graph (see ``topology.weights``).

        ``allow_disconnected=True`` marks the derived view as permitted
        to have an unreachable switch layer (fault-degraded topologies);
        the flag lands in public ``meta`` so it survives pickling to
        worker processes.
        """
        if graph.num_nodes != self.graph.num_nodes:
            raise TopologyError("replacement graph must have the same node count")
        public_meta = {k: v for k, v in self.meta.items() if not k.startswith("_")}
        if allow_disconnected:
            public_meta["allow_disconnected"] = True
        return Topology(
            name=name or self.name,
            graph=graph,
            hosts=self.hosts,
            switches=self.switches,
            host_edge_switch=self.host_edge_switch,
            meta=public_meta,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Topology({self.name!r}, hosts={self.num_hosts}, "
            f"switches={self.num_switches}, edges={self.graph.num_edges})"
        )
