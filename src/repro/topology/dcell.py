"""DCell (Guo et al., SIGCOMM 2008): recursively defined server-centric DCN.

``DCell_0`` is ``n`` hosts on one mini-switch; ``DCell_1`` connects
``n + 1`` copies of ``DCell_0`` by direct host-to-host links (host ``j``
of cell ``i`` pairs with host ``i`` of cell ``j + 1`` for ``i <= j``).
Like BCube, hosts relay traffic; unlike BCube, most inter-cell capacity
is host-to-host, so the switch-only subgraph is disconnected and VNF
migration corridors degenerate to direct jumps — a stress test for the
corridors' fallback path.

Only level 1 is built (levels ≥ 2 grow super-exponentially and add no
new structure for the algorithms under test).
"""

from __future__ import annotations

from repro.errors import TopologyError
from repro.graphs.adjacency import GraphBuilder
from repro.topology.base import Topology

__all__ = ["dcell"]


def dcell(n: int, edge_weight: float = 1.0) -> Topology:
    """Build a level-1 DCell over ``n``-port mini-switches.

    ``n + 1`` cells of ``n`` hosts each: ``n(n+1)`` hosts, ``n + 1``
    switches, plus the ``n(n+1)/2`` inter-cell host links.
    """
    if n < 2:
        raise TopologyError(f"DCell port count n must be >= 2, got {n}")
    num_cells = n + 1
    builder = GraphBuilder()
    hosts = builder.add_nodes(
        f"h{i + 1}" for i in range(num_cells * n)
    )
    switches = builder.add_nodes(f"s{i + 1}" for i in range(num_cells))

    def host_of(cell: int, idx: int) -> int:
        return hosts[cell * n + idx]

    host_edge_switch = []
    for cell in range(num_cells):
        for idx in range(n):
            builder.add_edge(host_of(cell, idx), switches[cell], edge_weight)
            host_edge_switch.append(switches[cell])

    # inter-cell links: host i of cell j+1 <-> host j of cell i, for i <= j
    for i in range(num_cells):
        for j in range(i, n):
            builder.add_edge(host_of(i, j), host_of(j + 1, i), edge_weight)

    return Topology(
        name=f"dcell(n={n})",
        graph=builder.build(),
        hosts=hosts,
        switches=switches,
        host_edge_switch=host_edge_switch,
        meta={"n": n, "cells": num_cells},
    )
