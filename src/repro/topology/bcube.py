"""BCube(n, k) server-centric topology (Guo et al., SIGCOMM 2009).

BCube is server-centric: each host connects to one switch per level, so
hosts are not leaves and can relay traffic.  The VNF model is unchanged —
VNFs still live on switches — which makes BCube a good stress test for
the placement algorithms on graphs where host-to-host paths are short and
plentiful.

``BCube(n, k)`` has ``n^(k+1)`` hosts and ``(k+1) * n^k`` switches; the
host with digit address ``(a_k, ..., a_0)`` (base ``n``) connects at level
``i`` to the switch identified by its address with digit ``i`` removed.
"""

from __future__ import annotations

import itertools

from repro.errors import TopologyError
from repro.graphs.adjacency import GraphBuilder
from repro.topology.base import Topology

__all__ = ["bcube"]


def bcube(n: int, levels: int = 1, edge_weight: float = 1.0) -> Topology:
    """Build ``BCube(n, k)`` with ``k = levels``.

    ``n`` is the switch port count (hosts per level-0 switch); ``levels``
    is the highest level index ``k`` (so ``levels=1`` is the common
    two-level BCube).
    """
    if n < 2:
        raise TopologyError(f"BCube port count n must be >= 2, got {n}")
    if levels < 0:
        raise TopologyError(f"levels must be >= 0, got {levels}")
    k = levels
    num_hosts = n ** (k + 1)
    switches_per_level = n**k

    builder = GraphBuilder()
    hosts = builder.add_nodes(f"h{i + 1}" for i in range(num_hosts))
    level_switches: list[list[int]] = []
    counter = 0
    for level in range(k + 1):
        ids = builder.add_nodes(f"s{counter + i + 1}" for i in range(switches_per_level))
        counter += switches_per_level
        level_switches.append(ids)

    # address digits: host index h has digits (a_k, ..., a_0) base n
    host_edge_switch = []
    for h_idx, h_node in enumerate(hosts):
        digits = []
        rest = h_idx
        for _ in range(k + 1):
            digits.append(rest % n)
            rest //= n
        # digits[i] = a_i; switch index at level i = digits with a_i removed
        for level in range(k + 1):
            other = [d for j, d in enumerate(digits) if j != level]
            sw_idx = 0
            for d in reversed(other):
                sw_idx = sw_idx * n + d
            builder.add_edge(h_node, level_switches[level][sw_idx], edge_weight)
        host_edge_switch.append(level_switches[0][h_idx // n])

    all_switches = list(itertools.chain.from_iterable(level_switches))
    return Topology(
        name=f"bcube(n={n},k={k})",
        graph=builder.build(),
        hosts=hosts,
        switches=all_switches,
        host_edge_switch=host_edge_switch,
        meta={"n": n, "k": k, "switches_per_level": switches_per_level},
    )
