"""The linear PPDC of Fig. 1: a chain of switches with hosts at the ends.

Fig. 1 shows two hosts connected through a chain of five switches; the
paper notes this is the same network as the k=2 fat tree of Fig. 3.  The
builder generalizes to any chain length and any number of hosts per end.
"""

from __future__ import annotations

from repro.errors import TopologyError
from repro.graphs.adjacency import GraphBuilder
from repro.topology.base import Topology

__all__ = ["linear_ppdc"]


def linear_ppdc(
    num_switches: int = 5,
    hosts_per_end: int = 1,
    edge_weight: float = 1.0,
) -> Topology:
    """Build a chain ``h.. - s1 - s2 - ... - sM - ..h`` PPDC.

    ``hosts_per_end`` hosts attach to each end switch; with the defaults
    this is exactly the Fig. 1 network (h1 - s1..s5 - h2).
    """
    if num_switches < 1:
        raise TopologyError(f"need at least one switch, got {num_switches}")
    if hosts_per_end < 1:
        raise TopologyError(f"need at least one host per end, got {hosts_per_end}")

    builder = GraphBuilder()
    num_hosts = 2 * hosts_per_end
    hosts = builder.add_nodes(f"h{i + 1}" for i in range(num_hosts))
    switches = builder.add_nodes(f"s{i + 1}" for i in range(num_switches))

    for left, right in zip(switches, switches[1:]):
        builder.add_edge(left, right, edge_weight)

    host_edge_switch = []
    for i in range(hosts_per_end):
        builder.add_edge(hosts[i], switches[0], edge_weight)
        host_edge_switch.append(switches[0])
    for i in range(hosts_per_end):
        builder.add_edge(hosts[hosts_per_end + i], switches[-1], edge_weight)
        host_edge_switch.append(switches[-1])

    return Topology(
        name=f"linear(m={num_switches})",
        graph=builder.build(),
        hosts=hosts,
        switches=switches,
        host_edge_switch=host_edge_switch,
        meta={"num_switches": num_switches, "hosts_per_end": hosts_per_end},
    )
