"""k-ary fat-tree builder (Al-Fares et al. [6]), the paper's main topology.

A ``k``-ary fat tree has ``k`` pods; each pod holds ``k/2`` edge switches
and ``k/2`` aggregation switches, every edge switch serves ``k/2`` hosts,
and ``(k/2)^2`` core switches connect the pods.  Totals: ``k^3/4`` hosts
and ``5k^2/4`` switches.  The paper evaluates ``k = 8`` (128 hosts) and
``k = 16`` (1024 hosts); ``k = 2`` degenerates into the 5-switch linear
chain of Fig. 1 / Fig. 3, and the worked examples in the tests rely on
the exact label layout documented below.

Labels: hosts ``h1..hN`` in pod order; switches ``s<i>`` numbered edge
switches first (pod by pod), then aggregation (pod by pod), then core.
"""

from __future__ import annotations

from repro.errors import TopologyError
from repro.graphs.adjacency import GraphBuilder
from repro.topology.base import Topology

__all__ = ["fat_tree"]


def fat_tree(k: int, edge_weight: float = 1.0) -> Topology:
    """Build a ``k``-ary fat tree PPDC with uniform edge weights.

    Parameters
    ----------
    k:
        Switch port count; must be a positive even integer.
    edge_weight:
        Weight of every link (1.0 = the paper's unweighted/hop-count PPDC).
    """
    if k < 2 or k % 2 != 0:
        raise TopologyError(f"fat-tree arity k must be a positive even integer, got {k}")
    half = k // 2
    num_pods = k
    num_edge = num_pods * half
    num_agg = num_pods * half
    num_core = half * half
    num_hosts = num_edge * half

    builder = GraphBuilder()
    hosts = builder.add_nodes(f"h{i + 1}" for i in range(num_hosts))
    # switch numbering: edge (per pod), then aggregation (per pod), then core
    edge_sw = builder.add_nodes(f"s{i + 1}" for i in range(num_edge))
    agg_sw = builder.add_nodes(f"s{num_edge + i + 1}" for i in range(num_agg))
    core_sw = builder.add_nodes(f"s{num_edge + num_agg + i + 1}" for i in range(num_core))

    host_edge_switch = []
    for e_idx, e_node in enumerate(edge_sw):
        for h_off in range(half):
            h_node = hosts[e_idx * half + h_off]
            builder.add_edge(h_node, e_node, edge_weight)
            host_edge_switch.append(e_node)

    # pod-internal complete bipartite edge <-> aggregation
    for pod in range(num_pods):
        for e_off in range(half):
            for a_off in range(half):
                builder.add_edge(
                    edge_sw[pod * half + e_off], agg_sw[pod * half + a_off], edge_weight
                )

    # aggregation <-> core: the a-th aggregation switch of every pod connects
    # to core switches a*half .. a*half + half - 1
    for pod in range(num_pods):
        for a_off in range(half):
            for c_off in range(half):
                builder.add_edge(
                    agg_sw[pod * half + a_off], core_sw[a_off * half + c_off], edge_weight
                )

    graph = builder.build()
    return Topology(
        name=f"fat-tree(k={k})",
        graph=graph,
        hosts=hosts,
        switches=edge_sw + agg_sw + core_sw,
        host_edge_switch=host_edge_switch,
        meta={
            "k": k,
            "pods": num_pods,
            "edge_switches": num_edge,
            "agg_switches": num_agg,
            "core_switches": num_core,
        },
    )
