"""The simulated day: hour loop, cost accounting, per-hour records.

Two day loops share the :class:`HourRecord` / :class:`DayResult`
surface:

* the classic loop (``faults=None``) — unchanged behaviour, every hour
  is one policy step at that hour's rates;
* the fault-aware loop (``faults=`` a
  :class:`~repro.faults.process.FaultProcess`) — each hour first applies
  the fault state: the topology is degraded
  (:func:`~repro.faults.degrade.degrade`), any VNF stranded on a failed
  or partitioned switch is *forcibly repaired* onto the surviving
  component (:func:`~repro.faults.repair.evacuate`, priced ``μ ×``
  healthy-APSP distance into :attr:`HourRecord.repair_cost`), flows with
  a dead or partitioned endpoint are dropped and their rates booked into
  :attr:`HourRecord.dropped_traffic`, and only then does the policy take
  its step — against the degraded APSP and restricted to surviving
  switches.  Hours where the surviving component holds fewer live
  switches than the chain needs raise a diagnosed
  :class:`~repro.errors.InfeasibleError` instead of crashing deeper in a
  solver.

Dropped flows are *parked*: their endpoints are relocated to a surviving
host and their rates zeroed, so they contribute exactly ``0`` to every
attraction sum instead of the ``0 × inf = NaN`` that isolated endpoints
would produce against a degraded distance table.
"""

from __future__ import annotations

import contextlib
import multiprocessing
import os
import signal
import threading
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from repro.core.placement import dp_placement
from repro.errors import FaultError, InfeasibleError
from repro.runtime.instrument import count
from repro.sim.policies import MigrationPolicy
from repro.topology.base import Topology
from repro.utils.timing import Timer
from repro.workload.dynamics import RateProcess
from repro.workload.flows import FlowSet

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (shard imports us)
    from repro.shard.plan import ShardConfig

__all__ = [
    "HourRecord",
    "DayResult",
    "simulate_day",
    "initial_placement",
    "set_incremental",
    "incremental_enabled",
    "set_sharding",
    "sharding_config",
    "deliver_interrupts",
]

#: process-wide default for the incremental solver path (fig11/fig12's
#: ``--incremental/--no-incremental`` flag lands here); results are
#: bit-identical either way — the cold path is kept as the differential
#: oracle, see :mod:`repro.verify.incremental`
_INCREMENTAL_ENABLED = True


def set_incremental(enabled: bool) -> bool:
    """Set the process-wide incremental-path default; returns the old value."""
    global _INCREMENTAL_ENABLED
    previous = _INCREMENTAL_ENABLED
    _INCREMENTAL_ENABLED = bool(enabled)
    return previous


def incremental_enabled() -> bool:
    """Whether ``simulate_day`` defaults to the incremental solver path."""
    return _INCREMENTAL_ENABLED


#: process-wide default shard config (the CLI's ``--shards`` flag lands
#: here); ``None`` keeps the monolithic loops.  When set, ``simulate_day``
#: routes sharding-capable policies through
#: :func:`repro.shard.engine.simulate_day_sharded`
_SHARDING: "ShardConfig | None" = None


def set_sharding(config: "ShardConfig | None") -> "ShardConfig | None":
    """Install (or with ``None`` clear) the process default shard config."""
    global _SHARDING
    previous = _SHARDING
    _SHARDING = config
    return previous


def sharding_config() -> "ShardConfig | None":
    """The process-wide default shard config, if any."""
    return _SHARDING


@contextlib.contextmanager
def deliver_interrupts():
    """Convert ``SIGTERM`` to :class:`KeyboardInterrupt` for a day loop.

    Installed only in the main thread of the main process (signal
    handlers are per-process; pool workers must keep their default
    ``SIGTERM`` so supervisors can still terminate them).  With the
    handler in place, a ``kill`` lands as ``KeyboardInterrupt`` at the
    loop's next bytecode boundary, letting the loop flush its journal
    and return a partial :class:`DayResult` tagged
    ``extra["interrupted"] = True`` instead of dying mid-hour.
    """
    installed = False
    previous = None
    if (
        multiprocessing.parent_process() is None
        and threading.current_thread() is threading.main_thread()
    ):
        def _to_interrupt(signum, frame):
            if multiprocessing.parent_process() is not None:
                # Forked pool worker inherited this handler: fall back to
                # default termination so supervisors can still kill us.
                signal.signal(signum, signal.SIG_DFL)
                os.kill(os.getpid(), signum)
                return
            raise KeyboardInterrupt(f"signal {signum}")

        try:
            previous = signal.signal(signal.SIGTERM, _to_interrupt)
            installed = True
        except (ValueError, OSError):  # pragma: no cover - exotic hosts
            pass
    try:
        yield
    finally:
        if installed:
            signal.signal(signal.SIGTERM, previous)


@dataclass(frozen=True)
class HourRecord:
    """Costs and migrations booked during one simulated hour.

    ``repair_cost`` / ``num_repairs`` are the forced evacuations off
    failed switches (fault-aware loop only; see the cost convention in
    :mod:`repro.faults.repair`), and ``dropped_traffic`` is the summed
    rate of flows that could not be served that hour.  All three stay 0
    in the classic loop, so existing consumers see identical records.

    The replication fields (``replication_cost`` = ``C_r`` paid this
    hour, ``sync_cost`` = consistency traffic, ``num_replications`` =
    replicate actions taken, ``num_replicas`` = live copies after the
    hour, ``num_failovers`` = free replica promotions during forced
    repair) stay 0 for every non-replicating policy, so existing
    byte-identity contracts are untouched.
    """

    hour: int
    communication_cost: float
    migration_cost: float
    num_migrations: int
    dropped_traffic: float = 0.0
    repair_cost: float = 0.0
    num_repairs: int = 0
    replication_cost: float = 0.0
    sync_cost: float = 0.0
    num_replications: int = 0
    num_replicas: int = 0
    num_failovers: int = 0

    @property
    def total_cost(self) -> float:
        return (
            self.communication_cost
            + self.migration_cost
            + self.repair_cost
            + self.replication_cost
            + self.sync_cost
        )

    def to_dict(self) -> dict:
        return {
            "hour": self.hour,
            "communication_cost": self.communication_cost,
            "migration_cost": self.migration_cost,
            "num_migrations": self.num_migrations,
            "dropped_traffic": self.dropped_traffic,
            "repair_cost": self.repair_cost,
            "num_repairs": self.num_repairs,
            "replication_cost": self.replication_cost,
            "sync_cost": self.sync_cost,
            "num_replications": self.num_replications,
            "num_replicas": self.num_replicas,
            "num_failovers": self.num_failovers,
        }


@dataclass(frozen=True)
class DayResult:
    """A full day of one policy's behaviour."""

    policy: str
    records: tuple[HourRecord, ...]
    extra: dict = field(default_factory=dict)

    @property
    def total_cost(self) -> float:
        return float(sum(r.total_cost for r in self.records))

    @property
    def total_communication_cost(self) -> float:
        return float(sum(r.communication_cost for r in self.records))

    @property
    def total_migration_cost(self) -> float:
        return float(sum(r.migration_cost for r in self.records))

    @property
    def total_migrations(self) -> int:
        return int(sum(r.num_migrations for r in self.records))

    @property
    def total_repair_cost(self) -> float:
        return float(sum(r.repair_cost for r in self.records))

    @property
    def total_repairs(self) -> int:
        return int(sum(r.num_repairs for r in self.records))

    @property
    def total_dropped_traffic(self) -> float:
        return float(sum(r.dropped_traffic for r in self.records))

    @property
    def total_replication_cost(self) -> float:
        return float(sum(r.replication_cost for r in self.records))

    @property
    def total_sync_cost(self) -> float:
        return float(sum(r.sync_cost for r in self.records))

    @property
    def total_replications(self) -> int:
        return int(sum(r.num_replications for r in self.records))

    @property
    def total_failovers(self) -> int:
        return int(sum(r.num_failovers for r in self.records))

    @property
    def peak_replicas(self) -> int:
        return int(max((r.num_replicas for r in self.records), default=0))

    def hourly(self, metric: str) -> np.ndarray:
        """Per-hour series of ``metric`` (an :class:`HourRecord` attribute)."""
        return np.asarray([getattr(r, metric) for r in self.records], dtype=float)

    def to_dict(self) -> dict:
        """Canonical JSON-friendly form (byte-identity comparisons)."""
        return {
            "policy": self.policy,
            "records": [r.to_dict() for r in self.records],
            "extra": self.extra,
        }


def initial_placement(
    topology: Topology,
    flows: FlowSet,
    n: int,
    rate_process: RateProcess,
    hour: int = 1,
    *,
    cache=None,
) -> np.ndarray:
    """The TOP placement the day starts from (Algorithm 3 at ``hour``'s rates).

    Matches the paper's framework: TOP runs once up front, TOM (or a
    baseline) reacts from then on.  ``cache`` threads a
    :class:`~repro.runtime.cache.ComputeCache` (e.g. a session's) into
    Algorithm 3.
    """
    with Timer.timed("initial_placement"):
        rates = rate_process.rates_at(hour)
        if not np.any(rates > 0):
            # a completely silent starting hour gives TOP no signal; fall back
            # to the base rates so the initial placement is still meaningful
            rates = flows.rates
        return dp_placement(topology, flows.with_rates(rates), n, cache=cache).placement


def simulate_day(
    topology: Topology,
    flows: FlowSet,
    policy: MigrationPolicy,
    rate_process: RateProcess,
    placement: np.ndarray,
    hours: range | None = None,
    *,
    session=None,
    faults=None,
    incremental: bool | None = None,
) -> DayResult:
    """Run ``policy`` through the given ``hours`` of the traffic process.

    The policy is (re)initialized with ``placement`` and the flow set
    before the first hour; each hour it sees the process's effective
    rate vector and books its costs.  ``session`` attaches a
    :class:`~repro.session.SolverSession` so every hour's solver call
    reuses the session's precomputed artifacts (bit-identical to running
    without one — the session routes through the same solver code).

    ``faults`` switches to the fault-aware loop (see the module
    docstring); it is deterministic given the fault process's seed —
    rerunning the same inputs reproduces a byte-identical
    :class:`DayResult`, including the per-hour fault log in ``extra``.

    ``incremental`` selects the incremental solver path (``None`` reads
    the :func:`set_incremental` process default, itself ``True``): fault
    views come from :meth:`SolverSession.apply` — delta-maintained APSP
    seeding, shared stroll artifacts, per-state memoization — and rate
    ticks route through :meth:`SolverSession.advance`.  The cold path
    (``incremental=False``) rebuilds every view from scratch and is kept
    as the differential oracle; both paths produce bit-identical
    :class:`DayResult`\\ s, a contract the ``verify.incremental``
    campaign family enforces.
    """
    if hours is None:
        hours = range(1, rate_process.diurnal.num_hours + 1)
    if incremental is None:
        incremental = _INCREMENTAL_ENABLED
    if _SHARDING is not None and getattr(policy, "supports_sharding", False):
        from repro.shard.engine import simulate_day_sharded

        return simulate_day_sharded(
            topology, flows, policy, rate_process, placement, hours,
            config=_SHARDING, session=session, faults=faults,
            incremental=incremental,
        )
    if faults is not None:
        return _simulate_day_faulty(
            topology, flows, policy, rate_process, placement, hours,
            session=session, faults=faults, incremental=incremental,
        )
    interrupted = False
    with Timer.timed("simulate_day"):
        if session is not None:
            policy.attach_session(session)
        policy.initialize(flows, placement)
        records = []
        with deliver_interrupts():
            try:
                for hour in hours:
                    rates = rate_process.rates_at(hour)
                    if incremental and session is not None:
                        # a pure rate tick: nothing cached depends on rates, so
                        # this only bumps the session's rates epoch (observable
                        # proof that the hour invalidated no artifacts)
                        session.advance(rates)
                    step = policy.step(rates)
                    count("hours_simulated")
                    records.append(
                        HourRecord(
                            hour=hour,
                            communication_cost=step.communication_cost,
                            migration_cost=step.migration_cost,
                            num_migrations=step.num_migrations,
                            replication_cost=step.replication_cost,
                            sync_cost=step.sync_cost,
                            num_replications=step.num_replications,
                            num_replicas=step.num_replicas,
                        )
                    )
            except KeyboardInterrupt:
                # an interrupt ends the day early but cleanly: return the
                # completed hours, flagged, instead of dying mid-hour
                interrupted = True
    extra = policy.day_extra()
    if interrupted:
        extra = dict(extra)
        extra["interrupted"] = True
    return DayResult(policy=policy.name, records=tuple(records), extra=extra)


def _park_flows(flows: FlowSet, drop_mask: np.ndarray, park_host: int) -> FlowSet:
    """Relocate dropped flows' endpoints onto one surviving host.

    Their rates are zeroed by the caller, so the parked endpoints only
    determine *which finite distances* get multiplied by zero — any
    surviving host works, and the result is exactly 0 contribution
    (never ``0 × inf``).
    """
    if not drop_mask.any():
        return flows
    sources = flows.sources.copy()
    destinations = flows.destinations.copy()
    sources[drop_mask] = park_host
    destinations[drop_mask] = park_host
    return flows.with_endpoints(sources, destinations)


def _simulate_day_faulty(
    topology: Topology,
    flows: FlowSet,
    policy: MigrationPolicy,
    rate_process: RateProcess,
    placement: np.ndarray,
    hours: range,
    *,
    session,
    faults,
    incremental,
) -> DayResult:
    from repro.faults.degrade import degrade
    from repro.faults.repair import evacuate
    from repro.session import SolverSession

    if not policy.supports_faults:
        raise FaultError(
            f"policy {policy.name!r} does not support fault-aware simulation"
        )
    n = int(np.asarray(placement).size)
    healthy_distances = topology.graph.distances
    current = np.asarray(placement, dtype=np.int64).copy()
    records: list[HourRecord] = []
    fault_log: list[dict] = []
    # one degraded view + session per distinct fault state; a healthy
    # state reuses the caller's session (and topology) unchanged.  On
    # the incremental path the base session derives (and memoizes) the
    # views itself: delta-maintained APSP seeding instead of cold solves.
    views: dict = {}
    base_session = session
    if incremental and base_session is None:
        base_session = SolverSession(topology)
    with Timer.timed("simulate_day_faulty"):
        policy.initialize(flows, current)
        interrupted = False
        with deliver_interrupts():
            try:
                for hour in hours:
                    state = faults.state_at(hour)
                    if state not in views:
                        if incremental:
                            views[state] = base_session.apply(state)
                        elif state.is_healthy:
                            healthy_session = (
                                session if session is not None else SolverSession(topology)
                            )
                            views[state] = (topology, None, healthy_session)
                        else:
                            degraded, audit = degrade(topology, state)
                            views[state] = (degraded, audit, SolverSession(degraded))
                    view, audit, view_session = views[state]
                    if incremental:
                        view_session.advance(rate_process.rates_at(hour))

                    live_switches = (
                        audit.surviving_switches if audit is not None else topology.switches
                    )
                    if live_switches.size < n:
                        raise InfeasibleError(
                            f"hour {hour}: only {live_switches.size} surviving "
                            f"switches for a chain of {n} VNFs",
                            diagnosis={
                                "reason": "too_few_surviving_switches",
                                "hour": hour,
                                "num_vnfs": n,
                                "surviving_switches": live_switches.tolist(),
                                "failed_switches": list(state.failed_switches),
                                "components": [list(c) for c in audit.components]
                                if audit is not None
                                else [],
                            },
                        )

                    # 1. forced repair: evacuate VNFs off failed/partitioned switches.
                    # A policy carrying live replica copies first loses any copy
                    # with an instance on a dead switch, then fails over stranded
                    # primaries onto surviving copies for free (repair pricing is
                    # routed through the replica set — only paid moves book μ·Σc).
                    replica_rows = policy.replica_rows
                    lost_replicas: list[list[int]] = []
                    if replica_rows is not None and replica_rows.shape[0] and audit is not None:
                        live_set = {int(s) for s in live_switches.tolist()}
                        keep = [
                            r
                            for r in range(replica_rows.shape[0])
                            if all(int(s) in live_set for s in replica_rows[r])
                        ]
                        lost_replicas = [
                            [int(s) for s in replica_rows[r]]
                            for r in range(replica_rows.shape[0])
                            if r not in keep
                        ]
                        replica_rows = replica_rows[keep]
                    plan = evacuate(
                        current,
                        live_switches,
                        healthy_distances,
                        diagnosis={"hour": hour},
                        replica_rows=replica_rows,
                    )
                    current = np.asarray(plan.placement, dtype=np.int64)
                    repair_cost = policy.mu * plan.distance
                    if replica_rows is not None:
                        policy.force_replicas(plan.replica_rows)

                    # 2. drop flows with failed or partitioned endpoints
                    rates = rate_process.rates_at(hour)
                    if audit is not None:
                        drop_mask = audit.dropped_flow_mask(flows)
                    else:
                        drop_mask = np.zeros(flows.num_flows, dtype=bool)
                    dropped_traffic = float(rates[drop_mask].sum())
                    effective_rates = np.where(drop_mask, 0.0, rates)

                    live_hosts = (
                        audit.surviving_hosts if audit is not None else topology.hosts
                    )
                    if drop_mask.all() or live_hosts.size == 0:
                        # nothing can communicate this hour: the placement holds,
                        # no solver runs, and all offered traffic is dropped
                        count("hours_simulated")
                        records.append(
                            HourRecord(
                                hour=hour,
                                communication_cost=0.0,
                                migration_cost=0.0,
                                num_migrations=0,
                                dropped_traffic=float(rates.sum()),
                                repair_cost=repair_cost,
                                num_repairs=plan.num_moves,
                                num_replicas=(
                                    0
                                    if plan.replica_rows is None
                                    else int(plan.replica_rows.shape[0])
                                ),
                                num_failovers=plan.num_failovers,
                            )
                        )
                        fault_log.append(
                            _log_entry(
                                hour, state, audit, drop_mask, plan, current,
                                replica_rows=plan.replica_rows,
                                lost_replicas=lost_replicas,
                            )
                        )
                        continue

                    parked = _park_flows(flows, drop_mask, int(live_hosts[0]))

                    # 3. the policy's own step, anchored on the hour's fabric view
                    policy.refit(
                        view,
                        view_session,
                        parked,
                        current,
                        candidate_switches=live_switches if audit is not None else None,
                    )
                    step = policy.step(effective_rates)
                    current = np.asarray(policy.placement, dtype=np.int64)
                    count("hours_simulated")
                    records.append(
                        HourRecord(
                            hour=hour,
                            communication_cost=step.communication_cost,
                            migration_cost=step.migration_cost,
                            num_migrations=step.num_migrations,
                            dropped_traffic=dropped_traffic,
                            repair_cost=repair_cost,
                            num_repairs=plan.num_moves,
                            replication_cost=step.replication_cost,
                            sync_cost=step.sync_cost,
                            num_replications=step.num_replications,
                            num_replicas=step.num_replicas,
                            num_failovers=plan.num_failovers,
                        )
                    )
                    fault_log.append(
                        _log_entry(
                            hour, state, audit, drop_mask, plan, current,
                            replica_rows=policy.replica_rows,
                            lost_replicas=lost_replicas,
                        )
                    )
            except KeyboardInterrupt:
                # flush-and-return: completed hours survive, flagged
                interrupted = True

    extra = {
        "faults": {
            "seed": faults.seed,
            "config": faults.config.to_dict(),
            "trace": [e.to_dict() for e in faults.trace()],
        },
        "fault_log": fault_log,
    }
    extra.update(policy.day_extra())
    if interrupted:
        extra["interrupted"] = True
    return DayResult(policy=policy.name, records=tuple(records), extra=extra)


def _log_entry(
    hour, state, audit, drop_mask, plan, placement,
    *, replica_rows=None, lost_replicas=(),
) -> dict:
    return {
        "hour": hour,
        "failed_switches": list(state.failed_switches),
        "failed_hosts": list(state.failed_hosts),
        "failed_links": [list(link) for link in state.failed_links],
        "partitioned": bool(audit.is_partitioned) if audit is not None else False,
        "dropped_flows": np.flatnonzero(drop_mask).tolist(),
        "repairs": [list(m) for m in plan.moves],
        "repair_distance": plan.distance,
        "placement": placement.tolist(),
        "failovers": [list(m) for m in plan.failovers],
        "replica_rows": [] if replica_rows is None else np.asarray(replica_rows).tolist(),
        "lost_replicas": [list(r) for r in lost_replicas],
    }
