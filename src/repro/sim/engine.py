"""The simulated day: hour loop, cost accounting, per-hour records."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.placement import dp_placement
from repro.runtime.instrument import count
from repro.sim.policies import MigrationPolicy
from repro.topology.base import Topology
from repro.utils.timing import Timer
from repro.workload.dynamics import RateProcess
from repro.workload.flows import FlowSet

__all__ = ["HourRecord", "DayResult", "simulate_day", "initial_placement"]


@dataclass(frozen=True)
class HourRecord:
    """Costs and migrations booked during one simulated hour."""

    hour: int
    communication_cost: float
    migration_cost: float
    num_migrations: int

    @property
    def total_cost(self) -> float:
        return self.communication_cost + self.migration_cost


@dataclass(frozen=True)
class DayResult:
    """A full day of one policy's behaviour."""

    policy: str
    records: tuple[HourRecord, ...]
    extra: dict = field(default_factory=dict)

    @property
    def total_cost(self) -> float:
        return float(sum(r.total_cost for r in self.records))

    @property
    def total_communication_cost(self) -> float:
        return float(sum(r.communication_cost for r in self.records))

    @property
    def total_migration_cost(self) -> float:
        return float(sum(r.migration_cost for r in self.records))

    @property
    def total_migrations(self) -> int:
        return int(sum(r.num_migrations for r in self.records))

    def hourly(self, metric: str) -> np.ndarray:
        """Per-hour series of ``metric`` (an :class:`HourRecord` attribute)."""
        return np.asarray([getattr(r, metric) for r in self.records], dtype=float)


def initial_placement(
    topology: Topology,
    flows: FlowSet,
    n: int,
    rate_process: RateProcess,
    hour: int = 1,
    *,
    cache=None,
) -> np.ndarray:
    """The TOP placement the day starts from (Algorithm 3 at ``hour``'s rates).

    Matches the paper's framework: TOP runs once up front, TOM (or a
    baseline) reacts from then on.  ``cache`` threads a
    :class:`~repro.runtime.cache.ComputeCache` (e.g. a session's) into
    Algorithm 3.
    """
    with Timer.timed("initial_placement"):
        rates = rate_process.rates_at(hour)
        if not np.any(rates > 0):
            # a completely silent starting hour gives TOP no signal; fall back
            # to the base rates so the initial placement is still meaningful
            rates = flows.rates
        return dp_placement(topology, flows.with_rates(rates), n, cache=cache).placement


def simulate_day(
    topology: Topology,
    flows: FlowSet,
    policy: MigrationPolicy,
    rate_process: RateProcess,
    placement: np.ndarray,
    hours: range | None = None,
    *,
    session=None,
) -> DayResult:
    """Run ``policy`` through the given ``hours`` of the traffic process.

    The policy is (re)initialized with ``placement`` and the flow set
    before the first hour; each hour it sees the process's effective
    rate vector and books its costs.  ``session`` attaches a
    :class:`~repro.session.SolverSession` so every hour's solver call
    reuses the session's precomputed artifacts (bit-identical to running
    without one — the session routes through the same solver code).
    """
    if hours is None:
        hours = range(1, rate_process.diurnal.num_hours + 1)
    with Timer.timed("simulate_day"):
        if session is not None:
            policy.attach_session(session)
        policy.initialize(flows, placement)
        records = []
        for hour in hours:
            rates = rate_process.rates_at(hour)
            step = policy.step(rates)
            count("hours_simulated")
            records.append(
                HourRecord(
                    hour=hour,
                    communication_cost=step.communication_cost,
                    migration_cost=step.migration_cost,
                    num_migrations=step.num_migrations,
                )
            )
    return DayResult(policy=policy.name, records=tuple(records))
