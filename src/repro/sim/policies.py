"""Migration policies the simulator can drive.

A policy owns the mutable state a strategy carries through the day —
the current VNF placement for VNF-migration strategies, the current VM
locations for VM-migration baselines — and reacts to each hour's new
traffic-rate vector with a :class:`PolicyStep`.

All policies share one initialization: the hour-one TOP placement
(Algorithm 3 on the first non-zero rates), matching the paper's "after
the TOP creates the initial optimal VNF placement, the TOM then executes
periodically".
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.baselines.common import default_host_capacity
from repro.baselines.mcf_migration import mcf_vm_migration
from repro.baselines.plan import plan_vm_migration
from repro.core.migration import mpareto_migration, no_migration
from repro.core.optimal import optimal_migration
from repro.errors import FaultError, MigrationError
from repro.topology.base import Topology
from repro.workload.flows import FlowSet

__all__ = [
    "PolicyStep",
    "MigrationPolicy",
    "MParetoPolicy",
    "OptimalVnfPolicy",
    "NoMigrationPolicy",
    "PlanVmPolicy",
    "McfVmPolicy",
]


@dataclass(frozen=True)
class PolicyStep:
    """One hour's outcome: costs paid and migrations performed."""

    communication_cost: float
    migration_cost: float
    num_migrations: int

    @property
    def total_cost(self) -> float:
        return self.communication_cost + self.migration_cost


class MigrationPolicy(ABC):
    """Stateful per-day strategy; see module docstring."""

    name: str = "policy"

    #: whether the policy has defined semantics under the fault-aware day
    #: loop (the VM baselines do not: their frozen per-host capacity has
    #: no meaning once hosts die mid-day)
    supports_faults: bool = True

    def __init__(self, topology: Topology, mu: float) -> None:
        if mu < 0:
            raise MigrationError(f"mu must be non-negative, got {mu}")
        self.topology = topology
        self.mu = mu
        self.session = None
        self._placement: np.ndarray | None = None
        self._flows: FlowSet | None = None
        self._candidate_switches: np.ndarray | None = None

    def attach_session(self, session) -> None:
        """Route this policy's solver calls through a
        :class:`~repro.session.SolverSession` (same answers, amortized
        artifacts)."""
        self.session = session

    @property
    def _cache(self):
        """The compute cache solver calls should use (None = process-global)."""
        return self.session.cache if self.session is not None else None

    def initialize(self, flows: FlowSet, placement: np.ndarray) -> None:
        """Install the initial TOP placement and VM locations."""
        self._placement = np.asarray(placement, dtype=np.int64)
        self._flows = flows

    @property
    def placement(self) -> np.ndarray:
        assert self._placement is not None, "policy used before initialize()"
        return self._placement

    @property
    def flows(self) -> FlowSet:
        assert self._flows is not None, "policy used before initialize()"
        return self._flows

    def refit(
        self,
        topology: Topology,
        session,
        flows: FlowSet,
        placement: np.ndarray,
        *,
        candidate_switches: np.ndarray | None = None,
    ) -> None:
        """Re-anchor the policy on a (degraded) fabric view mid-day.

        The fault-aware simulator calls this whenever the fault state
        changes: the policy's solver calls must price against the
        degraded APSP, restrict their targets to the surviving component
        (``candidate_switches``), and continue from the repaired
        ``placement``.  ``flows`` is the parked flow set — dropped flows
        relocated to a surviving host so their zero rates contribute
        exactly zero instead of ``0 × inf``.
        """
        if not self.supports_faults:
            raise FaultError(
                f"policy {self.name!r} does not support fault-aware "
                "simulation (see MigrationPolicy.supports_faults)"
            )
        self.topology = topology
        self.session = session
        self._flows = flows
        self._placement = np.asarray(placement, dtype=np.int64)
        self._candidate_switches = (
            None
            if candidate_switches is None
            else np.asarray(candidate_switches, dtype=np.int64)
        )

    def force_placement(self, placement: np.ndarray) -> None:
        """Install an externally repaired placement (forced evacuation)."""
        self._placement = np.asarray(placement, dtype=np.int64)

    @abstractmethod
    def step(self, rates: np.ndarray) -> PolicyStep:
        """React to the new traffic-rate vector; mutate state; report costs."""


class MParetoPolicy(MigrationPolicy):
    """Algorithm 5 every hour (the paper's mPareto series)."""

    name = "mpareto"

    def step(self, rates: np.ndarray) -> PolicyStep:
        flows = self.flows.with_rates(rates)
        options = {}
        if self._candidate_switches is not None:
            options["candidate_switches"] = self._candidate_switches
        if self.session is not None:
            result = self.session.migrate(self.placement, flows, mu=self.mu, **options)
        else:
            result = mpareto_migration(
                self.topology, flows, self.placement, self.mu, **options
            )
        self._placement = result.migration
        self._flows = flows
        return PolicyStep(
            communication_cost=result.communication_cost,
            migration_cost=result.migration_cost,
            num_migrations=result.num_migrated,
        )


class OptimalVnfPolicy(MigrationPolicy):
    """Algorithm 6 every hour, optionally on a restricted candidate set.

    ``candidate_switches=None`` is the full exact search (feasible on
    small fabrics); a candidate set turns it into the restricted-exact
    reference documented in EXPERIMENTS.md for k=16-scale runs.
    """

    name = "optimal"

    def __init__(
        self,
        topology: Topology,
        mu: float,
        budget: int = 2_000_000,
        candidate_switches: Sequence[int] | None = None,
    ) -> None:
        super().__init__(topology, mu)
        self.budget = budget
        self.candidate_switches = candidate_switches

    def step(self, rates: np.ndarray) -> PolicyStep:
        flows = self.flows.with_rates(rates)
        candidates = (
            self._candidate_switches
            if self._candidate_switches is not None
            else self.candidate_switches
        )
        result = optimal_migration(
            self.topology,
            flows,
            self.placement,
            self.mu,
            budget=self.budget,
            candidate_switches=candidates,
            cache=self._cache,
        )
        self._placement = result.migration
        self._flows = flows
        return PolicyStep(
            communication_cost=result.communication_cost,
            migration_cost=result.migration_cost,
            num_migrations=result.num_migrated,
        )


class NoMigrationPolicy(MigrationPolicy):
    """Keep the initial placement all day (Fig. 11(c,d) reference)."""

    name = "no-migration"

    def step(self, rates: np.ndarray) -> PolicyStep:
        flows = self.flows.with_rates(rates)
        result = no_migration(self.topology, flows, self.placement, cache=self._cache)
        self._flows = flows
        return PolicyStep(
            communication_cost=result.communication_cost,
            migration_cost=0.0,
            num_migrations=0,
        )


class PlanVmPolicy(MigrationPolicy):
    """PLAN [17]: VMs chase the fixed VNF placement each hour.

    ``vm_size_ratio`` scales the migration coefficient for VM moves:
    following the paper's own quantification of μ (memory transferred per
    migration over bytes per packet), a VM image (~1 GB) costs about an
    order of magnitude more to move than a 100 MB containerized VNF.
    """

    name = "plan"
    supports_faults = False

    def __init__(
        self,
        topology: Topology,
        mu: float,
        host_capacity: int | np.ndarray | None = None,
        vm_size_ratio: float = 10.0,
        free_slots: int = 1,
    ) -> None:
        super().__init__(topology, mu)
        self.host_capacity = host_capacity
        self.vm_size_ratio = vm_size_ratio
        self.free_slots = free_slots

    def initialize(self, flows: FlowSet, placement: np.ndarray) -> None:
        super().initialize(flows, placement)
        if self.host_capacity is None:
            # freeze the day's capacity against the *initial* layout so the
            # fabric's total free space does not grow as VMs move around
            self.host_capacity = default_host_capacity(
                self.topology, flows, free_slots=self.free_slots
            )

    def step(self, rates: np.ndarray) -> PolicyStep:
        flows = self.flows.with_rates(rates)
        result = plan_vm_migration(
            self.topology,
            flows,
            self.placement,
            self.mu * self.vm_size_ratio,
            host_capacity=self.host_capacity,
            cache=self._cache,
        )
        self._flows = result.flows
        return PolicyStep(
            communication_cost=result.communication_cost,
            migration_cost=result.migration_cost,
            num_migrations=result.num_migrated,
        )


class McfVmPolicy(MigrationPolicy):
    """MCF [24]: the min-cost-flow VM reassignment each hour.

    ``vm_size_ratio`` as in :class:`PlanVmPolicy`.
    """

    name = "mcf"
    supports_faults = False

    def __init__(
        self,
        topology: Topology,
        mu: float,
        host_capacity: int | np.ndarray | None = None,
        top_k: int = 8,
        vm_size_ratio: float = 10.0,
        free_slots: int = 1,
    ) -> None:
        super().__init__(topology, mu)
        self.host_capacity = host_capacity
        self.top_k = top_k
        self.vm_size_ratio = vm_size_ratio
        self.free_slots = free_slots

    def initialize(self, flows: FlowSet, placement: np.ndarray) -> None:
        super().initialize(flows, placement)
        if self.host_capacity is None:
            self.host_capacity = default_host_capacity(
                self.topology, flows, free_slots=self.free_slots
            )

    def step(self, rates: np.ndarray) -> PolicyStep:
        flows = self.flows.with_rates(rates)
        result = mcf_vm_migration(
            self.topology,
            flows,
            self.placement,
            self.mu * self.vm_size_ratio,
            host_capacity=self.host_capacity,
            top_k=self.top_k,
            cache=self._cache,
        )
        self._flows = result.flows
        return PolicyStep(
            communication_cost=result.communication_cost,
            migration_cost=result.migration_cost,
            num_migrations=result.num_migrated,
        )
