"""Migration policies the simulator can drive.

A policy owns the mutable state a strategy carries through the day —
the current VNF placement for VNF-migration strategies, the current VM
locations for VM-migration baselines — and reacts to each hour's new
traffic-rate vector with a :class:`PolicyStep`.

All policies share one initialization: the hour-one TOP placement
(Algorithm 3 on the first non-zero rates), matching the paper's "after
the TOP creates the initial optimal VNF placement, the TOM then executes
periodically".
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.baselines.common import default_host_capacity
from repro.baselines.mcf_migration import mcf_vm_migration
from repro.baselines.plan import plan_vm_migration
from repro.core.migration import mpareto_migration, no_migration
from repro.core.optimal import optimal_migration
from repro.core.replication import (
    ReplicaSet,
    exact_replication_step,
    replication_step,
)
from repro.errors import FaultError, MigrationError
from repro.topology.base import Topology
from repro.workload.flows import FlowSet

__all__ = [
    "PolicyStep",
    "MigrationPolicy",
    "MParetoPolicy",
    "TomReplicationPolicy",
    "OptimalVnfPolicy",
    "NoMigrationPolicy",
    "PlanVmPolicy",
    "McfVmPolicy",
]


@dataclass(frozen=True)
class PolicyStep:
    """One hour's outcome: costs paid, migrations and replications performed.

    The replication fields stay at their zero defaults for every
    non-replicating policy, so existing consumers (and byte-identity
    comparisons) see unchanged records.
    """

    communication_cost: float
    migration_cost: float
    num_migrations: int
    replication_cost: float = 0.0
    sync_cost: float = 0.0
    num_replications: int = 0
    num_replicas: int = 0

    @property
    def total_cost(self) -> float:
        return (
            self.communication_cost
            + self.migration_cost
            + self.replication_cost
            + self.sync_cost
        )


class MigrationPolicy(ABC):
    """Stateful per-day strategy; see module docstring."""

    name: str = "policy"

    #: whether the policy has defined semantics under the fault-aware day
    #: loop (the VM baselines do not: their frozen per-host capacity has
    #: no meaning once hosts die mid-day)
    supports_faults: bool = True

    #: whether the policy prices placements exclusively through the
    #: aggregate cost structure (attractions + Λ + min-over-copies
    #: serving), which is what the sharded day loop can reconstruct from
    #: per-block partial sums.  The VM baselines track per-VM/per-host
    #: state the aggregates cannot express, so they must run unsharded.
    supports_sharding: bool = True

    def __init__(self, topology: Topology, mu: float) -> None:
        if mu < 0:
            raise MigrationError(f"mu must be non-negative, got {mu}")
        self.topology = topology
        self.mu = mu
        self.session = None
        self._placement: np.ndarray | None = None
        self._flows: FlowSet | None = None
        self._candidate_switches: np.ndarray | None = None

    def attach_session(self, session) -> None:
        """Route this policy's solver calls through a
        :class:`~repro.session.SolverSession` (same answers, amortized
        artifacts)."""
        self.session = session

    @property
    def _cache(self):
        """The compute cache solver calls should use (None = process-global)."""
        return self.session.cache if self.session is not None else None

    def initialize(self, flows: FlowSet, placement: np.ndarray) -> None:
        """Install the initial TOP placement and VM locations."""
        self._placement = np.asarray(placement, dtype=np.int64)
        self._flows = flows

    @property
    def placement(self) -> np.ndarray:
        assert self._placement is not None, "policy used before initialize()"
        return self._placement

    @property
    def flows(self) -> FlowSet:
        assert self._flows is not None, "policy used before initialize()"
        return self._flows

    def rebind_flows(self, flows) -> None:
        """Swap in a new flow view for the next step, keeping all state.

        The sharded day loop rebinds each hour's folded
        :class:`~repro.core.costs.AggregatedFlows` (whose ``with_rates``
        is the identity) and then steps with ``rates=None`` — placement,
        session, replica state and candidate restrictions all carry over,
        exactly as they do across steps of the unsharded loop.
        """
        self._flows = flows

    def refit(
        self,
        topology: Topology,
        session,
        flows: FlowSet,
        placement: np.ndarray,
        *,
        candidate_switches: np.ndarray | None = None,
    ) -> None:
        """Re-anchor the policy on a (degraded) fabric view mid-day.

        The fault-aware simulator calls this whenever the fault state
        changes: the policy's solver calls must price against the
        degraded APSP, restrict their targets to the surviving component
        (``candidate_switches``), and continue from the repaired
        ``placement``.  ``flows`` is the parked flow set — dropped flows
        relocated to a surviving host so their zero rates contribute
        exactly zero instead of ``0 × inf``.
        """
        if not self.supports_faults:
            raise FaultError(
                f"policy {self.name!r} does not support fault-aware "
                "simulation (see MigrationPolicy.supports_faults)"
            )
        self.topology = topology
        self.session = session
        self._flows = flows
        self._placement = np.asarray(placement, dtype=np.int64)
        self._candidate_switches = (
            None
            if candidate_switches is None
            else np.asarray(candidate_switches, dtype=np.int64)
        )

    def force_placement(self, placement: np.ndarray) -> None:
        """Install an externally repaired placement (forced evacuation)."""
        self._placement = np.asarray(placement, dtype=np.int64)

    @property
    def replica_rows(self) -> np.ndarray | None:
        """Live replica chain copies the fault loop may fail over to.

        ``None`` (the default) means the policy carries no replicas and
        the fault loop's behaviour is byte-identical to before the
        replication subsystem existed.
        """
        return None

    def force_replicas(self, rows: np.ndarray) -> None:
        """Install externally pruned/consumed replica rows (fault loop)."""

    def day_extra(self) -> dict:
        """Policy-owned additions to :attr:`DayResult.extra` (default none)."""
        return {}

    @abstractmethod
    def step(self, rates: np.ndarray) -> PolicyStep:
        """React to the new traffic-rate vector; mutate state; report costs."""


class MParetoPolicy(MigrationPolicy):
    """Algorithm 5 every hour (the paper's mPareto series)."""

    name = "mpareto"

    def step(self, rates: np.ndarray) -> PolicyStep:
        flows = self.flows.with_rates(rates)
        options = {}
        if self._candidate_switches is not None:
            options["candidate_switches"] = self._candidate_switches
        if self.session is not None:
            result = self.session.migrate(self.placement, flows, mu=self.mu, **options)
        else:
            result = mpareto_migration(
                self.topology, flows, self.placement, self.mu, **options
            )
        self._placement = result.migration
        self._flows = flows
        return PolicyStep(
            communication_cost=result.communication_cost,
            migration_cost=result.migration_cost,
            num_migrations=result.num_migrated,
        )


class TomReplicationPolicy(MigrationPolicy):
    """TOM extended with Carpio & Jukan's replication action.

    Each hour the policy may *keep*, *migrate* (Algorithm 5, paying
    ``C_b``), *replicate* (leave the primary serving and copy the chain
    to the fresh Algorithm 3 target, paying ``C_r = ρ·μ·Σc`` plus an
    ongoing consistency-sync cost ``sync_fraction · Λ · Σc(p, q_r)``),
    or *release* a stale copy for free.  Traffic is served by the
    nearest complete copy per flow (Eq. 1 with a per-flow min over
    copies); see DESIGN.md §5j for the accounting convention.

    ``rho == 0`` (or ``max_replicas == 0``) *disables* the replication
    action entirely — a zero-cost replica would mean no state was copied
    — and the policy takes the exact :class:`MParetoPolicy` call path,
    making ρ→0 the byte-identity anchor the ``verify.replication``
    campaign enforces.  ``rho > 1`` never replicates either: the
    ``C_r <= C_b`` dominance gate (copying state must be no dearer than
    bulk-moving it) can never open.

    ``exact=True`` prices the *entire* corridor lattice — every parallel
    frontier as both a migrate stop and a replicate target — instead of
    the greedy two-option menu; both route through the attached
    :class:`~repro.session.SolverSession` when one is present.
    """

    name = "tom-replication"

    def __init__(
        self,
        topology: Topology,
        mu: float,
        rho: float = 0.5,
        sync_fraction: float = 0.05,
        max_replicas: int = 2,
        exact: bool = False,
    ) -> None:
        super().__init__(topology, mu)
        if rho < 0:
            raise MigrationError(f"rho must be non-negative, got {rho}")
        if sync_fraction < 0:
            raise MigrationError(
                f"sync_fraction must be non-negative, got {sync_fraction}"
            )
        if max_replicas < 0:
            raise MigrationError(
                f"max_replicas must be non-negative, got {max_replicas}"
            )
        self.rho = float(rho)
        self.sync_fraction = float(sync_fraction)
        self.max_replicas = int(max_replicas)
        self.exact = bool(exact)
        self._replica_rows: np.ndarray | None = None
        self._replication_log: list[dict] = []

    @property
    def replication_enabled(self) -> bool:
        return self.rho > 0 and self.max_replicas > 0

    def initialize(self, flows: FlowSet, placement: np.ndarray) -> None:
        super().initialize(flows, placement)
        self._replica_rows = np.empty((0, self.placement.size), dtype=np.int64)
        self._replication_log = []

    @property
    def replica_rows(self) -> np.ndarray | None:
        if not self.replication_enabled:
            return None
        return self._replica_rows

    def force_replicas(self, rows: np.ndarray) -> None:
        rows = np.asarray(rows, dtype=np.int64)
        self._replica_rows = rows.reshape(-1, self.placement.size)

    @property
    def replica_set(self) -> ReplicaSet | None:
        if not self.replication_enabled:
            return None
        return ReplicaSet(primary=self.placement, replicas=self._replica_rows)

    def day_extra(self) -> dict:
        if not self._replication_log:
            return {}
        return {
            "replication": {
                "params": {
                    "rho": self.rho,
                    "sync_fraction": self.sync_fraction,
                    "max_replicas": self.max_replicas,
                    "exact": self.exact,
                },
                "log": list(self._replication_log),
            }
        }

    def _mpareto_call(self, flows: FlowSet):
        """The hour's Algorithm 5 answer, MParetoPolicy's exact call shape.

        The only divergence from :meth:`MParetoPolicy.step` is the fresh
        target restriction away from replica-held switches, applied *only*
        when live replicas exist — so a replica-free hour's call (and its
        cached artifacts) is byte-identical to plain mPareto's.
        """
        options = {}
        if self._candidate_switches is not None:
            options["candidate_switches"] = self._candidate_switches
        rows = self._replica_rows
        if self.replication_enabled and rows is not None and rows.shape[0]:
            held = {int(s) for s in rows.ravel()}
            base = options.get("candidate_switches")
            if base is None:
                base = self.topology.switches
            options["candidate_switches"] = np.asarray(
                [int(s) for s in base if int(s) not in held], dtype=np.int64
            )
        if self.session is not None:
            return self.session.migrate(self.placement, flows, mu=self.mu, **options)
        return mpareto_migration(
            self.topology, flows, self.placement, self.mu, **options
        )

    def step(self, rates: np.ndarray) -> PolicyStep:
        flows = self.flows.with_rates(rates)
        result = self._mpareto_call(flows)
        if not self.replication_enabled:
            self._placement = result.migration
            self._flows = flows
            return PolicyStep(
                communication_cost=result.communication_cost,
                migration_cost=result.migration_cost,
                num_migrations=result.num_migrated,
            )
        before = self.replica_set
        kwargs = dict(
            rho=self.rho,
            sync_fraction=self.sync_fraction,
            max_replicas=self.max_replicas,
            migrate_result=result,
            candidate_switches=self._candidate_switches,
        )
        if self.session is not None:
            step = self.session.replication_step(
                before, flows, mu=self.mu, exact=self.exact, **kwargs
            )
        elif self.exact:
            step = exact_replication_step(
                self.topology, flows, before, self.mu, cache=self._cache, **kwargs
            )
        else:
            step = replication_step(
                self.topology, flows, before, self.mu, cache=self._cache, **kwargs
            )
        after = step.replica_set
        self._replication_log.append(
            {
                "action": step.action,
                "primary_before": before.primary.tolist(),
                "primary_after": after.primary.tolist(),
                "replicas_before": before.replicas.tolist(),
                "replicas_after": after.replicas.tolist(),
                "communication_cost": step.communication_cost,
                "migration_cost": step.migration_cost,
                "replication_cost": step.replication_cost,
                "sync_cost": step.sync_cost,
                "options": dict(step.options),
            }
        )
        self._placement = after.primary
        self._replica_rows = after.replicas
        self._flows = flows
        return PolicyStep(
            communication_cost=step.communication_cost,
            migration_cost=step.migration_cost,
            num_migrations=step.num_migrations,
            replication_cost=step.replication_cost,
            sync_cost=step.sync_cost,
            num_replications=1 if step.action == "replicate" else 0,
            num_replicas=after.num_replicas,
        )


class OptimalVnfPolicy(MigrationPolicy):
    """Algorithm 6 every hour, optionally on a restricted candidate set.

    ``candidate_switches=None`` is the full exact search (feasible on
    small fabrics); a candidate set turns it into the restricted-exact
    reference documented in EXPERIMENTS.md for k=16-scale runs.
    """

    name = "optimal"

    def __init__(
        self,
        topology: Topology,
        mu: float,
        budget: int = 2_000_000,
        candidate_switches: Sequence[int] | None = None,
    ) -> None:
        super().__init__(topology, mu)
        self.budget = budget
        self.candidate_switches = candidate_switches

    def step(self, rates: np.ndarray) -> PolicyStep:
        flows = self.flows.with_rates(rates)
        candidates = (
            self._candidate_switches
            if self._candidate_switches is not None
            else self.candidate_switches
        )
        result = optimal_migration(
            self.topology,
            flows,
            self.placement,
            self.mu,
            budget=self.budget,
            candidate_switches=candidates,
            cache=self._cache,
        )
        self._placement = result.migration
        self._flows = flows
        return PolicyStep(
            communication_cost=result.communication_cost,
            migration_cost=result.migration_cost,
            num_migrations=result.num_migrated,
        )


class NoMigrationPolicy(MigrationPolicy):
    """Keep the initial placement all day (Fig. 11(c,d) reference)."""

    name = "no-migration"

    def step(self, rates: np.ndarray) -> PolicyStep:
        flows = self.flows.with_rates(rates)
        result = no_migration(self.topology, flows, self.placement, cache=self._cache)
        self._flows = flows
        return PolicyStep(
            communication_cost=result.communication_cost,
            migration_cost=0.0,
            num_migrations=0,
        )


class PlanVmPolicy(MigrationPolicy):
    """PLAN [17]: VMs chase the fixed VNF placement each hour.

    ``vm_size_ratio`` scales the migration coefficient for VM moves:
    following the paper's own quantification of μ (memory transferred per
    migration over bytes per packet), a VM image (~1 GB) costs about an
    order of magnitude more to move than a 100 MB containerized VNF.
    """

    name = "plan"
    supports_faults = False
    supports_sharding = False

    def __init__(
        self,
        topology: Topology,
        mu: float,
        host_capacity: int | np.ndarray | None = None,
        vm_size_ratio: float = 10.0,
        free_slots: int = 1,
    ) -> None:
        super().__init__(topology, mu)
        self.host_capacity = host_capacity
        self.vm_size_ratio = vm_size_ratio
        self.free_slots = free_slots

    def initialize(self, flows: FlowSet, placement: np.ndarray) -> None:
        super().initialize(flows, placement)
        if self.host_capacity is None:
            # freeze the day's capacity against the *initial* layout so the
            # fabric's total free space does not grow as VMs move around
            self.host_capacity = default_host_capacity(
                self.topology, flows, free_slots=self.free_slots
            )

    def step(self, rates: np.ndarray) -> PolicyStep:
        flows = self.flows.with_rates(rates)
        result = plan_vm_migration(
            self.topology,
            flows,
            self.placement,
            self.mu * self.vm_size_ratio,
            host_capacity=self.host_capacity,
            cache=self._cache,
        )
        self._flows = result.flows
        return PolicyStep(
            communication_cost=result.communication_cost,
            migration_cost=result.migration_cost,
            num_migrations=result.num_migrated,
        )


class McfVmPolicy(MigrationPolicy):
    """MCF [24]: the min-cost-flow VM reassignment each hour.

    ``vm_size_ratio`` as in :class:`PlanVmPolicy`.
    """

    name = "mcf"
    supports_faults = False
    supports_sharding = False

    def __init__(
        self,
        topology: Topology,
        mu: float,
        host_capacity: int | np.ndarray | None = None,
        top_k: int = 8,
        vm_size_ratio: float = 10.0,
        free_slots: int = 1,
    ) -> None:
        super().__init__(topology, mu)
        self.host_capacity = host_capacity
        self.top_k = top_k
        self.vm_size_ratio = vm_size_ratio
        self.free_slots = free_slots

    def initialize(self, flows: FlowSet, placement: np.ndarray) -> None:
        super().initialize(flows, placement)
        if self.host_capacity is None:
            self.host_capacity = default_host_capacity(
                self.topology, flows, free_slots=self.free_slots
            )

    def step(self, rates: np.ndarray) -> PolicyStep:
        flows = self.flows.with_rates(rates)
        result = mcf_vm_migration(
            self.topology,
            flows,
            self.placement,
            self.mu * self.vm_size_ratio,
            host_capacity=self.host_capacity,
            top_k=self.top_k,
            cache=self._cache,
        )
        self._flows = result.flows
        return PolicyStep(
            communication_cost=result.communication_cost,
            migration_cost=result.migration_cost,
            num_migrations=result.num_migrated,
        )
