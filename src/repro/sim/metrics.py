"""Post-hoc analysis of simulated days: gaps, summaries, hourly tables.

The runner returns raw :class:`~repro.sim.engine.DayResult` objects; this
module turns a set of paired days into the quantities the paper's Fig. 11
panels report — per-hour series, policy-vs-reference gaps, and migration
efficiency (cost saved per migration performed).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

import numpy as np

from repro.errors import ReproError
from repro.sim.engine import DayResult
from repro.utils.tables import ascii_table

__all__ = [
    "GapAnalysis",
    "analyze_gaps",
    "hourly_table",
    "migration_efficiency",
    "replication_summary",
]


@dataclass(frozen=True)
class GapAnalysis:
    """How far a policy runs above a reference policy, hour by hour."""

    policy: str
    reference: str
    hourly_gap: np.ndarray  # fractional, per hour (0 where both are free)
    total_gap: float
    extra: dict = field(default_factory=dict)

    def worst_hour(self) -> tuple[int, float]:
        idx = int(np.argmax(self.hourly_gap))
        return idx, float(self.hourly_gap[idx])


def analyze_gaps(
    days: Mapping[str, DayResult], reference: str
) -> dict[str, GapAnalysis]:
    """Per-policy gap analysis against ``reference`` (paired days).

    All days must cover the same hours; the reference is excluded from the
    output (its gap is identically zero).
    """
    if reference not in days:
        raise ReproError(f"reference policy {reference!r} not among {sorted(days)}")
    ref = days[reference]
    ref_hours = [r.hour for r in ref.records]
    ref_series = ref.hourly("total_cost")
    out: dict[str, GapAnalysis] = {}
    for name, day in days.items():
        if name == reference:
            continue
        hours = [r.hour for r in day.records]
        if hours != ref_hours:
            raise ReproError(
                f"policy {name!r} covers hours {hours[:3]}..., "
                f"reference covers {ref_hours[:3]}..."
            )
        series = day.hourly("total_cost")
        with np.errstate(divide="ignore", invalid="ignore"):
            gap = np.where(ref_series > 0, series / ref_series - 1.0, 0.0)
        total_gap = (
            day.total_cost / ref.total_cost - 1.0 if ref.total_cost > 0 else 0.0
        )
        out[name] = GapAnalysis(
            policy=name,
            reference=reference,
            hourly_gap=gap,
            total_gap=float(total_gap),
        )
    return out


def hourly_table(days: Mapping[str, DayResult], metric: str = "total_cost") -> str:
    """ASCII table: one row per hour, one column per policy."""
    if not days:
        raise ReproError("days must be non-empty")
    names = sorted(days)
    hours = [r.hour for r in days[names[0]].records]
    rows = []
    for idx, hour in enumerate(hours):
        row: list = [hour]
        for name in names:
            records = days[name].records
            row.append(getattr(records[idx], metric) if idx < len(records) else None)
        rows.append(row)
    return ascii_table(["hour", *names], rows, title=f"hourly {metric}")


def replication_summary(day: DayResult) -> dict:
    """Eq. 8-style component split of one (possibly replicating) day.

    Splits the day's total into communication / migration / replication /
    sync / repair and counts the actions taken — the row shape
    ``fig14_replication`` sweeps over ρ and ``bench_replication``
    compares across policies.  For a non-replicating policy the
    replication entries are identically zero, so the summary doubles as
    the migrate-vs-replicate delta's common denominator.
    """
    return {
        "policy": day.policy,
        "communication_cost": day.total_communication_cost,
        "migration_cost": day.total_migration_cost,
        "replication_cost": day.total_replication_cost,
        "sync_cost": day.total_sync_cost,
        "repair_cost": day.total_repair_cost,
        "dropped_traffic": day.total_dropped_traffic,
        "total_cost": day.total_cost,
        "migrations": day.total_migrations,
        "replications": day.total_replications,
        "failovers": day.total_failovers,
        "repairs": day.total_repairs,
        "peak_replicas": day.peak_replicas,
    }


def migration_efficiency(
    days: Mapping[str, DayResult], baseline: str
) -> dict[str, float]:
    """Cost saved (vs ``baseline``) per migration performed.

    The paper's Fig. 11(a)+(b) argument in one number: VNF migration wins
    because each move buys more traffic reduction than a VM move.
    Policies that never migrate report 0.
    """
    if baseline not in days:
        raise ReproError(f"baseline policy {baseline!r} not among {sorted(days)}")
    base_cost = days[baseline].total_cost
    out: dict[str, float] = {}
    for name, day in days.items():
        if name == baseline:
            continue
        saved = base_cost - day.total_cost
        moves = day.total_migrations
        out[name] = float(saved / moves) if moves > 0 else 0.0
    return out
