"""Migration scheduling policies beyond every-hour mPareto.

The paper's framework runs TOM "periodically"; real operators add
hysteresis.  Two wrappers compose with any VNF-migration step:

* :class:`PeriodicMParetoPolicy` — run Algorithm 5 every ``period``
  hours and stay put in between (cheaper control plane, staler chains);
* :class:`ThresholdMParetoPolicy` — run Algorithm 5 only when staying
  put would cost at least ``(1 + threshold)`` times the fresh TOP
  placement's communication cost (migrate only when meaningfully stale).

Both are exercised by the scheduling ablation benchmark.
"""

from __future__ import annotations

import numpy as np

from repro.core.costs import CostContext
from repro.core.migration import mpareto_migration, no_migration
from repro.core.placement import dp_placement
from repro.errors import MigrationError
from repro.sim.policies import MigrationPolicy, PolicyStep

__all__ = ["PeriodicMParetoPolicy", "ThresholdMParetoPolicy"]


class PeriodicMParetoPolicy(MigrationPolicy):
    """mPareto every ``period`` hours, NoMigration otherwise."""

    name = "mpareto-periodic"

    def __init__(self, topology, mu: float, period: int = 3) -> None:
        super().__init__(topology, mu)
        if period < 1:
            raise MigrationError(f"period must be >= 1, got {period}")
        self.period = period
        self._tick = 0

    def step(self, rates: np.ndarray) -> PolicyStep:
        flows = self.flows.with_rates(rates)
        self._flows = flows
        self._tick += 1
        if self._tick % self.period == 0:
            result = mpareto_migration(self.topology, flows, self.placement, self.mu)
            self._placement = result.migration
            return PolicyStep(
                communication_cost=result.communication_cost,
                migration_cost=result.migration_cost,
                num_migrations=result.num_migrated,
            )
        stay = no_migration(self.topology, flows, self.placement)
        return PolicyStep(
            communication_cost=stay.communication_cost,
            migration_cost=0.0,
            num_migrations=0,
        )


class ThresholdMParetoPolicy(MigrationPolicy):
    """mPareto only when the stale placement is ``threshold`` worse than fresh.

    Each hour the policy prices staying put against a fresh Algorithm 3
    placement; mPareto runs only if
    ``C_a(p) > (1 + threshold) · C_a(p')``.  With ``threshold = 0`` this
    degenerates to every-hour mPareto (minus numerical ties); large
    thresholds approach NoMigration.
    """

    name = "mpareto-threshold"

    def __init__(self, topology, mu: float, threshold: float = 0.1) -> None:
        super().__init__(topology, mu)
        if threshold < 0:
            raise MigrationError(f"threshold must be >= 0, got {threshold}")
        self.threshold = threshold

    def step(self, rates: np.ndarray) -> PolicyStep:
        flows = self.flows.with_rates(rates)
        self._flows = flows
        ctx = CostContext(self.topology, flows)
        stay_cost = ctx.communication_cost(self.placement)
        fresh = dp_placement(self.topology, flows, int(self.placement.size))
        if stay_cost > (1.0 + self.threshold) * fresh.cost:
            result = mpareto_migration(
                self.topology, flows, self.placement, self.mu
            )
            self._placement = result.migration
            return PolicyStep(
                communication_cost=result.communication_cost,
                migration_cost=result.migration_cost,
                num_migrations=result.num_migrated,
            )
        return PolicyStep(
            communication_cost=stay_cost,
            migration_cost=0.0,
            num_migrations=0,
        )
