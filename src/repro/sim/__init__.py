"""Epoch-based dynamic-traffic simulator (the Fig. 11 machinery).

A simulated day follows the paper's Eq. 9 diurnal model: each hour the
traffic-rate vector is rescaled, the configured migration policy reacts
(moving VNFs, moving VMs, or doing nothing), and the hour's communication
and migration costs are accumulated.  The multi-seed runner reproduces
the paper's "average of 20 runs with a 95 % confidence interval".
"""

from repro.sim.engine import DayResult, HourRecord, simulate_day
from repro.sim.policies import (
    MigrationPolicy,
    McfVmPolicy,
    MParetoPolicy,
    NoMigrationPolicy,
    OptimalVnfPolicy,
    PlanVmPolicy,
    TomReplicationPolicy,
)
from repro.sim.runner import RunConfig, run_replications
from repro.sim.schedules import PeriodicMParetoPolicy, ThresholdMParetoPolicy
from repro.sim.metrics import (
    GapAnalysis,
    analyze_gaps,
    hourly_table,
    migration_efficiency,
    replication_summary,
)

__all__ = [
    "simulate_day",
    "DayResult",
    "HourRecord",
    "MigrationPolicy",
    "MParetoPolicy",
    "TomReplicationPolicy",
    "OptimalVnfPolicy",
    "PlanVmPolicy",
    "McfVmPolicy",
    "NoMigrationPolicy",
    "RunConfig",
    "run_replications",
    "PeriodicMParetoPolicy",
    "ThresholdMParetoPolicy",
    "GapAnalysis",
    "analyze_gaps",
    "hourly_table",
    "migration_efficiency",
    "replication_summary",
]
