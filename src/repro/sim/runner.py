"""Multi-seed experiment runner: the paper's "average of 20 runs, 95 % CI".

Every replication draws a fresh workload (VM pair placement, base rates,
cohort split, per-hour rate sequence) from an independent RNG stream,
computes one shared initial TOP placement, then runs *every* policy on
identical inputs — a paired design, so policy differences are never
workload noise.

Replications are independent by construction — each one's task spec
carries everything it needs (topology, traffic model, config, its
replication index) and derives its own random streams from the root seed
— so :func:`run_replications` fans them out across worker processes via
:mod:`repro.runtime.executor` when ``workers > 1``.  Serial and parallel
runs are bit-identical: same seed in, same :class:`ReplicationResult` s
out, regardless of ``workers``.  For parallel runs the policy factories
must be picklable (classes, ``functools.partial`` of classes, or
module-level functions — not lambdas).

Seed derivation (changed in PR 1, shifting figure outputs vs the seed
release): each replication's workload generator and its rate-process seed
are *separate spawned children* of the root
:class:`~numpy.random.SeedSequence` — previously the rate process reused
the ad-hoc ``seed * 100003 + rep``, which also seeded the cohort
assignment, so streams could collide across configurations.  See
:func:`repro.utils.rng.spawn_seed_sequences`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping

import numpy as np

from repro.errors import TaskError, WorkloadError
from repro.runtime.executor import get_executor
from repro.runtime.instrument import count
from repro.runtime.resilience import ResilienceConfig, TaskFailure
from repro.runtime.shm import (
    SharedArtifactRunner,
    export_session_artifacts,
    sharing_enabled,
)
from repro.session import SolverSession
from repro.sim.engine import DayResult, initial_placement, simulate_day
from repro.sim.policies import MigrationPolicy
from repro.topology.base import Topology
from repro.utils.rng import spawn_seed_sequences, spawn_seeds
from repro.utils.stats import ConfidenceInterval, summarize_runs
from repro.utils.timing import Timer
from repro.workload.diurnal import DiurnalModel, assign_cohorts, assign_cohorts_spatial
from repro.workload.dynamics import RateProcess, RedrawnRates, ScaledRates
from repro.workload.flows import FlowSet, place_vm_pairs
from repro.workload.traffic import TrafficModel

__all__ = ["RunConfig", "ReplicationResult", "run_replications"]

PolicyFactory = Callable[[Topology, float], MigrationPolicy]


@dataclass(frozen=True)
class RunConfig:
    """Parameters of a Fig. 11-style dynamic experiment.

    ``dynamics`` selects the hour-to-hour rate process (see
    :mod:`repro.workload.dynamics`): ``"redrawn"`` (default — per-flow
    churn every hour) or ``"scaled"`` (fixed base rates, diurnal scaling
    only).  ``cohorts`` selects the time-zone split: ``"random"`` (the
    literal 50/50 split) or ``"spatial"`` (east-coast flows occupy the
    first half of the racks).

    ``initial_placement`` selects where the day starts: ``"top-hour1"``
    runs Algorithm 3 on the first hour's rates (a warm start), while
    ``"hour0"`` draws an arbitrary distinct placement — the literal
    reading of the paper's framework, where TOP runs at hour 0 and Eq. 9
    gives ``τ_0 = 0``, so *every* placement ties as "initial optimal".
    The ``hour0`` mode is what makes the NoMigration baseline pay for its
    staleness (Fig. 11(c,d)); see EXPERIMENTS.md.
    """

    num_pairs: int
    num_vnfs: int
    mu: float
    intra_rack_fraction: float = 0.8
    diurnal: DiurnalModel = field(default_factory=DiurnalModel)
    cohorts: str = "random"
    cohort_offset_hours: float = 3.0
    dynamics: str = "redrawn"
    churn: float = 1.0
    initial_placement: str = "top-hour1"
    replications: int = 20
    seed: int = 0

    def __post_init__(self) -> None:
        if self.cohorts not in ("random", "spatial"):
            raise WorkloadError(f"unknown cohorts mode {self.cohorts!r}")
        if self.dynamics not in ("redrawn", "scaled"):
            raise WorkloadError(f"unknown dynamics mode {self.dynamics!r}")
        if self.initial_placement not in ("top-hour1", "hour0"):
            raise WorkloadError(
                f"unknown initial_placement mode {self.initial_placement!r}"
            )


@dataclass(frozen=True)
class ReplicationResult:
    """One replication: the shared workload plus every policy's day."""

    flows: FlowSet
    placement: np.ndarray
    days: Mapping[str, DayResult]


def build_rate_process(
    topology: Topology,
    flows: FlowSet,
    traffic_model: TrafficModel,
    config: RunConfig,
    seed: int,
) -> RateProcess:
    """Assemble the configured rate process for one replication.

    ``seed`` is split into independent child seeds for the cohort
    assignment and the rate redraws, so the two streams never correlate.
    """
    cohort_seed, rates_seed = spawn_seeds(seed, 2)
    if config.cohorts == "spatial":
        offsets = assign_cohorts_spatial(
            topology, flows, offset_hours=config.cohort_offset_hours
        )
    else:
        offsets = assign_cohorts(
            flows.num_flows,
            offset_hours=config.cohort_offset_hours,
            seed=cohort_seed,
        )
    if config.dynamics == "scaled":
        return ScaledRates(flows, config.diurnal, offsets)
    return RedrawnRates(
        flows,
        config.diurnal,
        offsets,
        traffic_model,
        seed=rates_seed,
        churn=config.churn,
    )


@dataclass(frozen=True)
class _ReplicationTask:
    """Self-contained, picklable spec of one replication's work."""

    topology: Topology
    traffic_model: TrafficModel
    config: RunConfig
    rep: int
    policies: tuple[tuple[str, PolicyFactory], ...]


def _run_replication(task: _ReplicationTask) -> ReplicationResult:
    """Execute one replication (runs in the parent or a worker process)."""
    config = task.config
    topology = task.topology
    rep_seq = spawn_seed_sequences(config.seed, config.replications)[task.rep]
    workload_seq, process_seq = rep_seq.spawn(2)
    rng = np.random.default_rng(workload_seq)
    count("replications")
    with Timer.timed("replication"):
        flows = place_vm_pairs(
            topology,
            config.num_pairs,
            intra_rack_fraction=config.intra_rack_fraction,
            seed=rng,
        )
        flows = flows.with_rates(
            task.traffic_model.sample(config.num_pairs, rng=rng)
        )
        process = build_rate_process(
            topology,
            flows,
            task.traffic_model,
            config,
            seed=spawn_seeds(process_seq, 1)[0],
        )
        session = SolverSession(topology)
        if config.initial_placement == "hour0":
            # τ_0 = 0: every placement is TOP-optimal at hour zero, so the
            # day starts from an arbitrary one (seeded for reproducibility)
            placement = np.sort(
                rng.choice(topology.switches, size=config.num_vnfs, replace=False)
            )
        else:
            placement = initial_placement(
                topology, flows, config.num_vnfs, process, cache=session.cache
            )
        days: dict[str, DayResult] = {}
        for name, factory in task.policies:
            policy = factory(topology, config.mu)
            days[name] = simulate_day(
                topology, flows, policy, process, placement, session=session
            )
    return ReplicationResult(flows=flows, placement=placement, days=days)


def run_replications(
    topology: Topology,
    traffic_model: TrafficModel,
    config: RunConfig,
    policy_factories: Mapping[str, PolicyFactory],
    workers: int = 1,
    resilience: ResilienceConfig | None = None,
) -> tuple[list[ReplicationResult], dict[str, dict[str, ConfidenceInterval]]]:
    """Run all policies over ``config.replications`` paired workloads.

    ``workers > 1`` fans the replications out across processes (factories
    must then be picklable); results are bit-identical to ``workers=1``.
    ``resilience`` overrides the active execution policy (retries,
    timeouts, checkpoint journal, chaos — see
    :mod:`repro.runtime.resilience`); under its ``skip`` failure policy a
    replication that exhausts its retry budget stays in the returned list
    as its :class:`~repro.runtime.resilience.TaskFailure` record, and the
    confidence intervals summarize the surviving replications only.
    Returns the raw per-replication results and, per policy, confidence
    intervals over total cost, communication cost, migration cost and
    migration count.
    """
    policies = tuple(policy_factories.items())
    tasks = [
        _ReplicationTask(topology, traffic_model, config, rep, policies)
        for rep in range(config.replications)
    ]
    executor = get_executor(workers, resilience)
    fn = _run_replication
    export = None
    if executor.workers > 1 and sharing_enabled():
        # compute the per-topology artifacts once and hand workers
        # read-only shared-memory views instead of having each worker
        # re-derive them; tasks (and thus journal fingerprints) are
        # untouched, so resume stays bit-identical
        try:
            export = export_session_artifacts(
                topology, chain_sizes=(config.num_vnfs,)
            )
            fn = SharedArtifactRunner(_run_replication, export.shared)
        except Exception:
            export = None
            fn = _run_replication
    try:
        results = executor.map(fn, tasks)
    finally:
        if export is not None:
            export.close()
    completed = [rep for rep in results if not isinstance(rep, TaskFailure)]
    if not completed:
        raise TaskError(
            f"all {config.replications} replications failed; "
            "nothing to summarize (see the recorded failures)"
        )

    summaries: dict[str, dict[str, ConfidenceInterval]] = {}
    for name in policy_factories:
        runs = [
            {
                "total_cost": rep.days[name].total_cost,
                "communication_cost": rep.days[name].total_communication_cost,
                "migration_cost": rep.days[name].total_migration_cost,
                "migrations": float(rep.days[name].total_migrations),
            }
            for rep in completed
        ]
        summaries[name] = summarize_runs(runs)
    return results, summaries
