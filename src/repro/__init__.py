"""repro — traffic-optimal VNF placement and migration in dynamic PPDCs.

A from-scratch reproduction of Tran, Sun, Tang & Pan, *"Traffic-Optimal
Virtual Network Function Placement and Migration in Dynamic Cloud Data
Centers"* (IPDPS 2022): the policy-preserving data-center model, the TOP /
TOM algorithm suite (DP-Stroll, DP placement, primal-dual approximation,
mPareto migration, exact solvers), all published baselines (Steering,
Greedy, PLAN, MCF), and a benchmark harness regenerating every figure of
the paper's evaluation section.

Quick start::

    from repro import fat_tree, place_vm_pairs, FacebookTrafficModel
    from repro import dp_placement, sfc_of_size

    topo = fat_tree(k=4)
    flows = place_vm_pairs(topo, num_pairs=20, seed=1)
    flows = flows.with_rates(FacebookTrafficModel().sample(20, rng=1))
    result = dp_placement(topo, flows, sfc_of_size(3))
    print(result.placement, result.cost)
"""

from repro.errors import (
    BudgetExceededError,
    GraphError,
    InfeasibleError,
    MigrationError,
    PlacementError,
    ReproError,
    SolverError,
    TopologyError,
    WorkloadError,
)
from repro.graphs import CostGraph, GraphBuilder
from repro.topology import (
    Topology,
    bcube,
    dcell,
    fat_tree,
    jellyfish,
    leaf_spine,
    linear_ppdc,
    vl2,
    apply_uniform_delays,
)
from repro.workload import (
    SFC,
    DiurnalModel,
    FacebookTrafficModel,
    FlowSet,
    UniformTrafficModel,
    access_sfc,
    application_sfc,
    assign_cohorts,
    assign_cohorts_spatial,
    full_sfc,
    place_vm_pairs,
    sfc_of_size,
)

__version__ = "1.0.0"

__all__ = [
    # errors
    "ReproError",
    "GraphError",
    "TopologyError",
    "WorkloadError",
    "PlacementError",
    "MigrationError",
    "InfeasibleError",
    "BudgetExceededError",
    "SolverError",
    # graphs
    "CostGraph",
    "GraphBuilder",
    # topology
    "Topology",
    "fat_tree",
    "linear_ppdc",
    "leaf_spine",
    "vl2",
    "bcube",
    "dcell",
    "jellyfish",
    "apply_uniform_delays",
    # workload
    "FlowSet",
    "place_vm_pairs",
    "SFC",
    "access_sfc",
    "application_sfc",
    "full_sfc",
    "sfc_of_size",
    "FacebookTrafficModel",
    "UniformTrafficModel",
    "DiurnalModel",
    "assign_cohorts",
    "assign_cohorts_spatial",
    "__version__",
]
