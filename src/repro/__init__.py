"""repro — traffic-optimal VNF placement and migration in dynamic PPDCs.

A from-scratch reproduction of Tran, Sun, Tang & Pan, *"Traffic-Optimal
Virtual Network Function Placement and Migration in Dynamic Cloud Data
Centers"* (IPDPS 2022): the policy-preserving data-center model, the TOP /
TOM algorithm suite (DP-Stroll, DP placement, primal-dual approximation,
mPareto migration, exact solvers), all published baselines (Steering,
Greedy, PLAN, MCF), and a benchmark harness regenerating every figure of
the paper's evaluation section.

Quick start — one topology, many queries, via a solver session::

    from repro import SolverSession, fat_tree, place_vm_pairs
    from repro import FacebookTrafficModel, sfc_of_size

    topo = fat_tree(k=4)
    session = SolverSession(topo)          # APSP etc. computed once
    flows = place_vm_pairs(topo, num_pairs=20, seed=1)
    flows = flows.with_rates(FacebookTrafficModel().sample(20, rng=1))
    result = session.place(flows, sfc_of_size(3))        # Algorithm 3
    print(result.placement, result.cost, result.meta)
    shifted = flows.with_rates(FacebookTrafficModel().sample(20, rng=2))
    moved = session.migrate(result.placement, shifted, mu=1e4)  # Algorithm 5
    print(moved.placement, moved.cost)

Every solver is also callable directly (``dp_placement(topo, flows,
sfc)`` …) with the keyword-only convention ``(topology, flows, sfc, *,
seed=..., cache=..., budget=...)``; a session just amortizes the
per-topology precomputation across calls.  All results share the
``cost`` / ``placement`` / ``meta`` / ``to_dict()`` surface.

Constrained queries thread one typed :class:`~repro.constraints.
Constraints` object through the same entry points::

    from repro import Constraints
    capped = session.place(
        flows, sfc_of_size(3),
        constraints=Constraints(vnf_capacity=1, max_delay=12.0),
    )          # solved by the MSG stage-graph family; a diagnosed
               # InfeasibleError means no placement satisfies the bounds

``Constraints.none()`` (or ``constraints=None``) is bit-identical to the
unconstrained path.
"""

from repro.baselines.greedy_liu import greedy_liu_placement
from repro.constraints import Constraints, active_constraints, chain_delay
from repro.baselines.mcf_migration import mcf_vm_migration
from repro.baselines.plan import plan_vm_migration
from repro.baselines.random_placement import random_placement, random_placement_quantiles
from repro.baselines.steering import steering_placement
from repro.core.migration import FrontierTrace, mpareto_migration, no_migration
from repro.core.optimal import optimal_migration, optimal_placement
from repro.core.placement import dp_placement, dp_placement_top1
from repro.core.primal_dual import primal_dual_placement_top1
from repro.core.types import MigrationResult, PlacementResult
from repro.errors import (
    BudgetExceededError,
    ConstraintError,
    FaultError,
    GraphError,
    InfeasibleError,
    MigrationError,
    PlacementError,
    ReproError,
    SolverError,
    TopologyError,
    WorkloadError,
)
from repro.faults import (
    ConnectivityAudit,
    FaultConfig,
    FaultEvent,
    FaultProcess,
    FaultState,
    RepairPlan,
    degrade,
    evacuate,
)
from repro.graphs import CostGraph, GraphBuilder
from repro.session import SolverSession
from repro.solvers import (
    ContentionResult,
    msg_greedy_migration,
    msg_greedy_placement,
    msg_migration,
    msg_placement,
    place_chains,
)
from repro.topology import (
    Topology,
    bcube,
    dcell,
    fat_tree,
    jellyfish,
    leaf_spine,
    linear_ppdc,
    vl2,
    apply_uniform_delays,
)
from repro.workload import (
    SFC,
    DiurnalModel,
    FacebookTrafficModel,
    FlowSet,
    UniformTrafficModel,
    access_sfc,
    application_sfc,
    assign_cohorts,
    assign_cohorts_spatial,
    full_sfc,
    place_vm_pairs,
    sfc_of_size,
)

__version__ = "1.0.0"

__all__ = [
    # errors
    "ReproError",
    "GraphError",
    "TopologyError",
    "WorkloadError",
    "PlacementError",
    "MigrationError",
    "FaultError",
    "InfeasibleError",
    "BudgetExceededError",
    "SolverError",
    "ConstraintError",
    # constraints
    "Constraints",
    "chain_delay",
    "active_constraints",
    # faults
    "FaultConfig",
    "FaultEvent",
    "FaultState",
    "FaultProcess",
    "ConnectivityAudit",
    "degrade",
    "RepairPlan",
    "evacuate",
    # graphs
    "CostGraph",
    "GraphBuilder",
    # solver facade
    "SolverSession",
    "PlacementResult",
    "MigrationResult",
    "FrontierTrace",
    "dp_placement",
    "dp_placement_top1",
    "primal_dual_placement_top1",
    "optimal_placement",
    "optimal_migration",
    "mpareto_migration",
    "no_migration",
    "steering_placement",
    "greedy_liu_placement",
    "random_placement",
    "random_placement_quantiles",
    "plan_vm_migration",
    "mcf_vm_migration",
    # constrained family
    "msg_placement",
    "msg_greedy_placement",
    "msg_migration",
    "msg_greedy_migration",
    "place_chains",
    "ContentionResult",
    # topology
    "Topology",
    "fat_tree",
    "linear_ppdc",
    "leaf_spine",
    "vl2",
    "bcube",
    "dcell",
    "jellyfish",
    "apply_uniform_delays",
    # workload
    "FlowSet",
    "place_vm_pairs",
    "SFC",
    "access_sfc",
    "application_sfc",
    "full_sfc",
    "sfc_of_size",
    "FacebookTrafficModel",
    "UniformTrafficModel",
    "DiurnalModel",
    "assign_cohorts",
    "assign_cohorts_spatial",
    "__version__",
]
