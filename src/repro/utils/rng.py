"""Deterministic random-number management.

Every stochastic component in the library takes a
:class:`numpy.random.Generator` explicitly — there is no module-level RNG
state.  Experiments that need several independent streams (e.g. one per
repetition of a 20-run sweep) derive them from a single root seed with
:func:`spawn_rngs`, which uses :class:`numpy.random.SeedSequence` spawning
so streams are statistically independent and reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["RngStream", "spawn_rngs", "as_generator"]


def as_generator(seed: int | np.random.Generator | None) -> np.random.Generator:
    """Coerce ``seed`` into a :class:`numpy.random.Generator`.

    ``None`` produces a non-deterministic generator; an ``int`` produces a
    seeded one; a generator is passed through unchanged.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_rngs(seed: int, count: int) -> list[np.random.Generator]:
    """Derive ``count`` independent generators from a single root ``seed``."""
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    root = np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in root.spawn(count)]


@dataclass
class RngStream:
    """A named, restartable RNG stream.

    The stream remembers its root seed so :meth:`restart` reproduces the
    exact sequence — convenient for paired comparisons where every
    algorithm must see the same random workload.
    """

    seed: int
    name: str = "stream"
    _rng: np.random.Generator = field(init=False, repr=False)

    def __post_init__(self) -> None:
        self.restart()

    def restart(self) -> None:
        """Reset the stream to its initial state."""
        self._rng = np.random.default_rng(
            np.random.SeedSequence(self.seed, spawn_key=(hash(self.name) % (2**32),))
        )

    @property
    def rng(self) -> np.random.Generator:
        return self._rng

    def fork(self, name: str) -> "RngStream":
        """Create an independent child stream identified by ``name``."""
        return RngStream(seed=self.seed, name=f"{self.name}/{name}")
