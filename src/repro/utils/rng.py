"""Deterministic random-number management.

Every stochastic component in the library takes a
:class:`numpy.random.Generator` explicitly — there is no module-level RNG
state.  Experiments that need several independent streams (e.g. one per
repetition of a 20-run sweep) derive them from a single root seed with
:func:`spawn_rngs`, which uses :class:`numpy.random.SeedSequence` spawning
so streams are statistically independent and reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = [
    "RngStream",
    "spawn_rngs",
    "spawn_seed_sequences",
    "spawn_seeds",
    "as_generator",
]


def as_generator(seed: int | np.random.Generator | None) -> np.random.Generator:
    """Coerce ``seed`` into a :class:`numpy.random.Generator`.

    ``None`` produces a non-deterministic generator; an ``int`` produces a
    seeded one; a generator is passed through unchanged.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_seed_sequences(
    seed: int | np.random.SeedSequence, count: int
) -> list[np.random.SeedSequence]:
    """``count`` independent child :class:`~numpy.random.SeedSequence` s.

    Children are derived by :meth:`SeedSequence.spawn`, so they are
    statistically independent of each other *and* of any generator seeded
    from the root itself.  Pass a child back in to derive grandchildren —
    this is how the replication runner splits one root seed into
    per-replication, per-purpose streams that cannot collide or correlate
    (one child per (replication, purpose), never the same child twice).
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    root = seed if isinstance(seed, np.random.SeedSequence) else np.random.SeedSequence(seed)
    return root.spawn(count)


def spawn_seeds(seed: int | np.random.SeedSequence, count: int) -> list[int]:
    """``count`` independent *integer* child seeds from a root seed.

    For components that take a plain ``int`` seed (e.g. the rate
    processes): each child sequence is collapsed to one 64-bit integer of
    its generated state, preserving spawn independence.
    """
    return [
        int(child.generate_state(1, np.uint64)[0])
        for child in spawn_seed_sequences(seed, count)
    ]


def spawn_rngs(
    seed: int | np.random.SeedSequence, count: int
) -> list[np.random.Generator]:
    """Derive ``count`` independent generators from a single root ``seed``."""
    return [
        np.random.default_rng(child) for child in spawn_seed_sequences(seed, count)
    ]


@dataclass
class RngStream:
    """A named, restartable RNG stream.

    The stream remembers its root seed so :meth:`restart` reproduces the
    exact sequence — convenient for paired comparisons where every
    algorithm must see the same random workload.
    """

    seed: int
    name: str = "stream"
    _rng: np.random.Generator = field(init=False, repr=False)

    def __post_init__(self) -> None:
        self.restart()

    def restart(self) -> None:
        """Reset the stream to its initial state."""
        self._rng = np.random.default_rng(
            np.random.SeedSequence(self.seed, spawn_key=(hash(self.name) % (2**32),))
        )

    @property
    def rng(self) -> np.random.Generator:
        return self._rng

    def fork(self, name: str) -> "RngStream":
        """Create an independent child stream identified by ``name``."""
        return RngStream(seed=self.seed, name=f"{self.name}/{name}")
