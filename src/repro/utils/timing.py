"""Wall-clock timers used by the experiment harness and the runtime layer.

Besides the plain context-manager :class:`Timer`, a process-global registry
of *named* timers backs the instrumentation module: ``Timer.timed("dp")``
returns the shared timer registered under ``"dp"`` (creating it on first
use), so hot paths can time themselves with one line and the report can
enumerate every phase afterwards via :func:`named_timers`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.errors import ReproError

__all__ = ["Timer", "named_timers", "reset_named_timers"]


@dataclass
class Timer:
    """Context-manager stopwatch accumulating elapsed wall-clock seconds.

    A single instance can be re-entered; :attr:`total` accumulates across
    uses and :attr:`laps` records each individual duration.  Nested entry
    of the *same* instance (e.g. an executor task that itself runs an
    executor) is re-entrant: only the outermost enter/exit pair records a
    lap, so nested spans are never double-counted.
    """

    total: float = 0.0
    laps: list[float] = field(default_factory=list)
    _start: float | None = field(default=None, repr=False)
    _depth: int = field(default=0, repr=False)

    def __enter__(self) -> "Timer":
        if self._depth == 0:
            self._start = time.perf_counter()
        self._depth += 1
        return self

    def __exit__(self, *exc_info: object) -> None:
        if self._depth == 0 or self._start is None:
            raise ReproError("Timer exited without entering")
        self._depth -= 1
        if self._depth:
            return
        lap = time.perf_counter() - self._start
        self._start = None
        self.laps.append(lap)
        self.total += lap

    @property
    def last(self) -> float:
        """Duration of the most recent lap (0.0 before any lap)."""
        return self.laps[-1] if self.laps else 0.0

    @classmethod
    def timed(cls, name: str) -> "Timer":
        """The process-global named timer ``name`` (created on first use).

        Usage::

            with Timer.timed("dp_placement"):
                ...  # accumulated under one shared timer
        """
        timer = _NAMED.get(name)
        if timer is None:
            timer = _NAMED[name] = cls()
        return timer


#: process-global registry behind :meth:`Timer.timed`
_NAMED: dict[str, Timer] = {}


def named_timers() -> dict[str, Timer]:
    """Snapshot of the named-timer registry (name -> shared Timer)."""
    return dict(_NAMED)


def reset_named_timers() -> None:
    """Drop every named timer (used between instrumented runs)."""
    _NAMED.clear()
