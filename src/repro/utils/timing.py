"""A minimal wall-clock timer used by the experiment harness."""

from __future__ import annotations

import time
from dataclasses import dataclass, field

__all__ = ["Timer"]


@dataclass
class Timer:
    """Context-manager stopwatch accumulating elapsed wall-clock seconds.

    A single instance can be re-entered; :attr:`total` accumulates across
    uses and :attr:`laps` records each individual duration.
    """

    total: float = 0.0
    laps: list[float] = field(default_factory=list)
    _start: float | None = field(default=None, repr=False)

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        assert self._start is not None, "Timer exited without entering"
        lap = time.perf_counter() - self._start
        self._start = None
        self.laps.append(lap)
        self.total += lap

    @property
    def last(self) -> float:
        """Duration of the most recent lap (0.0 before any lap)."""
        return self.laps[-1] if self.laps else 0.0
