"""Terminal plotting: unicode sparklines and simple multi-series charts.

The experiment harness is terminal-first; these helpers render a figure's
series as block-character plots so ``repro run <fig> --plot`` gives a
visual impression without any plotting dependency.
"""

from __future__ import annotations

import math
from typing import Mapping, Sequence

import numpy as np

__all__ = ["sparkline", "series_chart"]

_BLOCKS = "▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float]) -> str:
    """One-line block-character sketch of a numeric series.

    Non-finite entries render as spaces; a constant series renders at
    mid-height.
    """
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        return ""
    finite = arr[np.isfinite(arr)]
    if finite.size == 0:
        return " " * arr.size
    lo, hi = float(finite.min()), float(finite.max())
    span = hi - lo
    chars = []
    for value in arr:
        if not math.isfinite(value):
            chars.append(" ")
        elif span <= 0:
            chars.append(_BLOCKS[len(_BLOCKS) // 2])
        else:
            idx = int(round((value - lo) / span * (len(_BLOCKS) - 1)))
            chars.append(_BLOCKS[idx])
    return "".join(chars)


def series_chart(
    series: Mapping[str, Sequence[float]],
    x_labels: Sequence | None = None,
    width: int | None = None,
) -> str:
    """Multi-series sparkline chart with aligned labels and min/max legends.

    Example output::

        dp        ▁▂▄▆█  [1.2e+05 .. 9.8e+05]
        steering  ▂▃▅▇█  [2.0e+05 .. 1.9e+06]
        x: 3 .. 13
    """
    if not series:
        return "(no series)"
    label_width = max(len(name) for name in series)
    lines = []
    for name, values in series.items():
        arr = np.asarray(list(values), dtype=float)
        spark = sparkline(arr)
        finite = arr[np.isfinite(arr)]
        if finite.size:
            legend = f"[{finite.min():.3g} .. {finite.max():.3g}]"
        else:
            legend = "[empty]"
        lines.append(f"{name:<{label_width}}  {spark}  {legend}")
    if x_labels is not None and len(x_labels) > 0:
        lines.append(f"{'x':<{label_width}}  {x_labels[0]} .. {x_labels[-1]}")
    return "\n".join(lines)
