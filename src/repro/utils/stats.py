"""Statistics helpers for experiment reporting.

The paper reports every data point as "an average of 20 runs with a 95%
confidence interval"; :func:`mean_ci` computes exactly that (Student-t
interval), and :func:`summarize_runs` aggregates a list of per-run metric
dictionaries into per-metric intervals.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

import numpy as np
from scipy import stats as _scipy_stats

__all__ = ["ConfidenceInterval", "mean_ci", "summarize_runs"]


@dataclass(frozen=True)
class ConfidenceInterval:
    """A sample mean with a symmetric confidence half-width."""

    mean: float
    halfwidth: float
    n: int
    confidence: float = 0.95

    @property
    def low(self) -> float:
        return self.mean - self.halfwidth

    @property
    def high(self) -> float:
        return self.mean + self.halfwidth

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.mean:.4g} ± {self.halfwidth:.2g}"


def mean_ci(samples: Sequence[float] | np.ndarray, confidence: float = 0.95) -> ConfidenceInterval:
    """Student-t confidence interval of the mean of ``samples``.

    A single sample yields a zero half-width (there is no spread to
    estimate), matching the common convention in benchmark harnesses.
    """
    arr = np.asarray(samples, dtype=float)
    if arr.ndim != 1:
        raise ValueError(f"samples must be 1-D, got shape {arr.shape}")
    if arr.size == 0:
        raise ValueError("samples must be non-empty")
    n = int(arr.size)
    mean = float(arr.mean())
    if n == 1:
        return ConfidenceInterval(mean=mean, halfwidth=0.0, n=1, confidence=confidence)
    sem = float(arr.std(ddof=1) / np.sqrt(n))
    tval = float(_scipy_stats.t.ppf(0.5 + confidence / 2.0, df=n - 1))
    return ConfidenceInterval(mean=mean, halfwidth=tval * sem, n=n, confidence=confidence)


def summarize_runs(
    runs: Iterable[Mapping[str, float]], confidence: float = 0.95
) -> dict[str, ConfidenceInterval]:
    """Aggregate per-run metric dicts into per-metric confidence intervals.

    All runs must expose the same metric keys; this catches harness bugs
    where one algorithm silently skipped a metric.
    """
    runs = list(runs)
    if not runs:
        raise ValueError("runs must be non-empty")
    keys = set(runs[0])
    for i, run in enumerate(runs[1:], start=1):
        if set(run) != keys:
            raise ValueError(
                f"run {i} metrics {sorted(run)} differ from run 0 metrics {sorted(keys)}"
            )
    return {
        key: mean_ci([float(run[key]) for run in runs], confidence=confidence)
        for key in sorted(keys)
    }
