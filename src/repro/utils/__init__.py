"""Shared utilities: seeded RNG streams, statistics, tables and timing."""

from repro.utils.rng import RngStream, spawn_rngs, spawn_seed_sequences, spawn_seeds
from repro.utils.stats import ConfidenceInterval, mean_ci, summarize_runs
from repro.utils.tables import ascii_table, format_float
from repro.utils.timing import Timer, named_timers, reset_named_timers
from repro.utils.plotting import series_chart, sparkline
from repro.utils.results_io import read_rows_csv, write_result_files, write_rows_csv

__all__ = [
    "RngStream",
    "spawn_rngs",
    "spawn_seed_sequences",
    "spawn_seeds",
    "ConfidenceInterval",
    "mean_ci",
    "summarize_runs",
    "ascii_table",
    "format_float",
    "Timer",
    "named_timers",
    "reset_named_timers",
    "sparkline",
    "series_chart",
    "write_rows_csv",
    "read_rows_csv",
    "write_result_files",
]
