"""Shared utilities: seeded RNG streams, statistics, tables and timing."""

from repro.utils.rng import RngStream, spawn_rngs
from repro.utils.stats import ConfidenceInterval, mean_ci, summarize_runs
from repro.utils.tables import ascii_table, format_float
from repro.utils.timing import Timer
from repro.utils.plotting import series_chart, sparkline
from repro.utils.results_io import read_rows_csv, write_result_files, write_rows_csv

__all__ = [
    "RngStream",
    "spawn_rngs",
    "ConfidenceInterval",
    "mean_ci",
    "summarize_runs",
    "ascii_table",
    "format_float",
    "Timer",
    "sparkline",
    "series_chart",
    "write_rows_csv",
    "read_rows_csv",
    "write_result_files",
]
