"""Plain-text table rendering for experiment output.

The benchmark harness prints each reproduced figure as an ASCII table —
one row per x-axis point, one column per algorithm series — so results are
readable in a terminal and diffable in CI.
"""

from __future__ import annotations

from typing import Any, Mapping, Sequence

__all__ = ["ascii_table", "format_float", "rows_to_table"]


def format_float(value: Any, precision: int = 4) -> str:
    """Render a cell: floats compactly, ``None`` as a dash, rest via str."""
    if value is None:
        return "-"
    if isinstance(value, float):
        if value != value:  # NaN
            return "nan"
        if abs(value) >= 1e6 or (0 < abs(value) < 1e-3):
            return f"{value:.{precision}g}"
        return f"{value:,.{precision}g}"
    return str(value)


def ascii_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
    title: str | None = None,
    precision: int = 4,
) -> str:
    """Render ``rows`` under ``headers`` as a boxed ASCII table."""
    rendered = [[format_float(cell, precision) for cell in row] for row in rows]
    for i, row in enumerate(rendered):
        if len(row) != len(headers):
            raise ValueError(
                f"row {i} has {len(row)} cells but there are {len(headers)} headers"
            )
    widths = [len(h) for h in headers]
    for row in rendered:
        for col, cell in enumerate(row):
            widths[col] = max(widths[col], len(cell))

    def fmt_row(cells: Sequence[str]) -> str:
        return "| " + " | ".join(c.rjust(w) for c, w in zip(cells, widths)) + " |"

    sep = "+" + "+".join("-" * (w + 2) for w in widths) + "+"
    lines = []
    if title:
        lines.append(title)
    lines.append(sep)
    lines.append(fmt_row(list(headers)))
    lines.append(sep)
    lines.extend(fmt_row(row) for row in rendered)
    lines.append(sep)
    return "\n".join(lines)


def rows_to_table(
    rows: Sequence[Mapping[str, Any]],
    columns: Sequence[str] | None = None,
    title: str | None = None,
    precision: int = 4,
) -> str:
    """Render a list of dict rows; columns default to first row's keys."""
    if not rows:
        return title or "(empty)"
    cols = list(columns) if columns is not None else list(rows[0].keys())
    body = [[row.get(col) for col in cols] for row in rows]
    return ascii_table(cols, body, title=title, precision=precision)
