"""CSV / JSON persistence for experiment results.

The CLI writes JSON; downstream analysis (pandas, spreadsheets, plotting
outside this repo) usually wants CSV.  These helpers are deliberately
dependency-free (the csv stdlib module) and round-trip the row structure
of :class:`~repro.experiments.common.ExperimentResult`.
"""

from __future__ import annotations

import csv
import json
import os
import tempfile
from pathlib import Path
from typing import Any, Sequence

from repro.errors import ReproError

__all__ = [
    "write_rows_csv",
    "read_rows_csv",
    "write_result_files",
    "write_text_atomic",
]


def _fsync_directory(directory: Path) -> None:
    """Flush a directory's entry table to disk (best-effort on odd FSes).

    Filesystems that reject ``fsync`` on a directory descriptor (some
    network and FUSE mounts) degrade to process-crash durability rather
    than failing the write — the rename itself already happened.
    """
    try:
        descriptor = os.open(directory, os.O_RDONLY | getattr(os, "O_DIRECTORY", 0))
    except OSError:
        return
    try:
        os.fsync(descriptor)
    except OSError:
        pass
    finally:
        os.close(descriptor)


def write_text_atomic(path: Path | str, text: str) -> Path:
    """Write ``text`` to ``path`` atomically *and durably*.

    The content lands in a temporary file in the destination directory
    (same filesystem, so the final :func:`os.replace` is atomic), is
    flushed and fsynced, then renamed over the target — a reader, or a
    crash mid-write, can therefore never observe a truncated file, only
    the old content or the new.  The containing directory is fsynced
    before the replace (so the temp file's data cannot outrun its entry)
    and again after it (so the rename itself survives a *host* crash, not
    just a process crash — a shard checkpoint that claimed durability must
    still exist after power loss).  Parent directories are created.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    descriptor, tmp_name = tempfile.mkstemp(
        dir=path.parent, prefix=f".{path.name}.", suffix=".tmp"
    )
    try:
        with os.fdopen(descriptor, "w") as handle:
            handle.write(text)
            handle.flush()
            os.fsync(handle.fileno())
        _fsync_directory(path.parent)
        os.replace(tmp_name, path)
        _fsync_directory(path.parent)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    return path


def write_rows_csv(path: Path | str, rows: Sequence[dict]) -> None:
    """Write dict rows as CSV; the header is the union of keys, in first-seen order."""
    if not rows:
        raise ReproError("cannot write an empty row set")
    path = Path(path)
    columns: list[str] = []
    for row in rows:
        for key in row:
            if key not in columns:
                columns.append(key)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=columns)
        writer.writeheader()
        for row in rows:
            writer.writerow({key: _render(row.get(key)) for key in columns})


def _render(value: Any) -> Any:
    if value is None:
        return ""
    if isinstance(value, bool):
        return str(value)
    return value


def _parse(text: str) -> Any:
    if text == "":
        return None
    if text == "True":
        return True
    if text == "False":
        return False
    try:
        as_int = int(text)
        return as_int
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        return text


def read_rows_csv(path: Path | str) -> list[dict]:
    """Read back rows written by :func:`write_rows_csv` (typed best-effort)."""
    path = Path(path)
    if not path.exists():
        raise ReproError(f"no such CSV file: {path}")
    with path.open(newline="") as handle:
        reader = csv.DictReader(handle)
        return [
            {key: _parse(value) for key, value in row.items()} for row in reader
        ]


def write_result_files(result, directory: Path | str) -> dict[str, Path]:
    """Persist an ExperimentResult as ``<name>.csv`` + ``<name>.json``.

    Returns the written paths keyed by format.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    csv_path = directory / f"{result.experiment}.csv"
    json_path = directory / f"{result.experiment}.json"
    write_rows_csv(csv_path, result.rows)
    write_text_atomic(json_path, result.to_json())
    return {"csv": csv_path, "json": json_path}
