"""Min-cost-flow substrate.

A self-contained successive-shortest-path solver with Johnson potentials,
used by the MCF VM-migration baseline (Flores et al. [24] model the joint
communication + migration cost minimization as a minimum cost flow
problem).  Validated against :func:`networkx.min_cost_flow` in the tests.
"""

from repro.flow.maxflow import max_flow_min_cut
from repro.flow.mincostflow import Arc, FlowResult, min_cost_flow, solve_transportation

__all__ = [
    "Arc",
    "FlowResult",
    "min_cost_flow",
    "solve_transportation",
    "max_flow_min_cut",
]
