"""Minimum-cost flow via successive shortest paths with potentials.

The classic SSP algorithm (Ahuja, Magnanti & Orlin [5], ch. 9): repeatedly
send flow along a cheapest residual path from an excess node to a deficit
node.  Node *potentials* keep reduced costs non-negative so each iteration
is a plain Dijkstra; an initial Bellman–Ford pass handles negative arc
costs.  Capacities, supplies and flows are integers (all of the library's
uses are unit-demand assignments); costs are floats.

This is a substrate module — the public entry points are
:func:`min_cost_flow` (general supplies/demands) and
:func:`solve_transportation` (the bipartite assignment shape the MCF
VM-migration baseline needs).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

import numpy as np

from repro.errors import InfeasibleError, SolverError

__all__ = ["Arc", "FlowResult", "min_cost_flow", "solve_transportation"]


@dataclass(frozen=True)
class Arc:
    """A directed arc with integer capacity and float unit cost."""

    tail: int
    head: int
    capacity: int
    cost: float

    def __post_init__(self) -> None:
        if self.capacity < 0:
            raise SolverError(f"arc capacity must be non-negative, got {self.capacity}")
        if not np.isfinite(self.cost):
            raise SolverError(f"arc cost must be finite, got {self.cost}")


@dataclass(frozen=True)
class FlowResult:
    """Solved flow: per-arc flow values (aligned with the input arcs) and cost."""

    flows: np.ndarray
    total_cost: float

    def flow_on(self, arc_index: int) -> int:
        return int(self.flows[arc_index])


class _Residual:
    """Forward-star residual network; arc ``2i`` is forward, ``2i+1`` backward."""

    def __init__(self, num_nodes: int, arcs: list[Arc]) -> None:
        self.num_nodes = num_nodes
        count = 2 * len(arcs)
        self.to = np.empty(count, dtype=np.int64)
        self.cap = np.empty(count, dtype=np.int64)
        self.cost = np.empty(count, dtype=np.float64)
        self.adj: list[list[int]] = [[] for _ in range(num_nodes)]
        for i, arc in enumerate(arcs):
            if not (0 <= arc.tail < num_nodes and 0 <= arc.head < num_nodes):
                raise SolverError(f"arc {arc} references unknown node")
            fwd, bwd = 2 * i, 2 * i + 1
            self.to[fwd], self.cap[fwd], self.cost[fwd] = arc.head, arc.capacity, arc.cost
            self.to[bwd], self.cap[bwd], self.cost[bwd] = arc.tail, 0, -arc.cost
            self.adj[arc.tail].append(fwd)
            self.adj[arc.head].append(bwd)

    def push(self, edge: int, amount: int) -> None:
        self.cap[edge] -= amount
        self.cap[edge ^ 1] += amount


def _bellman_ford_potentials(res: _Residual, sources: list[int]) -> np.ndarray:
    """Initial potentials: shortest distances over arcs with residual capacity."""
    dist = np.full(res.num_nodes, np.inf)
    for s in sources:
        dist[s] = 0.0
    for _ in range(res.num_nodes):
        changed = False
        for u in range(res.num_nodes):
            if not np.isfinite(dist[u]):
                continue
            for edge in res.adj[u]:
                if res.cap[edge] > 0 and dist[u] + res.cost[edge] < dist[res.to[edge]] - 1e-12:
                    dist[res.to[edge]] = dist[u] + res.cost[edge]
                    changed = True
        if not changed:
            break
    else:  # pragma: no cover - guarded by positive costs in library use
        raise SolverError("negative cycle detected in min-cost-flow input")
    return np.where(np.isfinite(dist), dist, 0.0)


def _dijkstra_residual(
    res: _Residual, potentials: np.ndarray, source: int
) -> tuple[np.ndarray, np.ndarray]:
    """Dijkstra on reduced costs; returns (distances, incoming edge per node)."""
    dist = np.full(res.num_nodes, np.inf)
    pred_edge = np.full(res.num_nodes, -1, dtype=np.int64)
    dist[source] = 0.0
    heap = [(0.0, source)]
    visited = np.zeros(res.num_nodes, dtype=bool)
    while heap:
        d, u = heapq.heappop(heap)
        if visited[u]:
            continue
        visited[u] = True
        for edge in res.adj[u]:
            if res.cap[edge] <= 0:
                continue
            v = int(res.to[edge])
            reduced = res.cost[edge] + potentials[u] - potentials[v]
            if reduced < -1e-9:
                raise SolverError(
                    f"negative reduced cost {reduced} — potentials are inconsistent"
                )
            nd = d + max(reduced, 0.0)
            if nd < dist[v] - 1e-15:
                dist[v] = nd
                pred_edge[v] = edge
                heapq.heappush(heap, (nd, v))
    return dist, pred_edge


def min_cost_flow(
    num_nodes: int, arcs: list[Arc], supplies: np.ndarray | list[int]
) -> FlowResult:
    """Solve min-cost flow with node ``supplies`` (positive = source).

    Supplies must sum to zero.  Raises :class:`InfeasibleError` when the
    network cannot route all supply.
    """
    supply = np.asarray(supplies, dtype=np.int64)
    if supply.shape != (num_nodes,):
        raise SolverError(
            f"supplies shape {supply.shape} does not match num_nodes={num_nodes}"
        )
    if supply.sum() != 0:
        raise InfeasibleError(f"supplies must balance to zero, got sum {supply.sum()}")

    # super source/sink turn the problem into a single max-flow-shaped run
    s_node, t_node = num_nodes, num_nodes + 1
    all_arcs = list(arcs)
    base_count = len(arcs)
    for v in range(num_nodes):
        if supply[v] > 0:
            all_arcs.append(Arc(s_node, v, int(supply[v]), 0.0))
        elif supply[v] < 0:
            all_arcs.append(Arc(v, t_node, int(-supply[v]), 0.0))
    required = int(supply[supply > 0].sum())

    res = _Residual(num_nodes + 2, all_arcs)
    potentials = _bellman_ford_potentials(res, [s_node])

    sent = 0
    while sent < required:
        dist, pred_edge = _dijkstra_residual(res, potentials, s_node)
        if not np.isfinite(dist[t_node]):
            raise InfeasibleError(
                f"min-cost flow can route only {sent} of {required} units"
            )
        # walk back to find the bottleneck
        bottleneck = required - sent
        node = t_node
        while node != s_node:
            edge = int(pred_edge[node])
            bottleneck = min(bottleneck, int(res.cap[edge]))
            node = int(res.to[edge ^ 1])
        node = t_node
        while node != s_node:
            edge = int(pred_edge[node])
            res.push(edge, bottleneck)
            node = int(res.to[edge ^ 1])
        sent += bottleneck
        finite = np.isfinite(dist)
        potentials[finite] += dist[finite]

    # flow on original arc i = capacity accumulated on its backward edge
    flows = np.asarray(
        [int(res.cap[2 * i + 1]) for i in range(base_count)], dtype=np.int64
    )
    total = float(sum(arc.cost * flows[i] for i, arc in enumerate(arcs)))
    return FlowResult(flows=flows, total_cost=total)


def solve_transportation(
    cost_matrix: np.ndarray,
    supply: np.ndarray | list[int],
    capacity: np.ndarray | list[int],
) -> tuple[np.ndarray, float]:
    """Integer transportation problem: ship ``supply[i]`` units from each
    row to columns with column capacities, minimizing total cost.

    Returns ``(assignment, total_cost)`` where ``assignment[i, j]`` is the
    units shipped from row ``i`` to column ``j``.  This is the exact shape
    of the MCF VM-migration baseline (rows = VMs, columns = hosts).
    """
    cost = np.asarray(cost_matrix, dtype=np.float64)
    if cost.ndim != 2:
        raise SolverError(f"cost matrix must be 2-D, got shape {cost.shape}")
    rows, cols = cost.shape
    sup = np.asarray(supply, dtype=np.int64)
    cap = np.asarray(capacity, dtype=np.int64)
    if sup.shape != (rows,) or cap.shape != (cols,):
        raise SolverError("supply/capacity shapes must match the cost matrix")
    if sup.sum() > cap.sum():
        raise InfeasibleError(
            f"total supply {sup.sum()} exceeds total capacity {cap.sum()}"
        )

    # nodes: rows, then cols, then a slack sink absorbing spare capacity
    num_nodes = rows + cols
    arcs: list[Arc] = []
    for i in range(rows):
        for j in range(cols):
            arcs.append(Arc(i, rows + j, int(sup[i]), float(cost[i, j])))
    supplies = np.zeros(num_nodes, dtype=np.int64)
    supplies[:rows] = sup
    # columns demand exactly what's routed to them: model column capacity
    # via arcs to a sink with capacity cap[j]
    sink = num_nodes
    num_nodes += 1
    for j in range(cols):
        arcs.append(Arc(rows + j, sink, int(cap[j]), 0.0))
    supplies = np.append(supplies, 0)
    supplies[sink] = -int(sup.sum())

    result = min_cost_flow(num_nodes, arcs, supplies)
    assignment = np.zeros((rows, cols), dtype=np.int64)
    idx = 0
    for i in range(rows):
        for j in range(cols):
            assignment[i, j] = result.flows[idx]
            idx += 1
    return assignment, float(result.total_cost)
