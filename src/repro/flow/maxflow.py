"""Maximum flow / minimum cut via Edmonds–Karp.

A small, exact max-flow solver on capacitated directed graphs, used by
the cutting-plane separation in :mod:`repro.core.lp_bound` (a violated
connectivity cut of the TOP-1 ILP is exactly a minimum s-t cut under the
fractional edge usages) and validated against networkx in the tests.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.errors import SolverError

__all__ = ["max_flow_min_cut"]


def max_flow_min_cut(
    num_nodes: int,
    arcs: list[tuple[int, int, float]],
    source: int,
    sink: int,
    max_iterations: int | None = None,
) -> tuple[float, np.ndarray]:
    """Edmonds–Karp maximum flow.

    ``arcs`` are directed ``(tail, head, capacity)`` triples (parallel
    arcs allowed; capacities must be non-negative and finite).  Returns
    ``(flow_value, source_side)`` where ``source_side`` is a boolean mask
    of the nodes reachable from ``source`` in the final residual graph —
    the source side of a minimum cut.
    """
    if not (0 <= source < num_nodes and 0 <= sink < num_nodes):
        raise SolverError(f"endpoints ({source}, {sink}) out of range")
    if source == sink:
        raise SolverError("source and sink must differ")

    # residual forward-star; arc 2i forward, 2i+1 reverse
    count = 2 * len(arcs)
    to = np.empty(count, dtype=np.int64)
    cap = np.empty(count, dtype=np.float64)
    adj: list[list[int]] = [[] for _ in range(num_nodes)]
    for i, (u, v, c) in enumerate(arcs):
        if not (0 <= u < num_nodes and 0 <= v < num_nodes):
            raise SolverError(f"arc ({u}, {v}) references unknown node")
        if not (c >= 0 and np.isfinite(c)):
            raise SolverError(f"arc capacity must be non-negative finite, got {c}")
        to[2 * i], cap[2 * i] = v, c
        to[2 * i + 1], cap[2 * i + 1] = u, 0.0
        adj[u].append(2 * i)
        adj[v].append(2 * i + 1)

    limit = max_iterations if max_iterations is not None else 4 * count + 16
    total = 0.0
    for _ in range(limit):
        # BFS for a shortest augmenting path
        pred_edge = np.full(num_nodes, -1, dtype=np.int64)
        pred_edge[source] = -2
        queue: deque[int] = deque([source])
        while queue and pred_edge[sink] == -1:
            u = queue.popleft()
            for edge in adj[u]:
                v = int(to[edge])
                if cap[edge] > 1e-12 and pred_edge[v] == -1:
                    pred_edge[v] = edge
                    queue.append(v)
        if pred_edge[sink] == -1:
            break
        # bottleneck & augment
        bottleneck = np.inf
        node = sink
        while node != source:
            edge = int(pred_edge[node])
            bottleneck = min(bottleneck, cap[edge])
            node = int(to[edge ^ 1])
        node = sink
        while node != source:
            edge = int(pred_edge[node])
            cap[edge] -= bottleneck
            cap[edge ^ 1] += bottleneck
            node = int(to[edge ^ 1])
        total += float(bottleneck)
    else:  # pragma: no cover - guarded by the iteration bound theory
        raise SolverError("max-flow did not converge within its iteration bound")

    # min cut: nodes reachable in the residual graph
    reachable = np.zeros(num_nodes, dtype=bool)
    reachable[source] = True
    queue = deque([source])
    while queue:
        u = queue.popleft()
        for edge in adj[u]:
            v = int(to[edge])
            if cap[edge] > 1e-12 and not reachable[v]:
                reachable[v] = True
                queue.append(v)
    return total, reachable
