"""Per-link load accounting for policy-preserving traffic.

Every flow's route is the concatenation of shortest-path segments
``s(v_i) → p(1) → … → p(n) → s(v'_i)``; each segment contributes the
flow's rate to every link it traverses.  The accounting uses the
:class:`~repro.graphs.CostGraph`'s predecessor structure (one canonical
shortest path per node pair — single-path routing, the model's
assumption; ECMP spreading would only lower the maxima reported here).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import GraphError, ReproError
from repro.topology.base import Topology
from repro.workload.flows import FlowSet

__all__ = [
    "LinkLoadReport",
    "link_loads",
    "policy_preserving_link_loads",
    "utilization_report",
]


def _edge_key(u: int, v: int) -> tuple[int, int]:
    return (u, v) if u < v else (v, u)


def link_loads(
    topology: Topology,
    segments: list[tuple[int, int, float]],
) -> dict[tuple[int, int], float]:
    """Accumulate ``rate`` over every link of each segment's shortest path.

    ``segments`` are ``(from_node, to_node, rate)`` triples; zero-rate and
    self segments contribute nothing.

    Paths are reconstructed by walking the cached predecessor table once
    per segment rather than materializing a node list per pair
    (``graph.shortest_path`` re-derived the same walk and built a Python
    list every call) — the table is the session-cached APSP artifact, so
    at fig-scale flow counts this is one ``O(path length)`` walk per
    segment with no per-pair solver work at all.
    """
    loads: dict[tuple[int, int], float] = {}
    dist, pred = topology.graph.apsp()
    for src, dst, rate in segments:
        if rate <= 0.0 or src == dst:
            continue
        src, dst = int(src), int(dst)
        if not np.isfinite(dist[src, dst]):
            raise GraphError(f"node {dst} is unreachable from node {src}")
        rate = float(rate)
        node = dst
        while node != src:
            parent = int(pred[src, node])
            key = _edge_key(parent, node)
            loads[key] = loads.get(key, 0.0) + rate
            node = parent
    return loads


def policy_preserving_link_loads(
    topology: Topology,
    flows: FlowSet,
    placement: np.ndarray,
) -> dict[tuple[int, int], float]:
    """Link loads of all flows routed through the SFC at ``placement``."""
    placement = np.asarray(placement, dtype=np.int64)
    if placement.ndim != 1 or placement.size == 0:
        raise ReproError("placement must be a non-empty 1-D array")
    segments: list[tuple[int, int, float]] = []
    for i in range(flows.num_flows):
        rate = float(flows.rates[i])
        segments.append((int(flows.sources[i]), int(placement[0]), rate))
        for j in range(placement.size - 1):
            segments.append((int(placement[j]), int(placement[j + 1]), rate))
        segments.append((int(placement[-1]), int(flows.destinations[i]), rate))
    return link_loads(topology, segments)


@dataclass(frozen=True)
class LinkLoadReport:
    """Utilization summary against a uniform link capacity."""

    capacity: float
    max_utilization: float
    mean_utilization: float
    num_loaded_links: int
    num_links: int
    overloaded: tuple[tuple[int, int], ...]
    hottest: tuple[tuple[int, int], float]
    extra: dict = field(default_factory=dict)

    @property
    def within_provisioning(self) -> bool:
        """True iff every link stays at or below capacity."""
        return len(self.overloaded) == 0


def utilization_report(
    topology: Topology,
    flows: FlowSet,
    placement: np.ndarray,
    capacity: float | None = None,
    target_utilization: float = 0.4,
) -> LinkLoadReport:
    """Route everything and compare per-link loads to a uniform capacity.

    When ``capacity`` is ``None`` it is derived from the paper's
    provisioning premise [31]: the hottest link should sit at
    ``target_utilization`` (40 %), i.e. ``capacity = max_load / 0.4``.
    An explicit capacity instead flags genuinely overloaded links.
    """
    if not (0.0 < target_utilization <= 1.0):
        raise ReproError(
            f"target_utilization must be in (0, 1], got {target_utilization}"
        )
    loads = policy_preserving_link_loads(topology, flows, placement)
    num_links = topology.graph.num_edges
    if not loads:
        cap = capacity if capacity is not None else 1.0
        return LinkLoadReport(
            capacity=cap,
            max_utilization=0.0,
            mean_utilization=0.0,
            num_loaded_links=0,
            num_links=num_links,
            overloaded=(),
            hottest=((-1, -1), 0.0),
        )
    values = np.asarray(list(loads.values()))
    max_load = float(values.max())
    if capacity is None:
        capacity = max_load / target_utilization
    hottest_key = max(loads, key=loads.get)  # type: ignore[arg-type]
    overloaded = tuple(
        key for key, load in sorted(loads.items()) if load > capacity + 1e-9
    )
    return LinkLoadReport(
        capacity=float(capacity),
        max_utilization=max_load / capacity,
        mean_utilization=float(values.mean()) / capacity,
        num_loaded_links=len(loads),
        num_links=num_links,
        overloaded=overloaded,
        hottest=(hottest_key, float(loads[hottest_key])),
        extra={"total_volume": float(values.sum())},
    )
