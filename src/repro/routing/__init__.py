"""Routing substrate: shortest-path link loads and utilization accounting.

The paper assumes "there are enough edge bandwidths" because production
links are provisioned around 40 % utilization [31].  This package makes
that assumption *checkable*: given a placement and a flow set it routes
every policy-preserving flow segment over shortest paths, accumulates
per-link loads, and reports utilization against provisioned capacities —
so experiments can verify the no-congestion premise instead of trusting
it.
"""

from repro.routing.link_loads import (
    LinkLoadReport,
    link_loads,
    policy_preserving_link_loads,
    utilization_report,
)

__all__ = [
    "LinkLoadReport",
    "link_loads",
    "policy_preserving_link_loads",
    "utilization_report",
]
