"""`repro.serve`: a hardened long-lived placement service.

:class:`PlacementService` wraps pooled
:class:`~repro.session.SolverSession` s behind an asyncio request loop:

* **admission control / backpressure** — every ``submit`` passes the
  :class:`~repro.serve.admission.AdmissionController` first; overload is
  an explicit :class:`~repro.serve.admission.Overloaded` at submit time,
  never unbounded queue growth or latency (the outstanding-request bound
  covers queued *and* in-flight work);
* **batching** — a short dispatch window coalesces concurrent compatible
  TOP queries for one topology into a single
  :meth:`~repro.session.SolverSession.place_many` call (the one-matmul
  attraction path), bit-identical to per-request solves by the session
  contract;
* **deadlines and graceful degradation** — per-request ``deadline=``
  budgets cover queue wait plus solve and reuse the session's fallback
  chains (dp→greedy, mpareto→none); a
  :class:`~repro.serve.health.CircuitBreaker` on p95 solve latency trips
  the whole service into degraded-mode (zero-deadline) solving instead of
  letting tails grow, and every degraded answer is flagged
  ``extra["degraded"]`` — the service never silently serves a cheaper
  result;
* **crash recovery** — a poisoned session (unexpected solver exception,
  injected chaos fault, regressed cache epoch) is quarantined, rebuilt
  cold with its fault state replayed, and the affected requests retried
  once with the deterministic :func:`~repro.runtime.resilience.backoff_delay`;
* **fault ingestion** — :meth:`PlacementService.ingest` applies
  :class:`~repro.faults.process.FaultEvent` deltas through the session's
  incremental :meth:`~repro.session.SolverSession.apply` path, so
  subsequent requests solve on the degraded view without a rebuild;
* **drain on shutdown** — :meth:`PlacementService.stop` stops admitting,
  lets in-flight requests complete (bounded by ``drain_timeout``), then
  tears the loop down.

Concurrency model: one dispatcher coroutine owns the queue and the pool;
solves run in worker threads (``asyncio.to_thread``) bounded by a
semaphore, serialized *per pooled session* by the entry lock — so each
session's cache sees single-threaded access and results are bit-identical
to a serial replay of the same requests.
"""

from __future__ import annotations

import asyncio
import time
from collections import Counter
from dataclasses import dataclass, field
from typing import Any, Iterable

from repro.constraints import Constraints, active_constraints
from repro.core.types import MigrationResult, PlacementResult
from repro.errors import (
    BudgetExceededError,
    InfeasibleError,
    PlacementError,
    ReproError,
    WorkloadError,
)
from repro.faults.degrade import ConnectivityAudit
from repro.faults.process import FaultEvent, FaultState
from repro.runtime.instrument import count
from repro.runtime.resilience import ChaosConfig, ResilienceConfig, backoff_delay, fault_decision
from repro.serve.admission import AdmissionController, Overloaded
from repro.serve.health import CircuitBreaker, LatencyWindow
from repro.serve.pool import PooledSession, SessionPool
from repro.topology.base import Topology
from repro.workload.flows import FlowSet

__all__ = ["PlacementService", "ServeConfig", "ServeResult", "ServiceError"]

#: distinguishes "caller passed no deadline" from an explicit None
_UNSET = object()

#: exception types that are request-level outcomes, not session poison
_REQUEST_ERRORS = (InfeasibleError, PlacementError, WorkloadError, BudgetExceededError)


class ServiceError(ReproError):
    """A request failed even after quarantine, rebuild and retry."""


@dataclass(frozen=True)
class ServeConfig:
    """Tuning knobs for :class:`PlacementService` (validated eagerly)."""

    #: bound on outstanding (queued + in-flight) requests
    max_queue: int = 128
    #: concurrent solver threads across all sessions
    max_concurrency: int = 4
    #: seconds the dispatcher waits to coalesce a batch (0 disables)
    batch_window: float = 0.002
    #: most requests coalesced into one dispatch round
    batch_max: int = 32
    #: per-topology token-bucket refill (requests/second; None = off)
    rate_limit: float | None = None
    #: token-bucket burst ceiling (defaults to max(1, rate_limit))
    burst: float | None = None
    #: deadline applied to requests that specify none (None = unbounded)
    default_deadline: float | None = None
    #: p95 solve-latency budget tripping the circuit breaker (None = off)
    latency_budget: float | None = None
    breaker_window: int = 64
    breaker_min_samples: int = 16
    breaker_cooldown: float = 1.0
    #: LRU bound on pooled sessions
    max_sessions: int = 8
    #: quarantine-and-rebuild retries per request
    retry_attempts: int = 1
    #: seconds stop() waits for in-flight requests before hard teardown
    drain_timeout: float = 30.0
    #: deterministic fault injection into the solve path (tests only)
    chaos: ChaosConfig | None = None

    def __post_init__(self) -> None:
        if self.max_queue < 1:
            raise ReproError(f"max_queue must be positive, got {self.max_queue}")
        if self.max_concurrency < 1:
            raise ReproError(
                f"max_concurrency must be positive, got {self.max_concurrency}"
            )
        if self.batch_window < 0:
            raise ReproError(f"batch_window must be >= 0, got {self.batch_window}")
        if self.batch_max < 1:
            raise ReproError(f"batch_max must be positive, got {self.batch_max}")
        if self.retry_attempts < 0:
            raise ReproError(
                f"retry_attempts must be >= 0, got {self.retry_attempts}"
            )
        if self.drain_timeout <= 0:
            raise ReproError(
                f"drain_timeout must be positive, got {self.drain_timeout}"
            )


@dataclass(frozen=True)
class ServeResult:
    """One served request: the solver result plus service diagnostics."""

    #: the PlacementResult / MigrationResult, bit-identical to an offline
    #: session solve of the same request against the same fault state
    result: Any
    #: monotone per-service request number (admission order)
    seq: int
    #: end-to-end seconds: submit to future resolution
    latency: float
    #: seconds spent queued before a solver thread picked the request up
    queue_seconds: float
    #: seconds inside the solver (batch members share their batch's cost)
    solve_seconds: float
    #: whether the request rode a coalesced place_many call
    batched: bool
    #: generation of the pooled session that answered (bumps on rebuild)
    generation: int
    #: fault state the answering session's view reflected
    fault_state: FaultState = field(default_factory=FaultState)
    #: solve attempts consumed (> 1 means quarantine-and-retry happened)
    attempts: int = 1

    @property
    def degraded(self) -> bool:
        """True iff the result came from a fallback stage (always flagged)."""
        return bool(self.result.extra.get("degraded", False))

    def to_dict(self) -> dict:
        """JSON-friendly wire view; inverse of :meth:`from_dict`.

        The nested ``result`` uses the solver results' own ``to_dict``
        schema (``{placement, [source,] cost, meta}``) and ``fault_state``
        the :meth:`FaultState.to_dict` schema — the same shapes the
        experiment layer serializes, so one reader handles both.
        """
        return {
            "result": self.result.to_dict(),
            "seq": int(self.seq),
            "latency": float(self.latency),
            "queue_seconds": float(self.queue_seconds),
            "solve_seconds": float(self.solve_seconds),
            "batched": bool(self.batched),
            "generation": int(self.generation),
            "fault_state": self.fault_state.to_dict(),
            "attempts": int(self.attempts),
        }

    @staticmethod
    def _result_from_dict(data: dict):
        """Rebuild a Placement/MigrationResult from its ``to_dict`` view."""
        meta = dict(data["meta"])
        algorithm = meta.pop("algorithm")
        if "source" in data:
            communication = float(meta.pop("communication_cost"))
            migration = float(meta.pop("migration_cost"))
            meta.pop("num_migrated", None)  # derived, not stored state
            return MigrationResult(
                source=data["source"],
                migration=data["placement"],
                cost=float(data["cost"]),
                communication_cost=communication,
                migration_cost=migration,
                algorithm=algorithm,
                extra=meta,
            )
        return PlacementResult(
            placement=data["placement"],
            cost=float(data["cost"]),
            algorithm=algorithm,
            extra=meta,
        )

    @classmethod
    def from_dict(cls, data: dict) -> "ServeResult":
        """Inverse of :meth:`to_dict` (round-trips bit-exactly on floats)."""
        return cls(
            result=cls._result_from_dict(data["result"]),
            seq=int(data["seq"]),
            latency=float(data["latency"]),
            queue_seconds=float(data["queue_seconds"]),
            solve_seconds=float(data["solve_seconds"]),
            batched=bool(data["batched"]),
            generation=int(data["generation"]),
            fault_state=FaultState.from_dict(data["fault_state"]),
            attempts=int(data["attempts"]),
        )


class _Pending:
    """Internal: one admitted request travelling through the queue."""

    __slots__ = (
        "seq", "key", "topology", "flows", "sfc", "prev", "mu", "algo",
        "deadline", "constraints", "options", "future", "submitted",
        "attempts", "entry",
    )

    def __init__(
        self, seq, key, topology, flows, sfc, prev, mu, algo, deadline,
        constraints, options,
    ):
        self.seq = seq
        self.key = key
        self.topology = topology
        self.flows = flows
        self.sfc = sfc
        self.prev = prev
        self.mu = mu
        self.algo = algo
        self.deadline = deadline
        self.constraints = constraints
        self.options = options
        self.future: asyncio.Future = asyncio.get_running_loop().create_future()
        self.submitted = time.perf_counter()
        self.attempts = 0
        self.entry: PooledSession | None = None

    def batchable(self, default_deadline) -> bool:
        """Eligible for the coalesced place_many path?

        Constrained requests never batch: the matmul fast path is a
        ``dp``-only optimization, and a bound must not be dropped for
        throughput.
        """
        return (
            self.prev is None
            and self.algo in (None, "dp")
            and active_constraints(self.constraints) is None
            and not self.options
            and (self.deadline if self.deadline is not _UNSET else default_deadline)
            is None
        )


class PlacementService:
    """The long-lived placement service (see module docstring).

    Use as an async context manager, or call :meth:`start` / :meth:`stop`
    explicitly::

        async with PlacementService(ServeConfig(max_queue=64)) as service:
            served = await service.submit(topology, flows, sfc=3)
    """

    def __init__(
        self, config: ServeConfig | None = None, *, clock=time.monotonic
    ) -> None:
        self.config = config if config is not None else ServeConfig()
        self.clock = clock
        self.pool = SessionPool(max_sessions=self.config.max_sessions)
        self.admission = AdmissionController(
            max_queue=self.config.max_queue,
            rate_limit=self.config.rate_limit,
            burst=self.config.burst,
            clock=clock,
        )
        self.breaker = CircuitBreaker(
            budget=self.config.latency_budget,
            window=self.config.breaker_window,
            min_samples=self.config.breaker_min_samples,
            cooldown=self.config.breaker_cooldown,
            clock=clock,
        )
        self.latency = LatencyWindow(512)
        self.counters: Counter = Counter()
        #: reuses the runtime backoff machinery for the retry delay
        self._resilience = ResilienceConfig(
            max_retries=max(1, self.config.retry_attempts), scope="serve"
        )
        self._queue: asyncio.Queue | None = None
        self._idle: asyncio.Event | None = None
        self._semaphore: asyncio.Semaphore | None = None
        self._build_lock: asyncio.Lock | None = None
        self._dispatcher: asyncio.Task | None = None
        self._inflight: set[asyncio.Task] = set()
        self._draining = False
        self._started = False
        self._seq = 0

    # -- lifecycle -----------------------------------------------------------

    async def start(self) -> "PlacementService":
        """Bind loop primitives and launch the dispatcher."""
        if self._started:
            raise ReproError("service already started")
        self._queue = asyncio.Queue()
        self._idle = asyncio.Event()
        self._idle.set()
        self._semaphore = asyncio.Semaphore(self.config.max_concurrency)
        self._build_lock = asyncio.Lock()
        self._dispatcher = asyncio.create_task(
            self._dispatch_loop(), name="repro-serve-dispatcher"
        )
        self._started = True
        self._draining = False
        count("serve_started")
        return self

    async def stop(self, *, drain: bool = True, timeout: float | None = None) -> dict:
        """Drain and tear down; returns a summary of the shutdown.

        With ``drain=True`` (default) the service stops admitting, waits
        up to ``timeout`` (default ``drain_timeout``) for every
        outstanding request to resolve, then stops the dispatcher.  Any
        request still queued after the wait is failed with an explicit
        :class:`Overloaded` rather than left hanging.
        """
        if not self._started:
            return {"drained": True, "abandoned": 0}
        self._draining = True
        timeout = timeout if timeout is not None else self.config.drain_timeout
        drained = True
        if drain and self.admission.outstanding:
            try:
                await asyncio.wait_for(self._idle.wait(), timeout)
            except (asyncio.TimeoutError, TimeoutError):
                drained = False
        if self._dispatcher is not None:
            self._dispatcher.cancel()
            try:
                await self._dispatcher
            except asyncio.CancelledError:
                pass
        abandoned = 0
        while self._queue is not None and not self._queue.empty():
            pending = self._queue.get_nowait()
            self._finish(
                pending,
                error=Overloaded("service stopped", reason="draining"),
            )
            abandoned += 1
        for task in list(self._inflight):
            task.cancel()
        if self._inflight:
            await asyncio.gather(*self._inflight, return_exceptions=True)
        self._started = False
        count("serve_stopped")
        return {"drained": drained, "abandoned": abandoned}

    async def __aenter__(self) -> "PlacementService":
        return await self.start()

    async def __aexit__(self, *exc_info) -> None:
        await self.stop()

    # -- probes --------------------------------------------------------------

    @property
    def live(self) -> bool:
        """Liveness: the dispatcher exists and has not crashed."""
        if not self._started or self._dispatcher is None:
            return False
        return not self._dispatcher.done() or self._dispatcher.cancelled()

    @property
    def ready(self) -> bool:
        """Readiness: admitting requests and below the outstanding bound."""
        return (
            self.live
            and not self._draining
            and self.admission.outstanding < self.admission.max_queue
        )

    def metrics(self) -> dict:
        """JSON-friendly service metrics, including per-epoch cache health."""
        return {
            "live": self.live,
            "ready": self.ready,
            "draining": self._draining,
            "admission": self.admission.stats(),
            "breaker": self.breaker.stats(),
            "latency": self.latency.summary(),
            "pool": self.pool.stats(),
            "counters": dict(self.counters),
        }

    # -- request path --------------------------------------------------------

    async def submit(
        self,
        topology: Topology,
        flows: FlowSet,
        sfc,
        *,
        prev=None,
        mu: float = 0.0,
        algo: str | None = None,
        deadline=_UNSET,
        constraints: Constraints | None = None,
        **options,
    ) -> ServeResult:
        """Admit, queue and await one placement/migration request.

        Mirrors :meth:`SolverSession.solve`: placement when ``prev`` is
        None, migration otherwise; ``constraints`` is the same typed
        :class:`~repro.constraints.Constraints` object the session API
        takes (an infeasible instance propagates as a diagnosed
        :class:`~repro.errors.InfeasibleError` outcome).  Raises
        :class:`~repro.serve.admission.Overloaded` when shed (queue
        bound, rate limit, draining) and :class:`ServiceError` when the
        request failed even after quarantine-and-retry; solver-domain
        errors propagate as-is.
        """
        if not self._started:
            raise ReproError("service is not started (use `async with` or start())")
        if self._draining:
            self.admission.shed["draining"] += 1
            raise Overloaded("service is draining", reason="draining")
        key = self.pool.fingerprint(topology)
        self.admission.admit(key)
        pending = _Pending(
            self._next_seq(), key, topology, flows, sfc, prev, mu, algo,
            deadline, constraints, options,
        )
        self._idle.clear()
        self._queue.put_nowait(pending)
        return await pending.future

    async def ingest(
        self,
        topology: Topology,
        events: FaultState | Iterable[FaultEvent | dict],
    ) -> ConnectivityAudit | None:
        """Apply fault deltas to ``topology``'s pooled session.

        Accepts an absolute :class:`FaultState`, or an iterable of
        :class:`FaultEvent` / ``to_dict()``-shaped dicts (the wire
        format).  Routed through the session's incremental
        :meth:`~repro.session.SolverSession.apply` path under the entry
        lock, so in-flight solves are never torn mid-update and every
        subsequent request observes the new state.
        """
        if not self._started:
            raise ReproError("service is not started")
        if not isinstance(events, FaultState):
            events = [
                FaultEvent.from_dict(event) if isinstance(event, dict) else event
                for event in events
            ]
        key = self.pool.fingerprint(topology)
        entry = await self._ensure_entry(key, topology)
        async with entry.lock:
            audit = await asyncio.to_thread(entry.apply, events)
        self.counters["faults_ingested"] += 1
        count("serve_fault_ingests")
        return audit

    # -- internals -----------------------------------------------------------

    def _next_seq(self) -> int:
        self._seq += 1
        return self._seq

    async def _ensure_entry(self, key: str, topology: Topology) -> PooledSession:
        async with self._build_lock:
            entry = self.pool.get(key)
            if entry is None:
                entry = await asyncio.to_thread(self.pool.build, key, topology)
            return entry

    async def _dispatch_loop(self) -> None:
        while True:
            pending = await self._queue.get()
            batch = [pending]
            if self.config.batch_window > 0 and self.config.batch_max > 1:
                horizon = time.perf_counter() + self.config.batch_window
                while len(batch) < self.config.batch_max:
                    remaining = horizon - time.perf_counter()
                    if remaining <= 0:
                        try:
                            batch.append(self._queue.get_nowait())
                        except asyncio.QueueEmpty:
                            break
                        continue
                    try:
                        batch.append(
                            await asyncio.wait_for(self._queue.get(), remaining)
                        )
                    except (asyncio.TimeoutError, TimeoutError):
                        break
            by_key: dict[str, list[_Pending]] = {}
            for member in batch:
                by_key.setdefault(member.key, []).append(member)
            for key, members in by_key.items():
                try:
                    entry = await self._ensure_entry(key, members[0].topology)
                except asyncio.CancelledError:
                    raise
                except Exception as exc:
                    for member in members:
                        self._finish(member, error=exc)
                    continue
                task = asyncio.create_task(self._solve_members(entry, members))
                self._inflight.add(task)
                task.add_done_callback(self._inflight.discard)

    async def _solve_members(
        self, entry: PooledSession, members: list[_Pending]
    ) -> None:
        # proactive poison check: regressed cache epochs quarantine the
        # entry before it answers anything from suspect artifacts
        reason = entry.poisoned_reason()
        if reason is not None:
            self.pool.quarantine(entry, reason=reason)
            entry = await asyncio.to_thread(self.pool.rebuild, entry)
        full_path = self.breaker.allow_full()
        async with self._semaphore:
            async with entry.lock:
                outcomes = await asyncio.to_thread(
                    self._solve_batch_sync, entry, members, full_path
                )
        retry: list[_Pending] = []
        poison: BaseException | None = None
        for member, (kind, value) in zip(members, outcomes):
            if kind == "ok":
                self._finish(member, served=value)
            elif kind == "error":
                self._finish(member, error=value)
            else:  # "poisoned"
                retry.append(member)
                poison = value if value is not None else poison
        if retry:
            await self._quarantine_and_retry(entry, retry, poison)

    def _solve_batch_sync(
        self, entry: PooledSession, members: list[_Pending], full_path: bool
    ) -> list[tuple]:
        """Worker-thread body: solve every member on the entry's view.

        Returns one ``(kind, value)`` outcome per member — ``"ok"`` with
        a :class:`ServeResult`, ``"error"`` with a request-level
        exception, or ``"poisoned"`` when the session must be quarantined
        (the poisoning member carries the exception; members behind it in
        the batch are retried without having touched the suspect cache).
        """
        chaos = self.config.chaos
        results: dict[int, tuple] = {}
        # coalesce compatible placement queries per sfc into one place_many
        groups: dict[Any, list[_Pending]] = {}
        if full_path and len(members) > 1:
            for member in members:
                if member.batchable(self.config.default_deadline):
                    try:
                        groups.setdefault(member.sfc, []).append(member)
                    except TypeError:  # unhashable sfc: solve solo
                        pass
        poison: BaseException | None = None
        for sfc, group in groups.items():
            if len(group) < 2 or poison is not None:
                continue
            try:
                if chaos is not None:
                    self._maybe_inject(
                        fault_decision(
                            chaos, ("serve-batch", group[0].seq), group[0].attempts
                        )
                    )
                started = time.perf_counter()
                placed = entry.view.place_many(
                    [member.flows for member in group], sfc
                )
                per_member = (time.perf_counter() - started) / len(group)
            except _REQUEST_ERRORS as exc:
                # request-level outcome for the whole batch: the session
                # is fine, the queries were unservable
                for member in group:
                    results[id(member)] = ("error", exc)
                continue
            except Exception as exc:
                poison = exc
                continue
            for member, result in zip(group, placed):
                results[id(member)] = self._served(
                    member, entry, result, per_member, batched=True
                )
            self.counters["batched_solves"] += 1
            self.counters["batch_requests"] += len(group)
            count("serve_batched_solves")
        for member in members:
            if id(member) in results or poison is not None:
                continue
            try:
                if chaos is not None:
                    self._maybe_inject(
                        fault_decision(chaos, ("serve", member.seq), member.attempts)
                    )
                started = time.perf_counter()
                result = self._solve_one(entry, member, full_path)
            except _REQUEST_ERRORS as exc:
                results[id(member)] = ("error", exc)
                continue
            except Exception as exc:
                # unexpected: the session is suspect — this member and
                # everything unanswered behind it go to quarantine-retry
                poison = exc
                continue
            results[id(member)] = self._served(
                member, entry, result, time.perf_counter() - started,
                batched=False,
            )
        outcomes = [
            results.get(id(member), ("poisoned", poison)) for member in members
        ]
        for outcome in outcomes:
            if outcome[0] == "ok":
                entry.solves += 1
                if full_path:
                    self.breaker.record(outcome[1].solve_seconds)
        return outcomes

    def _maybe_inject(self, fault: str | None) -> None:
        if fault is None:
            return
        if fault == "delay":
            time.sleep(self.config.chaos.delay_seconds)
        elif fault == "timeout":
            raise TimeoutError("injected solver hang")
        elif fault in ("crash", "kill"):
            from repro.runtime.resilience import ChaosError

            raise ChaosError(f"injected solver crash ({fault})")

    def _solve_one(self, entry: PooledSession, member: _Pending, full_path: bool):
        deadline = (
            member.deadline
            if member.deadline is not _UNSET
            else self.config.default_deadline
        )
        if not full_path:
            # breaker open: force the zero-deadline fallback chain — the
            # cheapest stage answers and the result is flagged degraded
            result = entry.view.solve(
                member.flows, member.sfc, prev=member.prev, mu=member.mu,
                algo=member.algo, deadline=0.0,
                constraints=member.constraints, **member.options,
            )
            result.extra["breaker"] = "open"
            self.counters["breaker_degraded"] += 1
            count("serve_breaker_degraded")
            return result
        if deadline is not None:
            # the budget covers queue wait too: a request that waited its
            # whole deadline out in the queue gets the fallback chain
            deadline = max(0.0, deadline - (time.perf_counter() - member.submitted))
        return entry.view.solve(
            member.flows, member.sfc, prev=member.prev, mu=member.mu,
            algo=member.algo, deadline=deadline,
            constraints=member.constraints, **member.options,
        )

    def _served(self, member, entry, result, solve_seconds, *, batched) -> tuple:
        now = time.perf_counter()
        return (
            "ok",
            ServeResult(
                result=result,
                seq=member.seq,
                latency=now - member.submitted,
                queue_seconds=max(0.0, now - member.submitted - solve_seconds),
                solve_seconds=solve_seconds,
                batched=batched,
                generation=entry.generation,
                fault_state=entry.state,
                attempts=member.attempts + 1,
            ),
        )

    async def _quarantine_and_retry(
        self,
        entry: PooledSession,
        members: list[_Pending],
        exc: BaseException | None,
    ) -> None:
        reason = repr(exc) if exc is not None else "unknown solver failure"
        self.pool.quarantine(entry, reason=reason)
        give_up = [m for m in members if m.attempts >= self.config.retry_attempts]
        retry = [m for m in members if m.attempts < self.config.retry_attempts]
        for member in give_up:
            self._finish(
                member,
                error=ServiceError(
                    f"request {member.seq} failed after "
                    f"{member.attempts + 1} attempt(s): {reason}"
                ),
            )
        if not retry:
            return
        for member in retry:
            member.attempts += 1
        self.counters["retries"] += len(retry)
        count("serve_requests_retried", len(retry))
        await asyncio.sleep(
            backoff_delay(self._resilience, retry[0].seq, retry[0].attempts)
        )
        try:
            fresh = await asyncio.to_thread(self.pool.rebuild, entry)
        except asyncio.CancelledError:
            raise
        except Exception as rebuild_exc:
            for member in retry:
                self._finish(
                    member,
                    error=ServiceError(f"session rebuild failed: {rebuild_exc!r}"),
                )
            return
        await self._solve_members(fresh, retry)

    def _finish(
        self, pending: _Pending, *, served: ServeResult | None = None, error=None
    ) -> None:
        if not pending.future.done():
            if error is not None:
                pending.future.set_exception(error)
            else:
                pending.future.set_result(served)
        if served is not None:
            self.latency.record(served.latency)
            self.counters["completed"] += 1
            count("serve_requests_completed")
            if served.degraded:
                self.counters["degraded"] += 1
                count("serve_requests_degraded")
            if served.batched:
                self.counters["batched"] += 1
        else:
            self.counters["failed"] += 1
            count("serve_requests_failed")
        self.admission.release()
        if self.admission.outstanding == 0 and self._idle is not None:
            self._idle.set()
