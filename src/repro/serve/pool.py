"""A pool of long-lived solver sessions keyed by topology fingerprint.

The service amortizes :class:`~repro.session.SolverSession` artifacts
(APSP tables, stroll matrices) across requests; this module owns their
lifecycle:

* **keying** — topologies are identified by their content fingerprint
  (:func:`~repro.runtime.shm.content_fingerprint`), memoized per object,
  so equal-valued topologies arriving from different callers share one
  pooled session;
* **LRU eviction** — at most ``max_sessions`` live entries; the least
  recently used is forgotten when a new topology arrives (requests
  already holding the evicted entry keep it alive by reference);
* **isolation** — every entry gets its *own* :class:`ComputeCache`, so a
  poisoned cache (the quarantine trigger) can never leak artifacts into
  another topology's solves, and discarding the entry genuinely discards
  all suspect state;
* **quarantine and cold rebuild** — an entry that raised an unexpected
  solver exception, or whose dependency epochs regressed
  (:meth:`PooledSession.poisoned_reason`), is dropped and rebuilt from
  nothing; the rebuilt entry replays the quarantined one's applied
  :class:`~repro.faults.process.FaultState` so its degraded view matches
  the one that was lost.

Pool methods are synchronous and must be called from the service's event
loop (single dispatcher) — the expensive parts (session construction,
fault-state replay) are meant to run via ``asyncio.to_thread`` on the
:class:`PooledSession` the pool hands back.
"""

from __future__ import annotations

import asyncio
import weakref
from collections import OrderedDict
from typing import Iterable

from repro.faults.degrade import ConnectivityAudit
from repro.faults.process import FaultEvent, FaultState
from repro.runtime.cache import ComputeCache
from repro.runtime.instrument import count
from repro.runtime.shm import content_fingerprint
from repro.session import SolverSession
from repro.topology.base import Topology

__all__ = ["PooledSession", "SessionPool"]


class PooledSession:
    """One pooled topology: a base session plus its current fault view.

    ``lock`` serializes every solve and fault ingestion against this
    entry — per-entry serial, cross-entry parallel — which is what makes
    concurrent service results bit-identical to a serial replay (one
    cache is only ever touched by one solve at a time, and every request
    observes a well-defined fault state).
    """

    def __init__(
        self, key: str, topology: Topology, *, generation: int = 0
    ) -> None:
        self.key = key
        self.generation = generation
        self.cache = ComputeCache()
        self.base = SolverSession(topology, cache=self.cache)
        self.lock = asyncio.Lock()
        #: the session queries run against (the base, or a degraded view)
        self.view: SolverSession = self.base
        #: topology of the current view (degraded when faults are applied)
        self.view_topology: Topology = topology
        #: audit of the current degraded view (None while healthy)
        self.audit: ConnectivityAudit | None = None
        #: cumulative fault state the view reflects
        self.state: FaultState = FaultState()
        #: dependency-epoch watermark for poisoning detection
        self._epoch_watermark: dict[str, int] = {}
        self.solves = 0

    @property
    def topology(self) -> Topology:
        return self.base.topology

    def apply(
        self, state_or_events: FaultState | Iterable[FaultEvent]
    ) -> ConnectivityAudit | None:
        """Fold a fault state / event delta into this entry's view."""
        topology, audit, view = self.base.apply(state_or_events)
        self.view_topology = topology
        self.audit = audit
        self.view = view
        self.state = self.base.applied_state
        return audit

    def poisoned_reason(self) -> str | None:
        """Self-check for corrupted cache state; None when healthy.

        Dependency epochs are monotone by contract — :meth:`bump` only
        increments.  An epoch observed *below* a previously recorded
        watermark means the entry's cache was corrupted (a bug, a stray
        writer, a chaos injection) and the entry must be quarantined:
        stamped keys could resurrect stale artifacts.
        """
        for name, stats in self.cache.epoch_stats().items():
            watermark = self._epoch_watermark.get(name, 0)
            if stats["epoch"] < watermark:
                return (
                    f"cache epoch {name!r} regressed "
                    f"({stats['epoch']} < watermark {watermark})"
                )
            self._epoch_watermark[name] = stats["epoch"]
        return None

    def stats(self) -> dict:
        return {
            "key": self.key[:12],
            "generation": self.generation,
            "solves": self.solves,
            "healthy": self.state.is_healthy,
            "failed_switches": len(self.state.failed_switches),
            "failed_hosts": len(self.state.failed_hosts),
            "failed_links": len(self.state.failed_links),
            "cache": self.cache.stats(),
        }


class SessionPool:
    """LRU pool of :class:`PooledSession` entries (see module docstring)."""

    def __init__(self, *, max_sessions: int = 8) -> None:
        if max_sessions < 1:
            raise ValueError(f"max_sessions must be positive, got {max_sessions}")
        self.max_sessions = int(max_sessions)
        self._entries: "OrderedDict[str, PooledSession]" = OrderedDict()
        #: fingerprint memo per live topology object (weak: dies with it)
        self._fingerprints: "weakref.WeakKeyDictionary[Topology, str]" = (
            weakref.WeakKeyDictionary()
        )
        self.built = 0
        self.evicted = 0
        self.quarantined = 0

    def fingerprint(self, topology: Topology) -> str:
        """Content fingerprint of ``topology``, memoized per object."""
        try:
            return self._fingerprints[topology]
        except KeyError:
            pass
        fp = content_fingerprint(topology)
        self._fingerprints[topology] = fp
        return fp

    def get(self, key: str) -> PooledSession | None:
        """The live entry for ``key`` (refreshing its recency), or None."""
        entry = self._entries.get(key)
        if entry is not None:
            self._entries.move_to_end(key)
        return entry

    def build(self, key: str, topology: Topology, *, generation: int = 0) -> PooledSession:
        """Construct, register and return a fresh entry for ``key``.

        Session construction pays the APSP tables eagerly — call this
        from a worker thread (``asyncio.to_thread``), then the entry is
        safe to share.  Registering evicts the LRU entry beyond
        ``max_sessions``.
        """
        entry = PooledSession(key, topology, generation=generation)
        self._entries[key] = entry
        self._entries.move_to_end(key)
        self.built += 1
        count("serve_sessions_built")
        while len(self._entries) > self.max_sessions:
            evicted_key, _ = self._entries.popitem(last=False)
            self.evicted += 1
            count("serve_sessions_evicted")
            if evicted_key == key:  # pragma: no cover - max_sessions >= 1
                break
        return entry

    def quarantine(self, entry: PooledSession, *, reason: str) -> None:
        """Drop a poisoned entry; its replacement must be built cold.

        Only removes the entry if it is still the pool's current mapping
        for its key (a racing rebuild may already have replaced it).
        """
        current = self._entries.get(entry.key)
        if current is entry:
            del self._entries[entry.key]
        entry.last_quarantine_reason = reason
        self.quarantined += 1
        count("serve_sessions_quarantined")

    def rebuild(self, entry: PooledSession) -> PooledSession:
        """Cold replacement for a quarantined entry, fault state replayed.

        Everything is rebuilt from the topology alone — fresh cache,
        fresh base session — then the quarantined entry's cumulative
        :class:`FaultState` is re-applied so the new view answers exactly
        the queries the old one was serving.  Run in a worker thread.
        """
        fresh = self.build(
            entry.key, entry.topology, generation=entry.generation + 1
        )
        if not entry.state.is_healthy:
            fresh.apply(entry.state)
        count("serve_sessions_rebuilt")
        return fresh

    def __len__(self) -> int:
        return len(self._entries)

    def entries(self) -> list[PooledSession]:
        return list(self._entries.values())

    def stats(self) -> dict:
        return {
            "sessions": len(self._entries),
            "max_sessions": self.max_sessions,
            "built": self.built,
            "evicted": self.evicted,
            "quarantined": self.quarantined,
            "entries": [entry.stats() for entry in self._entries.values()],
        }
