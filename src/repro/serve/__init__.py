"""repro.serve: a hardened long-lived placement service.

The service layer (DESIGN.md §5h) turns the library's
:class:`~repro.session.SolverSession` into an operable server: pooled
per-topology sessions with crash quarantine and cold rebuild
(:mod:`repro.serve.pool`), explicit admission control and backpressure
(:mod:`repro.serve.admission`), deadline enforcement with a
latency-budget circuit breaker and liveness probes
(:mod:`repro.serve.health`), the asyncio request loop itself
(:mod:`repro.serve.server`), and a seeded churn driver shared by the CLI
and the serve benchmark (:mod:`repro.serve.driver`).
"""

from repro.serve.admission import AdmissionController, Overloaded, TokenBucket
from repro.serve.driver import ChurnConfig, run_churn
from repro.serve.health import CircuitBreaker, LatencyWindow, start_probe_server
from repro.serve.pool import PooledSession, SessionPool
from repro.serve.server import PlacementService, ServeConfig, ServeResult, ServiceError

__all__ = [
    "AdmissionController",
    "ChurnConfig",
    "CircuitBreaker",
    "LatencyWindow",
    "Overloaded",
    "PlacementService",
    "PooledSession",
    "ServeConfig",
    "ServeResult",
    "ServiceError",
    "SessionPool",
    "TokenBucket",
    "run_churn",
    "start_probe_server",
]
