"""Synthetic flow-churn driver for :class:`PlacementService`.

Models the paper's serving regime at data-center scale: a long-lived
service fields a stream of tenant placement queries over one fabric while
rates churn and faults arrive.  Every flow is an *aggregate* of
``users_per_flow`` end users (the paper's million-user scenarios are VM
pairs carrying aggregated user traffic), so the driver's user accounting
is ``requests x num_pairs x users_per_flow`` — the default bench shape
clears a million modeled users without needing a million solver calls.

The same coroutine (:func:`run_churn`) backs both the ``repro serve
--churn`` CLI smoke-run and ``benchmarks/bench_serve.py``; the bench
layers percentile reporting and the JSON artifact on top of the summary
dict returned here.

Everything is seeded: flowsets are redrawn per request from spawned RNG
children, migration and deadline pressure follow fixed strides, and the
fault plan deterministically toggles one aggregation switch — so two runs
of the same :class:`ChurnConfig` issue byte-identical request streams
(service-side latencies and shed decisions still vary with machine load,
which is the point of the bench).
"""

from __future__ import annotations

import asyncio
import time
from collections import Counter
from dataclasses import dataclass

import numpy as np

from repro.errors import ReproError
from repro.serve.admission import Overloaded
from repro.serve.server import PlacementService, ServiceError
from repro.topology.base import Topology
from repro.topology.fattree import fat_tree
from repro.utils.rng import spawn_rngs
from repro.workload.flows import FlowSet, place_vm_pairs
from repro.workload.traffic import FacebookTrafficModel

__all__ = ["ChurnConfig", "build_flowsets", "run_churn"]


@dataclass(frozen=True)
class ChurnConfig:
    """Shape of one churn run (all strides deterministic)."""

    #: fat-tree degree of the fabric under service
    k: int = 4
    #: VM pairs per request flowset
    num_pairs: int = 12
    #: SFC length requested
    sfc_size: int = 2
    #: total requests issued
    requests: int = 200
    #: client-side concurrency (parallel submitters)
    concurrency: int = 16
    #: end users aggregated behind each flow (accounting only)
    users_per_flow: int = 2000
    seed: int = 11
    #: soft deadline carried by ordinary requests (None = none)
    deadline: float | None = None
    #: every Nth request carries ``tight_deadline`` instead (0 = never)
    deadline_every: int = 0
    tight_deadline: float = 0.0
    #: ingest a fault-event delta every N requests (0 = never); toggles
    #: one aggregation switch fail/repair so state never accumulates
    fault_every: int = 0
    #: every Nth request is a migration from the last served placement
    migrate_every: int = 0
    #: migration energy-traffic tradeoff passed with ``prev``
    mu: float = 100.0

    def __post_init__(self) -> None:
        if self.requests < 1:
            raise ReproError(f"requests must be positive, got {self.requests}")
        if self.concurrency < 1:
            raise ReproError(
                f"concurrency must be positive, got {self.concurrency}"
            )


def build_flowsets(config: ChurnConfig, topology: Topology) -> list[FlowSet]:
    """One seeded flowset per request: redrawn endpoints and rates."""
    model = FacebookTrafficModel()
    flowsets = []
    for rng in spawn_rngs(config.seed, config.requests):
        flows = place_vm_pairs(topology, config.num_pairs, seed=rng)
        flowsets.append(flows.with_rates(model.sample(config.num_pairs, rng=rng)))
    return flowsets


def _fault_events(topology: Topology, tick: int) -> list[dict]:
    """Even ticks fail one non-edge switch, odd ticks repair it.

    Edge switches are excluded: failing one strands its rack's hosts and
    turns the whole stream infeasible, which is a different experiment.
    Aggregation/core failures exercise the degraded-view path while the
    fat-tree's redundancy keeps every request servable.
    """
    edge = {int(s) for s in np.asarray(topology.host_edge_switch).ravel()}
    switches = sorted(int(s) for s in topology.switches if int(s) not in edge)
    if not switches:  # degenerate fabric: nothing safe to fail
        return []
    target = switches[(tick // 2) % len(switches)]
    action = "fail" if tick % 2 == 0 else "repair"
    return [{"hour": tick, "kind": "switch", "action": action, "target": target}]


async def run_churn(
    service: PlacementService,
    config: ChurnConfig,
    *,
    topology: Topology | None = None,
) -> dict:
    """Drive ``service`` with the configured churn; returns a summary dict.

    The caller owns the service lifecycle (``async with`` around this
    call).  Requests are issued through a client-side semaphore so the
    offered concurrency is ``config.concurrency`` regardless of how fast
    the service answers; sheds and failures are counted, never raised.
    """
    if topology is None:
        topology = fat_tree(config.k)
    flowsets = build_flowsets(config, topology)
    semaphore = asyncio.Semaphore(config.concurrency)
    shed: Counter = Counter()
    latencies: list[float] = []
    queue_waits: list[float] = []
    tallies = Counter()
    last_placement: dict = {}
    fault_tick = 0

    async def one(index: int, flows: FlowSet) -> None:
        nonlocal fault_tick
        kwargs: dict = {}
        if (
            config.deadline_every
            and index % config.deadline_every == config.deadline_every - 1
        ):
            kwargs["deadline"] = config.tight_deadline
        elif config.deadline is not None:
            kwargs["deadline"] = config.deadline
        prev = None
        if (
            config.migrate_every
            and index % config.migrate_every == config.migrate_every - 1
        ):
            prev = last_placement.get("placement")
        if prev is not None:
            kwargs["prev"] = prev
            kwargs["mu"] = config.mu
        async with semaphore:
            try:
                served = await service.submit(
                    topology, flows, config.sfc_size, **kwargs
                )
            except Overloaded as exc:
                shed[exc.reason] += 1
                return
            except ServiceError:
                tallies["failed"] += 1
                return
            except ReproError:
                tallies["infeasible"] += 1
                return
            tallies["completed"] += 1
            latencies.append(served.latency)
            queue_waits.append(served.queue_seconds)
            if served.degraded:
                tallies["degraded"] += 1
            if served.batched:
                tallies["batched"] += 1
            if served.attempts > 1:
                tallies["retried"] += 1
            if prev is None:
                last_placement["placement"] = served.result.placement
            if config.fault_every and (index + 1) % config.fault_every == 0:
                tick = fault_tick
                fault_tick += 1
                try:
                    await service.ingest(topology, _fault_events(topology, tick))
                    tallies["faults_ingested"] += 1
                except ReproError:
                    tallies["fault_ingest_failed"] += 1

    started = time.perf_counter()
    await asyncio.gather(
        *(one(index, flows) for index, flows in enumerate(flowsets))
    )
    elapsed = time.perf_counter() - started

    completed = tallies["completed"]
    quantile = (
        (lambda q: float(np.quantile(np.asarray(latencies), q)))
        if latencies
        else (lambda q: 0.0)
    )
    return {
        "config": {
            "k": config.k,
            "num_pairs": config.num_pairs,
            "sfc_size": config.sfc_size,
            "requests": config.requests,
            "concurrency": config.concurrency,
            "users_per_flow": config.users_per_flow,
            "seed": config.seed,
        },
        "requests": config.requests,
        "completed": completed,
        "shed": dict(shed),
        "shed_total": sum(shed.values()),
        "shed_rate": sum(shed.values()) / config.requests,
        "failed": tallies["failed"],
        "infeasible": tallies["infeasible"],
        "degraded": tallies["degraded"],
        "degraded_fraction": (tallies["degraded"] / completed) if completed else 0.0,
        "batched": tallies["batched"],
        "retried": tallies["retried"],
        "faults_ingested": tallies["faults_ingested"],
        "elapsed_seconds": elapsed,
        "rps": completed / elapsed if elapsed > 0 else 0.0,
        "latency": {
            "p50": quantile(0.50),
            "p95": quantile(0.95),
            "p99": quantile(0.99),
            "mean": float(np.mean(latencies)) if latencies else 0.0,
            "max": max(latencies) if latencies else 0.0,
        },
        "queue_wait_p95": (
            float(np.quantile(np.asarray(queue_waits), 0.95)) if queue_waits else 0.0
        ),
        "users_modeled": config.requests * config.num_pairs * config.users_per_flow,
    }
