"""Admission control for the placement service: shed load, never queue it.

The service's robustness headline is *bounded* behaviour under burst
traffic: a request that cannot be served promptly is rejected with an
explicit :class:`Overloaded` (carrying why, and when to retry) instead of
being parked in an ever-growing queue.  Three gates, applied in order at
submit time:

1. **draining** — a stopping service admits nothing new (in-flight
   requests complete; see drain-on-shutdown in ``server.py``);
2. **outstanding-request bound** — one counter covers queued *and*
   in-flight requests, so the total work the service holds is capped by
   ``max_queue`` no matter how bursty arrivals are;
3. **per-topology token bucket** — each topology fingerprint refills at
   ``rate_limit`` requests/second up to a ``burst`` ceiling, so one noisy
   tenant cannot starve the others.

Everything takes an injectable ``clock`` so tests drive time
deterministically; nothing here touches wall-clock state besides the
bucket refill arithmetic.
"""

from __future__ import annotations

import time
from collections import Counter
from typing import Callable

from repro.errors import ReproError

__all__ = ["AdmissionController", "Overloaded", "TokenBucket"]


class Overloaded(ReproError):
    """Explicit load-shed: the service declined to accept a request.

    ``reason`` is one of ``"queue_full"``, ``"rate_limited"`` or
    ``"draining"``; ``retry_after`` (seconds, possibly ``None``) hints
    when a retry could succeed.  Raised at submit time, *before* any
    queueing — an overloaded service answers immediately, it never makes
    the caller wait to find out.
    """

    def __init__(
        self, message: str, *, reason: str, retry_after: float | None = None
    ) -> None:
        super().__init__(message)
        self.reason = reason
        self.retry_after = retry_after


class TokenBucket:
    """Classic token bucket: ``rate`` tokens/second up to ``burst``.

    Starts full.  :meth:`try_acquire` refills lazily from the injected
    monotonic ``clock`` and takes one token if available; on refusal
    :attr:`retry_after` says how long until the next token materializes.
    """

    def __init__(
        self,
        rate: float,
        burst: float,
        *,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if not rate > 0:
            raise ReproError(f"token bucket rate must be positive, got {rate!r}")
        if not burst >= 1:
            raise ReproError(f"token bucket burst must be >= 1, got {burst!r}")
        self.rate = float(rate)
        self.burst = float(burst)
        self._clock = clock
        self._tokens = float(burst)
        self._last = clock()

    def _refill(self) -> None:
        now = self._clock()
        if now > self._last:
            self._tokens = min(self.burst, self._tokens + (now - self._last) * self.rate)
        self._last = now

    def try_acquire(self, tokens: float = 1.0) -> bool:
        """Take ``tokens`` if the bucket holds them; never blocks."""
        self._refill()
        if self._tokens >= tokens:
            self._tokens -= tokens
            return True
        return False

    @property
    def tokens(self) -> float:
        """Current token count (after a lazy refill)."""
        self._refill()
        return self._tokens

    @property
    def retry_after(self) -> float:
        """Seconds until one token is available (0.0 if one already is)."""
        self._refill()
        if self._tokens >= 1.0:
            return 0.0
        return (1.0 - self._tokens) / self.rate


class AdmissionController:
    """The submit-time gatekeeper (see module docstring).

    ``max_queue`` bounds *outstanding* requests — queued plus in-flight —
    because a bound on the queue alone would let slow solves accumulate
    unbounded in-flight work behind it.  ``release()`` must be called
    exactly once per admitted request, when its future resolves.
    """

    def __init__(
        self,
        *,
        max_queue: int,
        rate_limit: float | None = None,
        burst: float | None = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if max_queue < 1:
            raise ReproError(f"max_queue must be positive, got {max_queue}")
        if rate_limit is not None and rate_limit <= 0:
            raise ReproError(f"rate_limit must be positive, got {rate_limit!r}")
        self.max_queue = int(max_queue)
        self.rate_limit = rate_limit
        self.burst = float(burst) if burst is not None else (
            max(1.0, rate_limit) if rate_limit is not None else 1.0
        )
        self._clock = clock
        self._buckets: dict[str, TokenBucket] = {}
        #: outstanding requests: admitted and not yet released
        self.outstanding = 0
        #: high-water mark of ``outstanding`` (the soak test's evidence
        #: that queue growth stayed bounded)
        self.peak_outstanding = 0
        self.admitted = 0
        self.shed: Counter = Counter()

    def admit(self, key: str) -> None:
        """Admit one request for topology ``key`` or raise :class:`Overloaded`."""
        if self.outstanding >= self.max_queue:
            self.shed["queue_full"] += 1
            raise Overloaded(
                f"request queue is full ({self.outstanding}/{self.max_queue} "
                "outstanding)",
                reason="queue_full",
                retry_after=None,
            )
        if self.rate_limit is not None:
            bucket = self._buckets.get(key)
            if bucket is None:
                bucket = self._buckets[key] = TokenBucket(
                    self.rate_limit, self.burst, clock=self._clock
                )
            if not bucket.try_acquire():
                self.shed["rate_limited"] += 1
                raise Overloaded(
                    f"rate limit exceeded for topology {key[:12]}",
                    reason="rate_limited",
                    retry_after=bucket.retry_after,
                )
        self.outstanding += 1
        self.admitted += 1
        self.peak_outstanding = max(self.peak_outstanding, self.outstanding)

    def release(self) -> None:
        """Mark one admitted request as finished (success or failure)."""
        if self.outstanding <= 0:
            raise ReproError("release() without a matching admit()")
        self.outstanding -= 1

    def stats(self) -> dict:
        """JSON-friendly admission counters for the metrics endpoint."""
        return {
            "max_queue": self.max_queue,
            "outstanding": self.outstanding,
            "peak_outstanding": self.peak_outstanding,
            "admitted": self.admitted,
            "shed": dict(self.shed),
            "rate_limit": self.rate_limit,
            "tracked_topologies": len(self._buckets),
        }
