"""Service health: latency quantiles, circuit breaker, liveness probes.

* :class:`LatencyWindow` — a bounded ring of recent latencies with exact
  quantiles over the window (numpy over at most ``window`` floats; cheap
  enough for every request to record).
* :class:`CircuitBreaker` — trips to *degraded-mode solving* when the
  p95 of recent **solve** latencies exceeds the budget: while open, the
  service answers every request through the zero-deadline fallback chain
  (dp→greedy, mpareto→none; see DESIGN.md §5f) instead of letting tail
  latency grow without bound.  After ``cooldown`` seconds the breaker
  goes half-open and lets one full-path probe through; a probe within
  budget closes it, a slow probe re-opens it.
* :func:`start_probe_server` — ``/healthz`` (liveness), ``/readyz``
  (readiness: started and not draining), ``/metrics`` (the service's
  JSON metrics, including per-epoch cache health) over a minimal
  dependency-free HTTP/1.0 handler on ``asyncio.start_server``.

Clocks are injectable everywhere so the breaker's time arithmetic is
testable without sleeping.
"""

from __future__ import annotations

import json
import time
from collections import deque
from typing import Callable

import numpy as np

from repro.errors import ReproError

__all__ = [
    "CircuitBreaker",
    "LatencyWindow",
    "start_probe_server",
]


class LatencyWindow:
    """Bounded window of recent latencies with exact quantiles."""

    def __init__(self, window: int = 256) -> None:
        if window < 1:
            raise ReproError(f"latency window must be positive, got {window}")
        self._values: deque[float] = deque(maxlen=window)
        self.count = 0

    def record(self, seconds: float) -> None:
        self._values.append(float(seconds))
        self.count += 1

    def __len__(self) -> int:
        return len(self._values)

    def quantile(self, q: float) -> float:
        """The ``q``-quantile of the current window (0.0 when empty)."""
        if not self._values:
            return 0.0
        return float(np.quantile(np.fromiter(self._values, dtype=np.float64), q))

    def summary(self) -> dict:
        return {
            "count": self.count,
            "window": len(self._values),
            "p50": self.quantile(0.50),
            "p95": self.quantile(0.95),
            "p99": self.quantile(0.99),
        }


class CircuitBreaker:
    """Latency-budget circuit breaker (see module docstring).

    States: ``closed`` (full-path solving), ``open`` (every solve forced
    through the degraded fallback chain), ``half-open`` (one probe
    request allowed through the full path).  With ``budget=None`` the
    breaker is inert and always closed.
    """

    CLOSED, OPEN, HALF_OPEN = "closed", "open", "half-open"

    def __init__(
        self,
        *,
        budget: float | None = None,
        window: int = 64,
        min_samples: int = 16,
        cooldown: float = 1.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if budget is not None and budget <= 0:
            raise ReproError(f"latency budget must be positive, got {budget!r}")
        if min_samples < 1:
            raise ReproError(f"min_samples must be positive, got {min_samples}")
        if cooldown <= 0:
            raise ReproError(f"cooldown must be positive, got {cooldown!r}")
        self.budget = budget
        self.min_samples = int(min_samples)
        self.cooldown = float(cooldown)
        self._clock = clock
        self._window = LatencyWindow(window)
        self._state = self.CLOSED
        self._opened_at = 0.0
        self._probe_inflight = False
        self.trips = 0

    @property
    def state(self) -> str:
        """Current state, promoting open → half-open when cooldown elapsed."""
        if (
            self._state == self.OPEN
            and self._clock() - self._opened_at >= self.cooldown
        ):
            self._state = self.HALF_OPEN
            self._probe_inflight = False
        return self._state

    def allow_full(self) -> bool:
        """May the next solve take the full (non-degraded) path?

        Closed: yes.  Open: no.  Half-open: yes for exactly one probe at
        a time; concurrent requests degrade until the probe reports back.
        """
        state = self.state
        if state == self.CLOSED:
            return True
        if state == self.HALF_OPEN and not self._probe_inflight:
            self._probe_inflight = True
            return True
        return False

    def _trip(self) -> None:
        self._state = self.OPEN
        self._opened_at = self._clock()
        self._probe_inflight = False
        self.trips += 1

    def record(self, solve_seconds: float) -> None:
        """Feed one full-path solve latency into the breaker."""
        if self.budget is None:
            return
        state = self.state
        if state == self.HALF_OPEN:
            # the probe decides alone: within budget closes the breaker
            # (with a fresh window — pre-trip latencies are history),
            # over budget re-opens it for another cooldown
            if solve_seconds <= self.budget:
                self._state = self.CLOSED
                self._window = LatencyWindow(self._window._values.maxlen)
                self._window.record(solve_seconds)
            else:
                self._trip()
            return
        self._window.record(solve_seconds)
        if (
            state == self.CLOSED
            and len(self._window) >= self.min_samples
            and self._window.quantile(0.95) > self.budget
        ):
            self._trip()

    def stats(self) -> dict:
        return {
            "state": self.state,
            "budget": self.budget,
            "trips": self.trips,
            "solve_latency": self._window.summary(),
        }


# -- probe endpoints ----------------------------------------------------------

_RESPONSES = {200: "OK", 404: "Not Found", 503: "Service Unavailable"}


def _http_response(status: int, body: str, content_type: str = "text/plain") -> bytes:
    payload = body.encode()
    head = (
        f"HTTP/1.0 {status} {_RESPONSES[status]}\r\n"
        f"Content-Type: {content_type}\r\n"
        f"Content-Length: {len(payload)}\r\n"
        "Connection: close\r\n\r\n"
    )
    return head.encode() + payload


async def start_probe_server(service, host: str = "127.0.0.1", port: int = 0):
    """Serve ``/healthz`` / ``/readyz`` / ``/metrics`` for ``service``.

    ``service`` is a :class:`~repro.serve.server.PlacementService` (any
    object with ``live``, ``ready`` and ``metrics()`` works).  Returns
    the :class:`asyncio.Server`; its first socket's ``getsockname()``
    carries the bound port when ``port=0``.  Close with
    ``server.close(); await server.wait_closed()``.
    """
    import asyncio

    async def handle(reader: asyncio.StreamReader, writer: asyncio.StreamWriter):
        try:
            request_line = await reader.readline()
            parts = request_line.decode("latin-1").split()
            path = parts[1] if len(parts) >= 2 else ""
            # drain (tiny) headers so the client sees a clean close
            while (await reader.readline()) not in (b"\r\n", b"\n", b""):
                pass
            if path == "/healthz":
                response = (
                    _http_response(200, "live\n")
                    if service.live
                    else _http_response(503, "dead\n")
                )
            elif path == "/readyz":
                response = (
                    _http_response(200, "ready\n")
                    if service.ready
                    else _http_response(503, "not ready\n")
                )
            elif path == "/metrics":
                response = _http_response(
                    200,
                    json.dumps(service.metrics(), indent=2, sort_keys=True),
                    content_type="application/json",
                )
            else:
                response = _http_response(404, "unknown probe\n")
            writer.write(response)
            await writer.drain()
        except (ConnectionError, asyncio.IncompleteReadError):  # pragma: no cover
            pass
        finally:
            writer.close()

    return await asyncio.start_server(handle, host, port)
