"""Command-line interface: list and run the paper-reproduction experiments.

Examples
--------
::

    repro list
    repro run fig07_top1
    repro run fig11a_hourly --workers 4 --profile
    repro run fig11c_vary_l --scale paper --json results/fig11c.json
    repro run-all --scale smoke
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

from repro.experiments import SCALES, list_experiments, run_experiment
from repro.runtime.instrument import format_report

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Traffic-optimal VNF placement and migration (IPDPS 2022) — "
            "regenerate the paper's figures"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available experiments")

    run = sub.add_parser("run", help="run one experiment")
    run.add_argument("experiment", help="experiment name (see `repro list`)")
    run.add_argument(
        "--scale", choices=SCALES, default="default", help="experiment scale"
    )
    run.add_argument("--json", type=Path, default=None, help="also write JSON here")
    run.add_argument(
        "--plot", action="store_true", help="also render a sparkline chart"
    )
    _add_runtime_args(run)

    run_all = sub.add_parser("run-all", help="run every registered experiment")
    run_all.add_argument(
        "--scale", choices=SCALES, default="default", help="experiment scale"
    )
    run_all.add_argument(
        "--json-dir", type=Path, default=None, help="directory for per-experiment JSON"
    )
    _add_runtime_args(run_all)
    return parser


def _add_runtime_args(sub: argparse.ArgumentParser) -> None:
    sub.add_argument(
        "--workers",
        type=int,
        default=1,
        metavar="N",
        help="worker processes for replication/sweep fan-out (default: 1, serial)",
    )
    sub.add_argument(
        "--profile",
        action="store_true",
        help="print the runtime report (phase timers, cache hit rates, speedup)",
    )


def _run_one(
    name: str,
    scale: str,
    json_path: Path | None,
    out,
    plot: bool = False,
    workers: int = 1,
    profile: bool = False,
) -> None:
    start = time.perf_counter()
    result = run_experiment(name, scale, workers=workers)
    elapsed = time.perf_counter() - start
    print(result.to_table(), file=out)
    if plot:
        print(file=out)
        print(result.to_chart(), file=out)
    if profile:
        print(file=out)
        print(format_report(result.params["runtime"]), file=out)
    print(f"[{name} @ {scale}: {elapsed:.1f}s]", file=out)
    if json_path is not None:
        json_path.parent.mkdir(parents=True, exist_ok=True)
        json_path.write_text(result.to_json())
        print(f"wrote {json_path}", file=out)


def main(argv: list[str] | None = None, out=None) -> int:
    out = out if out is not None else sys.stdout
    try:
        return _dispatch(build_parser().parse_args(argv), out)
    except BrokenPipeError:  # e.g. `repro list | head`
        return 0


def _dispatch(args, out) -> int:
    if args.command == "list":
        for name, description in list_experiments().items():
            print(f"{name:28s} {description}", file=out)
        return 0
    if args.command == "run":
        _run_one(
            args.experiment,
            args.scale,
            args.json,
            out,
            plot=args.plot,
            workers=args.workers,
            profile=args.profile,
        )
        return 0
    if args.command == "run-all":
        for name in list_experiments():
            json_path = (
                args.json_dir / f"{name}.json" if args.json_dir is not None else None
            )
            _run_one(
                name,
                args.scale,
                json_path,
                out,
                workers=args.workers,
                profile=args.profile,
            )
            print(file=out)
        return 0
    raise AssertionError(f"unhandled command {args.command!r}")  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
