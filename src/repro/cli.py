"""Command-line interface: list and run the paper-reproduction experiments.

Examples
--------
::

    repro list
    repro run fig07_top1
    repro run fig11a_hourly --workers 4 --profile
    repro run fig11c_vary_l --scale paper --json results/fig11c.json
    repro run fig11a_hourly --workers 8 --max-retries 2 --task-timeout 600
    repro run fig09_top --resume            # checkpoint to .repro/journal.jsonl
    repro run-all --scale smoke

Resilience flags (``--max-retries``, ``--task-timeout``, ``--on-failure``,
``--resume``) configure the execution policy of
:mod:`repro.runtime.resilience`: failed replications/sweep points are
retried with deterministic backoff, hung or dead workers lose only the
work in flight, and with ``--resume`` completed tasks are checkpointed to
an append-only journal so a killed run picks up where it stopped — with
output bit-identical to an uninterrupted run.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

from repro.experiments import SCALES, list_experiments, run_experiment
from repro.runtime.instrument import format_report
from repro.runtime.journal import Journal
from repro.runtime.resilience import ON_FAILURE, ResilienceConfig
from repro.runtime.shm import set_artifact_sharing
from repro.utils.results_io import write_text_atomic

__all__ = ["main", "build_parser"]

#: default checkpoint journal for ``--resume`` without an explicit path;
#: fingerprints are scoped per experiment@scale, so one file serves all runs
DEFAULT_JOURNAL = Path(".repro") / "journal.jsonl"

#: the verification campaign journals separately — its tasks are case
#: specs, not experiment points (fingerprints are scoped per seed)
DEFAULT_VERIFY_JOURNAL = Path(".repro") / "verify_journal.jsonl"

#: the fault-injection campaign likewise journals its own case specs
DEFAULT_FAULTS_JOURNAL = Path(".repro") / "faults_journal.jsonl"

#: and so does the incremental-vs-cold differential campaign
DEFAULT_INCREMENTAL_JOURNAL = Path(".repro") / "incremental_journal.jsonl"

#: and the constrained-placement campaign
DEFAULT_CONSTRAINED_JOURNAL = Path(".repro") / "constrained_journal.jsonl"

#: and the replication (migrate-vs-replicate lattice) campaign
DEFAULT_REPLICATION_JOURNAL = Path(".repro") / "replication_journal.jsonl"

#: and the sharded-execution differential campaign
DEFAULT_SHARD_JOURNAL = Path(".repro") / "shard_journal.jsonl"

#: campaign/benchmark JSON reports land here (gitignored): generated
#: artifacts never sit next to tracked sources
DEFAULT_REPORTS_DIR = Path("reports")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Traffic-optimal VNF placement and migration (IPDPS 2022) — "
            "regenerate the paper's figures"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available experiments")

    run = sub.add_parser("run", help="run one experiment")
    run.add_argument("experiment", help="experiment name (see `repro list`)")
    run.add_argument(
        "--scale", choices=SCALES, default="default", help="experiment scale"
    )
    run.add_argument("--json", type=Path, default=None, help="also write JSON here")
    run.add_argument(
        "--plot", action="store_true", help="also render a sparkline chart"
    )
    _add_runtime_args(run)

    run_all = sub.add_parser("run-all", help="run every registered experiment")
    run_all.add_argument(
        "--scale", choices=SCALES, default="default", help="experiment scale"
    )
    run_all.add_argument(
        "--json-dir", type=Path, default=None, help="directory for per-experiment JSON"
    )
    _add_runtime_args(run_all)

    verify = sub.add_parser(
        "verify",
        help="run the differential + metamorphic verification campaign",
        description=(
            "Seeded random scenarios across every topology family and solver "
            "entry point, audited against invariants (Eq. 1 / Eq. 8 / "
            "feasibility / LP floor), the size-gated exact oracles, "
            "differential bit-identity and metamorphic cost relations.  Any "
            "failing case is shrunk to a minimal repro.  Exits 1 on violations."
        ),
    )
    verify.add_argument(
        "--cases", type=int, default=100, metavar="N", help="scenarios to run"
    )
    verify.add_argument("--seed", type=int, default=0, help="campaign seed")
    verify.add_argument(
        "--workers",
        type=int,
        default=1,
        metavar="N",
        help="worker processes for case fan-out (default: 1, serial)",
    )
    verify.add_argument(
        "--json",
        type=Path,
        default=DEFAULT_REPORTS_DIR / "verify_report.json",
        metavar="PATH",
        help="where to write the JSON report (default: reports/verify_report.json)",
    )
    verify.add_argument(
        "--no-shrink",
        action="store_true",
        help="report failing cases as generated, without minimizing them",
    )
    verify.add_argument(
        "--inject-case",
        type=int,
        default=None,
        metavar="ID",
        help=(
            "deliberately corrupt this case's result (self-test: the campaign "
            "must catch and shrink it)"
        ),
    )
    verify.add_argument(
        "--inject-kind",
        choices=("cost", "duplicate"),
        default="cost",
        help="which corruption --inject-case applies",
    )
    verify.add_argument(
        "--resume",
        nargs="?",
        type=Path,
        const=DEFAULT_VERIFY_JOURNAL,
        default=None,
        metavar="JOURNAL",
        help=(
            "journal completed cases and skip them on re-run "
            f"(default file: {DEFAULT_VERIFY_JOURNAL})"
        ),
    )

    faults = sub.add_parser(
        "faults",
        help="run the fault-injection survivability campaign",
        description=(
            "Seeded fault-aware simulated days (switch/host/link failures "
            "with repair) across the larger topology families, audited "
            "against the survivability invariants: no VNF ever on a failed "
            "switch, every cost recomputed on the degraded APSP, dropped "
            "traffic and repair pricing exact, byte-identical replay.  A "
            "diagnosed mid-day InfeasibleError (fabric lost too many "
            "switches) is a recorded outcome, not a failure.  Exits 1 on "
            "violations."
        ),
    )
    faults.add_argument(
        "--cases", type=int, default=100, metavar="N", help="scenarios to run"
    )
    faults.add_argument("--seed", type=int, default=0, help="campaign seed")
    faults.add_argument(
        "--workers",
        type=int,
        default=1,
        metavar="N",
        help="worker processes for case fan-out (default: 1, serial)",
    )
    faults.add_argument(
        "--json",
        type=Path,
        default=DEFAULT_REPORTS_DIR / "faults_report.json",
        metavar="PATH",
        help="where to write the JSON report (default: reports/faults_report.json)",
    )
    faults.add_argument(
        "--resume",
        nargs="?",
        type=Path,
        const=DEFAULT_FAULTS_JOURNAL,
        default=None,
        metavar="JOURNAL",
        help=(
            "journal completed cases and skip them on re-run "
            f"(default file: {DEFAULT_FAULTS_JOURNAL})"
        ),
    )

    incremental = sub.add_parser(
        "incremental",
        help="run the incremental-vs-cold differential campaign",
        description=(
            "Seeded fault scenarios where the incremental solver core "
            "(delta-maintained APSP, seeded degraded views, shared stroll "
            "artifacts) is checked against the cold path as a differential "
            "oracle: DynamicAPSP distances bit-identical to a cold recompute "
            "after every fail/repair delta, the predecessor table a valid "
            "shortest-path tree, simulated days byte-identical with strictly "
            "fewer cold APSP solves on degraded traces.  Exits 1 on "
            "violations."
        ),
    )
    incremental.add_argument(
        "--cases", type=int, default=200, metavar="N", help="scenarios to run"
    )
    incremental.add_argument("--seed", type=int, default=0, help="campaign seed")
    incremental.add_argument(
        "--workers",
        type=int,
        default=1,
        metavar="N",
        help="worker processes for case fan-out (default: 1, serial)",
    )
    incremental.add_argument(
        "--json",
        type=Path,
        default=DEFAULT_REPORTS_DIR / "incremental_report.json",
        metavar="PATH",
        help="where to write the JSON report (default: reports/incremental_report.json)",
    )
    incremental.add_argument(
        "--resume",
        nargs="?",
        type=Path,
        const=DEFAULT_INCREMENTAL_JOURNAL,
        default=None,
        metavar="JOURNAL",
        help=(
            "journal completed cases and skip them on re-run "
            f"(default file: {DEFAULT_INCREMENTAL_JOURNAL})"
        ),
    )

    constrained = sub.add_parser(
        "constrained",
        help="run the constrained-placement verification campaign",
        description=(
            "Seeded capacity/delay/bandwidth-constrained queries across the "
            "oracle-sized topology families, solved by the MSG stage-graph "
            "family (plus the multi-SFC contention loop) and audited from "
            "scratch: every accepted placement re-checked against the "
            "constraints off the APSP table, never below the constrained "
            "exact optimum, infeasibility claims confirmed by the exact "
            "referee and carrying a structured diagnosis, byte-identical "
            "replay.  A diagnosed infeasible instance is a recorded "
            "outcome, not a failure.  Exits 1 on violations."
        ),
    )
    constrained.add_argument(
        "--cases", type=int, default=200, metavar="N", help="scenarios to run"
    )
    constrained.add_argument("--seed", type=int, default=0, help="campaign seed")
    constrained.add_argument(
        "--workers",
        type=int,
        default=1,
        metavar="N",
        help="worker processes for case fan-out (default: 1, serial)",
    )
    constrained.add_argument(
        "--json",
        type=Path,
        default=DEFAULT_REPORTS_DIR / "constrained_report.json",
        metavar="PATH",
        help="where to write the JSON report (default: reports/constrained_report.json)",
    )
    constrained.add_argument(
        "--resume",
        nargs="?",
        type=Path,
        const=DEFAULT_CONSTRAINED_JOURNAL,
        default=None,
        metavar="JOURNAL",
        help=(
            "journal completed cases and skip them on re-run "
            f"(default file: {DEFAULT_CONSTRAINED_JOURNAL})"
        ),
    )

    replication = sub.add_parser(
        "replication",
        help="run the migrate-vs-replicate lattice verification campaign",
        description=(
            "Seeded simulated days (half fault-free, half with seeded "
            "failures) under the tom-replication policy, audited from "
            "scratch: serving cost as Eq. 1 with a per-flow min over chain "
            "copies, sync and C_r accounting exact, the C_r <= C_b "
            "dominance gate respected, the chosen action the minimum of "
            "the priced option menu, failovers only to live replicas with "
            "repairs priced from paid moves, the exact lattice oracle "
            "never beaten, rho=0 byte-identical to plain TOM and rho→∞ "
            "replication-free, byte-identical replay.  Exits 1 on "
            "violations."
        ),
    )
    replication.add_argument(
        "--cases", type=int, default=100, metavar="N", help="scenarios to run"
    )
    replication.add_argument("--seed", type=int, default=0, help="campaign seed")
    replication.add_argument(
        "--workers",
        type=int,
        default=1,
        metavar="N",
        help="worker processes for case fan-out (default: 1, serial)",
    )
    replication.add_argument(
        "--json",
        type=Path,
        default=DEFAULT_REPORTS_DIR / "replication_report.json",
        metavar="PATH",
        help="where to write the JSON report (default: reports/replication_report.json)",
    )
    replication.add_argument(
        "--resume",
        nargs="?",
        type=Path,
        const=DEFAULT_REPLICATION_JOURNAL,
        default=None,
        metavar="JOURNAL",
        help=(
            "journal completed cases and skip them on re-run "
            f"(default file: {DEFAULT_REPLICATION_JOURNAL})"
        ),
    )

    shard = sub.add_parser(
        "shard",
        help="run the sharded-execution verification campaign",
        description=(
            "Seeded simulated days (plain, fault-injected and replicating) "
            "where the supervised sharded execution layer is checked "
            "against the unsharded loop as a differential oracle: "
            "byte-identical DayResults at every shard count, shard-count "
            "invariance in the multi-block regime, and byte-identical "
            "results under deterministic chaos (worker crashes, kills, "
            "retries, pool rebuilds).  Exits 1 on violations."
        ),
    )
    shard.add_argument(
        "--cases", type=int, default=200, metavar="N", help="scenarios to run"
    )
    shard.add_argument("--seed", type=int, default=0, help="campaign seed")
    shard.add_argument(
        "--workers",
        type=int,
        default=1,
        metavar="N",
        help="worker processes for case fan-out (default: 1, serial)",
    )
    shard.add_argument(
        "--json",
        type=Path,
        default=DEFAULT_REPORTS_DIR / "shard_report.json",
        metavar="PATH",
        help="where to write the JSON report (default: reports/shard_report.json)",
    )
    shard.add_argument(
        "--resume",
        nargs="?",
        type=Path,
        const=DEFAULT_SHARD_JOURNAL,
        default=None,
        metavar="JOURNAL",
        help=(
            "journal completed cases and skip them on re-run "
            f"(default file: {DEFAULT_SHARD_JOURNAL})"
        ),
    )

    serve = sub.add_parser(
        "serve",
        help="run the hardened placement service against a churn workload",
        description=(
            "Stand up the long-lived placement service (pooled solver "
            "sessions, admission control, deadline degradation, crash "
            "quarantine; DESIGN.md §5h) and drive it with a seeded "
            "flow-churn workload: redrawn tenant flowsets, optional "
            "deadline pressure, fault-event ingestion and migrations.  "
            "Prints throughput, latency percentiles, shed and degraded "
            "counts; optionally serves /healthz /readyz /metrics probes "
            "while the run is live."
        ),
    )
    serve.add_argument("--k", type=int, default=4, help="fat-tree degree")
    serve.add_argument(
        "--pairs", type=int, default=12, metavar="L", help="VM pairs per request"
    )
    serve.add_argument("--sfc", type=int, default=2, metavar="N", help="SFC length")
    serve.add_argument(
        "--requests", type=int, default=200, metavar="N", help="requests to issue"
    )
    serve.add_argument(
        "--concurrency", type=int, default=16, metavar="N",
        help="client-side concurrent submitters",
    )
    serve.add_argument("--seed", type=int, default=11, help="workload seed")
    serve.add_argument(
        "--max-queue", type=int, default=128, metavar="N",
        help="outstanding-request bound (queued + in-flight)",
    )
    serve.add_argument(
        "--solver-concurrency", type=int, default=4, metavar="N",
        help="concurrent solver threads in the service",
    )
    serve.add_argument(
        "--rate-limit", type=float, default=None, metavar="RPS",
        help="per-topology token-bucket refill (default: off)",
    )
    serve.add_argument(
        "--deadline", type=float, default=None, metavar="SECONDS",
        help="soft deadline carried by every request",
    )
    serve.add_argument(
        "--deadline-every", type=int, default=0, metavar="N",
        help="every Nth request carries a zero deadline (degradation pressure)",
    )
    serve.add_argument(
        "--latency-budget", type=float, default=None, metavar="SECONDS",
        help="p95 solve-latency budget for the circuit breaker (default: off)",
    )
    serve.add_argument(
        "--fault-every", type=int, default=0, metavar="N",
        help="ingest a switch fail/repair event every N requests",
    )
    serve.add_argument(
        "--migrate-every", type=int, default=0, metavar="N",
        help="every Nth request migrates from the last served placement",
    )
    serve.add_argument(
        "--probe-port", type=int, default=None, metavar="PORT",
        help="also serve /healthz /readyz /metrics on 127.0.0.1:PORT",
    )
    serve.add_argument(
        "--json",
        type=Path,
        default=DEFAULT_REPORTS_DIR / "serve_report.json",
        metavar="PATH",
        help="where to write the JSON summary (default: reports/serve_report.json)",
    )
    return parser


def _add_runtime_args(sub: argparse.ArgumentParser) -> None:
    sub.add_argument(
        "--workers",
        type=int,
        default=1,
        metavar="N",
        help="worker processes for replication/sweep fan-out (default: 1, serial)",
    )
    sub.add_argument(
        "--profile",
        action="store_true",
        help="print the runtime report (phase timers, cache hit rates, speedup)",
    )
    sub.add_argument(
        "--max-retries",
        type=int,
        default=0,
        metavar="N",
        help="extra attempts per failed replication/sweep point (default: 0)",
    )
    sub.add_argument(
        "--task-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="kill and retry any single task running longer than this",
    )
    sub.add_argument(
        "--on-failure",
        choices=ON_FAILURE,
        default="fail",
        help=(
            "what to do when a task exhausts its retries: abort the run "
            "('fail', default) or record it and keep going ('skip')"
        ),
    )
    sub.add_argument(
        "--no-shared-artifacts",
        action="store_true",
        help=(
            "do not ship precomputed per-topology artifacts (APSP, stroll "
            "matrices) to worker processes via shared memory; each worker "
            "re-derives them (results are identical either way)"
        ),
    )
    sub.add_argument(
        "--incremental",
        dest="incremental",
        action="store_true",
        default=True,
        help=(
            "maintain solver artifacts incrementally across simulated hours "
            "and fault events (default; results are bit-identical either way)"
        ),
    )
    sub.add_argument(
        "--no-incremental",
        dest="incremental",
        action="store_false",
        help=(
            "rebuild every hour's APSP tables and degraded views from "
            "scratch — the cold differential-oracle path"
        ),
    )
    sub.add_argument(
        "--shards",
        type=int,
        default=None,
        metavar="N",
        help=(
            "split each simulated day's flow population into N deterministic "
            "shards aggregated by supervised pool workers (results are "
            "bit-identical to the unsharded loop; policies that need "
            "per-flow access fall back to it automatically)"
        ),
    )
    sub.add_argument(
        "--shard-mem-budget",
        type=int,
        default=None,
        metavar="BYTES",
        help=(
            "per-shard memory budget for the aggregation gather; over "
            "budget, workers degrade to column strips and the supervisor "
            "splits tasks block-by-block before giving up"
        ),
    )
    sub.add_argument(
        "--resume",
        nargs="?",
        type=Path,
        const=DEFAULT_JOURNAL,
        default=None,
        metavar="JOURNAL",
        help=(
            "checkpoint completed tasks to an append-only journal and skip "
            f"tasks already journalled (default file: {DEFAULT_JOURNAL})"
        ),
    )


def _resilience_from_args(args, journal: Journal | None) -> ResilienceConfig:
    return ResilienceConfig(
        max_retries=args.max_retries,
        task_timeout=args.task_timeout,
        on_failure=args.on_failure,
        journal=journal,
    )


def _run_one(
    name: str,
    scale: str,
    json_path: Path | None,
    out,
    plot: bool = False,
    workers: int = 1,
    profile: bool = False,
    resilience: ResilienceConfig | None = None,
) -> None:
    start = time.perf_counter()
    result = run_experiment(name, scale, workers=workers, resilience=resilience)
    elapsed = time.perf_counter() - start
    print(result.to_table(), file=out)
    if plot:
        print(file=out)
        print(result.to_chart(), file=out)
    if profile:
        print(file=out)
        print(format_report(result.params["runtime"]), file=out)
    print(f"[{name} @ {scale}: {elapsed:.1f}s]", file=out)
    if json_path is not None:
        # temp-file + os.replace: a crash mid-write can never leave a
        # truncated JSON where a previous good result used to be
        write_text_atomic(json_path, result.to_json())
        print(f"wrote {json_path}", file=out)


def main(argv: list[str] | None = None, out=None) -> int:
    out = out if out is not None else sys.stdout
    try:
        return _dispatch(build_parser().parse_args(argv), out)
    except BrokenPipeError:  # e.g. `repro list | head`
        return 0


def _run_verify(args, out) -> int:
    from repro.verify import CampaignConfig, run_campaign

    if args.resume is not None and Path(args.resume).exists():
        print(f"resuming from {args.resume}", file=out)
    start = time.perf_counter()
    report = run_campaign(
        CampaignConfig(
            cases=args.cases,
            seed=args.seed,
            workers=args.workers,
            shrink=not args.no_shrink,
            inject_case=args.inject_case,
            inject_kind=args.inject_kind,
            journal_path=args.resume,
            report_path=args.json,
        )
    )
    elapsed = time.perf_counter() - start
    hits = report["runtime"]["journal_hits"]
    resumed = f", {hits} from journal" if hits else ""
    print(
        f"{report['cases']} cases, {report['checks']} checks, "
        f"{report['violations']} violations{resumed} "
        f"[seed {args.seed}, {elapsed:.1f}s]",
        file=out,
    )
    for failure in report["failures"]:
        shrunk = failure.get("shrunk")
        where = (
            f"shrunk to {shrunk['num_flows']} flow(s): {shrunk['spec']}"
            if shrunk
            else f"spec: {failure['spec']}"
        )
        print(
            f"  case {failure['case_id']} ({failure['algo']}/{failure['entry']}/"
            f"{failure['mode']} on {failure['family']}): "
            f"{len(failure['violations'])} violation(s); {where}",
            file=out,
        )
        for violation in failure["violations"][:3]:
            print(f"    [{violation['invariant']}] {violation['message']}", file=out)
    print(f"wrote {args.json}", file=out)
    return 1 if report["violations"] else 0


def _run_faults(args, out) -> int:
    from repro.verify import FaultCampaignConfig, run_fault_campaign

    if args.resume is not None and Path(args.resume).exists():
        print(f"resuming from {args.resume}", file=out)
    start = time.perf_counter()
    report = run_fault_campaign(
        FaultCampaignConfig(
            cases=args.cases,
            seed=args.seed,
            workers=args.workers,
            journal_path=args.resume,
            report_path=args.json,
        )
    )
    elapsed = time.perf_counter() - start
    hits = report["runtime"]["journal_hits"]
    resumed = f", {hits} from journal" if hits else ""
    outcomes = report["coverage"]["by_outcome"]
    print(
        f"{report['cases']} cases ({outcomes.get('completed', 0)} completed, "
        f"{outcomes.get('infeasible', 0)} infeasible), "
        f"{report['checks']} checks, "
        f"{report['violations']} violations{resumed} "
        f"[seed {args.seed}, {elapsed:.1f}s]",
        file=out,
    )
    for failure in report["failures"]:
        print(
            f"  case {failure['case_id']} ({failure['policy']} on "
            f"{failure['family']}): {len(failure['violations'])} violation(s); "
            f"spec: {failure['spec']}",
            file=out,
        )
        for violation in failure["violations"][:3]:
            print(f"    [{violation['invariant']}] {violation['message']}", file=out)
    print(f"wrote {args.json}", file=out)
    return 1 if report["violations"] else 0


def _run_incremental(args, out) -> int:
    from repro.verify import IncrementalCampaignConfig, run_incremental_campaign

    if args.resume is not None and Path(args.resume).exists():
        print(f"resuming from {args.resume}", file=out)
    start = time.perf_counter()
    report = run_incremental_campaign(
        IncrementalCampaignConfig(
            cases=args.cases,
            seed=args.seed,
            workers=args.workers,
            journal_path=args.resume,
            report_path=args.json,
        )
    )
    elapsed = time.perf_counter() - start
    hits = report["runtime"]["journal_hits"]
    resumed = f", {hits} from journal" if hits else ""
    outcomes = report["coverage"]["by_outcome"]
    print(
        f"{report['cases']} cases ({outcomes.get('completed', 0)} completed, "
        f"{outcomes.get('infeasible', 0)} infeasible), "
        f"{report['checks']} checks, "
        f"{report['violations']} violations{resumed} "
        f"[seed {args.seed}, {elapsed:.1f}s]",
        file=out,
    )
    for failure in report["failures"]:
        print(
            f"  case {failure['case_id']} ({failure['policy']} on "
            f"{failure['family']}): {len(failure['violations'])} violation(s); "
            f"spec: {failure['spec']}",
            file=out,
        )
        for violation in failure["violations"][:3]:
            print(f"    [{violation['invariant']}] {violation['message']}", file=out)
    print(f"wrote {args.json}", file=out)
    return 1 if report["violations"] else 0


def _run_constrained(args, out) -> int:
    from repro.verify import ConstrainedCampaignConfig, run_constrained_campaign

    if args.resume is not None and Path(args.resume).exists():
        print(f"resuming from {args.resume}", file=out)
    start = time.perf_counter()
    report = run_constrained_campaign(
        ConstrainedCampaignConfig(
            cases=args.cases,
            seed=args.seed,
            workers=args.workers,
            journal_path=args.resume,
            report_path=args.json,
        )
    )
    elapsed = time.perf_counter() - start
    hits = report["runtime"]["journal_hits"]
    resumed = f", {hits} from journal" if hits else ""
    outcomes = report["coverage"]["by_outcome"]
    print(
        f"{report['cases']} cases ({outcomes.get('completed', 0)} completed, "
        f"{outcomes.get('infeasible', 0)} infeasible), "
        f"{report['checks']} checks, "
        f"{report['violations']} violations{resumed} "
        f"[seed {args.seed}, {elapsed:.1f}s]",
        file=out,
    )
    for failure in report["failures"]:
        print(
            f"  case {failure['case_id']} ({failure['policy']} on "
            f"{failure['family']}): {len(failure['violations'])} violation(s); "
            f"spec: {failure['spec']}",
            file=out,
        )
        for violation in failure["violations"][:3]:
            print(f"    [{violation['invariant']}] {violation['message']}", file=out)
    print(f"wrote {args.json}", file=out)
    return 1 if report["violations"] else 0


def _run_replication(args, out) -> int:
    from repro.verify import ReplicationCampaignConfig, run_replication_campaign

    if args.resume is not None and Path(args.resume).exists():
        print(f"resuming from {args.resume}", file=out)
    start = time.perf_counter()
    report = run_replication_campaign(
        ReplicationCampaignConfig(
            cases=args.cases,
            seed=args.seed,
            workers=args.workers,
            journal_path=args.resume,
            report_path=args.json,
        )
    )
    elapsed = time.perf_counter() - start
    hits = report["runtime"]["journal_hits"]
    resumed = f", {hits} from journal" if hits else ""
    outcomes = report["coverage"]["by_outcome"]
    print(
        f"{report['cases']} cases ({outcomes.get('completed', 0)} completed, "
        f"{outcomes.get('infeasible', 0)} infeasible), "
        f"{report['checks']} checks, "
        f"{report['violations']} violations{resumed} "
        f"[seed {args.seed}, {elapsed:.1f}s]",
        file=out,
    )
    for failure in report["failures"]:
        mode = "faulty" if failure["faulty"] else "fault-free"
        print(
            f"  case {failure['case_id']} ({mode} on "
            f"{failure['family']}): {len(failure['violations'])} violation(s); "
            f"spec: {failure['spec']}",
            file=out,
        )
        for violation in failure["violations"][:3]:
            print(f"    [{violation['invariant']}] {violation['message']}", file=out)
    print(f"wrote {args.json}", file=out)
    return 1 if report["violations"] else 0


def _run_shard(args, out) -> int:
    from repro.verify import ShardCampaignConfig, run_shard_campaign

    if args.resume is not None and Path(args.resume).exists():
        print(f"resuming from {args.resume}", file=out)
    start = time.perf_counter()
    report = run_shard_campaign(
        ShardCampaignConfig(
            cases=args.cases,
            seed=args.seed,
            workers=args.workers,
            journal_path=args.resume,
            report_path=args.json,
        )
    )
    elapsed = time.perf_counter() - start
    hits = report["runtime"]["journal_hits"]
    resumed = f", {hits} from journal" if hits else ""
    outcomes = report["coverage"]["by_outcome"]
    kinds = report["coverage"]["by_day_kind"]
    print(
        f"{report['cases']} cases "
        f"({kinds.get('plain', 0)} plain, {kinds.get('fault', 0)} fault, "
        f"{kinds.get('replication', 0)} replication; "
        f"{outcomes.get('infeasible', 0)} infeasible), "
        f"{report['checks']} checks, "
        f"{report['violations']} violations{resumed} "
        f"[seed {args.seed}, {elapsed:.1f}s]",
        file=out,
    )
    for failure in report["failures"]:
        print(
            f"  case {failure['case_id']} ({failure['policy']} on "
            f"{failure['family']}, {failure['day_kind']}): "
            f"{len(failure['violations'])} violation(s); "
            f"spec: {failure['spec']}",
            file=out,
        )
        for violation in failure["violations"][:3]:
            print(f"    [{violation['invariant']}] {violation['message']}", file=out)
    print(f"wrote {args.json}", file=out)
    return 1 if report["violations"] else 0


def _run_serve(args, out) -> int:
    import asyncio
    import json

    from repro.serve import ChurnConfig, PlacementService, ServeConfig, run_churn
    from repro.serve.health import start_probe_server

    config = ServeConfig(
        max_queue=args.max_queue,
        max_concurrency=args.solver_concurrency,
        rate_limit=args.rate_limit,
        latency_budget=args.latency_budget,
    )
    churn = ChurnConfig(
        k=args.k,
        num_pairs=args.pairs,
        sfc_size=args.sfc,
        requests=args.requests,
        concurrency=args.concurrency,
        seed=args.seed,
        deadline=args.deadline,
        deadline_every=args.deadline_every,
        fault_every=args.fault_every,
        migrate_every=args.migrate_every,
    )

    async def run() -> dict:
        probe_server = None
        async with PlacementService(config) as service:
            if args.probe_port is not None:
                probe_server = await start_probe_server(
                    service, port=args.probe_port
                )
                port = probe_server.sockets[0].getsockname()[1]
                print(f"probes on http://127.0.0.1:{port}/metrics", file=out)
            try:
                summary = await run_churn(service, churn)
            finally:
                if probe_server is not None:
                    probe_server.close()
                    await probe_server.wait_closed()
            summary["service"] = service.metrics()
        return summary

    summary = asyncio.run(run())
    latency = summary["latency"]
    print(
        f"{summary['completed']}/{summary['requests']} served "
        f"({summary['shed_total']} shed, {summary['failed']} failed, "
        f"{summary['degraded']} degraded, {summary['retried']} retried) "
        f"at {summary['rps']:.0f} rps",
        file=out,
    )
    print(
        f"latency p50/p95/p99: {1000 * latency['p50']:.1f} / "
        f"{1000 * latency['p95']:.1f} / {1000 * latency['p99']:.1f} ms; "
        f"{summary['users_modeled']:,} users modeled",
        file=out,
    )
    if args.json is not None:
        write_text_atomic(args.json, json.dumps(summary, indent=2, sort_keys=True))
        print(f"wrote {args.json}", file=out)
    return 0


def _dispatch(args, out) -> int:
    if args.command == "list":
        for name, description in list_experiments().items():
            print(f"{name:28s} {description}", file=out)
        return 0
    if args.command == "serve":
        return _run_serve(args, out)
    if args.command == "verify":
        return _run_verify(args, out)
    if args.command == "faults":
        return _run_faults(args, out)
    if args.command == "incremental":
        return _run_incremental(args, out)
    if args.command == "constrained":
        return _run_constrained(args, out)
    if args.command == "replication":
        return _run_replication(args, out)
    if args.command == "shard":
        return _run_shard(args, out)
    if getattr(args, "no_shared_artifacts", False):
        set_artifact_sharing(False)
    if not getattr(args, "incremental", True):
        from repro.sim.engine import set_incremental

        set_incremental(False)
    if getattr(args, "shards", None):
        from repro.shard import ShardConfig
        from repro.sim.engine import set_sharding

        set_sharding(
            ShardConfig(
                num_shards=args.shards,
                mem_budget=args.shard_mem_budget,
            )
        )
    journal = Journal(args.resume) if getattr(args, "resume", None) else None
    try:
        if args.command == "run":
            if journal is not None and len(journal):
                print(
                    f"resuming from {journal.path} ({len(journal)} tasks journalled)",
                    file=out,
                )
            _run_one(
                args.experiment,
                args.scale,
                args.json,
                out,
                plot=args.plot,
                workers=args.workers,
                profile=args.profile,
                resilience=_resilience_from_args(args, journal),
            )
            return 0
        if args.command == "run-all":
            for name in list_experiments():
                json_path = (
                    args.json_dir / f"{name}.json"
                    if args.json_dir is not None
                    else None
                )
                _run_one(
                    name,
                    args.scale,
                    json_path,
                    out,
                    workers=args.workers,
                    profile=args.profile,
                    resilience=_resilience_from_args(args, journal),
                )
                print(file=out)
            return 0
    finally:
        if journal is not None:
            journal.close()
    raise AssertionError(f"unhandled command {args.command!r}")  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
