"""Command-line interface: list and run the paper-reproduction experiments.

Examples
--------
::

    repro list
    repro run fig07_top1
    repro run fig11a_hourly --workers 4 --profile
    repro run fig11c_vary_l --scale paper --json results/fig11c.json
    repro run fig11a_hourly --workers 8 --max-retries 2 --task-timeout 600
    repro run fig09_top --resume            # checkpoint to .repro/journal.jsonl
    repro run-all --scale smoke

Resilience flags (``--max-retries``, ``--task-timeout``, ``--on-failure``,
``--resume``) configure the execution policy of
:mod:`repro.runtime.resilience`: failed replications/sweep points are
retried with deterministic backoff, hung or dead workers lose only the
work in flight, and with ``--resume`` completed tasks are checkpointed to
an append-only journal so a killed run picks up where it stopped — with
output bit-identical to an uninterrupted run.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

from repro.experiments import SCALES, list_experiments, run_experiment
from repro.runtime.instrument import format_report
from repro.runtime.journal import Journal
from repro.runtime.resilience import ON_FAILURE, ResilienceConfig
from repro.runtime.shm import set_artifact_sharing
from repro.utils.results_io import write_text_atomic

__all__ = ["main", "build_parser"]

#: default checkpoint journal for ``--resume`` without an explicit path;
#: fingerprints are scoped per experiment@scale, so one file serves all runs
DEFAULT_JOURNAL = Path(".repro") / "journal.jsonl"


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Traffic-optimal VNF placement and migration (IPDPS 2022) — "
            "regenerate the paper's figures"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available experiments")

    run = sub.add_parser("run", help="run one experiment")
    run.add_argument("experiment", help="experiment name (see `repro list`)")
    run.add_argument(
        "--scale", choices=SCALES, default="default", help="experiment scale"
    )
    run.add_argument("--json", type=Path, default=None, help="also write JSON here")
    run.add_argument(
        "--plot", action="store_true", help="also render a sparkline chart"
    )
    _add_runtime_args(run)

    run_all = sub.add_parser("run-all", help="run every registered experiment")
    run_all.add_argument(
        "--scale", choices=SCALES, default="default", help="experiment scale"
    )
    run_all.add_argument(
        "--json-dir", type=Path, default=None, help="directory for per-experiment JSON"
    )
    _add_runtime_args(run_all)
    return parser


def _add_runtime_args(sub: argparse.ArgumentParser) -> None:
    sub.add_argument(
        "--workers",
        type=int,
        default=1,
        metavar="N",
        help="worker processes for replication/sweep fan-out (default: 1, serial)",
    )
    sub.add_argument(
        "--profile",
        action="store_true",
        help="print the runtime report (phase timers, cache hit rates, speedup)",
    )
    sub.add_argument(
        "--max-retries",
        type=int,
        default=0,
        metavar="N",
        help="extra attempts per failed replication/sweep point (default: 0)",
    )
    sub.add_argument(
        "--task-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="kill and retry any single task running longer than this",
    )
    sub.add_argument(
        "--on-failure",
        choices=ON_FAILURE,
        default="fail",
        help=(
            "what to do when a task exhausts its retries: abort the run "
            "('fail', default) or record it and keep going ('skip')"
        ),
    )
    sub.add_argument(
        "--no-shared-artifacts",
        action="store_true",
        help=(
            "do not ship precomputed per-topology artifacts (APSP, stroll "
            "matrices) to worker processes via shared memory; each worker "
            "re-derives them (results are identical either way)"
        ),
    )
    sub.add_argument(
        "--resume",
        nargs="?",
        type=Path,
        const=DEFAULT_JOURNAL,
        default=None,
        metavar="JOURNAL",
        help=(
            "checkpoint completed tasks to an append-only journal and skip "
            f"tasks already journalled (default file: {DEFAULT_JOURNAL})"
        ),
    )


def _resilience_from_args(args, journal: Journal | None) -> ResilienceConfig:
    return ResilienceConfig(
        max_retries=args.max_retries,
        task_timeout=args.task_timeout,
        on_failure=args.on_failure,
        journal=journal,
    )


def _run_one(
    name: str,
    scale: str,
    json_path: Path | None,
    out,
    plot: bool = False,
    workers: int = 1,
    profile: bool = False,
    resilience: ResilienceConfig | None = None,
) -> None:
    start = time.perf_counter()
    result = run_experiment(name, scale, workers=workers, resilience=resilience)
    elapsed = time.perf_counter() - start
    print(result.to_table(), file=out)
    if plot:
        print(file=out)
        print(result.to_chart(), file=out)
    if profile:
        print(file=out)
        print(format_report(result.params["runtime"]), file=out)
    print(f"[{name} @ {scale}: {elapsed:.1f}s]", file=out)
    if json_path is not None:
        # temp-file + os.replace: a crash mid-write can never leave a
        # truncated JSON where a previous good result used to be
        write_text_atomic(json_path, result.to_json())
        print(f"wrote {json_path}", file=out)


def main(argv: list[str] | None = None, out=None) -> int:
    out = out if out is not None else sys.stdout
    try:
        return _dispatch(build_parser().parse_args(argv), out)
    except BrokenPipeError:  # e.g. `repro list | head`
        return 0


def _dispatch(args, out) -> int:
    if args.command == "list":
        for name, description in list_experiments().items():
            print(f"{name:28s} {description}", file=out)
        return 0
    if getattr(args, "no_shared_artifacts", False):
        set_artifact_sharing(False)
    journal = Journal(args.resume) if getattr(args, "resume", None) else None
    try:
        if args.command == "run":
            if journal is not None and len(journal):
                print(
                    f"resuming from {journal.path} ({len(journal)} tasks journalled)",
                    file=out,
                )
            _run_one(
                args.experiment,
                args.scale,
                args.json,
                out,
                plot=args.plot,
                workers=args.workers,
                profile=args.profile,
                resilience=_resilience_from_args(args, journal),
            )
            return 0
        if args.command == "run-all":
            for name in list_experiments():
                json_path = (
                    args.json_dir / f"{name}.json"
                    if args.json_dir is not None
                    else None
                )
                _run_one(
                    name,
                    args.scale,
                    json_path,
                    out,
                    workers=args.workers,
                    profile=args.profile,
                    resilience=_resilience_from_args(args, journal),
                )
                print(file=out)
            return 0
    finally:
        if journal is not None:
            journal.close()
    raise AssertionError(f"unhandled command {args.command!r}")  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
