"""VNF replication (the paper's Section VII future work).

The paper closes by asking "to which extent VNF replication could be
beneficial in terms of dynamic traffic mitigation when compared to VNF
migration".  This module implements the natural replication model for
the single-SFC PPDC so the question can be answered quantitatively:

* Each VNF ``f_j`` may run ``r`` replicas, each on its own switch; a
  *replicated placement* is an ``(r, n)`` matrix of distinct switches
  whose ``i``-th row is a complete copy of the chain.
* Policy preservation is per flow: a flow picks ONE chain copy end to
  end (replicas of a stateful VNF cannot be mixed mid-flow without
  state transfer) — the copy minimizing its own policy-preserving route.
* The replication objective mirrors Eq. 1 with a per-flow min over
  copies:

      C_a^rep(P) = Σ_i λ_i · min_r [ c(s(v_i), P[r,1]) +
                                     Σ_j c(P[r,j], P[r,j+1]) +
                                     c(P[r,n], s(v'_i)) ]

:func:`replicated_placement` builds the copies greedily — copy 1 is the
plain Algorithm 3 placement; each further copy targets the rack
neighbourhood whose flows are currently served worst (weighted by their
rates) and places a *local* chain there via the candidate-restricted
Algorithm 3.  Locality is the whole point: on symmetric fabrics a
second globally-placed chain is a clone of the first and no flow ever
prefers it, whereas a rack-local chain serves its neighbourhood's
(majority intra-rack) flows with 1-hop attraction instead of a trip to
the core.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.costs import CostContext, validate_placement
from repro.core.placement import dp_placement
from repro.errors import InfeasibleError, PlacementError
from repro.topology.base import Topology
from repro.workload.flows import FlowSet

__all__ = [
    "ReplicatedPlacement",
    "replicated_communication_cost",
    "per_flow_copy_choice",
    "replicated_placement",
    "ReplicaSet",
    "ReplicationStep",
    "replica_sync_volume",
    "serving_cost",
    "replication_step",
    "exact_replication_step",
]


@dataclass(frozen=True)
class ReplicatedPlacement:
    """``r`` complete chain copies; ``copies[i]`` is one placement row."""

    copies: np.ndarray  # (r, n) switch node indices, globally distinct
    cost: float
    algorithm: str = "replicated-dp"
    extra: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        arr = np.asarray(self.copies, dtype=np.int64)
        if arr.ndim != 2 or arr.size == 0:
            raise PlacementError(f"copies must be a non-empty (r, n) matrix, got {arr.shape}")
        flat = arr.ravel().tolist()
        if len(set(flat)) != len(flat):
            raise PlacementError("chain copies must use globally distinct switches")
        arr.setflags(write=False)
        object.__setattr__(self, "copies", arr)

    @property
    def num_copies(self) -> int:
        return int(self.copies.shape[0])

    @property
    def num_vnfs(self) -> int:
        return int(self.copies.shape[1])


def _per_copy_flow_costs(ctx: CostContext, copies: np.ndarray) -> np.ndarray:
    """``(r, l)`` matrix: flow ``i``'s full route cost through copy ``r``."""
    return ctx._per_copy_costs(copies)


def per_flow_copy_choice(ctx: CostContext, placement: ReplicatedPlacement) -> np.ndarray:
    """Which chain copy each flow routes through (argmin of its route cost)."""
    return _per_copy_flow_costs(ctx, placement.copies).argmin(axis=0)


def replicated_communication_cost(
    topology: Topology, flows: FlowSet, copies: np.ndarray
) -> float:
    """``C_a^rep``: every flow takes its cheapest complete chain copy."""
    ctx = CostContext(topology, flows)
    per_copy = _per_copy_flow_costs(ctx, np.asarray(copies, dtype=np.int64))
    return float(per_copy.min(axis=0).sum())


def _local_candidates(
    topology: Topology, anchor: int, used: set[int], n: int
) -> np.ndarray:
    """Unused switches nearest ``anchor``, growing the radius until ``n`` fit."""
    dist = topology.graph.distances
    free = np.asarray(
        [s for s in topology.switches if int(s) not in used], dtype=np.int64
    )
    order = np.argsort(dist[anchor, free], kind="stable")
    # take the n nearest plus a small margin so the restricted DP has room
    take = min(free.size, max(n + 4, 2 * n))
    return free[order[:take]]


def replicated_placement(
    topology: Topology,
    flows: FlowSet,
    n: int,
    num_copies: int,
    residual_fraction: float = 0.5,
) -> ReplicatedPlacement:
    """Greedy ``num_copies``-replica deployment.

    Copy 1 is the Algorithm 3 placement for all flows.  Each subsequent
    copy anchors at the rack whose flows currently pay the most (summed
    best-copy route cost), takes the unused switches nearest that rack's
    edge switch as candidates, and places a chain there for the rack's
    neighbourhood flows via the candidate-restricted Algorithm 3.
    ``residual_fraction`` controls how much of the fabric around the
    anchor the copy optimizes for: the copy's workload is the fraction of
    flows closest to the anchor.
    """
    if num_copies < 1:
        raise PlacementError(f"num_copies must be >= 1, got {num_copies}")
    if not (0.0 < residual_fraction <= 1.0):
        raise PlacementError(
            f"residual_fraction must be in (0, 1], got {residual_fraction}"
        )
    if num_copies * n > topology.num_switches:
        raise InfeasibleError(
            f"{num_copies} copies of {n} VNFs need {num_copies * n} distinct "
            f"switches but the fabric has {topology.num_switches}"
        )
    ctx = CostContext(topology, flows)

    first = dp_placement(topology, flows, n)
    copies = [first.placement]
    used = set(first.placement.tolist())

    dist = ctx.distances
    anchored: set[int] = set()
    for _ in range(1, num_copies):
        stack = np.vstack(copies)
        per_copy = _per_copy_flow_costs(ctx, stack)
        best_now = per_copy.min(axis=0)
        # anchor at the rack whose *local* flows pay the most: a local copy
        # can only fix flows whose endpoints both live near the anchor
        rack_cost: dict[int, float] = {}
        for i in range(flows.num_flows):
            src_rack = topology.rack_of_host(int(flows.sources[i]))
            dst_rack = topology.rack_of_host(int(flows.destinations[i]))
            if src_rack == dst_rack:
                rack_cost[src_rack] = rack_cost.get(src_rack, 0.0) + float(best_now[i])
        candidates_racks = [r for r in rack_cost if r not in anchored]
        if not candidates_racks:
            break
        anchor = max(candidates_racks, key=lambda r: rack_cost[r])
        anchored.add(anchor)

        local = _local_candidates(topology, anchor, used, n)
        if local.size < n:
            break  # no room for another complete copy
        # the copy's workload: the anchor's neighbourhood (sources within
        # two hops — the pod, in a fat tree), topped up with the globally
        # nearest flows when the neighbourhood is small
        near_mask = dist[flows.sources, anchor] <= 2.0
        take = max(
            int(near_mask.sum()),
            max(1, int(round(residual_fraction * flows.num_flows)) // 4),
        )
        nearest = np.argsort(dist[flows.sources, anchor], kind="stable")[:take]
        fresh = dp_placement(
            topology,
            flows.subset(nearest),
            n,
            candidate_switches=local.tolist(),
        )
        copies.append(fresh.placement)
        used.update(int(s) for s in fresh.placement)

    stack = np.vstack(copies)
    for row in stack:
        validate_placement(topology, row, n)
    cost = replicated_communication_cost(topology, flows, stack)
    return ReplicatedPlacement(
        copies=stack,
        cost=cost,
        extra={"requested_copies": num_copies, "built_copies": stack.shape[0]},
    )


# ---------------------------------------------------------------------------
# Dynamic replication: the migrate-vs-replicate hour lattice (Carpio & Jukan)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ReplicaSet:
    """The tom-replication hour state: a serving primary chain + live copies.

    ``primary`` is the chain the TOM would carry alone; ``replicas`` is an
    ``(r, n)`` matrix of complete chain copies left behind by earlier
    replicate actions.  All ``(1 + r) · n`` switches are globally
    distinct (one instance per switch, same invariant as
    :class:`ReplicatedPlacement`).  Traffic is served by the nearest
    complete copy per flow (:func:`serving_cost`).
    """

    primary: np.ndarray  # (n,)
    replicas: np.ndarray  # (r, n), r >= 0

    def __post_init__(self) -> None:
        primary = np.asarray(self.primary, dtype=np.int64).reshape(-1)
        if primary.size == 0:
            raise PlacementError("ReplicaSet primary must be a non-empty chain")
        replicas = np.asarray(self.replicas, dtype=np.int64)
        if replicas.size == 0:
            replicas = replicas.reshape(0, primary.size)
        if replicas.ndim != 2 or replicas.shape[1] != primary.size:
            raise PlacementError(
                f"replicas must be (r, {primary.size}), got {replicas.shape}"
            )
        flat = primary.tolist() + replicas.ravel().tolist()
        if len(set(flat)) != len(flat):
            raise PlacementError(
                "primary and replica copies must use globally distinct switches"
            )
        primary.setflags(write=False)
        replicas.setflags(write=False)
        object.__setattr__(self, "primary", primary)
        object.__setattr__(self, "replicas", replicas)

    @property
    def num_vnfs(self) -> int:
        return int(self.primary.size)

    @property
    def num_replicas(self) -> int:
        return int(self.replicas.shape[0])

    @property
    def copies(self) -> np.ndarray:
        """``(1 + r, n)`` stack with the primary as row 0."""
        return np.vstack([self.primary[None, :], self.replicas])

    def switches(self) -> set[int]:
        return {int(s) for s in self.primary} | {
            int(s) for s in self.replicas.ravel()
        }

    def with_primary(self, primary: np.ndarray) -> "ReplicaSet":
        return ReplicaSet(primary=np.asarray(primary, dtype=np.int64),
                          replicas=self.replicas)

    def add_replica(self, row: np.ndarray) -> "ReplicaSet":
        row = np.asarray(row, dtype=np.int64).reshape(1, -1)
        return ReplicaSet(
            primary=self.primary, replicas=np.vstack([self.replicas, row])
        )

    def drop_replica(self, index: int) -> "ReplicaSet":
        keep = [i for i in range(self.num_replicas) if i != index]
        return ReplicaSet(primary=self.primary, replicas=self.replicas[keep])

    def prune(self, live_switches: set[int]) -> tuple["ReplicaSet", list[list[int]]]:
        """Drop replica copies with any instance on a dead switch.

        Returns ``(pruned_set, lost_rows)``; the primary is left to the
        repair machinery (:func:`repro.faults.repair.evacuate`), which can
        fail over onto the surviving copies returned here.
        """
        kept, lost = [], []
        for row in self.replicas:
            if all(int(s) in live_switches for s in row):
                kept.append(row)
            else:
                lost.append([int(s) for s in row])
        replicas = (
            np.vstack(kept) if kept else np.empty((0, self.num_vnfs), dtype=np.int64)
        )
        return ReplicaSet(primary=self.primary, replicas=replicas), lost

    def to_dict(self) -> dict:
        return {
            "primary": self.primary.tolist(),
            "replicas": self.replicas.tolist(),
        }


def serving_cost(ctx: CostContext, copies: np.ndarray) -> float:
    """``C_a^rep`` for a copy stack: every flow takes its cheapest copy.

    Delegates to :meth:`~repro.core.costs.CostContext.min_copy_serving_cost`
    so an aggregated (sharded-day) context routes to its pool-backed
    evaluator while a plain context keeps the exact historical float ops.
    """
    return ctx.min_copy_serving_cost(copies)


def replica_sync_volume(
    distances: np.ndarray, primary: np.ndarray, replicas: np.ndarray
) -> float:
    """``Σ_r Σ_j c(p_j, q_{r,j})``: the primary→replica state-sync distance."""
    replicas = np.asarray(replicas, dtype=np.int64)
    if replicas.size == 0:
        return 0.0
    primary = np.asarray(primary, dtype=np.int64)
    return float(distances[primary[None, :], replicas].sum())


@dataclass(frozen=True)
class ReplicationStep:
    """One hour's keep/migrate/replicate/release decision, fully priced.

    ``options`` records the total each admissible action would have cost
    (``None`` = inadmissible this hour) so audits can recheck that the
    chosen action was the lattice minimum without re-running the solver.
    """

    action: str  # "keep" | "migrate" | "replicate" | "release"
    replica_set: ReplicaSet
    communication_cost: float
    migration_cost: float
    replication_cost: float
    sync_cost: float
    num_migrations: int
    options: dict = field(default_factory=dict)

    @property
    def total_cost(self) -> float:
        return (
            self.communication_cost
            + self.migration_cost
            + self.replication_cost
            + self.sync_cost
        )

    def to_dict(self) -> dict:
        return {
            "action": self.action,
            "replica_set": self.replica_set.to_dict(),
            "communication_cost": self.communication_cost,
            "migration_cost": self.migration_cost,
            "replication_cost": self.replication_cost,
            "sync_cost": self.sync_cost,
            "num_migrations": self.num_migrations,
            "options": dict(self.options),
        }


def _priced_option(
    ctx: CostContext,
    action: str,
    replica_set: ReplicaSet,
    *,
    migration_cost: float = 0.0,
    replication_cost: float = 0.0,
    num_migrations: int = 0,
    total_rate: float,
    sync_fraction: float,
) -> ReplicationStep:
    comm = serving_cost(ctx, replica_set.copies)
    sync = sync_fraction * total_rate * replica_sync_volume(
        ctx.distances, replica_set.primary, replica_set.replicas
    )
    return ReplicationStep(
        action=action,
        replica_set=replica_set,
        communication_cost=comm,
        migration_cost=migration_cost,
        replication_cost=replication_cost,
        sync_cost=sync,
        num_migrations=num_migrations,
    )


def _finish(chosen: ReplicationStep, candidates: list[ReplicationStep]) -> ReplicationStep:
    options = {c.action: c.total_cost for c in candidates}
    return ReplicationStep(
        action=chosen.action,
        replica_set=chosen.replica_set,
        communication_cost=chosen.communication_cost,
        migration_cost=chosen.migration_cost,
        replication_cost=chosen.replication_cost,
        sync_cost=chosen.sync_cost,
        num_migrations=chosen.num_migrations,
        options=options,
    )


def _replica_target(
    topology: Topology,
    flows: FlowSet,
    replica_set: ReplicaSet,
    *,
    candidate_switches=None,
    cache=None,
) -> np.ndarray | None:
    """The best *disjoint* chain location: restricted Algorithm 3.

    A replica must coexist with every live instance (one instance per
    switch), so the fresh mPareto target — which usually shares switches
    with the primary it was derived from — is rarely admissible.  The
    natural replicate target is instead Algorithm 3 over the switches
    not already holding an instance; ``None`` when no complete disjoint
    chain fits.
    """
    used = replica_set.switches()
    base = topology.switches if candidate_switches is None else candidate_switches
    free = np.asarray(
        [int(s) for s in base if int(s) not in used], dtype=np.int64
    )
    if free.size < replica_set.num_vnfs:
        return None
    try:
        return dp_placement(
            topology, flows, replica_set.num_vnfs,
            candidate_switches=free, cache=cache,
        ).placement
    except (InfeasibleError, PlacementError):
        return None


def _replicate_option(
    ctx: CostContext,
    replica_set: ReplicaSet,
    target: np.ndarray | None,
    mu: float,
    rho: float,
    *,
    total_rate: float,
    sync_fraction: float,
    max_replicas: int,
) -> ReplicationStep | None:
    """The replicate action at ``target``, or ``None`` when inadmissible.

    Admissibility (the ``C_r <= C_b`` dominance gate, see DESIGN.md §5j):
    a replica is the state-*sharing* shortcut, so it is only on the menu
    when copying state to ``target`` is no dearer than bulk-moving there
    (``ρ·μ·Σc <= μ·Σc``).  With ``ρ > 1`` the gate never opens, which is
    what makes ρ→∞ structurally replication-free.
    """
    if target is None or replica_set.num_replicas >= max_replicas:
        return None
    target = np.asarray(target, dtype=np.int64).reshape(-1)
    if len(set(target.tolist())) != target.size:
        return None
    if set(int(s) for s in target) & replica_set.switches():
        return None
    # dominance gate on the ratio itself: ρ > 1 means copying state is
    # dearer than bulk-moving it, per unit μ — checked on ρ (not the
    # products) so the gate stays closed even at μ = 0, where both
    # C_r and C_b collapse to zero and the products can't tell
    if rho > 1:
        return None
    volume = float(ctx.distances[replica_set.primary, target].sum())
    c_r = rho * mu * volume
    return _priced_option(
        ctx,
        "replicate",
        replica_set.add_replica(target),
        replication_cost=c_r,
        total_rate=total_rate,
        sync_fraction=sync_fraction,
    )


def replication_step(
    topology: Topology,
    flows: FlowSet,
    replica_set: ReplicaSet,
    mu: float,
    *,
    rho: float,
    sync_fraction: float,
    max_replicas: int,
    migrate_result,
    candidate_switches=None,
    cache=None,
) -> ReplicationStep:
    """Greedy keep/migrate/replicate/release decision for one hour.

    ``migrate_result`` is the hour's Algorithm 5 answer (computed by the
    caller — directly or through a session — against ``replica_set``'s
    primary, with the fresh target restricted away from replica-held
    switches).  With **no** live replicas the migrate option adopts that
    result wholesale — mPareto's frontier 0 *is* keep — so the booked
    costs are mPareto's own floats and a never-replicating run is
    byte-identical to :class:`~repro.sim.policies.MParetoPolicy`.  With
    live replicas every option is re-priced replica-aware: serving is the
    per-flow min over copies, plus the consistency-sync term
    ``sync_fraction · Λ · Σc(p, q_r)``.  The replicate target is the
    best disjoint chain location (:func:`_replica_target`);
    ``candidate_switches`` restricts it to the surviving component under
    faults.
    """
    ctx = CostContext(topology, flows, cache=cache)
    total_rate = ctx.total_rate
    fresh_target = None
    if not rho > 1:  # the dominance gate could never open
        fresh_target = _replica_target(
            topology, flows, replica_set,
            candidate_switches=candidate_switches, cache=ctx.cache,
        )

    if replica_set.num_replicas == 0:
        adopt = ReplicationStep(
            action="migrate" if migrate_result.num_migrated else "keep",
            replica_set=ReplicaSet(
                primary=migrate_result.migration, replicas=replica_set.replicas
            ),
            communication_cost=float(migrate_result.communication_cost),
            migration_cost=float(migrate_result.migration_cost),
            replication_cost=0.0,
            sync_cost=0.0,
            num_migrations=int(migrate_result.num_migrated),
        )
        candidates = [adopt]
        rep = _replicate_option(
            ctx, replica_set, fresh_target, mu, rho,
            total_rate=total_rate, sync_fraction=sync_fraction,
            max_replicas=max_replicas,
        )
        if rep is not None:
            candidates.append(rep)
        # strict-improvement gate: replicate only when it beats adopting
        # the plain TOM answer, so ties preserve the mPareto behaviour
        chosen = adopt
        if rep is not None and rep.total_cost < adopt.total_cost:
            chosen = rep
        return _finish(chosen, candidates)

    candidates = [
        _priced_option(
            ctx, "keep", replica_set,
            total_rate=total_rate, sync_fraction=sync_fraction,
        )
    ]
    migration = np.asarray(migrate_result.migration, dtype=np.int64)
    if not (set(int(s) for s in migration)
            & {int(s) for s in replica_set.replicas.ravel()}):
        candidates.append(
            _priced_option(
                ctx,
                "migrate",
                replica_set.with_primary(migration),
                migration_cost=float(migrate_result.migration_cost),
                num_migrations=int(migrate_result.num_migrated),
                total_rate=total_rate,
                sync_fraction=sync_fraction,
            )
        )
    rep = _replicate_option(
        ctx, replica_set, fresh_target, mu, rho,
        total_rate=total_rate, sync_fraction=sync_fraction,
        max_replicas=max_replicas,
    )
    if rep is not None:
        candidates.append(rep)
    for index in range(replica_set.num_replicas):
        # releasing a copy is free: its instances are decommissioned and
        # the hour simply stops paying its serving/sync contribution
        candidates.append(
            _priced_option(
                ctx, "release", replica_set.drop_replica(index),
                total_rate=total_rate, sync_fraction=sync_fraction,
            )
        )
    chosen = candidates[0]
    for option in candidates[1:]:
        if option.total_cost < chosen.total_cost:
            chosen = option
    return _finish(chosen, candidates)


def exact_replication_step(
    topology: Topology,
    flows: FlowSet,
    replica_set: ReplicaSet,
    mu: float,
    *,
    rho: float,
    sync_fraction: float,
    max_replicas: int,
    migrate_result=None,
    candidate_switches=None,
    cache=None,
) -> ReplicationStep:
    """Exact minimization over the hour's keep/migrate/replicate lattice.

    Enumerates *every* parallel migration frontier between the primary
    and the fresh Algorithm 3 target — each frontier both as a migrate
    stop and as a replicate target — plus keep and every single-copy
    release, all priced replica-aware.  A strict superset of
    :func:`replication_step`'s menu, so its total is a floor for the
    greedy's (the ``verify.replication`` oracle check).  Exponential in
    nothing: the menu is ``O(h_max + r)`` options, each ``O((r+2)·l)``
    to price, so this is exact *and* cheap — it is "small-case" only in
    that its per-hour answer is one DP target's corridor lattice, not a
    global search over all placements.
    """
    from repro.core.migration import migration_frontiers

    ctx = CostContext(topology, flows, cache=cache)
    total_rate = ctx.total_rate
    primary = replica_set.primary
    replica_switches = {int(s) for s in replica_set.replicas.ravel()}
    if migrate_result is None:
        candidates_opt = candidate_switches
        if replica_switches:
            base = (
                topology.switches if candidates_opt is None else candidates_opt
            )
            candidates_opt = np.asarray(
                [int(s) for s in base if int(s) not in replica_switches],
                dtype=np.int64,
            )
        fresh = dp_placement(
            topology, flows, primary.size,
            candidate_switches=candidates_opt, cache=ctx.cache,
        ).placement
    else:
        fresh = np.asarray(
            migrate_result.extra.get("target_placement", migrate_result.migration),
            dtype=np.int64,
        )

    candidates = [
        _priced_option(
            ctx, "keep", replica_set,
            total_rate=total_rate, sync_fraction=sync_fraction,
        )
    ]
    for frontier in migration_frontiers(topology, primary, fresh):
        distinct = len(set(frontier.tolist())) == frontier.size
        if distinct and not (set(int(s) for s in frontier) & replica_switches):
            moved = int((frontier != primary).sum())
            if moved:
                candidates.append(
                    _priced_option(
                        ctx,
                        "migrate",
                        replica_set.with_primary(frontier),
                        migration_cost=ctx.migration_cost(primary, frontier, mu),
                        num_migrations=moved,
                        total_rate=total_rate,
                        sync_fraction=sync_fraction,
                    )
                )
        rep = _replicate_option(
            ctx, replica_set, frontier, mu, rho,
            total_rate=total_rate, sync_fraction=sync_fraction,
            max_replicas=max_replicas,
        )
        if rep is not None:
            candidates.append(rep)
    if not (rho > 1 and mu > 0):
        # the greedy's replicate target (best disjoint chain) is part of
        # the exact menu too, so exact <= greedy holds action for action
        disjoint = _replica_target(
            topology, flows, replica_set,
            candidate_switches=candidate_switches, cache=ctx.cache,
        )
        rep = _replicate_option(
            ctx, replica_set, disjoint, mu, rho,
            total_rate=total_rate, sync_fraction=sync_fraction,
            max_replicas=max_replicas,
        )
        if rep is not None:
            candidates.append(rep)
    for index in range(replica_set.num_replicas):
        candidates.append(
            _priced_option(
                ctx, "release", replica_set.drop_replica(index),
                total_rate=total_rate, sync_fraction=sync_fraction,
            )
        )
    chosen = candidates[0]
    for option in candidates[1:]:
        if option.total_cost < chosen.total_cost:
            chosen = option
    best_by_action: dict[str, float] = {}
    for option in candidates:
        prev = best_by_action.get(option.action)
        if prev is None or option.total_cost < prev:
            best_by_action[option.action] = option.total_cost
    return ReplicationStep(
        action=chosen.action,
        replica_set=chosen.replica_set,
        communication_cost=chosen.communication_cost,
        migration_cost=chosen.migration_cost,
        replication_cost=chosen.replication_cost,
        sync_cost=chosen.sync_cost,
        num_migrations=chosen.num_migrations,
        options=best_by_action,
    )
