"""VNF replication (the paper's Section VII future work).

The paper closes by asking "to which extent VNF replication could be
beneficial in terms of dynamic traffic mitigation when compared to VNF
migration".  This module implements the natural replication model for
the single-SFC PPDC so the question can be answered quantitatively:

* Each VNF ``f_j`` may run ``r`` replicas, each on its own switch; a
  *replicated placement* is an ``(r, n)`` matrix of distinct switches
  whose ``i``-th row is a complete copy of the chain.
* Policy preservation is per flow: a flow picks ONE chain copy end to
  end (replicas of a stateful VNF cannot be mixed mid-flow without
  state transfer) — the copy minimizing its own policy-preserving route.
* The replication objective mirrors Eq. 1 with a per-flow min over
  copies:

      C_a^rep(P) = Σ_i λ_i · min_r [ c(s(v_i), P[r,1]) +
                                     Σ_j c(P[r,j], P[r,j+1]) +
                                     c(P[r,n], s(v'_i)) ]

:func:`replicated_placement` builds the copies greedily — copy 1 is the
plain Algorithm 3 placement; each further copy targets the rack
neighbourhood whose flows are currently served worst (weighted by their
rates) and places a *local* chain there via the candidate-restricted
Algorithm 3.  Locality is the whole point: on symmetric fabrics a
second globally-placed chain is a clone of the first and no flow ever
prefers it, whereas a rack-local chain serves its neighbourhood's
(majority intra-rack) flows with 1-hop attraction instead of a trip to
the core.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.costs import CostContext, validate_placement
from repro.core.placement import dp_placement
from repro.errors import InfeasibleError, PlacementError
from repro.topology.base import Topology
from repro.workload.flows import FlowSet

__all__ = [
    "ReplicatedPlacement",
    "replicated_communication_cost",
    "per_flow_copy_choice",
    "replicated_placement",
]


@dataclass(frozen=True)
class ReplicatedPlacement:
    """``r`` complete chain copies; ``copies[i]`` is one placement row."""

    copies: np.ndarray  # (r, n) switch node indices, globally distinct
    cost: float
    algorithm: str = "replicated-dp"
    extra: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        arr = np.asarray(self.copies, dtype=np.int64)
        if arr.ndim != 2 or arr.size == 0:
            raise PlacementError(f"copies must be a non-empty (r, n) matrix, got {arr.shape}")
        flat = arr.ravel().tolist()
        if len(set(flat)) != len(flat):
            raise PlacementError("chain copies must use globally distinct switches")
        arr.setflags(write=False)
        object.__setattr__(self, "copies", arr)

    @property
    def num_copies(self) -> int:
        return int(self.copies.shape[0])

    @property
    def num_vnfs(self) -> int:
        return int(self.copies.shape[1])


def _per_copy_flow_costs(ctx: CostContext, copies: np.ndarray) -> np.ndarray:
    """``(r, l)`` matrix: flow ``i``'s full route cost through copy ``r``."""
    flows = ctx.flows
    dist = ctx.distances
    out = np.empty((copies.shape[0], flows.num_flows))
    for r_idx in range(copies.shape[0]):
        row = copies[r_idx]
        chain = float(dist[row[:-1], row[1:]].sum()) if row.size > 1 else 0.0
        out[r_idx] = flows.rates * (
            dist[flows.sources, row[0]] + chain + dist[row[-1], flows.destinations]
        )
    return out


def per_flow_copy_choice(ctx: CostContext, placement: ReplicatedPlacement) -> np.ndarray:
    """Which chain copy each flow routes through (argmin of its route cost)."""
    return _per_copy_flow_costs(ctx, placement.copies).argmin(axis=0)


def replicated_communication_cost(
    topology: Topology, flows: FlowSet, copies: np.ndarray
) -> float:
    """``C_a^rep``: every flow takes its cheapest complete chain copy."""
    ctx = CostContext(topology, flows)
    per_copy = _per_copy_flow_costs(ctx, np.asarray(copies, dtype=np.int64))
    return float(per_copy.min(axis=0).sum())


def _local_candidates(
    topology: Topology, anchor: int, used: set[int], n: int
) -> np.ndarray:
    """Unused switches nearest ``anchor``, growing the radius until ``n`` fit."""
    dist = topology.graph.distances
    free = np.asarray(
        [s for s in topology.switches if int(s) not in used], dtype=np.int64
    )
    order = np.argsort(dist[anchor, free], kind="stable")
    # take the n nearest plus a small margin so the restricted DP has room
    take = min(free.size, max(n + 4, 2 * n))
    return free[order[:take]]


def replicated_placement(
    topology: Topology,
    flows: FlowSet,
    n: int,
    num_copies: int,
    residual_fraction: float = 0.5,
) -> ReplicatedPlacement:
    """Greedy ``num_copies``-replica deployment.

    Copy 1 is the Algorithm 3 placement for all flows.  Each subsequent
    copy anchors at the rack whose flows currently pay the most (summed
    best-copy route cost), takes the unused switches nearest that rack's
    edge switch as candidates, and places a chain there for the rack's
    neighbourhood flows via the candidate-restricted Algorithm 3.
    ``residual_fraction`` controls how much of the fabric around the
    anchor the copy optimizes for: the copy's workload is the fraction of
    flows closest to the anchor.
    """
    if num_copies < 1:
        raise PlacementError(f"num_copies must be >= 1, got {num_copies}")
    if not (0.0 < residual_fraction <= 1.0):
        raise PlacementError(
            f"residual_fraction must be in (0, 1], got {residual_fraction}"
        )
    if num_copies * n > topology.num_switches:
        raise InfeasibleError(
            f"{num_copies} copies of {n} VNFs need {num_copies * n} distinct "
            f"switches but the fabric has {topology.num_switches}"
        )
    ctx = CostContext(topology, flows)

    first = dp_placement(topology, flows, n)
    copies = [first.placement]
    used = set(first.placement.tolist())

    dist = ctx.distances
    anchored: set[int] = set()
    for _ in range(1, num_copies):
        stack = np.vstack(copies)
        per_copy = _per_copy_flow_costs(ctx, stack)
        best_now = per_copy.min(axis=0)
        # anchor at the rack whose *local* flows pay the most: a local copy
        # can only fix flows whose endpoints both live near the anchor
        rack_cost: dict[int, float] = {}
        for i in range(flows.num_flows):
            src_rack = topology.rack_of_host(int(flows.sources[i]))
            dst_rack = topology.rack_of_host(int(flows.destinations[i]))
            if src_rack == dst_rack:
                rack_cost[src_rack] = rack_cost.get(src_rack, 0.0) + float(best_now[i])
        candidates_racks = [r for r in rack_cost if r not in anchored]
        if not candidates_racks:
            break
        anchor = max(candidates_racks, key=lambda r: rack_cost[r])
        anchored.add(anchor)

        local = _local_candidates(topology, anchor, used, n)
        if local.size < n:
            break  # no room for another complete copy
        # the copy's workload: the anchor's neighbourhood (sources within
        # two hops — the pod, in a fat tree), topped up with the globally
        # nearest flows when the neighbourhood is small
        near_mask = dist[flows.sources, anchor] <= 2.0
        take = max(
            int(near_mask.sum()),
            max(1, int(round(residual_fraction * flows.num_flows)) // 4),
        )
        nearest = np.argsort(dist[flows.sources, anchor], kind="stable")[:take]
        fresh = dp_placement(
            topology,
            flows.subset(nearest),
            n,
            candidate_switches=local.tolist(),
        )
        copies.append(fresh.placement)
        used.update(int(s) for s in fresh.placement)

    stack = np.vstack(copies)
    for row in stack:
        validate_placement(topology, row, n)
    cost = replicated_communication_cost(topology, flows, stack)
    return ReplicatedPlacement(
        copies=stack,
        cost=cost,
        extra={"requested_copies": num_copies, "built_copies": stack.shape[0]},
    )
