"""Algorithm 1: the primal-dual 2+ε approximation scheme for TOP-1.

The paper's Algorithm 1 (after Chaudhuri, Godfrey, Rao & Talwar [10])
solves the n-stroll LP relaxation by Goemans–Williamson moat growing: it
"iteratively adds edges, paying for them with increases to variables in
the dual (growth phase), and then deletes edges to obtain the final path
that spans n switches (pruning phase)", finally doubling the pruned tree
into an s-t stroll.

This module implements that scheme concretely:

1.  **Growth phase** — event-driven GW moat growing on the induced graph
    ``G' = V_s ∪ {s, t}``.  Every switch carries a uniform prize ``λ_p``;
    the endpoints carry infinite prizes so their moats never deactivate,
    which guarantees the growth phase ends with ``s`` and ``t`` in one
    tree component.
2.  **Pruning phase** — excess leaves (beyond the ``n`` required switches)
    are trimmed, most expensive first, mirroring the pruning that turns
    the GW forest into a minimal tree spanning ``n`` switches.
3.  **Prize search** — the uniform prize is the Lagrangian knob of the
    k-MST construction: a bisection over ``λ_p`` finds the cheapest
    pruned tree spanning at least ``n`` switches.
4.  **Tree doubling** — a DFS of the tree (exploring ``t``'s branch last)
    visits every spanned switch and is shortcut through the metric
    closure, giving an s-t stroll of cost at most twice the tree.

The implementation favours clarity over asymptotics; the paper itself
only uses Algorithm 1 as an analytic benchmark (Fig. 7 plots its 2+ε
*guarantee*), and the DP of Algorithm 2 is the practical solver.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro._compat import legacy_signature
from repro.core.costs import CostContext, validate_placement
from repro.core.stroll import StrollResult, _collect_distinct
from repro.core.types import PlacementResult
from repro.errors import InfeasibleError, PlacementError, SolverError
from repro.graphs.adjacency import CostGraph
from repro.runtime.cache import ComputeCache
from repro.topology.base import Topology
from repro.workload.flows import FlowSet
from repro.workload.sfc import SFC

__all__ = ["GrownTree", "grow_prized_tree", "primal_dual_stroll", "primal_dual_placement_top1"]

_INF_PRIZE = np.inf


@dataclass
class GrownTree:
    """Output of one GW growth+prune pass.

    ``edges`` are graph-index pairs of the pruned tree; ``nodes`` its node
    set; ``cost`` the summed edge weights.
    """

    edges: list[tuple[int, int]]
    nodes: set[int]
    cost: float
    extra: dict = field(default_factory=dict)


def _gw_growth(
    num_nodes: int,
    edge_u: np.ndarray,
    edge_v: np.ndarray,
    edge_w: np.ndarray,
    prizes: np.ndarray,
    source: int,
    target: int,
    max_events: int,
    countable_mask: np.ndarray,
    required: int,
) -> list[tuple[int, int]]:
    """Event-driven Goemans–Williamson moat growth.

    Components grow uniformly; an edge is bought when the moats on its two
    sides cover its length; a component deactivates when its remaining
    prize surplus is exhausted.  Growth stops once ``source`` and
    ``target`` share a component that already spans ``required`` countable
    nodes (this also covers the tour case ``source == target``).  Returns
    the forest edges bought.
    """
    comp_id = np.arange(num_nodes)
    moat = np.zeros(num_nodes)  # d(v): total dual of components containing v
    # components are indexed by id; ids start as node ids, merges mint new ones
    comp_active = prizes > 0
    comp_surplus = prizes.astype(np.float64).copy()
    forest: list[tuple[int, int]] = []
    next_comp = num_nodes  # fresh ids for merged components

    def _extend(arr: np.ndarray, value) -> np.ndarray:
        return np.append(arr, value)

    for _ in range(max_events):
        if comp_id[source] == comp_id[target]:
            in_comp = comp_id == comp_id[source]
            if int(np.count_nonzero(in_comp & countable_mask)) >= required:
                return forest
        cu = comp_id[edge_u]
        cv = comp_id[edge_v]
        differs = cu != cv
        rate = comp_active[cu].astype(np.int64) + comp_active[cv].astype(np.int64)
        usable = differs & (rate > 0)
        if not np.any(usable):
            raise SolverError(
                "GW growth stalled before connecting the endpoints; "
                "the induced graph must be disconnected"
            )
        remaining = edge_w - moat[edge_u] - moat[edge_v]
        with np.errstate(divide="ignore", invalid="ignore"):
            tight_in = np.where(usable, remaining / np.maximum(rate, 1), np.inf)
        tight_in = np.maximum(tight_in, 0.0)
        next_edge = int(np.argmin(tight_in))
        dt_edge = float(tight_in[next_edge])

        active_ids = np.flatnonzero(comp_active)
        if active_ids.size:
            deact_in = comp_surplus[active_ids]
            next_deact_pos = int(np.argmin(deact_in))
            dt_deact = float(deact_in[next_deact_pos])
        else:
            dt_deact = np.inf

        dt = min(dt_edge, dt_deact)
        if not np.isfinite(dt):
            raise SolverError("GW growth has no finite next event")  # pragma: no cover

        # advance time: moats of nodes in active components deepen by dt
        node_active = comp_active[comp_id]
        moat[node_active] += dt
        comp_surplus[comp_active] -= dt

        if dt_edge <= dt_deact:
            u, v = int(edge_u[next_edge]), int(edge_v[next_edge])
            a, b = comp_id[u], comp_id[v]
            forest.append((u, v))
            merged = next_comp
            next_comp += 1
            comp_id[(comp_id == a) | (comp_id == b)] = merged
            merged_surplus = comp_surplus[a] + comp_surplus[b]
            merged_active = merged_surplus > 0
            comp_active = _extend(comp_active, merged_active)
            comp_surplus = _extend(comp_surplus, merged_surplus)
        else:
            dead = int(active_ids[next_deact_pos])
            comp_active[dead] = False

    raise SolverError("GW growth exceeded its event budget")  # pragma: no cover


def _component_tree(
    forest: list[tuple[int, int]], source: int, target: int
) -> tuple[dict[int, set[int]], set[int]]:
    """Adjacency of the forest component containing ``source`` (and target)."""
    adjacency: dict[int, set[int]] = {}
    for u, v in forest:
        adjacency.setdefault(u, set()).add(v)
        adjacency.setdefault(v, set()).add(u)
    # BFS from source
    seen = {source}
    frontier = [source]
    while frontier:
        node = frontier.pop()
        for nxt in adjacency.get(node, ()):
            if nxt not in seen:
                seen.add(nxt)
                frontier.append(nxt)
    if target not in seen:
        raise SolverError("forest does not connect source and target")
    tree_adj = {v: set(adjacency.get(v, ())) & seen for v in seen}
    return tree_adj, seen


def _prune_excess_leaves(
    tree_adj: dict[int, set[int]],
    weights: np.ndarray,
    keep: set[int],
    required: int,
    countable: set[int],
) -> None:
    """Trim leaves (≠ endpoints) while more than ``required`` countable nodes remain.

    Leaves are removed most-expensive-incident-edge first; mutates
    ``tree_adj`` in place.
    """

    def countable_spanned() -> int:
        return sum(1 for v in tree_adj if v in countable)

    while countable_spanned() > required:
        leaves = [
            v
            for v, nbrs in tree_adj.items()
            if len(nbrs) == 1 and v not in keep
        ]
        if not leaves:
            break
        leaf = max(leaves, key=lambda v: weights[v, next(iter(tree_adj[v]))])
        parent = next(iter(tree_adj[leaf]))
        tree_adj[parent].discard(leaf)
        del tree_adj[leaf]


def grow_prized_tree(
    graph: CostGraph,
    source: int,
    target: int,
    prize: float,
    countable: set[int],
    required: int,
) -> GrownTree:
    """One growth + prune pass at a fixed uniform ``prize``."""
    num_nodes = graph.num_nodes
    prizes = np.full(num_nodes, 0.0)
    for v in countable:
        prizes[v] = prize
    prizes[source] = _INF_PRIZE
    prizes[target] = _INF_PRIZE

    edge_u = np.array([u for u, v, w in graph.edges], dtype=np.int64)
    edge_v = np.array([v for u, v, w in graph.edges], dtype=np.int64)
    edge_w = np.array([graph.weights[u, v] for u, v, w in graph.edges])

    countable_mask = np.zeros(num_nodes, dtype=bool)
    countable_mask[list(countable)] = True
    forest = _gw_growth(
        num_nodes,
        edge_u,
        edge_v,
        edge_w,
        prizes,
        source,
        target,
        max_events=4 * num_nodes + 16,
        countable_mask=countable_mask,
        required=required,
    )
    tree_adj, _nodes = _component_tree(forest, source, target)
    _prune_excess_leaves(
        tree_adj, graph.weights, keep={source, target}, required=required, countable=countable
    )
    edges = []
    for u, nbrs in tree_adj.items():
        for v in nbrs:
            if u < v:
                edges.append((u, v))
    cost = float(sum(graph.weights[u, v] for u, v in edges))
    return GrownTree(edges=edges, nodes=set(tree_adj), cost=cost, extra={"prize": prize})


def _tree_to_stroll(
    tree: GrownTree,
    closure_dist: np.ndarray,
    source: int,
    target: int,
) -> list[int]:
    """DFS preorder (t-branch last) of the tree, giving an s-t closure walk."""
    adjacency: dict[int, list[int]] = {}
    for u, v in tree.edges:
        adjacency.setdefault(u, []).append(v)
        adjacency.setdefault(v, []).append(u)
    if source not in adjacency and source != target:
        raise SolverError("tree does not contain the source")

    # depth of target below each node decides branch ordering: explore the
    # branch leading to the target last so the walk naturally ends near t
    towards_target: dict[int, bool] = {}

    def _mark(node: int, parent: int | None) -> bool:
        hit = node == target
        for nxt in adjacency.get(node, ()):
            if nxt != parent:
                hit = _mark(nxt, node) or hit
        towards_target[node] = hit
        return hit

    _mark(source, None)
    order: list[int] = []

    def _dfs(node: int, parent: int | None) -> None:
        order.append(node)
        children = [nxt for nxt in adjacency.get(node, ()) if nxt != parent]
        children.sort(key=lambda c: towards_target.get(c, False))  # target branch last
        for child in children:
            _dfs(child, node)

    _dfs(source, None)
    if order[-1] != target:
        order.append(target)
    # drop consecutive duplicates introduced by the closure shortcuts
    walk = [order[0]]
    for node in order[1:]:
        if node != walk[-1]:
            walk.append(node)
    return walk


def primal_dual_stroll(
    graph: CostGraph,
    source: int,
    target: int,
    n: int,
    countable: set[int] | None = None,
    bisection_steps: int = 24,
) -> StrollResult:
    """Algorithm 1: primal-dual n-stroll between ``source`` and ``target``.

    ``countable`` is the set of nodes that count toward the ``n`` distinct
    requirement (the switches, for TOP-1); it defaults to every node
    except the endpoints.  A bisection over the uniform node prize finds
    the cheapest grown tree spanning at least ``n`` countable nodes, which
    is then doubled and shortcut into a stroll.
    """
    if countable is None:
        countable = set(range(graph.num_nodes)) - {source, target}
    countable = set(countable) - {source, target}
    if len(countable) < n:
        raise InfeasibleError(
            f"need {n} countable nodes but only {len(countable)} are available"
        )
    if n < 1:
        raise SolverError(f"n must be >= 1, got {n}")

    dist = graph.distances
    lo, hi = 0.0, float(np.sum([w for _, _, w in graph.edges])) + 1.0
    best: GrownTree | None = None

    def spanned(tree: GrownTree) -> int:
        return sum(1 for v in tree.nodes if v in countable)

    # ensure the upper end is feasible before bisecting
    tree_hi = grow_prized_tree(graph, source, target, hi, countable, n)
    if spanned(tree_hi) >= n:
        best = tree_hi
    for _ in range(bisection_steps):
        mid = (lo + hi) / 2.0
        tree = grow_prized_tree(graph, source, target, mid, countable, n)
        if spanned(tree) >= n:
            hi = mid
            if best is None or tree.cost < best.cost:
                best = tree
        else:
            lo = mid
    if best is None:
        raise InfeasibleError(
            "primal-dual growth never spanned enough switches; "
            "the induced graph is too small or disconnected"
        )

    walk_nodes = _tree_to_stroll(best, dist, source, target)
    walk = np.asarray(walk_nodes, dtype=np.int64)
    cost = float(dist[walk[:-1], walk[1:]].sum()) if walk.size > 1 else 0.0
    distinct_all = _collect_distinct(walk, len(walk))
    distinct = np.asarray(
        [v for v in distinct_all if int(v) in countable][:n], dtype=np.int64
    )
    if distinct.size < n:
        raise SolverError("doubled tree walk does not visit n countable nodes")
    return StrollResult(
        walk=walk,
        cost=cost,
        distinct=distinct,
        num_edges=int(walk.size - 1),
        extra={"tree_cost": best.cost, "prize": best.extra.get("prize")},
    )


@legacy_signature("flow_index", "bisection_steps")
def primal_dual_placement_top1(
    topology: Topology,
    flows: FlowSet,
    sfc: SFC | int,
    *,
    flow_index: int = 0,
    bisection_steps: int = 24,
    cache: ComputeCache | None = None,
) -> PlacementResult:
    """TOP-1 via Algorithm 1: place the SFC along the primal-dual stroll."""
    n = sfc.size if isinstance(sfc, SFC) else int(sfc)
    if n > topology.num_switches:
        raise InfeasibleError(
            f"SFC of {n} VNFs cannot be placed on {topology.num_switches} switches"
        )
    if not (0 <= flow_index < flows.num_flows):
        raise PlacementError(f"flow_index {flow_index} out of range")
    single = flows.subset(np.asarray([flow_index]))
    ctx = CostContext(topology, single, cache=cache)

    source = int(single.sources[0])
    target = int(single.destinations[0])
    countable = set(topology.switches.tolist())
    result = primal_dual_stroll(
        topology.graph,
        source,
        target,
        n,
        countable=countable,
        bisection_steps=bisection_steps,
    )
    placement = np.asarray(result.distinct[:n], dtype=np.int64)
    validate_placement(topology, placement, n)
    return PlacementResult(
        placement=placement,
        cost=ctx.communication_cost(placement),
        algorithm="primal-dual",
        extra={"stroll_cost": result.cost, "tree_cost": result.extra.get("tree_cost")},
    )
