"""Algorithm 3 (and the TOP-1 wrapper): DP-based VNF placement.

Eq. 1 decomposes (see :mod:`repro.core.costs`) into ingress attraction +
``Λ`` × inter-VNF chain + egress attraction, so TOP reduces to: pick an
(ingress, egress) switch pair and connect them with an (n−2)-stroll.
Algorithm 3 evaluates every ordered pair, pricing the stroll with the
Algorithm 2 DP.

The paper states Algorithm 3 as ``O(n·|V|^6)`` because it re-runs the DP
per pair; this implementation amortizes one :class:`StrollEngine` per
*egress* (the DP tables depend only on the target) and batch-solves all
ingresses against it at once — ``O(n·|V|^3)`` overall.
"""

from __future__ import annotations

import hashlib

import numpy as np

from repro._compat import legacy_signature
from repro.core.costs import CostContext, validate_placement
from repro.core.stroll import StrollEngine, dp_stroll
from repro.core.types import PlacementResult
from repro.errors import InfeasibleError, PlacementError
from repro.graphs.metric_closure import metric_closure
from repro.runtime.cache import ComputeCache, get_compute_cache
from repro.runtime.instrument import count
from repro.topology.base import Topology
from repro.utils.timing import Timer
from repro.workload.flows import FlowSet
from repro.workload.sfc import SFC

__all__ = ["dp_placement", "dp_placement_top1", "chain_size"]


def chain_size(sfc: SFC | int) -> int:
    """Accept either an :class:`SFC` or a raw VNF count."""
    n = sfc.size if isinstance(sfc, SFC) else int(sfc)
    if n < 1:
        raise PlacementError(f"SFC must have at least one VNF, got {n}")
    return n


def _check_feasible(topology: Topology, n: int) -> None:
    if n > topology.num_switches:
        raise InfeasibleError(
            f"SFC of {n} VNFs cannot be placed on {topology.num_switches} switches"
        )


def _solve_small_n(ctx: CostContext, n: int) -> PlacementResult:
    """Exact solutions for n = 1 and n = 2 (trivial cases of Algorithm 3)."""
    sw = ctx.switches
    a_in = ctx.ingress_attraction[sw]
    a_out = ctx.egress_attraction[sw]
    if n == 1:
        best = int(np.argmin(a_in + a_out))
        placement = np.asarray([sw[best]], dtype=np.int64)
    else:
        sdist = ctx.distances[np.ix_(sw, sw)]
        score = a_in[:, None] + ctx.total_rate * sdist + a_out[None, :]
        np.fill_diagonal(score, np.inf)
        flat = int(np.argmin(score))
        i, j = divmod(flat, score.shape[1])
        placement = np.asarray([sw[i], sw[j]], dtype=np.int64)
    return PlacementResult(
        placement=placement,
        cost=ctx.communication_cost(placement),
        algorithm="dp",
        extra={"exact_small_n": True},
    )


@legacy_signature("extra_edge_slack", "mode", "candidate_switches", "cache")
def dp_placement(
    topology: Topology,
    flows: FlowSet,
    sfc: SFC | int,
    *,
    extra_edge_slack: int = 16,
    mode: str = "second-best",
    candidate_switches: np.ndarray | list | None = None,
    cache: ComputeCache | None = None,
) -> PlacementResult:
    """Algorithm 3: traffic-aware DP placement for TOP (any ``l``).

    ``extra_edge_slack`` bounds how far beyond ``n−1`` edges the stroll may
    grow while hunting for distinct switches before a pair is abandoned —
    in every practical topology the first one or two layers suffice.
    ``mode`` selects the stroll DP variant (see :mod:`repro.core.stroll`).
    ``candidate_switches`` restricts the placement to a subset of switches
    (used by multi-SFC placement, where chains must not share switches).
    ``cache`` overrides the process-global :class:`ComputeCache` holding
    the stroll-cost matrices.
    """
    count("dp_solves")
    with Timer.timed("dp_placement"):
        return _dp_placement(
            topology, flows, sfc, extra_edge_slack, mode, candidate_switches, cache
        )


def _dp_placement(
    topology: Topology,
    flows: FlowSet,
    sfc: SFC | int,
    extra_edge_slack: int,
    mode: str,
    candidate_switches: np.ndarray | list | None,
    cache: ComputeCache | None,
) -> PlacementResult:
    n = chain_size(sfc)
    _check_feasible(topology, n)
    ctx = CostContext(topology, flows, cache=cache)
    if candidate_switches is None:
        if n <= 2:
            return _solve_small_n(ctx, n)
        sw = ctx.switches
    else:
        sw = np.asarray(sorted(set(int(c) for c in candidate_switches)), dtype=np.int64)
        switch_set = set(topology.switches.tolist())
        stray = [int(c) for c in sw if int(c) not in switch_set]
        if stray:
            raise PlacementError(f"candidate switches {stray[:5]} are not switches")
        if n > sw.size:
            raise InfeasibleError(
                f"cannot place {n} VNFs on {sw.size} candidate switches"
            )
        if n <= 2:
            return _solve_small_n_restricted(ctx, n, sw)
    num_sw = sw.size
    a_in = ctx.ingress_attraction[sw]
    a_out = ctx.egress_attraction[sw]
    lam = ctx.total_rate
    interior = n - 2

    # b_cost[s, t] = cost of the best (n-2)-distinct stroll s -> t.  One
    # engine per egress t prices all ingresses at once.  The whole matrix
    # depends only on (topology weights, candidate set, n, mode) — not on
    # traffic rates — so it is cached per topology: in the dynamic
    # simulator Algorithm 3 runs every hour and reuses the DP wholesale.
    max_edges = interior + 1 + extra_edge_slack
    closure, b_cost, b_edges = _stroll_matrix(
        topology, sw, interior, mode, max_edges, cache=ctx.cache
    )

    # nan-safe: at all-zero rates (e.g. the silent first/last diurnal hour)
    # lam == 0 and 0 * inf would poison the score with NaNs
    chain_term = np.full_like(b_cost, np.inf)
    finite = np.isfinite(b_cost)
    chain_term[finite] = lam * b_cost[finite]
    score = a_in[:, None] + chain_term + a_out[None, :]
    flat = int(np.argmin(score))
    s_pos, t_pos = divmod(flat, num_sw)
    if not np.isfinite(score[s_pos, t_pos]):
        raise InfeasibleError("no feasible (ingress, egress) stroll found")

    winner_engine = _stroll_engine(
        topology, closure, sw, t_pos, mode, max_edges, cache=ctx.cache
    )
    stroll = winner_engine.solve(s_pos, interior)
    distinct = stroll.distinct
    if distinct.size < interior:
        raise PlacementError("winning stroll lost its distinct interior on reconstruction")

    placement_positions = np.concatenate(([s_pos], distinct[:interior], [t_pos]))
    placement = sw[placement_positions]
    validate_placement(topology, placement, n)
    return PlacementResult(
        placement=placement,
        cost=ctx.communication_cost(placement),
        algorithm="dp",
        extra={
            "score": float(score[s_pos, t_pos]),
            "stroll_edges": int(b_edges[s_pos, t_pos]),
            "stroll_cost": float(b_cost[s_pos, t_pos]),
        },
    )


def _stroll_matrix(
    topology: Topology,
    sw: np.ndarray,
    interior: int,
    mode: str,
    max_edges: int,
    cache: ComputeCache | None = None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Cached ``(closure, b_cost, b_edges)`` for Algorithm 3's inner DP.

    The matrix depends only on (topology weights, candidate set, n, mode)
    — not on traffic rates — so it lives in the :class:`ComputeCache`
    keyed weakly by the topology: in the dynamic simulator Algorithm 3
    runs every hour and reuses the DP wholesale.

    Beneath the per-topology key sits a *content-addressed* shared layer
    keyed by a hash of the metric closure itself — the only input the DP
    tables actually depend on besides ``(interior, mode, max_edges)``.
    Two topologies with identical closures over the same candidate set
    (e.g. a degraded view whose failures spared every switch-to-switch
    shortest path, or hour *h* vs *h−1* of a fault episode that came and
    went) therefore share one table — the warm start for the stroll DP.
    Sharing is bit-identical by construction: the closure bytes *are* the
    DP's input.
    """
    cache = cache if cache is not None else get_compute_cache()
    key = ("stroll_matrix", sw.tobytes(), interior, mode, max_edges)

    def adopt() -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        closure = metric_closure(topology.graph, sw)
        shared_key = (
            "stroll_matrix",
            hashlib.sha256(closure.tobytes()).hexdigest(),
            interior,
            mode,
            max_edges,
        )
        if cache.has_shared(shared_key, depends_on=("strolls",)):
            count("stroll_warm_hits")
        return cache.get_or_compute_shared(
            shared_key,
            lambda: _build_stroll_matrix(
                topology, sw, interior, mode, max_edges, closure=closure
            ),
            depends_on=("strolls",),
        )

    return cache.get_or_compute(topology, key, adopt)


def _stroll_engine(
    topology: Topology,
    closure: np.ndarray,
    sw: np.ndarray,
    t_pos: int,
    mode: str,
    max_edges: int,
    cache: ComputeCache | None = None,
) -> StrollEngine:
    """Cached winner-reconstruction engine for one egress position.

    ``StrollEngine`` layers are deterministic and history-independent (a
    layer's contents depend only on (closure, target, mode, max_edges),
    never on which queries grew it first), so memoizing the engine per
    (candidate set, egress) is bit-identical to rebuilding it — and in
    repeated-query workloads the winner egress barely changes, making
    this the dominant per-call saving after the stroll matrix itself.

    Like :func:`_stroll_matrix`, a content-addressed shared layer keyed
    by the closure hash lets topology views with identical closures warm
    each other's engines.
    """
    cache = cache if cache is not None else get_compute_cache()
    key = ("stroll_engine", sw.tobytes(), int(t_pos), mode, max_edges)

    def adopt() -> StrollEngine:
        shared_key = (
            "stroll_engine",
            hashlib.sha256(closure.tobytes()).hexdigest(),
            int(t_pos),
            mode,
            max_edges,
        )
        return cache.get_or_compute_shared(
            shared_key,
            lambda: StrollEngine(closure, t_pos, mode=mode, max_edges=max_edges),
            depends_on=("strolls",),
        )

    return cache.get_or_compute(topology, key, adopt)


def _build_stroll_matrix(
    topology: Topology,
    sw: np.ndarray,
    interior: int,
    mode: str,
    max_edges: int,
    closure: np.ndarray | None = None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    num_sw = sw.size
    count("stroll_matrix_builds")
    with Timer.timed("stroll_matrix"):
        if closure is None:
            closure = metric_closure(topology.graph, sw)
        b_cost = np.full((num_sw, num_sw), np.inf)
        b_edges = np.zeros((num_sw, num_sw), dtype=np.int64)
        for t in range(num_sw):
            engine = StrollEngine(closure, t, mode=mode, max_edges=max_edges)
            costs, edges = engine.batch_solve(interior)
            b_cost[:, t] = costs
            b_edges[:, t] = edges
        np.fill_diagonal(b_cost, np.inf)  # ingress and egress must differ
        for arr in (closure, b_cost, b_edges):
            arr.setflags(write=False)
    return closure, b_cost, b_edges


def _solve_small_n_restricted(ctx: CostContext, n: int, sw: np.ndarray) -> PlacementResult:
    """n = 1, 2 exactly, over a candidate switch subset."""
    a_in = ctx.ingress_attraction[sw]
    a_out = ctx.egress_attraction[sw]
    if n == 1:
        best = int(np.argmin(a_in + a_out))
        placement = np.asarray([sw[best]], dtype=np.int64)
    else:
        sdist = ctx.distances[np.ix_(sw, sw)]
        score = a_in[:, None] + ctx.total_rate * sdist + a_out[None, :]
        np.fill_diagonal(score, np.inf)
        flat = int(np.argmin(score))
        i, j = divmod(flat, score.shape[1])
        placement = np.asarray([sw[i], sw[j]], dtype=np.int64)
    return PlacementResult(
        placement=placement,
        cost=ctx.communication_cost(placement),
        algorithm="dp",
        extra={"exact_small_n": True, "restricted": True},
    )


@legacy_signature("flow_index", "mode")
def dp_placement_top1(
    topology: Topology,
    flows: FlowSet,
    sfc: SFC | int,
    *,
    flow_index: int = 0,
    mode: str = "second-best",
    cache: ComputeCache | None = None,
) -> PlacementResult:
    """Algorithm 2 applied end-to-end to a single flow (TOP-1 / DP-Stroll).

    Builds ``G''`` over the flow's two hosts plus every switch, with edge
    costs ``λ_1 · c(u, v)``, and places all ``n`` VNFs on the first ``n``
    distinct switches of the resulting stroll.  This is the "DP-Stroll"
    series of Fig. 7.
    """
    count("dp_stroll_solves")
    n = chain_size(sfc)
    _check_feasible(topology, n)
    if not (0 <= flow_index < flows.num_flows):
        raise PlacementError(f"flow_index {flow_index} out of range")
    single = flows.subset(np.asarray([flow_index]))
    ctx = CostContext(topology, single, cache=cache)

    src_host = int(single.sources[0])
    dst_host = int(single.destinations[0])
    rate = float(single.rates[0])

    # V'' = {s(v1), s(v'1)} ∪ V_s; closure indices: 0 = source host,
    # (1 = dest host when distinct), then switches.
    sw = topology.switches
    if src_host == dst_host:
        nodes = np.concatenate(([src_host], sw))
        s_idx, t_idx = 0, 0
        sw_offset = 1
    else:
        nodes = np.concatenate(([src_host, dst_host], sw))
        s_idx, t_idx = 0, 1
        sw_offset = 2
    # The unscaled closure depends only on (topology, node set); the
    # per-call rate scaling is an elementwise product over it either way.
    base = ctx.cache.get_or_compute(
        topology,
        ("top1_closure", nodes.tobytes()),
        lambda: metric_closure(topology.graph, nodes),
    )
    closure = base * max(rate, 1.0e-300)

    result = dp_stroll(closure, s_idx, t_idx, n, mode=mode)
    placement = nodes[result.distinct]
    if np.any(result.distinct < sw_offset):
        raise PlacementError("stroll placed a VNF on a host node")  # pragma: no cover
    validate_placement(topology, placement, n)
    return PlacementResult(
        placement=placement,
        cost=ctx.communication_cost(placement),
        algorithm="dp-stroll",
        extra={
            "stroll_cost": float(result.cost),
            "stroll_edges": result.num_edges,
            "walk": result.walk.tolist(),
        },
    )
