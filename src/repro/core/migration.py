"""Algorithm 5 (mPareto): traffic-optimal VNF migration via parallel frontiers.

When the traffic-rate vector changes, a fresh DP placement ``p'`` gives
the cheapest communication but the dearest migration, while staying at
``p`` costs nothing to migrate but keeps the stale communication cost.
Algorithm 5 walks each VNF ``f_j`` along the shortest path (its
*migration corridor* ``S_j``) from ``p(j)`` toward ``p'(j)`` and stops
the whole chain at the best *parallel migration frontier* — the k-th row
of the ``h_max × n`` matrix whose column ``j`` is corridor ``S_j`` padded
at its end (Definition 2).  Evaluating ``C_t = C_b + C_a`` on every
parallel frontier and keeping the minimum yields a point on the
``(C_b, C_a)`` Pareto front (Fig. 6(b)); Theorem 5 notes the scalarized
optimum is attained when that front is convex.

:func:`frontier_trace` exposes the whole front for the Fig. 6(b)
reproduction, together with Pareto/convexity predicates used by both the
tests and the benchmark harness.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro._compat import legacy_signature
from repro.core.costs import CostContext, validate_placement
from repro.core.placement import dp_placement
from repro.core.types import MigrationResult, PlacementResult
from repro.errors import GraphError, MigrationError
from repro.runtime.cache import ComputeCache
from repro.topology.base import Topology
from repro.workload.flows import FlowSet

__all__ = [
    "FrontierTrace",
    "migration_corridors",
    "coherent_migration_corridors",
    "migration_frontiers",
    "frontier_trace",
    "mpareto_migration",
    "no_migration",
    "pareto_points",
    "is_pareto_front",
    "front_is_convex",
]

PlacementAlgorithm = Callable[..., PlacementResult]


def migration_corridors(
    topology: Topology, source: np.ndarray, target: np.ndarray
) -> list[list[int]]:
    """Shortest-path corridor ``S_j`` for each VNF, as switch sequences.

    ``S_j[0] == source[j]`` and ``S_j[-1] == target[j]`` (a single-entry
    corridor when the VNF stays put).  VNFs only sit on switches, so
    corridors follow shortest paths in the switch-induced subgraph; on
    server-centric fabrics with no switch-to-switch links (BCube) a
    corridor degenerates to the direct jump ``[source, target]``.
    """
    src = np.asarray(source, dtype=np.int64)
    dst = np.asarray(target, dtype=np.int64)
    if src.shape != dst.shape:
        raise MigrationError(f"source {src.shape} and target {dst.shape} differ")
    induced, position_of = topology.switch_only_graph()
    switches = topology.switches
    corridors: list[list[int]] = []
    for j in range(src.size):
        a, b = int(src[j]), int(dst[j])
        if a == b:
            corridors.append([a])
            continue
        try:
            induced_path = induced.shortest_path(position_of[a], position_of[b])
            corridors.append([int(switches[p]) for p in induced_path])
        except GraphError:
            # server-centric fabrics (e.g. BCube) may have no switch-only
            # route; the corridor degenerates to a direct jump
            corridors.append([a, b])
    return corridors


def coherent_migration_corridors(
    topology: Topology, source: np.ndarray, target: np.ndarray
) -> list[list[int]]:
    """Alternative corridors: convoy-aligned shortest-path tie-breaking.

    :func:`migration_corridors` takes whatever shortest path the cached
    predecessor structure yields; on fabrics with many equal-length paths
    each VNF picks independently and intermediate parallel frontiers can
    scatter the chain (the Fig. 6(b) finding in EXPERIMENTS.md).  This
    variant still walks only shortest paths — every step must strictly
    decrease the remaining distance to the VNF's target — but among tied
    next hops it picks the one closest to the *previous VNF's* corridor
    position at the same step.

    **Measured outcome (negative result):** convoy tie-breaking does not
    restore the Pareto monotonicity of the frontier trace; the scatter is
    dominated by corridor *length mismatch* (VNFs with short corridors
    finish early while others are mid-flight), which no hop-level
    tie-break can fix.  The variant is kept as the natural first attempt,
    a correctness-tested baseline for corridor-alignment ideas, and a
    second corridor family for :func:`mpareto_migration` to draw
    candidates from — it never changes Algorithm 5's guarantees (rows 0
    and ``h_max−1`` are still ``p`` and ``p'``).
    """
    src = np.asarray(source, dtype=np.int64)
    dst = np.asarray(target, dtype=np.int64)
    if src.shape != dst.shape:
        raise MigrationError(f"source {src.shape} and target {dst.shape} differ")
    induced, position_of = topology.switch_only_graph()
    switches = topology.switches
    dist = induced.distances

    corridors: list[list[int]] = []
    previous: list[int] | None = None
    for j in range(src.size):
        a, b = int(src[j]), int(dst[j])
        if a == b:
            corridor = [a]
        elif not np.isfinite(dist[position_of[a], position_of[b]]):
            corridor = [a, b]  # server-centric fallback, as in the base variant
        else:
            corridor = [a]
            current = position_of[a]
            goal = position_of[b]
            step = 1
            while current != goal:
                remaining = dist[current, goal]
                nbrs = induced.neighbors(current)
                on_shortest = [
                    int(v)
                    for v in nbrs
                    if np.isclose(
                        induced.weights[current, v] + dist[v, goal], remaining
                    )
                ]
                assert on_shortest, "shortest-path step must exist"
                if previous is not None and len(on_shortest) > 1:
                    anchor = previous[min(step, len(previous) - 1)]
                    anchor_pos = position_of[anchor]
                    on_shortest.sort(key=lambda v: (dist[v, anchor_pos], v))
                current = on_shortest[0]
                corridor.append(int(switches[current]))
                step += 1
        corridors.append(corridor)
        previous = corridor
    return corridors


def migration_frontiers(
    topology: Topology,
    source: np.ndarray,
    target: np.ndarray,
    coherent: bool = False,
) -> list[np.ndarray]:
    """The ``h_max`` parallel migration frontiers of Definition 2.

    Row ``i`` places VNF ``j`` at the ``min(i, h_j−1)``-th switch of its
    corridor; row 0 is ``p`` and the last row is ``p'``.  With
    ``coherent=True`` the corridors are convoy-aligned (see
    :func:`coherent_migration_corridors`).
    """
    if coherent:
        corridors = coherent_migration_corridors(topology, source, target)
    else:
        corridors = migration_corridors(topology, source, target)
    h_max = max(len(c) for c in corridors)
    frontiers = []
    for i in range(h_max):
        row = np.asarray(
            [corridor[min(i, len(corridor) - 1)] for corridor in corridors],
            dtype=np.int64,
        )
        frontiers.append(row)
    return frontiers


@dataclass(frozen=True)
class FrontierTrace:
    """All parallel frontiers with their cost coordinates (Fig. 6(b)).

    ``migration_costs[i]`` / ``communication_costs[i]`` are
    ``C_b(p, fr_i)`` / ``C_a(fr_i)`` for frontier ``i`` (row 0 = stay
    put, last row = the fresh placement ``p'``).
    """

    frontiers: list
    migration_costs: np.ndarray
    communication_costs: np.ndarray
    distinct: np.ndarray
    extra: dict = field(default_factory=dict)

    @property
    def total_costs(self) -> np.ndarray:
        return self.migration_costs + self.communication_costs

    @property
    def num_frontiers(self) -> int:
        return len(self.frontiers)

    def best_index(self, require_distinct: bool = False) -> int:
        totals = self.total_costs.copy()
        if require_distinct:
            totals[~self.distinct] = np.inf
        return int(np.argmin(totals))

    @property
    def cost(self) -> float:
        """Total cost at the best distinct frontier (common result surface)."""
        return float(self.total_costs[self.best_index(require_distinct=True)])

    @property
    def placement(self) -> np.ndarray:
        """The best distinct frontier's placement (common result surface)."""
        best = self.best_index(require_distinct=True)
        return np.asarray(self.frontiers[best], dtype=np.int64)

    @property
    def meta(self) -> dict:
        return {
            "algorithm": "mpareto-trace",
            "num_frontiers": self.num_frontiers,
            "best_index": self.best_index(require_distinct=True),
            **self.extra,
        }

    def to_dict(self) -> dict:
        """JSON-friendly view of the whole front plus the common surface."""
        return {
            "placement": self.placement.tolist(),
            "cost": self.cost,
            "meta": self.meta,
            "frontiers": [np.asarray(fr).tolist() for fr in self.frontiers],
            "migration_costs": self.migration_costs.tolist(),
            "communication_costs": self.communication_costs.tolist(),
            "distinct": self.distinct.tolist(),
        }


def frontier_trace(
    ctx: CostContext,
    source: np.ndarray,
    target: np.ndarray,
    mu: float,
    coherent: bool = False,
) -> FrontierTrace:
    """Price every parallel frontier between ``source`` and ``target``."""
    frontiers = migration_frontiers(ctx.topology, source, target, coherent=coherent)
    migration_costs = np.asarray(
        [ctx.migration_cost(source, fr, mu) for fr in frontiers]
    )
    communication_costs = np.asarray(
        [ctx.communication_cost(fr) for fr in frontiers]
    )
    distinct = np.asarray(
        [len(set(fr.tolist())) == fr.size for fr in frontiers], dtype=bool
    )
    return FrontierTrace(
        frontiers=frontiers,
        migration_costs=migration_costs,
        communication_costs=communication_costs,
        distinct=distinct,
    )


@legacy_signature("placement_algorithm", "require_distinct", "coherent")
def mpareto_migration(
    topology: Topology,
    flows: FlowSet,
    source_placement: np.ndarray,
    mu: float,
    *,
    placement_algorithm: PlacementAlgorithm = dp_placement,
    require_distinct: bool = True,
    coherent: bool = False,
    candidate_switches=None,
    cache: ComputeCache | None = None,
) -> MigrationResult:
    """Algorithm 5: migrate to the minimum-cost parallel frontier.

    ``flows`` carries the *new* traffic rates.  ``placement_algorithm``
    computes the fresh target placement ``p'`` (Algorithm 3 by default —
    line 1 of the pseudocode).  ``require_distinct=True`` (default) skips
    interior frontiers where two corridors momentarily collide on one
    switch: the model requires each VNF on its own switch, and the paper's
    worked Example 1 is consistent with the check even though the
    pseudocode omits it.  Row 0 (stay put) and the last row (``p'``) are
    always collision-free, so a feasible frontier always exists.  Pass
    ``require_distinct=False`` for the bit-faithful pseudocode behaviour.

    ``candidate_switches`` restricts the fresh target placement to that
    switch subset (the fault-aware simulator passes the surviving
    component so ``p'`` never lands on a dead or partitioned switch);
    corridors between two surviving-component switches stay inside the
    component by connectivity, so the restriction is complete.
    """
    src = validate_placement(topology, source_placement)
    ctx = CostContext(topology, flows, cache=cache)
    # arbitrary placement callables need not accept cache=; only forward
    # it (and the candidate restriction) to the default Algorithm-3 path,
    # which is known to
    if placement_algorithm is dp_placement:
        fresh = dp_placement(
            topology,
            flows,
            src.size,
            candidate_switches=candidate_switches,
            cache=ctx.cache,
        )
    else:
        fresh = placement_algorithm(topology, flows, src.size)
    trace = frontier_trace(ctx, src, fresh.placement, mu, coherent=coherent)
    best = trace.best_index(require_distinct=require_distinct)
    migration = np.asarray(trace.frontiers[best], dtype=np.int64)
    comm = float(trace.communication_costs[best])
    move = float(trace.migration_costs[best])
    return MigrationResult(
        source=src,
        migration=migration,
        cost=comm + move,
        communication_cost=comm,
        migration_cost=move,
        algorithm="mpareto",
        extra={
            "frontier_index": best,
            "num_frontiers": trace.num_frontiers,
            "target_placement": fresh.placement.tolist(),
            "frontier_distinct": bool(trace.distinct[best]),
        },
    )


def no_migration(
    topology: Topology,
    flows: FlowSet,
    source_placement: np.ndarray,
    mu: float = 0.0,
    *,
    cache: ComputeCache | None = None,
) -> MigrationResult:
    """The NoMigration baseline: stay at ``p`` and pay ``C_a(p)`` only."""
    src = validate_placement(topology, source_placement)
    ctx = CostContext(topology, flows, cache=cache)
    comm = ctx.communication_cost(src)
    return MigrationResult(
        source=src,
        migration=src,
        cost=comm,
        communication_cost=comm,
        migration_cost=0.0,
        algorithm="no-migration",
    )


def full_frontier_set(
    topology: Topology,
    source: np.ndarray,
    target: np.ndarray,
    limit: int = 100_000,
) -> list[np.ndarray]:
    """Definition 1's complete frontier set ``𝓕`` (all ``Π h_j`` schemes).

    Every way of stopping each VNF somewhere on its own corridor.  The
    size is the product of corridor lengths, so this is only enumerable
    for small instances; ``limit`` guards against accidental explosions
    (Algorithm 5 exists precisely because ``|𝓕|`` blows up — it scans the
    ``h_max`` *parallel* frontiers instead).
    """
    import itertools

    corridors = migration_corridors(topology, source, target)
    size = 1
    for corridor in corridors:
        size *= len(corridor)
        if size > limit:
            raise MigrationError(
                f"full frontier set has more than {limit} members "
                f"(product of corridor lengths); use parallel frontiers"
            )
    return [
        np.asarray(combo, dtype=np.int64)
        for combo in itertools.product(*corridors)
    ]


def best_full_frontier(
    ctx: CostContext,
    source: np.ndarray,
    target: np.ndarray,
    mu: float,
    require_distinct: bool = True,
    limit: int = 100_000,
) -> tuple[np.ndarray, float]:
    """Exhaustive minimum over Definition 1's full frontier set.

    The strongest corridor-constrained migration — used by the frontier
    ablation to quantify what Algorithm 5's parallel restriction gives up.
    """
    src = np.asarray(source, dtype=np.int64)
    best_cost = np.inf
    best: np.ndarray | None = None
    for frontier in full_frontier_set(ctx.topology, src, target, limit=limit):
        if require_distinct and len(set(frontier.tolist())) != frontier.size:
            continue
        cost = ctx.total_cost(src, frontier, mu)
        if cost < best_cost:
            best_cost = cost
            best = frontier
    if best is None:
        raise MigrationError("no feasible frontier in the full set")
    return best, float(best_cost)


# -- Pareto-front analysis (Fig. 6(b), Theorem 5) -----------------------------


def pareto_points(trace: FrontierTrace) -> np.ndarray:
    """Indices of non-dominated frontiers in the ``(C_b, C_a)`` plane."""
    cb = trace.migration_costs
    ca = trace.communication_costs
    keep = []
    for i in range(len(cb)):
        dominated = np.any(
            (cb <= cb[i]) & (ca <= ca[i]) & ((cb < cb[i]) | (ca < ca[i]))
        )
        if not dominated:
            keep.append(i)
    return np.asarray(keep, dtype=np.int64)


def is_pareto_front(trace: FrontierTrace, atol: float = 1e-9) -> bool:
    """True iff the frontier sequence itself forms a Pareto front.

    Along parallel frontiers ``C_b`` is non-decreasing by construction;
    the sequence is a Pareto front exactly when ``C_a`` is non-increasing
    (Fig. 6(b)'s empirical observation).
    """
    cb = trace.migration_costs
    ca = trace.communication_costs
    return bool(
        np.all(np.diff(cb) >= -atol) and np.all(np.diff(ca) <= atol)
    )


def front_is_convex(trace: FrontierTrace, atol: float = 1e-9) -> bool:
    """Theorem 5's condition: the (C_b, C_a) front is convex.

    Checked via non-decreasing slopes between consecutive distinct-``C_b``
    points of the front.
    """
    cb = trace.migration_costs
    ca = trace.communication_costs
    order = np.argsort(cb)
    cb, ca = cb[order], ca[order]
    slopes = []
    for i in range(1, len(cb)):
        if cb[i] - cb[i - 1] > atol:
            slopes.append((ca[i] - ca[i - 1]) / (cb[i] - cb[i - 1]))
    return bool(np.all(np.diff(np.asarray(slopes)) >= -atol)) if len(slopes) > 1 else True
