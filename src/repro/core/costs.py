"""The topology-aware cost model (Eq. 1 and Eq. 8), vectorized.

Eq. 1 decomposes — because the inter-VNF chain is shared by every flow —
into three independent parts (with ``Λ = Σ_i λ_i``):

    C_a(p) =  a_in[p(1)]                        (ingress attraction)
            + Λ · Σ_j c(p(j), p(j+1))           (chain cost)
            + a_out[p(n)]                       (egress attraction)

where ``a_in[u] = Σ_i λ_i · c(s(v_i), u)`` and
``a_out[u] = Σ_i λ_i · c(u, s(v'_i))``.  :class:`CostContext` precomputes
the attraction vectors and the switch-to-switch distance matrix once per
(topology, flow set) pair; every algorithm in :mod:`repro.core` and
:mod:`repro.baselines` prices its candidate placements through it, so all
algorithms are compared under the exact same cost function.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import PlacementError, WorkloadError
from repro.runtime.cache import ComputeCache, get_compute_cache
from repro.topology.base import Topology
from repro.workload.flows import FlowSet

__all__ = ["CostContext", "validate_placement"]


def validate_placement(
    topology: Topology, placement: Sequence[int] | np.ndarray, n: int | None = None
) -> np.ndarray:
    """Check a placement is ``n`` *distinct switches*; return it as an array.

    The paper assumes "different VNFs of an SFC are installed on servers
    attached on different switches" — duplicates are a modelling error,
    not just a bad solution.
    """
    arr = np.asarray(placement, dtype=np.int64)
    if arr.ndim != 1 or arr.size == 0:
        raise PlacementError(f"placement must be non-empty 1-D, got shape {arr.shape}")
    if n is not None and arr.size != n:
        raise PlacementError(f"placement has {arr.size} VNFs, expected {n}")
    switch_set = set(topology.switches.tolist())
    stray = [int(x) for x in arr if int(x) not in switch_set]
    if stray:
        raise PlacementError(f"placement entries {stray[:5]} are not switches")
    if len(set(arr.tolist())) != arr.size:
        raise PlacementError(f"placement {arr.tolist()} repeats a switch")
    return arr


class CostContext:
    """Precomputed cost structure for one (topology, flow set) pair.

    Attributes
    ----------
    total_rate:
        ``Λ = Σ_i λ_i``.
    ingress_attraction / egress_attraction:
        Arrays over *all graph nodes*: ``a_in[u]`` / ``a_out[u]`` as in the
        module docstring.  Indexing by node id (rather than switch
        position) keeps every algorithm free of position bookkeeping.
    cache:
        The :class:`~repro.runtime.cache.ComputeCache` the algorithms
        pricing through this context should reuse (defaults to the
        process-global one, so each worker process warms its own).
    """

    def __init__(
        self,
        topology: Topology,
        flows: FlowSet,
        cache: ComputeCache | None = None,
    ) -> None:
        flows.validate_against(topology)
        self.topology = topology
        self.flows = flows
        self.cache = cache if cache is not None else get_compute_cache()
        dist = topology.graph.distances
        self._dist = dist
        rates = flows.rates
        self.total_rate = float(rates.sum())
        # a_in[u] = Σ_i λ_i c(s(v_i), u): rows of dist indexed by source
        # hosts.  The gathered row blocks depend only on (topology,
        # endpoint set) — in the dynamic simulator the same endpoints are
        # re-rated every hour — so they are cached per topology; the
        # per-rate matvec over the cached block is bit-identical to the
        # uncached expression (the gather materializes the same
        # C-contiguous array either way).
        # on fault-degraded topologies the gathered rows contain inf in
        # dead-node columns, and zero-rated (dropped, parked) flows then
        # produce 0 × inf = NaN there.  Those columns are never read —
        # every solver restricts its candidates to surviving switches,
        # where distances are finite — so the NaN is expected, and if a
        # dead column ever *is* read the NaN poisons the result loudly.
        with np.errstate(invalid="ignore"):
            self.ingress_attraction = rates @ self._endpoint_rows(flows.sources)
            self.egress_attraction = rates @ self._endpoint_rows(flows.destinations)
        for arr in (self.ingress_attraction, self.egress_attraction):
            arr.setflags(write=False)

    def _endpoint_rows(self, endpoints: np.ndarray) -> np.ndarray:
        """Cached ``dist[endpoints, :]`` gather for one endpoint array."""
        key = ("dist_rows", endpoints.tobytes())

        def gather() -> np.ndarray:
            rows = self._dist[endpoints, :]
            rows.setflags(write=False)
            return rows

        return self.cache.get_or_compute(self.topology, key, gather)

    # -- Eq. 1 ---------------------------------------------------------------

    def chain_cost(self, placement: np.ndarray) -> float:
        """``Σ_j c(p(j), p(j+1))`` — the unscaled inter-VNF path cost."""
        p = np.asarray(placement, dtype=np.int64)
        if p.size < 2:
            return 0.0
        return float(self._dist[p[:-1], p[1:]].sum())

    def communication_cost(self, placement: np.ndarray) -> float:
        """``C_a(p)`` of Eq. 1."""
        p = np.asarray(placement, dtype=np.int64)
        if p.ndim != 1 or p.size == 0:
            raise PlacementError(f"placement must be non-empty 1-D, got {p!r}")
        return float(
            self.ingress_attraction[p[0]]
            + self.total_rate * self.chain_cost(p)
            + self.egress_attraction[p[-1]]
        )

    def per_flow_costs(self, placement: np.ndarray) -> np.ndarray:
        """Per-flow communication cost; sums to :meth:`communication_cost`."""
        p = np.asarray(placement, dtype=np.int64)
        chain = self.chain_cost(p)
        return self.flows.rates * (
            self._dist[self.flows.sources, p[0]]
            + chain
            + self._dist[p[-1], self.flows.destinations]
        )

    # -- Eq. 8 ---------------------------------------------------------------

    def migration_cost(self, source: np.ndarray, target: np.ndarray, mu: float) -> float:
        """``C_b(p, m) = μ Σ_j c(p(j), m(j))``."""
        if mu < 0:
            raise WorkloadError(f"migration coefficient must be non-negative, got {mu}")
        src = np.asarray(source, dtype=np.int64)
        dst = np.asarray(target, dtype=np.int64)
        if src.shape != dst.shape:
            raise PlacementError(
                f"source shape {src.shape} != target shape {dst.shape}"
            )
        return float(mu * self._dist[src, dst].sum())

    def total_cost(self, source: np.ndarray, target: np.ndarray, mu: float) -> float:
        """``C_t(p, m) = C_b(p, m) + C_a(m)`` of Eq. 8."""
        return self.migration_cost(source, target, mu) + self.communication_cost(target)

    # -- re-rating -------------------------------------------------------------

    def with_rates(self, rates: np.ndarray) -> "CostContext":
        """New context for the same pairs under a new traffic-rate vector."""
        return CostContext(self.topology, self.flows.with_rates(rates), cache=self.cache)

    def with_flows(self, flows: FlowSet) -> "CostContext":
        """New context for different flows (e.g. after VM migration)."""
        return CostContext(self.topology, flows, cache=self.cache)

    # -- convenience views -----------------------------------------------------

    @property
    def distances(self) -> np.ndarray:
        """Full node-by-node ``c(u, v)`` matrix (read-only)."""
        return self._dist

    @property
    def switches(self) -> np.ndarray:
        return self.topology.switches

    def switch_attractions(self) -> tuple[np.ndarray, np.ndarray]:
        """``(a_in, a_out)`` restricted to switch nodes, in switch order."""
        sw = self.topology.switches
        return self.ingress_attraction[sw], self.egress_attraction[sw]
