"""The topology-aware cost model (Eq. 1 and Eq. 8), vectorized.

Eq. 1 decomposes — because the inter-VNF chain is shared by every flow —
into three independent parts (with ``Λ = Σ_i λ_i``):

    C_a(p) =  a_in[p(1)]                        (ingress attraction)
            + Λ · Σ_j c(p(j), p(j+1))           (chain cost)
            + a_out[p(n)]                       (egress attraction)

where ``a_in[u] = Σ_i λ_i · c(s(v_i), u)`` and
``a_out[u] = Σ_i λ_i · c(u, s(v'_i))``.  :class:`CostContext` precomputes
the attraction vectors and the switch-to-switch distance matrix once per
(topology, flow set) pair; every algorithm in :mod:`repro.core` and
:mod:`repro.baselines` prices its candidate placements through it, so all
algorithms are compared under the exact same cost function.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import PlacementError, WorkloadError
from repro.runtime.cache import ComputeCache, get_compute_cache
from repro.topology.base import Topology
from repro.workload.flows import FlowSet

__all__ = ["AggregatedFlows", "CostContext", "validate_placement"]


class AggregatedFlows:
    """Pre-reduced flow population: attractions without the flows.

    The sharded day loop (:mod:`repro.shard`) computes the ingress/egress
    attraction vectors and ``Λ`` as per-block partial sums in worker
    processes and folds them in the parent — at that point the per-flow
    arrays no longer exist in one place, but every solver in
    :mod:`repro.core` prices placements *only* through those aggregates.
    This class carries the folded aggregates into :class:`CostContext`
    (whose constructor short-circuits on it instead of re-reducing), so
    the solvers run unchanged on sharded days.

    ``serving_fn`` is the one per-flow operation the aggregates cannot
    answer: the replication lattice's min-over-copies serving cost
    (Eq. 1 per copy, elementwise min, sum).  The shard supervisor injects
    a pool-backed evaluator; contexts built from real flow sets never
    consult it.

    Quacks like :class:`~repro.workload.flows.FlowSet` exactly as far as
    the day loop needs: ``with_rates`` is the identity (the aggregates
    already embed the hour's rates) and ``validate_against`` is a no-op
    (each block validated worker-side).  Anything needing the per-flow
    arrays raises :class:`~repro.errors.WorkloadError` instead of
    silently degrading.
    """

    __slots__ = (
        "num_flows",
        "total_rate",
        "ingress_attraction",
        "egress_attraction",
        "serving_fn",
        "meta",
    )

    def __init__(
        self,
        *,
        num_flows: int,
        total_rate: float,
        ingress_attraction: np.ndarray,
        egress_attraction: np.ndarray,
        serving_fn=None,
        meta: dict | None = None,
    ) -> None:
        a_in = np.ascontiguousarray(ingress_attraction, dtype=np.float64)
        a_out = np.ascontiguousarray(egress_attraction, dtype=np.float64)
        if a_in.shape != a_out.shape or a_in.ndim != 1:
            raise WorkloadError(
                f"attraction vectors must be matching 1-D node arrays, got "
                f"{a_in.shape} vs {a_out.shape}"
            )
        a_in.setflags(write=False)
        a_out.setflags(write=False)
        self.num_flows = int(num_flows)
        self.total_rate = float(total_rate)
        self.ingress_attraction = a_in
        self.egress_attraction = a_out
        self.serving_fn = serving_fn
        self.meta = dict(meta or {})

    # -- FlowSet protocol (the slice the solvers/day loop actually use) ------

    def with_rates(self, rates) -> "AggregatedFlows":
        """Identity: the aggregates already embed the hour's rates."""
        return self

    def validate_against(self, topology: Topology) -> None:
        """No-op: every block was validated against the topology worker-side."""

    def _no_per_flow(self, what: str):
        raise WorkloadError(
            f"AggregatedFlows carries folded attractions only; {what} needs "
            "the per-flow arrays, which live in the shard workers. Price "
            "through CostContext, or run unsharded."
        )

    @property
    def sources(self) -> np.ndarray:
        self._no_per_flow("sources")

    @property
    def destinations(self) -> np.ndarray:
        self._no_per_flow("destinations")

    @property
    def rates(self) -> np.ndarray:
        self._no_per_flow("rates")


def validate_placement(
    topology: Topology, placement: Sequence[int] | np.ndarray, n: int | None = None
) -> np.ndarray:
    """Check a placement is ``n`` *distinct switches*; return it as an array.

    The paper assumes "different VNFs of an SFC are installed on servers
    attached on different switches" — duplicates are a modelling error,
    not just a bad solution.
    """
    arr = np.asarray(placement, dtype=np.int64)
    if arr.ndim != 1 or arr.size == 0:
        raise PlacementError(f"placement must be non-empty 1-D, got shape {arr.shape}")
    if n is not None and arr.size != n:
        raise PlacementError(f"placement has {arr.size} VNFs, expected {n}")
    switch_set = set(topology.switches.tolist())
    stray = [int(x) for x in arr if int(x) not in switch_set]
    if stray:
        raise PlacementError(f"placement entries {stray[:5]} are not switches")
    if len(set(arr.tolist())) != arr.size:
        raise PlacementError(f"placement {arr.tolist()} repeats a switch")
    return arr


class CostContext:
    """Precomputed cost structure for one (topology, flow set) pair.

    Attributes
    ----------
    total_rate:
        ``Λ = Σ_i λ_i``.
    ingress_attraction / egress_attraction:
        Arrays over *all graph nodes*: ``a_in[u]`` / ``a_out[u]`` as in the
        module docstring.  Indexing by node id (rather than switch
        position) keeps every algorithm free of position bookkeeping.
    cache:
        The :class:`~repro.runtime.cache.ComputeCache` the algorithms
        pricing through this context should reuse (defaults to the
        process-global one, so each worker process warms its own).
    """

    def __init__(
        self,
        topology: Topology,
        flows: FlowSet | AggregatedFlows,
        cache: ComputeCache | None = None,
    ) -> None:
        self.topology = topology
        self.flows = flows
        self.cache = cache if cache is not None else get_compute_cache()
        dist = topology.graph.distances
        self._dist = dist
        if isinstance(flows, AggregatedFlows):
            # the shard layer already reduced the population; adopt its
            # folded aggregates verbatim so sharded and unsharded contexts
            # hold bit-identical floats
            self.total_rate = flows.total_rate
            self.ingress_attraction = flows.ingress_attraction
            self.egress_attraction = flows.egress_attraction
            return
        flows.validate_against(topology)
        rates = flows.rates
        self.total_rate = float(rates.sum())
        # a_in[u] = Σ_i λ_i c(s(v_i), u): rows of dist indexed by source
        # hosts.  The gathered row blocks depend only on (topology,
        # endpoint set) — in the dynamic simulator the same endpoints are
        # re-rated every hour — so they are cached per topology; the
        # per-rate matvec over the cached block is bit-identical to the
        # uncached expression (the gather materializes the same
        # C-contiguous array either way).
        # on fault-degraded topologies the gathered rows contain inf in
        # dead-node columns, and zero-rated (dropped, parked) flows then
        # produce 0 × inf = NaN there.  Those columns are never read —
        # every solver restricts its candidates to surviving switches,
        # where distances are finite — so the NaN is expected, and if a
        # dead column ever *is* read the NaN poisons the result loudly.
        with np.errstate(invalid="ignore"):
            self.ingress_attraction = rates @ self._endpoint_rows(flows.sources)
            self.egress_attraction = rates @ self._endpoint_rows(flows.destinations)
        for arr in (self.ingress_attraction, self.egress_attraction):
            arr.setflags(write=False)

    def _endpoint_rows(self, endpoints: np.ndarray) -> np.ndarray:
        """Cached ``dist[endpoints, :]`` gather for one endpoint array."""
        key = ("dist_rows", endpoints.tobytes())

        def gather() -> np.ndarray:
            rows = self._dist[endpoints, :]
            rows.setflags(write=False)
            return rows

        return self.cache.get_or_compute(self.topology, key, gather)

    # -- Eq. 1 ---------------------------------------------------------------

    def chain_cost(self, placement: np.ndarray) -> float:
        """``Σ_j c(p(j), p(j+1))`` — the unscaled inter-VNF path cost."""
        p = np.asarray(placement, dtype=np.int64)
        if p.size < 2:
            return 0.0
        return float(self._dist[p[:-1], p[1:]].sum())

    def communication_cost(self, placement: np.ndarray) -> float:
        """``C_a(p)`` of Eq. 1."""
        p = np.asarray(placement, dtype=np.int64)
        if p.ndim != 1 or p.size == 0:
            raise PlacementError(f"placement must be non-empty 1-D, got {p!r}")
        return float(
            self.ingress_attraction[p[0]]
            + self.total_rate * self.chain_cost(p)
            + self.egress_attraction[p[-1]]
        )

    def per_flow_costs(self, placement: np.ndarray) -> np.ndarray:
        """Per-flow communication cost; sums to :meth:`communication_cost`."""
        if isinstance(self.flows, AggregatedFlows):
            self.flows._no_per_flow("per_flow_costs")
        p = np.asarray(placement, dtype=np.int64)
        chain = self.chain_cost(p)
        return self.flows.rates * (
            self._dist[self.flows.sources, p[0]]
            + chain
            + self._dist[p[-1], self.flows.destinations]
        )

    # -- replication serving (min over copies) --------------------------------

    def _per_copy_costs(self, copies: np.ndarray) -> np.ndarray:
        """``(r, l)`` matrix: flow ``i``'s full route cost through copy ``r``."""
        flows = self.flows
        if isinstance(flows, AggregatedFlows):
            flows._no_per_flow("_per_copy_costs")
        dist = self._dist
        out = np.empty((copies.shape[0], flows.num_flows))
        for r_idx in range(copies.shape[0]):
            row = copies[r_idx]
            chain = float(dist[row[:-1], row[1:]].sum()) if row.size > 1 else 0.0
            out[r_idx] = flows.rates * (
                dist[flows.sources, row[0]] + chain + dist[row[-1], flows.destinations]
            )
        return out

    def min_copy_serving_cost(self, copies: np.ndarray) -> float:
        """``C_a^rep`` for a copy stack: every flow takes its cheapest copy.

        On an :class:`AggregatedFlows` context this routes to the injected
        ``serving_fn`` (the shard supervisor's pool-backed evaluator, which
        computes the same per-block partials and folds them in block
        order); otherwise it is the direct min-over-copies reduction.
        """
        copies = np.asarray(copies, dtype=np.int64)
        flows = self.flows
        if isinstance(flows, AggregatedFlows):
            if flows.serving_fn is None:
                raise WorkloadError(
                    "this AggregatedFlows was built without a serving_fn; "
                    "replication days need the shard supervisor's evaluator"
                )
            return float(flows.serving_fn(copies))
        return float(self._per_copy_costs(copies).min(axis=0).sum())

    # -- Eq. 8 ---------------------------------------------------------------

    def migration_cost(self, source: np.ndarray, target: np.ndarray, mu: float) -> float:
        """``C_b(p, m) = μ Σ_j c(p(j), m(j))``."""
        if mu < 0:
            raise WorkloadError(f"migration coefficient must be non-negative, got {mu}")
        src = np.asarray(source, dtype=np.int64)
        dst = np.asarray(target, dtype=np.int64)
        if src.shape != dst.shape:
            raise PlacementError(
                f"source shape {src.shape} != target shape {dst.shape}"
            )
        return float(mu * self._dist[src, dst].sum())

    def total_cost(self, source: np.ndarray, target: np.ndarray, mu: float) -> float:
        """``C_t(p, m) = C_b(p, m) + C_a(m)`` of Eq. 8."""
        return self.migration_cost(source, target, mu) + self.communication_cost(target)

    # -- re-rating -------------------------------------------------------------

    def with_rates(self, rates: np.ndarray) -> "CostContext":
        """New context for the same pairs under a new traffic-rate vector."""
        return CostContext(self.topology, self.flows.with_rates(rates), cache=self.cache)

    def with_flows(self, flows: FlowSet) -> "CostContext":
        """New context for different flows (e.g. after VM migration)."""
        return CostContext(self.topology, flows, cache=self.cache)

    # -- convenience views -----------------------------------------------------

    @property
    def distances(self) -> np.ndarray:
        """Full node-by-node ``c(u, v)`` matrix (read-only)."""
        return self._dist

    @property
    def switches(self) -> np.ndarray:
        return self.topology.switches

    def switch_attractions(self) -> tuple[np.ndarray, np.ndarray]:
        """``(a_in, a_out)`` restricted to switch nodes, in switch order."""
        sw = self.topology.switches
        return self.ingress_attraction[sw], self.egress_attraction[sw]
