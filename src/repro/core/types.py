"""Result types shared by every placement/migration algorithm.

All algorithms — ours and the baselines — return the same
:class:`PlacementResult` / :class:`MigrationResult` shapes so the
experiment harness can evaluate and tabulate them uniformly.

Every result type (including :class:`~repro.baselines.common.VMMigrationResult`
and :class:`~repro.core.migration.FrontierTrace`) exposes the same minimal
surface — ``cost``, ``placement``, ``meta`` (a plain dict of the algorithm
id plus diagnostics), and ``to_dict()`` — so callers can treat any solver
output uniformly without isinstance checks.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import PlacementError

__all__ = ["PlacementResult", "MigrationResult"]


@dataclass(frozen=True)
class PlacementResult:
    """A VNF placement ``p`` and its total communication cost ``C_a(p)``.

    Attributes
    ----------
    placement:
        ``p`` as an array of graph node indices: ``placement[j]`` is the
        switch hosting VNF ``f_{j+1}`` (ingress at position 0).
    cost:
        ``C_a(p)`` under the rates the algorithm was given (Eq. 1).
    algorithm:
        Identifier for tables (``"dp"``, ``"optimal"``, ``"steering"``, …).
    extra:
        Free-form diagnostics (iterations, bound values, runtimes, …).
    """

    placement: np.ndarray
    cost: float
    algorithm: str
    extra: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        arr = np.asarray(self.placement, dtype=np.int64)
        if arr.ndim != 1 or arr.size == 0:
            raise PlacementError(f"placement must be a non-empty 1-D array, got {arr!r}")
        arr.setflags(write=False)
        object.__setattr__(self, "placement", arr)
        if not np.isfinite(self.cost):
            raise PlacementError(f"placement cost must be finite, got {self.cost}")

    @property
    def num_vnfs(self) -> int:
        return int(self.placement.size)

    @property
    def ingress(self) -> int:
        return int(self.placement[0])

    @property
    def egress(self) -> int:
        return int(self.placement[-1])

    @property
    def meta(self) -> dict:
        """Algorithm id plus free-form diagnostics (common result surface)."""
        return {"algorithm": self.algorithm, **self.extra}

    def to_dict(self) -> dict:
        """JSON-friendly view: ``{placement, cost, meta}``."""
        return {
            "placement": self.placement.tolist(),
            "cost": float(self.cost),
            "meta": self.meta,
        }


@dataclass(frozen=True)
class MigrationResult:
    """A VNF migration ``m`` from an initial placement ``p``.

    ``cost`` is the paper's objective ``C_t(p, m) = C_b(p, m) + C_a(m)``
    (Eq. 8); the two addends are broken out so the Pareto analysis and
    Fig. 11's migration-count plots need no recomputation.
    """

    source: np.ndarray
    migration: np.ndarray
    cost: float
    communication_cost: float
    migration_cost: float
    algorithm: str
    extra: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        src = np.asarray(self.source, dtype=np.int64)
        dst = np.asarray(self.migration, dtype=np.int64)
        if src.shape != dst.shape or src.ndim != 1 or src.size == 0:
            raise PlacementError(
                f"source {src.shape} and migration {dst.shape} must be equal-length 1-D"
            )
        for arr, name in ((src, "source"), (dst, "migration")):
            arr.setflags(write=False)
            object.__setattr__(self, name, arr)
        if abs((self.communication_cost + self.migration_cost) - self.cost) > 1e-6 * max(
            1.0, abs(self.cost)
        ):
            raise PlacementError(
                "cost must equal communication_cost + migration_cost "
                f"({self.communication_cost} + {self.migration_cost} != {self.cost})"
            )

    @property
    def num_migrated(self) -> int:
        """How many VNFs actually moved (``m(j) != p(j)``)."""
        return int(np.count_nonzero(self.source != self.migration))

    @property
    def placement(self) -> np.ndarray:
        """The post-migration placement ``m`` (common result surface)."""
        return self.migration

    @property
    def meta(self) -> dict:
        """Algorithm id, cost breakdown, and diagnostics in one dict."""
        return {
            "algorithm": self.algorithm,
            "communication_cost": float(self.communication_cost),
            "migration_cost": float(self.migration_cost),
            "num_migrated": self.num_migrated,
            **self.extra,
        }

    def to_dict(self) -> dict:
        """JSON-friendly view: ``{placement, source, cost, meta}``."""
        return {
            "placement": self.migration.tolist(),
            "source": self.source.tolist(),
            "cost": float(self.cost),
            "meta": self.meta,
        }

    def as_placement(self) -> PlacementResult:
        """The post-migration placement viewed as a plain placement result."""
        return PlacementResult(
            placement=self.migration,
            cost=self.communication_cost,
            algorithm=self.algorithm,
            extra=dict(self.extra),
        )
