"""Algorithm 2: the DP for the n-stroll problem (TOP-1).

Finding a shortest ``s``-``t`` stroll visiting ``n`` distinct nodes is
NP-hard, but a shortest ``s``-``t`` stroll with exactly ``e`` *edges* is a
min-plus DP.  Algorithm 2 therefore runs the e-edge DP on the *metric
closure* ``G''`` (complete graph of shortest-path costs), starting at
``e = n + 1`` and growing ``e`` until the reconstructed walk visits at
least ``n`` distinct intermediate nodes.  Two rules matter:

* the DP runs on the closure, not the raw graph — Example 2 of the paper
  shows the raw graph gives suboptimal walks;
* an immediate backtrack ``a → b → a`` is forbidden (line 6 of the
  pseudocode) — it burns two closure edges without discovering a new node
  (Example 3), and by the triangle inequality removing one never hurts.

**Backtrack modes.**  The paper's pseudocode memoizes a *single*
successor per ``(node, e)`` state and rejects an extension ``u → w``
whenever that stored successor of ``w`` is ``u``.  With cost ties (unit
weight fabrics are full of them) this can discard ``w`` even though an
equally cheap continuation avoiding ``u`` exists, and the DP then misses
optimal strolls.  The classic fix is to memoize the best *two*
successors and fall back to the second when the first would backtrack —
this computes exactly the minimum-cost no-immediate-backtrack e-edge
stroll, which is what the exclusion rule intends.  The engine supports
both: ``mode="second-best"`` (default, the strengthened DP) and
``mode="paper"`` (bit-faithful to the pseudocode; used in ablations and
verified against :func:`dp_stroll_reference`).

:func:`dp_stroll_reference` transliterates the pseudocode with explicit
loops; :class:`StrollEngine` vectorizes each DP layer as a masked
min-plus matrix step and exposes batch solving toward a fixed target so
Algorithm 3 can amortize one DP run across every candidate ingress.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import InfeasibleError, SolverError

__all__ = ["StrollResult", "StrollEngine", "dp_stroll", "dp_stroll_reference"]

_MODES = ("second-best", "paper")


@dataclass(frozen=True)
class StrollResult:
    """An ``s``-``t`` stroll visiting at least ``n`` distinct intermediates.

    Attributes
    ----------
    walk:
        Node sequence in closure-index space, from ``s`` to ``t``
        inclusive; every hop is a closure edge.
    cost:
        Walk cost under the closure matrix the solver was given.
    distinct:
        The first ``n`` distinct intermediate nodes in visit order —
        exactly where Algorithm 2 installs ``f_1 … f_n``.
    num_edges:
        ``len(walk) - 1`` (the final ``r`` of the pseudocode).
    """

    walk: np.ndarray
    cost: float
    distinct: np.ndarray
    num_edges: int
    extra: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        for name in ("walk", "distinct"):
            arr = np.asarray(getattr(self, name), dtype=np.int64)
            arr.setflags(write=False)
            object.__setattr__(self, name, arr)


def _collect_distinct(walk: np.ndarray, n: int) -> np.ndarray:
    """First ``n`` distinct intermediates of a walk, in first-visit order.

    Endpoints (``walk[0]`` and ``walk[-1]``) never count, even when the
    walk revisits them mid-way.
    """
    source, target = int(walk[0]), int(walk[-1])
    seen: list[int] = []
    seen_set = {source, target}
    for node in walk[1:-1]:
        node = int(node)
        if node not in seen_set:
            seen.append(node)
            seen_set.add(node)
            if len(seen) == n:
                break
    return np.asarray(seen, dtype=np.int64)


def count_needed(nodes: list[int], endpoints: set[int]) -> int:
    """Distinct non-endpoint nodes in a walk (the stroll feasibility count)."""
    return len({v for v in nodes if v not in endpoints})


def _check_inputs(closure: np.ndarray, source: int, target: int, n: int) -> np.ndarray:
    closure = np.asarray(closure, dtype=np.float64)
    if closure.ndim != 2 or closure.shape[0] != closure.shape[1]:
        raise SolverError(f"closure must be square, got shape {closure.shape}")
    m = closure.shape[0]
    if not (0 <= source < m and 0 <= target < m):
        raise SolverError(f"endpoints ({source}, {target}) out of range for {m} nodes")
    if n < 1:
        raise SolverError(f"n must be >= 1, got {n}")
    available = m - len({source, target})
    if available < n:
        raise InfeasibleError(
            f"need {n} distinct intermediates but only {available} candidate nodes exist"
        )
    return closure


class StrollEngine:
    """Incremental e-edge stroll DP toward a fixed ``target``.

    For every layer ``e`` the engine stores, per node ``u``, the best and
    second-best first steps of an exactly-``e``-edge ``u → target``
    stroll (``cost1/succ1`` and ``cost2/succ2``; the two strolls differ
    in their first step).  Layers are grown on demand, so asking for
    results from many sources (Algorithm 3) shares all the DP work.
    """

    #: how many edge counts beyond ``n + 1`` the outer loop scans before
    #: falling back to insertion repair (see :meth:`solve`)
    scan_slack: int = 6

    def __init__(
        self,
        closure: np.ndarray,
        target: int,
        mode: str = "second-best",
        max_edges: int | None = None,
    ) -> None:
        closure = np.asarray(closure, dtype=np.float64)
        if closure.ndim != 2 or closure.shape[0] != closure.shape[1]:
            raise SolverError(f"closure must be square, got shape {closure.shape}")
        if mode not in _MODES:
            raise SolverError(f"mode must be one of {_MODES}, got {mode!r}")
        self.closure = closure
        self.m = closure.shape[0]
        if not (0 <= target < self.m):
            raise SolverError(f"target {target} out of range for {self.m} nodes")
        self.target = int(target)
        self.mode = mode
        # a walk can always reach n distinct nodes within n + m edges; the
        # default guard is generous so hitting it indicates a logic error.
        self.max_edges = max_edges if max_edges is not None else 2 * self.m + 64

        cost1 = closure[:, target].astype(np.float64, copy=True)
        cost1[target] = np.inf  # a 1-edge stroll target->target is a self-loop
        succ1 = np.full(self.m, target, dtype=np.int64)
        succ1[target] = -1
        cost2 = np.full(self.m, np.inf)
        succ2 = np.full(self.m, -1, dtype=np.int64)
        # layer index 0 == e = 1
        self._cost1: list[np.ndarray] = [cost1]
        self._succ1: list[np.ndarray] = [succ1]
        self._cost2: list[np.ndarray] = [cost2]
        self._succ2: list[np.ndarray] = [succ2]
        self._diag = np.arange(self.m)

    @property
    def num_layers(self) -> int:
        """Largest ``e`` currently computed."""
        return len(self._cost1)

    def _grow_layer(self) -> None:
        prev_c1, prev_s1 = self._cost1[-1], self._succ1[-1]
        prev_c2 = self._cost2[-1]
        closure = self.closure
        # M[u, w] = cost of stepping u -> w then continuing optimally while
        # avoiding an immediate return to u
        step = closure + prev_c1[None, :]
        cols = np.flatnonzero(np.isfinite(prev_c1))
        rows = prev_s1[cols]
        if self.mode == "paper":
            # pseudocode: reject w outright when its stored successor is u
            step[rows, cols] = np.inf
        else:
            # strengthened DP: fall back to w's second-best continuation
            step[rows, cols] = closure[rows, cols] + prev_c2[cols]
        step[:, self.target] = np.inf  # target is never an intermediate
        step[self._diag, self._diag] = np.inf  # no self-steps

        cost1 = step.min(axis=1)
        succ1 = step.argmin(axis=1).astype(np.int64)
        succ1[~np.isfinite(cost1)] = -1
        # second-best first step (must differ from the best first step)
        finite = np.isfinite(cost1)
        step[self._diag[finite], succ1[finite]] = np.inf
        cost2 = step.min(axis=1)
        succ2 = step.argmin(axis=1).astype(np.int64)
        succ2[~np.isfinite(cost2)] = -1

        self._cost1.append(cost1)
        self._succ1.append(succ1)
        self._cost2.append(cost2)
        self._succ2.append(succ2)

    def ensure_layers(self, e: int) -> None:
        if e > self.max_edges:
            raise SolverError(
                f"stroll DP asked for {e} edges, beyond the max_edges={self.max_edges} guard"
            )
        while self.num_layers < e:
            self._grow_layer()

    def cost_at(self, source: int, e: int) -> float:
        """Min cost of an exactly-``e``-edge ``source → target`` stroll."""
        self.ensure_layers(e)
        return float(self._cost1[e - 1][source])

    def walk_at(self, source: int, e: int) -> np.ndarray:
        """Reconstruct the ``e``-edge stroll from ``source`` (inclusive).

        Steps follow the best stored successor, falling back to the
        second-best when the best would immediately backtrack (the cost
        layers were computed under exactly this rule, so the walk's cost
        matches :meth:`cost_at`).
        """
        self.ensure_layers(e)
        if not np.isfinite(self._cost1[e - 1][source]):
            raise InfeasibleError(
                f"no {e}-edge stroll from {source} to {self.target} exists"
            )
        walk = [int(source)]
        prev = -1
        node = int(source)
        for remaining in range(e, 0, -1):
            layer = remaining - 1
            nxt = int(self._succ1[layer][node])
            if nxt == prev:
                nxt = int(self._succ2[layer][node])
                if nxt < 0:
                    raise SolverError("stroll reconstruction hit a dead end")
            prev = node
            node = nxt
            walk.append(node)
        assert node == self.target, "stroll reconstruction must end at the target"
        return np.asarray(walk, dtype=np.int64)

    def batch_solve(self, n: int) -> tuple[np.ndarray, np.ndarray]:
        """Algorithm 2's outer loop for *every* source at once.

        Returns ``(costs, edges)`` arrays over all sources: ``costs[s]`` is
        the cost of the first (smallest-``e``) exactly-``e``-edge stroll
        from ``s`` whose reconstruction visits at least ``n`` distinct
        intermediates, and ``edges[s]`` that ``e``.  Sources whose scan
        window never yields enough distinct nodes are finished by
        :meth:`solve` (insertion repair) and report the repaired cost.
        Successor chaining and the distinct-intermediate count are fully
        vectorized per layer.
        """
        m = self.m
        costs = np.full(m, np.inf)
        edges = np.full(m, -1, dtype=np.int64)
        pending = np.ones(m, dtype=bool)
        scan_limit = min(n + 1 + self.scan_slack, self.max_edges)
        e = n + 1
        while np.any(pending) and e <= scan_limit:
            self.ensure_layers(e)
            layer_cost = self._cost1[e - 1]
            active = np.flatnonzero(pending & np.isfinite(layer_cost))
            if active.size:
                walks = np.empty((active.size, e + 1), dtype=np.int64)
                walks[:, 0] = active
                prev = np.full(active.size, -1, dtype=np.int64)
                node = active.copy()
                for step in range(1, e + 1):
                    layer = e - step
                    nxt = self._succ1[layer][node]
                    clash = nxt == prev
                    if np.any(clash):
                        nxt = np.where(clash, self._succ2[layer][node], nxt)
                    prev = node
                    node = nxt
                    walks[:, step] = node
                # distinct intermediates, excluding each walk's own source
                # and the shared target
                interior = walks[:, 1:-1].copy()
                interior[interior == walks[:, :1]] = -1
                interior[interior == self.target] = -1
                interior.sort(axis=1)
                fresh = interior[:, 1:] != interior[:, :-1]
                counts = fresh.sum(axis=1) + 1
                counts -= (interior[:, :1] == -1).ravel()  # drop the -1 bucket
                ok = counts >= n
                done = active[ok]
                costs[done] = layer_cost[done]
                edges[done] = e
                pending[done] = False
            e += 1
        # stragglers: the per-source repair path (rare — cheap-cycle orbits)
        for source in np.flatnonzero(pending):
            try:
                result = self.solve(int(source), n)
            except (InfeasibleError, SolverError):
                continue  # stays at (inf, -1): no stroll from this source
            costs[source] = result.cost
            edges[source] = result.num_edges
        return costs, edges

    def _repair_walk(self, walk: np.ndarray, n: int) -> np.ndarray:
        """Greedy insertion repair: add fresh nodes until ``n`` distinct.

        When the scanned layers never produce a walk with ``n`` distinct
        intermediates (the e-edge optimum keeps orbiting a cheap cycle —
        the failure mode the pseudocode's backtrack rule only "partially"
        fixes, cf. Example 3), the cheapest scanned walk is patched by
        repeatedly inserting the unvisited node with the smallest detour
        ``c(a, x) + c(x, b) − c(a, b)`` between some consecutive pair.
        Each insertion adds exactly one distinct node, so termination is
        immediate and the detour premium is bounded by the insertion costs.
        """
        closure = self.closure
        nodes = list(int(v) for v in walk)
        endpoints = {nodes[0], self.target}
        visited = set(nodes)
        missing = n - count_needed(nodes, endpoints)
        candidates = [
            v for v in range(self.m) if v not in visited and v not in endpoints
        ]
        if missing > len(candidates):
            raise InfeasibleError(
                f"cannot repair walk to {n} distinct nodes: only "
                f"{len(candidates)} unvisited candidates remain"
            )
        for _ in range(missing):
            best = (np.inf, -1, -1)  # (delta, candidate, position)
            arr = np.asarray(nodes)
            for x in candidates:
                deltas = closure[arr[:-1], x] + closure[x, arr[1:]] - closure[arr[:-1], arr[1:]]
                pos = int(np.argmin(deltas))
                if deltas[pos] < best[0]:
                    best = (float(deltas[pos]), x, pos)
            _, x, pos = best
            if x < 0:
                raise SolverError("repair found no insertable node")  # pragma: no cover
            nodes.insert(pos + 1, x)
            candidates.remove(x)
        return np.asarray(nodes, dtype=np.int64)

    def solve(self, source: int, n: int) -> StrollResult:
        """Algorithm 2's outer loop: grow ``e`` until ``n`` distinct nodes.

        The scan is bounded: if no layer in ``n+1 .. n+1+scan_slack``
        yields enough distinct intermediates (possible when a cheap cycle
        dominates every longer layer), the cheapest scanned walk is
        patched by :meth:`_repair_walk` instead of growing ``e`` forever.
        """
        _check_inputs(self.closure, source, self.target, n)
        fallback: np.ndarray | None = None
        fallback_cost = np.inf
        for e in range(n + 1, min(n + 1 + self.scan_slack, self.max_edges) + 1):
            self.ensure_layers(e)
            if not np.isfinite(self._cost1[e - 1][source]):
                continue
            walk = self.walk_at(source, e)
            distinct = _collect_distinct(walk, n)
            if distinct.size >= n:
                return StrollResult(
                    walk=walk,
                    cost=float(self._cost1[e - 1][source]),
                    distinct=distinct[:n],
                    num_edges=e,
                    extra={"grown_layers": self.num_layers, "mode": self.mode},
                )
            if fallback is None:
                fallback = walk
                fallback_cost = float(self._cost1[e - 1][source])
        if fallback is None:
            raise SolverError(
                f"no stroll from {source} to {self.target} exists within "
                f"{self.max_edges} edges"
            )
        repaired = self._repair_walk(fallback, n)
        distinct = _collect_distinct(repaired, n)
        assert distinct.size >= n, "repair must reach n distinct intermediates"
        cost = float(self.closure[repaired[:-1], repaired[1:]].sum())
        return StrollResult(
            walk=repaired,
            cost=cost,
            distinct=distinct[:n],
            num_edges=int(repaired.size - 1),
            extra={"mode": self.mode, "repaired": True, "scan_cost": fallback_cost},
        )


def dp_stroll(
    closure: np.ndarray,
    source: int,
    target: int,
    n: int,
    mode: str = "second-best",
) -> StrollResult:
    """Algorithm 2 (vectorized): shortest stroll visiting ``n`` distinct nodes.

    ``closure`` must be a metric-closure cost matrix (complete graph);
    ``source``/``target`` are indices into it.  See the module docstring
    for the ``mode`` choices.
    """
    closure = _check_inputs(closure, source, target, n)
    engine = StrollEngine(closure, target, mode=mode)
    return engine.solve(source, n)


def dp_stroll_reference(
    closure: np.ndarray,
    source: int,
    target: int,
    n: int,
) -> StrollResult:
    """Pure-Python transliteration of the paper's Algorithm 2 pseudocode.

    Single-successor memoization, exactly as printed (= ``mode="paper"``
    of the vectorized engine, which tests assert it agrees with).  Kept
    deliberately loop-heavy and index-explicit as executable ground truth.
    """
    closure = _check_inputs(closure, source, target, n)
    m = closure.shape[0]
    max_edges = 2 * m + 64

    # cost[e][u], succ[e][u]; e starts at 1
    cost: dict[int, list[float]] = {1: [float("inf")] * m}
    succ: dict[int, list[int]] = {1: [-1] * m}
    for u in range(m):
        if u != target:
            cost[1][u] = float(closure[u, target])
            succ[1][u] = target

    def grow(e: int) -> None:
        cost[e] = [float("inf")] * m
        succ[e] = [-1] * m
        for u_i in range(m):
            for u in range(m):
                if u == u_i or u == target:
                    continue
                if succ[e - 1][u] == u_i:
                    continue  # line 6: no immediate backtrack
                candidate = float(closure[u_i, u]) + cost[e - 1][u]
                if candidate < cost[e][u_i]:
                    cost[e][u_i] = candidate
                    succ[e][u_i] = u

    r = n + 1
    while True:
        for e in range(2, r + 1):
            if e not in cost:
                grow(e)
        if cost[r][source] != float("inf"):
            # reconstruct the r-edge walk via the successor tables
            walk = [source]
            node = source
            for remaining in range(r, 0, -1):
                node = succ[remaining][node]
                walk.append(node)
            walk_arr = np.asarray(walk, dtype=np.int64)
            distinct = _collect_distinct(walk_arr, n)
            if distinct.size >= n:
                return StrollResult(
                    walk=walk_arr,
                    cost=float(cost[r][source]),
                    distinct=distinct[:n],
                    num_edges=r,
                    extra={"engine": "reference"},
                )
        r += 1
        if r > max_edges:
            raise SolverError(
                f"reference stroll search exceeded {max_edges} edges; "
                "instance appears degenerate"
            )
