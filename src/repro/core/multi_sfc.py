"""Multiple SFC classes (the paper's Section VII future work).

The paper's model serves every flow with one shared SFC; its future work
asks about "a more general scenario wherein ... different VM flows can
request different SFCs".  This module implements that generalization
under the same one-VNF-per-switch rule:

* flows are partitioned into *classes*, each with its own SFC;
* chains of different classes occupy disjoint switch sets (each switch's
  attached server hosts one VNF);
* the objective is the sum of Eq. 1 over classes.

Placement is sequential: classes are processed heaviest-traffic first,
each placed by Algorithm 3 restricted to the still-unused switches —
the heaviest class gets the best geography, a natural generalization of
the single-SFC DP that degrades gracefully and keeps the per-class
optimality structure.  Migration applies mPareto per class, with
frontiers that would collide with *other* classes' chains filtered out.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.costs import CostContext, validate_placement
from repro.core.migration import frontier_trace
from repro.core.placement import chain_size, dp_placement
from repro.core.types import MigrationResult
from repro.errors import InfeasibleError, PlacementError, WorkloadError
from repro.topology.base import Topology
from repro.workload.flows import FlowSet
from repro.workload.sfc import SFC

__all__ = [
    "MultiSfcPlacement",
    "multi_sfc_placement",
    "multi_sfc_cost",
    "multi_sfc_migration",
]


@dataclass(frozen=True)
class MultiSfcPlacement:
    """Per-class placements over disjoint switch sets."""

    placements: tuple[np.ndarray, ...]
    class_costs: tuple[float, ...]
    cost: float
    extra: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        frozen = []
        seen: set[int] = set()
        for arr in self.placements:
            arr = np.asarray(arr, dtype=np.int64)
            overlap = seen & set(arr.tolist())
            if overlap:
                raise PlacementError(
                    f"classes share switches {sorted(overlap)[:5]}"
                )
            seen.update(arr.tolist())
            arr.setflags(write=False)
            frozen.append(arr)
        object.__setattr__(self, "placements", tuple(frozen))

    @property
    def num_classes(self) -> int:
        return len(self.placements)


def _split_classes(
    flows: FlowSet, class_of: np.ndarray, num_classes: int
) -> list[np.ndarray]:
    class_of = np.asarray(class_of, dtype=np.int64)
    if class_of.shape != (flows.num_flows,):
        raise WorkloadError(
            f"class_of shape {class_of.shape} != flow count {flows.num_flows}"
        )
    if class_of.min() < 0 or class_of.max() >= num_classes:
        raise WorkloadError(
            f"class ids must lie in [0, {num_classes}), got "
            f"[{class_of.min()}, {class_of.max()}]"
        )
    return [np.flatnonzero(class_of == c) for c in range(num_classes)]


def multi_sfc_cost(
    topology: Topology,
    flows: FlowSet,
    class_of: np.ndarray,
    placements: tuple[np.ndarray, ...] | list[np.ndarray],
) -> float:
    """Total Eq. 1 cost summed over classes (each with its own chain)."""
    members = _split_classes(flows, class_of, len(placements))
    total = 0.0
    for idx, placement in zip(members, placements):
        if idx.size == 0:
            continue
        ctx = CostContext(topology, flows.subset(idx))
        total += ctx.communication_cost(np.asarray(placement, dtype=np.int64))
    return float(total)


def multi_sfc_placement(
    topology: Topology,
    flows: FlowSet,
    class_of: np.ndarray,
    sfcs: list[SFC | int],
) -> MultiSfcPlacement:
    """Sequential heaviest-first placement of every class's chain."""
    sizes = [chain_size(sfc) for sfc in sfcs]
    if sum(sizes) > topology.num_switches:
        raise InfeasibleError(
            f"the {len(sfcs)} chains need {sum(sizes)} distinct switches but "
            f"the fabric has {topology.num_switches}"
        )
    members = _split_classes(flows, class_of, len(sfcs))
    for c, idx in enumerate(members):
        if idx.size == 0:
            raise WorkloadError(f"SFC class {c} has no flows")

    # heaviest classes claim switches first
    class_rates = [float(flows.rates[idx].sum()) for idx in members]
    order = np.argsort(-np.asarray(class_rates))

    placements: list[np.ndarray | None] = [None] * len(sfcs)
    class_costs: list[float] = [0.0] * len(sfcs)
    used: set[int] = set()
    for c in order:
        candidates = [int(s) for s in topology.switches if int(s) not in used]
        result = dp_placement(
            topology,
            flows.subset(members[c]),
            sizes[c],
            candidate_switches=candidates,
        )
        placements[c] = result.placement
        class_costs[c] = result.cost
        used.update(result.placement.tolist())

    assert all(p is not None for p in placements)
    return MultiSfcPlacement(
        placements=tuple(placements),  # type: ignore[arg-type]
        class_costs=tuple(class_costs),
        cost=float(sum(class_costs)),
        extra={"placement_order": [int(c) for c in order]},
    )


def multi_sfc_migration(
    topology: Topology,
    flows: FlowSet,
    class_of: np.ndarray,
    current: MultiSfcPlacement,
    mu: float,
) -> tuple[MultiSfcPlacement, list[MigrationResult]]:
    """Per-class mPareto under the new rates in ``flows``.

    Classes migrate heaviest-first; a class's candidate frontiers must not
    collide with any *other* class's (current or already-migrated) chain.
    """
    members = _split_classes(flows, class_of, current.num_classes)
    class_rates = [float(flows.rates[idx].sum()) for idx in members]
    order = np.argsort(-np.asarray(class_rates))

    new_placements: list[np.ndarray] = [p for p in current.placements]
    results: list[MigrationResult | None] = [None] * current.num_classes
    for c in order:
        idx = members[c]
        class_flows = flows.subset(idx) if idx.size else None
        if class_flows is None:
            continue
        source = np.asarray(current.placements[c], dtype=np.int64)
        occupied = {
            int(s)
            for other, placement in enumerate(new_placements)
            if other != c
            for s in placement
        }
        candidates = [
            int(s)
            for s in topology.switches
            if int(s) not in occupied or int(s) in set(source.tolist())
        ]
        fresh = dp_placement(
            topology, class_flows, source.size, candidate_switches=candidates
        )
        ctx = CostContext(topology, class_flows)
        trace = frontier_trace(ctx, source, fresh.placement, mu)
        totals = trace.total_costs.copy()
        for i, frontier in enumerate(trace.frontiers):
            collides = bool(set(int(s) for s in frontier) & occupied)
            if collides or not trace.distinct[i]:
                totals[i] = np.inf
        best = int(np.argmin(totals))
        migration = np.asarray(trace.frontiers[best], dtype=np.int64)
        comm = float(trace.communication_costs[best])
        move = float(trace.migration_costs[best])
        results[c] = MigrationResult(
            source=source,
            migration=migration,
            cost=comm + move,
            communication_cost=comm,
            migration_cost=move,
            algorithm="multi-sfc-mpareto",
            extra={"class": int(c), "frontier_index": best},
        )
        new_placements[c] = migration

    for c in range(current.num_classes):
        validate_placement(topology, new_placements[c])
    migrated = MultiSfcPlacement(
        placements=tuple(new_placements),
        class_costs=tuple(
            results[c].communication_cost if results[c] else 0.0
            for c in range(current.num_classes)
        ),
        cost=float(
            sum(r.communication_cost for r in results if r is not None)
        ),
        extra={"migration_order": [int(c) for c in order]},
    )
    return migrated, [r for r in results if r is not None]
