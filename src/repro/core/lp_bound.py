"""LP lower bound for TOP-1 (the primal of Eqs. 2–7, flow-relaxed).

Algorithm 1's analysis works against the LP relaxation of the TOP-1 ILP.
The ILP's cut constraints (5)–(6) are exponential in number, so we solve
a *polynomial* relaxation that keeps the bound property:

* the s-t connectivity cuts (5) are replaced by an exact unit s→t flow
  (one conservation constraint per node, ``f_{uv} + f_{vu} ≤ y_e``);
* the node-coverage cuts (6) are kept only for singletons
  (``Σ_{e ∋ v} y_e ≥ 2 x_v``);
* the count constraint (7), ``Σ x_v ≥ n``, is kept as is.

Every feasible n-stroll induces a feasible point (y = traversal counts,
f = one unit routed along the walk, x = indicators of the n visited
switches), so the LP optimum is a valid lower bound on the optimal
stroll — weaker than the full exponential LP, but solvable with scipy's
HiGHS in milliseconds and enough to sandwich the DP and primal-dual
results in tests:   LP ≤ Optimal ≤ DP-Stroll ≤ 2·Optimal + ε.

``cutting_planes=True`` recovers the *full* strength of constraint
family (6) by exact separation: a set ``S ∋ v`` of switches violating
``Σ_{e∈δ(S)} y_e ≥ 2 x_v`` is a minimum cut between ``v`` and the
non-switch nodes under capacities ``y``, found with the Edmonds–Karp
solver; violated cuts are added and the LP re-solved until none remain.
(The connectivity family (5) is already exact through the flow
formulation, by max-flow/min-cut duality.)
"""

from __future__ import annotations

import numpy as np
from scipy.optimize import linprog

from repro.errors import SolverError
from repro.flow.maxflow import max_flow_min_cut
from repro.graphs.adjacency import CostGraph

__all__ = ["top1_lp_lower_bound"]


def top1_lp_lower_bound(
    graph: CostGraph,
    source: int,
    target: int,
    n: int,
    countable: set[int] | None = None,
    rate: float = 1.0,
    cutting_planes: bool = False,
    max_rounds: int = 25,
) -> float:
    """Solve the flow-relaxed TOP-1 LP; returns the objective value.

    ``countable`` is the set of nodes eligible to host VNFs (the
    switches); it defaults to every node except the endpoints.  With
    ``cutting_planes=True`` the coverage cuts (6) are separated exactly
    (see module docstring) for the full LP bound.
    """
    if countable is None:
        countable = set(range(graph.num_nodes)) - {source, target}
    countable = sorted(set(countable) - {source, target})
    if n < 1:
        raise SolverError(f"n must be >= 1, got {n}")
    if len(countable) < n:
        raise SolverError(
            f"need {n} countable nodes but only {len(countable)} available"
        )

    edges = list(graph.edges)
    num_nodes = graph.num_nodes
    num_edges = len(edges)
    num_x = len(countable)
    x_pos = {v: i for i, v in enumerate(countable)}

    # variable layout: [y_e (E) | f_uv (E) | f_vu (E) | x_v (X)]
    num_vars = 3 * num_edges + num_x

    def y(i: int) -> int:
        return i

    def f_fwd(i: int) -> int:
        return num_edges + i

    def f_bwd(i: int) -> int:
        return 2 * num_edges + i

    def x(v: int) -> int:
        return 3 * num_edges + x_pos[v]

    cost = np.zeros(num_vars)
    for i, (u, v, _) in enumerate(edges):
        cost[y(i)] = rate * graph.weights[u, v]

    # equality: flow conservation; net outflow +1 at source, -1 at target
    a_eq = np.zeros((num_nodes, num_vars))
    b_eq = np.zeros(num_nodes)
    for i, (u, v, _) in enumerate(edges):
        a_eq[u, f_fwd(i)] += 1.0
        a_eq[v, f_fwd(i)] -= 1.0
        a_eq[v, f_bwd(i)] += 1.0
        a_eq[u, f_bwd(i)] -= 1.0
    b_eq[source] += 1.0
    b_eq[target] -= 1.0
    if source == target:
        # a tour has zero net flow everywhere; connectivity is then carried
        # only by the degree constraints (the bound remains valid)
        b_eq[:] = 0.0

    # inequalities in A_ub @ z <= b_ub form
    rows_ub: list[np.ndarray] = []
    b_ub: list[float] = []

    # f_uv + f_vu - y_e <= 0
    for i in range(num_edges):
        row = np.zeros(num_vars)
        row[f_fwd(i)] = 1.0
        row[f_bwd(i)] = 1.0
        row[y(i)] = -1.0
        rows_ub.append(row)
        b_ub.append(0.0)

    # singleton cuts: 2 x_v - sum_{e incident to v} y_e <= 0
    incident: dict[int, list[int]] = {v: [] for v in countable}
    for i, (u, v, _) in enumerate(edges):
        if u in incident:
            incident[u].append(i)
        if v in incident:
            incident[v].append(i)
    for v in countable:
        row = np.zeros(num_vars)
        row[x(v)] = 2.0
        for i in incident[v]:
            row[y(i)] -= 1.0
        rows_ub.append(row)
        b_ub.append(0.0)

    # count: -sum x_v <= -n
    row = np.zeros(num_vars)
    for v in countable:
        row[x(v)] = -1.0
    rows_ub.append(row)
    b_ub.append(-float(n))

    bounds = (
        [(0.0, float(n + 1))] * num_edges  # y_e: walks may reuse edges
        + [(0.0, 1.0)] * (2 * num_edges)  # unit flow
        + [(0.0, 1.0)] * num_x
    )

    def solve() -> "linprog.OptimizeResult":  # type: ignore[name-defined]
        result = linprog(
            cost,
            A_ub=np.vstack(rows_ub),
            b_ub=np.asarray(b_ub),
            A_eq=a_eq,
            b_eq=b_eq,
            bounds=bounds,
            method="highs",
        )
        if not result.success:  # pragma: no cover - scipy failure is exceptional
            raise SolverError(f"TOP-1 LP failed: {result.message}")
        return result

    result = solve()
    if not cutting_planes:
        return float(result.fun)

    # exact separation of the coverage cuts (6): for each fractional x_v,
    # the worst set S ∋ v of countable nodes is a min cut between v and a
    # super-sink attached to every non-countable node, capacities = y
    countable_set = set(countable)
    non_countable = [
        v for v in range(num_nodes) if v not in countable_set
    ]
    tol = 1e-7
    for _ in range(max_rounds):
        z = result.x
        y_vals = z[:num_edges]
        big = float(y_vals.sum()) + 1.0
        flow_nodes = num_nodes + 1
        super_sink = num_nodes
        base_arcs: list[tuple[int, int, float]] = []
        for i, (u, v, _) in enumerate(edges):
            capacity = float(y_vals[i])
            base_arcs.append((u, v, capacity))
            base_arcs.append((v, u, capacity))
        for v in non_countable:
            base_arcs.append((v, super_sink, big))

        violated = False
        for v in countable:
            x_val = float(z[x(v)])
            if x_val <= tol:
                continue
            cut_value, source_side = max_flow_min_cut(
                flow_nodes, base_arcs, v, super_sink
            )
            if cut_value < 2.0 * x_val - 1e-6:
                in_s = source_side[:num_nodes]
                row = np.zeros(num_vars)
                row[x(v)] = 2.0
                for i, (a, b) in enumerate((u, w) for u, w, _ in edges):
                    if in_s[a] != in_s[b]:
                        row[y(i)] -= 1.0
                rows_ub.append(row)
                b_ub.append(0.0)
                violated = True
        if not violated:
            break
        result = solve()
    return float(result.fun)
