"""Algorithms 4 and 6: exact (optimal) solvers for TOP and TOM.

Any stroll visiting ``n`` distinct switches induces an ordered tuple of
those switches, and conversely a tuple prices as the sum of metric-closure
hops — so the exact optimum of TOP is

    min over ordered distinct (q_1 … q_n):
        a_in[q_1] + Λ · Σ_j c(q_j, q_{j+1}) + a_out[q_n]

and TOM adds the per-position migration term ``μ · c(p_j, q_j)`` (Eq. 8).
The paper's Algorithms 4/6 enumerate all ``|V_s|!/(|V_s|-n)!`` tuples;
this module instead runs a depth-first branch-and-bound:

* an admissible lower bound ``g_j[u]`` — the cost of completing positions
  ``j+1 … n`` from ``u`` *ignoring distinctness* — is a single min-plus
  DP sweep (``O(n·C^2)``) and prunes most of the tree;
* the search is warm-started with the DP heuristic's solution, so pruning
  is effective from the first node;
* an explicit ``budget`` guard raises
  :class:`~repro.errors.BudgetExceededError` instead of running forever
  on instances where exactness is genuinely out of reach (the search is
  still ``O(C^n)`` worst-case — exactly the wall the paper acknowledges).

``candidate_switches`` restricts the search to a subset of switches; the
simulation harness uses this to compute *restricted-exact* references on
k=16 fabrics where the full exact search is infeasible (documented in
EXPERIMENTS.md).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro._compat import legacy_signature
from repro.constraints import Constraints, active_constraints
from repro.core.costs import CostContext, validate_placement
from repro.core.placement import chain_size, dp_placement
from repro.core.types import MigrationResult, PlacementResult
from repro.errors import BudgetExceededError, InfeasibleError
from repro.runtime.cache import ComputeCache
from repro.topology.base import Topology
from repro.workload.flows import FlowSet
from repro.workload.sfc import SFC

__all__ = ["optimal_placement", "optimal_migration", "exact_chain_search"]


@legacy_signature("upper_bound", "budget", renames={"node_budget": "budget"})
def exact_chain_search(
    distances: np.ndarray,
    chain_rate: float,
    start_scores: np.ndarray,
    position_scores: np.ndarray,
    *,
    upper_bound: float = np.inf,
    budget: int = 5_000_000,
    delay_matrix: np.ndarray | None = None,
    max_delay: float | None = None,
) -> tuple[np.ndarray, float, int]:
    """Exact min-cost ordered distinct tuple via branch-and-bound.

    Parameters
    ----------
    distances:
        ``(C, C)`` metric among the candidate switches.
    chain_rate:
        ``Λ`` — multiplier of consecutive-switch distances.
    start_scores:
        Per-candidate cost of *starting* the tuple there
        (``a_in + position_scores[0]`` pre-folded by the caller is fine;
        this function adds ``position_scores[0]`` itself, so pass the raw
        ingress attraction).
    position_scores:
        ``(n, C)`` additive per-position node costs (zero for TOP;
        ``μ·c(p_j, ·)`` for TOM; ``a_out`` must be folded into row n−1 by
        the caller).
    upper_bound:
        Warm-start incumbent (cost of a known feasible solution).
    delay_matrix, max_delay:
        When both given, only tuples whose hop-summed delay
        ``Σ_j delay_matrix[q_j, q_{j+1}]`` stays within ``max_delay`` are
        eligible.  Delay is accumulated left-to-right along the tuple and
        pruned with the admissible remaining-hops × cheapest-hop bound —
        the *same* arithmetic the MSG beam search uses, so the two
        solvers can never disagree on a borderline instance.

    Returns ``(tuple_positions, cost, explored)``.
    """
    n, num_c = position_scores.shape
    if distances.shape != (num_c, num_c):
        raise ValueError("distances and position_scores disagree on candidate count")
    if n > num_c:
        raise InfeasibleError(f"cannot choose {n} distinct switches from {num_c}")
    if max_delay is not None and delay_matrix is None:
        raise ValueError("max_delay requires a delay_matrix")
    delay = delay_matrix if max_delay is not None else None
    min_hop = 0.0
    if delay is not None and num_c >= 2:
        min_hop = float(delay[~np.eye(num_c, dtype=bool)].min())
    if delay is not None and (n - 1) * min_hop > max_delay:
        # even the cheapest-hops relaxation cannot finish inside the bound
        return np.empty(0, dtype=np.int64), float(upper_bound), 0

    # g[j][u]: relaxed completion cost from position j at candidate u
    g = np.zeros((n, num_c))
    for j in range(n - 2, -1, -1):
        through = chain_rate * distances + (position_scores[j + 1] + g[j + 1])[None, :]
        np.fill_diagonal(through, np.inf)
        g[j] = through.min(axis=1)

    first_scores = start_scores + position_scores[0] + g[0]
    order0 = np.argsort(first_scores)

    best_cost = float(upper_bound)
    best_tuple: np.ndarray | None = None
    explored = 0
    used = np.zeros(num_c, dtype=bool)
    chosen = np.empty(n, dtype=np.int64)

    # iterative DFS with explicit stack of (position, candidate-order, index)
    eps = 1e-12

    def _search(pos: int, prev: int, partial: float, partial_delay: float) -> None:
        nonlocal best_cost, best_tuple, explored
        explored += 1
        if explored > budget:
            raise BudgetExceededError(
                f"exact search explored more than {budget} nodes; "
                "reduce n, restrict candidates, or raise budget"
            )
        if pos == n:
            if partial < best_cost - eps:
                best_cost = partial
                best_tuple = chosen.copy()
            return
        step = chain_rate * distances[prev] + position_scores[pos]
        totals = partial + step + g[pos]
        order = np.argsort(totals)
        hop_delay = delay[prev] if delay is not None else None
        remaining = (n - 1 - pos) * min_hop
        for cand in order:
            cand = int(cand)
            if used[cand]:
                continue
            if totals[cand] >= best_cost - eps:
                break  # sorted: nothing later can improve
            new_delay = partial_delay
            if hop_delay is not None:
                # delay-sorted it is not, so skip rather than break
                new_delay = partial_delay + float(hop_delay[cand])
                if new_delay + remaining > max_delay:
                    continue
            used[cand] = True
            chosen[pos] = cand
            _search(pos + 1, cand, partial + float(step[cand]), new_delay)
            used[cand] = False

    for cand in order0:
        cand = int(cand)
        if first_scores[cand] >= best_cost - eps:
            break
        used[cand] = True
        chosen[0] = cand
        _search(1, cand, float(start_scores[cand] + position_scores[0][cand]), 0.0)
        used[cand] = False
        explored += 1

    if best_tuple is None:
        # warm start was already optimal; signal with an empty tuple
        return np.empty(0, dtype=np.int64), best_cost, explored
    return best_tuple, best_cost, explored


def _resolve_candidates(
    topology: Topology, candidate_switches: Sequence[int] | None
) -> np.ndarray:
    if candidate_switches is None:
        return topology.switches
    cand = np.asarray(sorted(set(int(c) for c in candidate_switches)), dtype=np.int64)
    switch_set = set(topology.switches.tolist())
    stray = [int(c) for c in cand if int(c) not in switch_set]
    if stray:
        raise InfeasibleError(f"candidate switches {stray[:5]} are not switches")
    return cand


def _constrain_candidates(
    topology: Topology,
    constraints: Constraints,
    cand: np.ndarray,
    chain_rate: float,
    n: int,
) -> np.ndarray:
    """Intersect the candidate set with the constraint-admissible switches."""
    admissible = set(
        constraints.admissible_switches(topology, chain_rate).tolist()
    )
    cand = np.asarray(
        [c for c in cand.tolist() if c in admissible], dtype=np.int64
    )
    if n > cand.size:
        raise InfeasibleError(
            f"only {cand.size} candidate switches have capacity/bandwidth "
            f"headroom; {n} are required",
            diagnosis=constraints.diagnosis(
                "capacity", admissible=int(cand.size), required=int(n)
            ),
        )
    return cand


def _min_feasible_delay(dist: np.ndarray, n: int, budget: int) -> float:
    """Exact minimum chain delay over distinct tuples (for diagnoses)."""
    _tup, best, _explored = exact_chain_search(
        dist, 1.0, np.zeros(dist.shape[0]), np.zeros((n, dist.shape[0])),
        budget=budget,
    )
    return float(best)


@legacy_signature("budget", "candidate_switches", renames={"node_budget": "budget"})
def optimal_placement(
    topology: Topology,
    flows: FlowSet,
    sfc: SFC | int,
    *,
    budget: int = 5_000_000,
    candidate_switches: Sequence[int] | None = None,
    constraints: Constraints | None = None,
    cache: ComputeCache | None = None,
) -> PlacementResult:
    """Algorithm 4: exact TOP via warm-started branch-and-bound.

    ``constraints`` (a :class:`~repro.constraints.Constraints`) restricts
    the search to capacity/bandwidth-admissible switches and to tuples
    within the delay bound, making this the size-gated *oracle* for the
    MSG heuristic family.  ``None`` / ``Constraints.none()`` leaves every
    code path bit-identical to the unconstrained solver.
    """
    n = chain_size(sfc)
    active = active_constraints(constraints)
    cand = _resolve_candidates(topology, candidate_switches)
    if active is None and n > cand.size:
        raise InfeasibleError(f"cannot place {n} VNFs on {cand.size} candidate switches")
    ctx = CostContext(topology, flows, cache=cache)
    if active is not None:
        cand = _constrain_candidates(topology, active, cand, ctx.total_rate, n)

    dist = ctx.distances[np.ix_(cand, cand)]
    a_in = ctx.ingress_attraction[cand]
    a_out = ctx.egress_attraction[cand]
    position_scores = np.zeros((n, cand.size))
    position_scores[n - 1] += a_out

    warm: PlacementResult | None = None
    warm_cost = np.inf
    if candidate_switches is None and n <= topology.num_switches:
        candidate_warm = dp_placement(topology, flows, n, cache=ctx.cache)
        if active is None or not active.check_placement(
            topology, candidate_warm.placement, ctx.total_rate
        ):
            warm = candidate_warm
            warm_cost = warm.cost

    delay_kwargs: dict = {}
    if active is not None and active.max_delay is not None:
        delay_kwargs = {"delay_matrix": dist, "max_delay": active.max_delay}
    tup, cost, explored = exact_chain_search(
        dist, ctx.total_rate, a_in, position_scores, upper_bound=warm_cost,
        budget=budget, **delay_kwargs,
    )
    if tup.size == 0:
        if warm is None:
            assert active is not None and active.max_delay is not None
            min_delay = _min_feasible_delay(dist, n, budget)
            raise InfeasibleError(
                f"no placement of {n} distinct switches meets the delay "
                f"bound {active.max_delay!r}",
                diagnosis=active.diagnosis(
                    "delay", max_delay=active.max_delay, min_delay=min_delay
                ),
            )
        return PlacementResult(
            placement=warm.placement,
            cost=warm.cost,
            algorithm="optimal",
            extra={"explored": explored, "warm_start_optimal": True},
        )
    placement = cand[tup]
    validate_placement(topology, placement, n)
    real_cost = ctx.communication_cost(placement)
    return PlacementResult(
        placement=placement,
        cost=real_cost,
        algorithm="optimal",
        extra={"explored": explored, "bound_cost": float(cost)},
    )


@legacy_signature("budget", "candidate_switches", renames={"node_budget": "budget"})
def optimal_migration(
    topology: Topology,
    flows: FlowSet,
    source_placement: np.ndarray,
    mu: float,
    *,
    budget: int = 5_000_000,
    candidate_switches: Sequence[int] | None = None,
    constraints: Constraints | None = None,
    cache: ComputeCache | None = None,
) -> MigrationResult:
    """Algorithm 6: exact TOM via the same branch-and-bound engine.

    ``flows`` must carry the *new* traffic rates; ``source_placement`` is
    the placement ``p`` the VNFs currently occupy.  ``constraints``
    bounds the *target* placement (the source is history); inadmissible
    source switches are dropped from the candidate set, so "stay put" is
    only on the table where staying is feasible.
    """
    src = validate_placement(topology, source_placement)
    n = src.size
    active = active_constraints(constraints)
    cand = _resolve_candidates(topology, candidate_switches)
    # the stay-put solution must be expressible in the candidate set
    cand = np.asarray(sorted(set(cand.tolist()) | set(src.tolist())), dtype=np.int64)
    ctx = CostContext(topology, flows, cache=cache)
    if active is not None:
        cand = _constrain_candidates(topology, active, cand, ctx.total_rate, n)

    dist = ctx.distances[np.ix_(cand, cand)]
    a_in = ctx.ingress_attraction[cand]
    a_out = ctx.egress_attraction[cand]
    # per-position migration pull toward the current placement
    position_scores = mu * ctx.distances[np.ix_(src, cand)]
    position_scores[n - 1] += a_out

    # warm starts: stay put, or jump wholesale to the fresh DP placement
    # (each only where it is feasible under the constraints)
    warm_m: np.ndarray | None = None
    warm_cost = np.inf
    if active is None or not active.check_placement(topology, src, ctx.total_rate):
        warm_m = src
        warm_cost = ctx.total_cost(src, src, mu)
    if candidate_switches is None:
        fresh = dp_placement(topology, flows, n, cache=ctx.cache)
        if active is None or not active.check_placement(
            topology, fresh.placement, ctx.total_rate
        ):
            fresh_cost = ctx.total_cost(src, fresh.placement, mu)
            if fresh_cost < warm_cost:
                warm_m = fresh.placement
                warm_cost = fresh_cost

    delay_kwargs: dict = {}
    if active is not None and active.max_delay is not None:
        delay_kwargs = {"delay_matrix": dist, "max_delay": active.max_delay}
    tup, cost, explored = exact_chain_search(
        dist, ctx.total_rate, a_in, position_scores, upper_bound=warm_cost,
        budget=budget, **delay_kwargs,
    )
    if tup.size == 0 and warm_m is None:
        assert active is not None and active.max_delay is not None
        min_delay = _min_feasible_delay(dist, n, budget)
        raise InfeasibleError(
            f"no migration target of {n} distinct switches meets the delay "
            f"bound {active.max_delay!r}",
            diagnosis=active.diagnosis(
                "delay", max_delay=active.max_delay, min_delay=min_delay
            ),
        )
    migration = cand[tup] if tup.size else warm_m
    validate_placement(topology, migration, n)
    comm = ctx.communication_cost(migration)
    move = ctx.migration_cost(src, migration, mu)
    return MigrationResult(
        source=src,
        migration=migration,
        cost=comm + move,
        communication_cost=comm,
        migration_cost=move,
        algorithm="optimal",
        extra={"explored": explored, "candidates": int(cand.size)},
    )
