"""Algorithms 4 and 6: exact (optimal) solvers for TOP and TOM.

Any stroll visiting ``n`` distinct switches induces an ordered tuple of
those switches, and conversely a tuple prices as the sum of metric-closure
hops — so the exact optimum of TOP is

    min over ordered distinct (q_1 … q_n):
        a_in[q_1] + Λ · Σ_j c(q_j, q_{j+1}) + a_out[q_n]

and TOM adds the per-position migration term ``μ · c(p_j, q_j)`` (Eq. 8).
The paper's Algorithms 4/6 enumerate all ``|V_s|!/(|V_s|-n)!`` tuples;
this module instead runs a depth-first branch-and-bound:

* an admissible lower bound ``g_j[u]`` — the cost of completing positions
  ``j+1 … n`` from ``u`` *ignoring distinctness* — is a single min-plus
  DP sweep (``O(n·C^2)``) and prunes most of the tree;
* the search is warm-started with the DP heuristic's solution, so pruning
  is effective from the first node;
* an explicit ``budget`` guard raises
  :class:`~repro.errors.BudgetExceededError` instead of running forever
  on instances where exactness is genuinely out of reach (the search is
  still ``O(C^n)`` worst-case — exactly the wall the paper acknowledges).

``candidate_switches`` restricts the search to a subset of switches; the
simulation harness uses this to compute *restricted-exact* references on
k=16 fabrics where the full exact search is infeasible (documented in
EXPERIMENTS.md).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro._compat import legacy_signature
from repro.core.costs import CostContext, validate_placement
from repro.core.placement import chain_size, dp_placement
from repro.core.types import MigrationResult, PlacementResult
from repro.errors import BudgetExceededError, InfeasibleError
from repro.runtime.cache import ComputeCache
from repro.topology.base import Topology
from repro.workload.flows import FlowSet
from repro.workload.sfc import SFC

__all__ = ["optimal_placement", "optimal_migration", "exact_chain_search"]


@legacy_signature("upper_bound", "budget", renames={"node_budget": "budget"})
def exact_chain_search(
    distances: np.ndarray,
    chain_rate: float,
    start_scores: np.ndarray,
    position_scores: np.ndarray,
    *,
    upper_bound: float = np.inf,
    budget: int = 5_000_000,
) -> tuple[np.ndarray, float, int]:
    """Exact min-cost ordered distinct tuple via branch-and-bound.

    Parameters
    ----------
    distances:
        ``(C, C)`` metric among the candidate switches.
    chain_rate:
        ``Λ`` — multiplier of consecutive-switch distances.
    start_scores:
        Per-candidate cost of *starting* the tuple there
        (``a_in + position_scores[0]`` pre-folded by the caller is fine;
        this function adds ``position_scores[0]`` itself, so pass the raw
        ingress attraction).
    position_scores:
        ``(n, C)`` additive per-position node costs (zero for TOP;
        ``μ·c(p_j, ·)`` for TOM; ``a_out`` must be folded into row n−1 by
        the caller).
    upper_bound:
        Warm-start incumbent (cost of a known feasible solution).

    Returns ``(tuple_positions, cost, explored)``.
    """
    n, num_c = position_scores.shape
    if distances.shape != (num_c, num_c):
        raise ValueError("distances and position_scores disagree on candidate count")
    if n > num_c:
        raise InfeasibleError(f"cannot choose {n} distinct switches from {num_c}")

    # g[j][u]: relaxed completion cost from position j at candidate u
    g = np.zeros((n, num_c))
    for j in range(n - 2, -1, -1):
        through = chain_rate * distances + (position_scores[j + 1] + g[j + 1])[None, :]
        np.fill_diagonal(through, np.inf)
        g[j] = through.min(axis=1)

    first_scores = start_scores + position_scores[0] + g[0]
    order0 = np.argsort(first_scores)

    best_cost = float(upper_bound)
    best_tuple: np.ndarray | None = None
    explored = 0
    used = np.zeros(num_c, dtype=bool)
    chosen = np.empty(n, dtype=np.int64)

    # iterative DFS with explicit stack of (position, candidate-order, index)
    eps = 1e-12

    def _search(pos: int, prev: int, partial: float) -> None:
        nonlocal best_cost, best_tuple, explored
        explored += 1
        if explored > budget:
            raise BudgetExceededError(
                f"exact search explored more than {budget} nodes; "
                "reduce n, restrict candidates, or raise budget"
            )
        if pos == n:
            if partial < best_cost - eps:
                best_cost = partial
                best_tuple = chosen.copy()
            return
        step = chain_rate * distances[prev] + position_scores[pos]
        totals = partial + step + g[pos]
        order = np.argsort(totals)
        for cand in order:
            cand = int(cand)
            if used[cand]:
                continue
            if totals[cand] >= best_cost - eps:
                break  # sorted: nothing later can improve
            used[cand] = True
            chosen[pos] = cand
            _search(pos + 1, cand, partial + float(step[cand]))
            used[cand] = False

    for cand in order0:
        cand = int(cand)
        if first_scores[cand] >= best_cost - eps:
            break
        used[cand] = True
        chosen[0] = cand
        _search(1, cand, float(start_scores[cand] + position_scores[0][cand]))
        used[cand] = False
        explored += 1

    if best_tuple is None:
        # warm start was already optimal; signal with an empty tuple
        return np.empty(0, dtype=np.int64), best_cost, explored
    return best_tuple, best_cost, explored


def _resolve_candidates(
    topology: Topology, candidate_switches: Sequence[int] | None
) -> np.ndarray:
    if candidate_switches is None:
        return topology.switches
    cand = np.asarray(sorted(set(int(c) for c in candidate_switches)), dtype=np.int64)
    switch_set = set(topology.switches.tolist())
    stray = [int(c) for c in cand if int(c) not in switch_set]
    if stray:
        raise InfeasibleError(f"candidate switches {stray[:5]} are not switches")
    return cand


@legacy_signature("budget", "candidate_switches", renames={"node_budget": "budget"})
def optimal_placement(
    topology: Topology,
    flows: FlowSet,
    sfc: SFC | int,
    *,
    budget: int = 5_000_000,
    candidate_switches: Sequence[int] | None = None,
    cache: ComputeCache | None = None,
) -> PlacementResult:
    """Algorithm 4: exact TOP via warm-started branch-and-bound."""
    n = chain_size(sfc)
    cand = _resolve_candidates(topology, candidate_switches)
    if n > cand.size:
        raise InfeasibleError(f"cannot place {n} VNFs on {cand.size} candidate switches")
    ctx = CostContext(topology, flows, cache=cache)

    dist = ctx.distances[np.ix_(cand, cand)]
    a_in = ctx.ingress_attraction[cand]
    a_out = ctx.egress_attraction[cand]
    position_scores = np.zeros((n, cand.size))
    position_scores[n - 1] += a_out

    warm: PlacementResult | None = None
    warm_cost = np.inf
    if candidate_switches is None and n <= topology.num_switches:
        warm = dp_placement(topology, flows, n, cache=ctx.cache)
        warm_cost = warm.cost

    tup, cost, explored = exact_chain_search(
        dist, ctx.total_rate, a_in, position_scores, upper_bound=warm_cost, budget=budget
    )
    if tup.size == 0:
        assert warm is not None, "no warm start and no solution found"
        return PlacementResult(
            placement=warm.placement,
            cost=warm.cost,
            algorithm="optimal",
            extra={"explored": explored, "warm_start_optimal": True},
        )
    placement = cand[tup]
    validate_placement(topology, placement, n)
    real_cost = ctx.communication_cost(placement)
    return PlacementResult(
        placement=placement,
        cost=real_cost,
        algorithm="optimal",
        extra={"explored": explored, "bound_cost": float(cost)},
    )


@legacy_signature("budget", "candidate_switches", renames={"node_budget": "budget"})
def optimal_migration(
    topology: Topology,
    flows: FlowSet,
    source_placement: np.ndarray,
    mu: float,
    *,
    budget: int = 5_000_000,
    candidate_switches: Sequence[int] | None = None,
    cache: ComputeCache | None = None,
) -> MigrationResult:
    """Algorithm 6: exact TOM via the same branch-and-bound engine.

    ``flows`` must carry the *new* traffic rates; ``source_placement`` is
    the placement ``p`` the VNFs currently occupy.
    """
    src = validate_placement(topology, source_placement)
    n = src.size
    cand = _resolve_candidates(topology, candidate_switches)
    # the stay-put solution must be expressible in the candidate set
    cand = np.asarray(sorted(set(cand.tolist()) | set(src.tolist())), dtype=np.int64)
    ctx = CostContext(topology, flows, cache=cache)

    dist = ctx.distances[np.ix_(cand, cand)]
    a_in = ctx.ingress_attraction[cand]
    a_out = ctx.egress_attraction[cand]
    # per-position migration pull toward the current placement
    position_scores = mu * ctx.distances[np.ix_(src, cand)]
    position_scores[n - 1] += a_out

    # warm starts: stay put, or jump wholesale to the fresh DP placement
    stay_cost = ctx.total_cost(src, src, mu)
    warm_m = src
    warm_cost = stay_cost
    if candidate_switches is None:
        fresh = dp_placement(topology, flows, n, cache=ctx.cache)
        fresh_cost = ctx.total_cost(src, fresh.placement, mu)
        if fresh_cost < warm_cost:
            warm_m = fresh.placement
            warm_cost = fresh_cost

    tup, cost, explored = exact_chain_search(
        dist, ctx.total_rate, a_in, position_scores, upper_bound=warm_cost, budget=budget
    )
    migration = cand[tup] if tup.size else warm_m
    validate_placement(topology, migration, n)
    comm = ctx.communication_cost(migration)
    move = ctx.migration_cost(src, migration, mu)
    return MigrationResult(
        source=src,
        migration=migration,
        cost=comm + move,
        communication_cost=comm,
        migration_cost=move,
        algorithm="optimal",
        extra={"explored": explored, "candidates": int(cand.size)},
    )
