"""The paper's primary contribution: TOP and TOM algorithm suite.

Modules
-------
``costs``
    The topology-aware cost model: ``C_a`` (Eq. 1), ``C_b`` and ``C_t``
    (Eq. 8), vectorized over a precomputed :class:`CostContext`.
``stroll``
    Algorithm 2 (DP-Stroll) for the n-stroll / TOP-1 problem — a
    pure-Python reference mirroring the pseudocode plus a numpy min-plus
    vectorized engine.
``placement``
    Algorithm 3 (DP) for TOP, and the simple exact solutions for n = 1, 2.
``primal_dual``
    Algorithm 1: the 2+ε primal-dual approximation scheme for TOP-1
    (Goemans-Williamson moat growing + pruning + tree doubling).
``optimal``
    Algorithms 4 and 6: exact exhaustive/branch-and-bound solvers for TOP
    and TOM (with an explicit search budget guard).
``migration``
    Algorithm 5 (mPareto): migration corridors, parallel migration
    frontiers, Pareto-front extraction, and the minimum-cost frontier.
"""

from repro.core.costs import CostContext, validate_placement
from repro.core.types import MigrationResult, PlacementResult
from repro.core.stroll import StrollResult, dp_stroll, dp_stroll_reference
from repro.core.placement import dp_placement, dp_placement_top1
from repro.core.primal_dual import primal_dual_stroll, primal_dual_placement_top1
from repro.core.optimal import optimal_migration, optimal_placement
from repro.core.migration import (
    FrontierTrace,
    best_full_frontier,
    full_frontier_set,
    mpareto_migration,
    migration_frontiers,
    no_migration,
)
from repro.core.replication import (
    ReplicatedPlacement,
    replicated_communication_cost,
    replicated_placement,
)
from repro.core.multi_sfc import (
    MultiSfcPlacement,
    multi_sfc_cost,
    multi_sfc_migration,
    multi_sfc_placement,
)
from repro.core.lp_bound import top1_lp_lower_bound

__all__ = [
    "CostContext",
    "validate_placement",
    "PlacementResult",
    "MigrationResult",
    "StrollResult",
    "dp_stroll",
    "dp_stroll_reference",
    "dp_placement",
    "dp_placement_top1",
    "primal_dual_stroll",
    "primal_dual_placement_top1",
    "optimal_placement",
    "optimal_migration",
    "mpareto_migration",
    "migration_frontiers",
    "no_migration",
    "FrontierTrace",
    "full_frontier_set",
    "best_full_frontier",
    "ReplicatedPlacement",
    "replicated_placement",
    "replicated_communication_cost",
    "MultiSfcPlacement",
    "multi_sfc_placement",
    "multi_sfc_cost",
    "multi_sfc_migration",
    "top1_lp_lower_bound",
]
