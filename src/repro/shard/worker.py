"""Worker-side execution of one shard task, plus its wire format.

A :class:`ShardTask` is the self-contained recipe for one shard's share
of one hour: which blocks to compute, how to obtain each block's flow
arrays (inline payloads for materialized flow sets, the chunk recipe for
streamed ones), which distance matrix to price against (a shared-memory
ref keyed by ``dist_key``, or inline for in-process runs), and the fault
context (surviving hosts, park host) for degraded days.

Supervision hooks baked into the task:

* ``key`` — a *stable* identity string built from content (hour, kind,
  shard, a hash of the stable parts), never from volatile runtime names
  like shm segments.  The journal fingerprint and the chaos fault draw
  both key off it, so resumed runs salvage exactly the shards they
  completed and chaos re-injects exactly the faults it drew before.
* ``heartbeat`` — a shared float64 slot per shard; the worker stamps
  ``time.monotonic()`` (system-wide on Linux) at task start and after
  every block, which is what lets the parent distinguish a *wedged*
  worker from a merely slow one at block granularity.
* ``chaos`` — deterministic fault injection (crash / delay / timeout /
  hard ``os._exit`` kill) evaluated against ``key`` and the dispatch
  attempt, mirroring :mod:`repro.runtime.resilience` semantics: faults
  fire only while ``attempt < faulty_attempts``, so the supervisor's
  re-dispatch always converges on the real result.
"""

from __future__ import annotations

import os
import time
import traceback
from dataclasses import dataclass, field
from multiprocessing import resource_tracker, shared_memory

import numpy as np

from repro.errors import ShardError
from repro.runtime.resilience import (
    ChaosConfig,
    ChaosError,
    _PARENT_PID,
    fault_decision,
)
from repro.runtime.shm import ShmArrayRef, _attach_array, _owns_resource_tracker
from repro.shard.aggregate import compute_block_aggregate, compute_block_serving
from repro.shard.plan import Block
from repro.workload.diurnal import DiurnalModel
from repro.workload.stream import StreamingWorkload

__all__ = ["BlockPayload", "ShardTask", "run_shard_task"]


@dataclass(frozen=True)
class BlockPayload:
    """One block's flow arrays, shipped inline (materialized-flows mode)."""

    sources: np.ndarray
    destinations: np.ndarray
    rates: np.ndarray


@dataclass(frozen=True)
class ShardTask:
    """Self-contained recipe for one shard's share of one hour."""

    key: str
    kind: str  # "agg" | "serve"
    hour: int
    shard: int
    blocks: tuple[Block, ...]
    payloads: tuple[BlockPayload, ...] | None = None
    stream: StreamingWorkload | None = None
    diurnal: DiurnalModel | None = None
    copies: np.ndarray | None = None
    surviving_hosts: np.ndarray | None = None
    park_host: int | None = None
    dist_ref: ShmArrayRef | None = None
    dist_data: np.ndarray | None = None
    dist_key: str = "healthy"
    heartbeat: ShmArrayRef | None = None
    mem_budget: int | None = None
    chaos: ChaosConfig | None = None


# process-local memo: dist_key -> (array, segment kept alive for the view)
_DIST_CACHE: dict[str, tuple[np.ndarray, shared_memory.SharedMemory | None]] = {}

# process-local memo: heartbeat segment name -> (writable view, segment)
_HEARTBEAT_CACHE: dict[str, tuple[np.ndarray, shared_memory.SharedMemory]] = {}


def _resolve_dist(task: ShardTask) -> np.ndarray:
    """The distance matrix this task prices against, attach memoized.

    Fault days re-key per degraded state (``dist_key``), so a worker that
    served hour 3's storm keeps that state's matrix mapped and reuses it
    for hour 4 without re-attaching.
    """
    cached = _DIST_CACHE.get(task.dist_key)
    if cached is not None:
        return cached[0]
    if task.dist_data is not None:
        arr: np.ndarray = task.dist_data
        segment = None
    elif task.dist_ref is not None:
        arr, segment = _attach_array(task.dist_ref)
    else:
        raise ShardError(f"task {task.key} carries no distance matrix")
    _DIST_CACHE[task.dist_key] = (arr, segment)
    return arr


def _attach_writable(ref: ShmArrayRef) -> tuple[np.ndarray, shared_memory.SharedMemory]:
    """Writable attach (heartbeat slots) — ``shm._attach_array`` is read-only."""
    segment = shared_memory.SharedMemory(name=ref.name)
    if _owns_resource_tracker():
        try:
            resource_tracker.unregister(segment._name, "shared_memory")
        except Exception:  # pragma: no cover - tracker internals vary
            pass
    arr = np.ndarray(ref.shape, dtype=np.dtype(ref.dtype), buffer=segment.buf)
    return arr, segment


def _beat(task: ShardTask) -> None:
    """Stamp this shard's heartbeat slot (no-op without a heartbeat ref)."""
    if task.heartbeat is None:
        return
    cached = _HEARTBEAT_CACHE.get(task.heartbeat.name)
    if cached is None:
        cached = _attach_writable(task.heartbeat)
        _HEARTBEAT_CACHE[task.heartbeat.name] = cached
    cached[0][task.shard] = time.monotonic()


def _chaos_gate(task: ShardTask, attempt: int) -> None:
    """Apply this task's deterministic fault draw, if any."""
    if task.chaos is None:
        return
    fault = fault_decision(task.chaos, task.key, attempt)
    if fault == "crash":
        raise ChaosError(f"injected crash for {task.key} (attempt {attempt})")
    if fault == "delay":
        time.sleep(task.chaos.delay_seconds)
    elif fault == "timeout":
        from repro.errors import TimeoutError

        raise TimeoutError(f"injected timeout for {task.key} (attempt {attempt})")
    elif fault == "kill":
        if os.getpid() != _PARENT_PID:
            os._exit(17)
        raise ChaosError(
            f"injected kill for {task.key}, in-process fallback (attempt {attempt})"
        )


def _block_arrays(
    task: ShardTask, position: int, block: Block
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """``(sources, destinations, rates)`` for one block, both wire modes.

    Streaming mode regenerates the chunk locally and applies the diurnal
    envelope elementwise — elementwise scaling commutes with block
    slicing bit-for-bit, so a streamed block equals the corresponding
    slice of a materialized ``ScaledRates.rates_at`` vector.
    """
    if task.payloads is not None:
        payload = task.payloads[position]
        return payload.sources, payload.destinations, payload.rates
    if task.stream is None:
        raise ShardError(f"task {task.key} carries neither payloads nor a stream")
    chunk = task.stream.chunk(block.index)
    if task.diurnal is not None:
        rates = chunk.base_rates * task.diurnal.flow_scales(task.hour, chunk.offsets)
    else:
        rates = chunk.base_rates
    return chunk.sources, chunk.destinations, rates


def run_shard_task(task: ShardTask, attempt: int = 0) -> tuple:
    """Pool entry point: compute every block of one shard task.

    Returns ``("ok", [(block_index, result), ...])`` with results in
    ascending block order, or ``("err", detail)`` where ``detail``
    carries the worker-formatted traceback plus classification flags the
    supervisor's degradation ladder keys on (``memory`` → rung 2 block
    split; ``shard_error`` → diagnosed terminal failure).
    """
    try:
        _chaos_gate(task, attempt)
        _beat(task)
        dist = _resolve_dist(task)
        results: list[tuple[int, object]] = []
        for position, block in enumerate(task.blocks):
            sources, destinations, rates = _block_arrays(task, position, block)
            if task.kind == "serve":
                if task.copies is None:
                    raise ShardError(f"serve task {task.key} carries no copies")
                value: object = compute_block_serving(
                    dist,
                    sources,
                    destinations,
                    rates,
                    task.copies,
                    block_index=block.index,
                    surviving_hosts=task.surviving_hosts,
                    park_host=task.park_host,
                )
            elif task.kind == "agg":
                value = compute_block_aggregate(
                    dist,
                    sources,
                    destinations,
                    rates,
                    block_index=block.index,
                    block_start=block.start,
                    surviving_hosts=task.surviving_hosts,
                    park_host=task.park_host,
                    mem_budget=task.mem_budget,
                )
            else:
                raise ShardError(f"unknown shard task kind {task.kind!r}")
            results.append((block.index, value))
            _beat(task)
        return ("ok", results)
    except KeyboardInterrupt:
        raise
    except BaseException as exc:
        return (
            "err",
            {
                "error": repr(exc),
                "traceback": traceback.format_exc(),
                "memory": isinstance(exc, MemoryError),
                "shard_error": isinstance(exc, ShardError),
                "diagnosis": dict(getattr(exc, "diagnosis", None) or {}),
            },
        )


# the executors' attempt-aware calling convention (see runtime.executor):
# the supervisor passes the dispatch attempt so chaos faults stay transient
run_shard_task.accepts_attempt = True  # type: ignore[attr-defined]
