"""The sharded day loop: supervised per-block aggregation, exact books.

:func:`simulate_day_sharded` is the drop-in sharded counterpart of
:func:`repro.sim.engine.simulate_day` — same :class:`HourRecord` /
:class:`DayResult` surface, same policies, same fault-aware control flow
— with every per-flow reduction (attractions, ``Λ``, drop accounting,
replication serving) computed per block in supervised workers and folded
by the canonical ascending-block left fold
(:mod:`repro.shard.aggregate`).  The fold feeds an
:class:`~repro.core.costs.AggregatedFlows`, so every solver runs
unchanged; on single-block populations the day is byte-identical to the
unsharded loop, and at any scale it is bit-identical across shard
counts, worker kills, stalls, retries and journal resumes — the
``verify.shard`` campaign family enforces both claims.

The policy is initialized once (first simulated hour) with the first
hour's aggregate — mirroring the classic loop's initialize-before-loop —
and re-bound to each later hour's aggregate via
:meth:`~repro.sim.policies.MigrationPolicy.rebind_flows`; every step
runs with ``rates=None`` because an aggregate already embeds its hour's
rates (``with_rates`` is the identity).

Interrupts (``KeyboardInterrupt``, and ``SIGTERM`` converted by
:func:`repro.sim.engine.deliver_interrupts`) end the day early but
cleanly: completed shard results are already flushed to the journal
record-by-record, and the partial :class:`DayResult` is returned with
``extra["interrupted"] = True`` — a later ``--resume`` salvages every
journalled shard byte-identically, mid-hour included.
"""

from __future__ import annotations

import numpy as np

from repro.core.costs import AggregatedFlows
from repro.errors import FaultError, InfeasibleError, ShardError
from repro.runtime.instrument import count
from repro.runtime.journal import Journal
from repro.runtime.shm import content_fingerprint
from repro.sim.engine import DayResult, HourRecord, deliver_interrupts
from repro.sim.policies import MigrationPolicy
from repro.shard.aggregate import FoldedHour, fold_aggregates, fold_serving
from repro.shard.plan import ShardConfig, ShardPlan, stable_block_hash
from repro.shard.supervisor import ShardSupervisor
from repro.shard.worker import BlockPayload, ShardTask
from repro.topology.base import Topology
from repro.utils.timing import Timer
from repro.workload.diurnal import DiurnalModel
from repro.workload.dynamics import RateProcess
from repro.workload.flows import FlowSet
from repro.workload.stream import StreamingWorkload

__all__ = ["simulate_day_sharded", "initial_placement_sharded"]


class _DayRunner:
    """One sharded day's wiring: plan, supervisor, task builders, folds."""

    def __init__(
        self,
        topology: Topology,
        flows: FlowSet | StreamingWorkload,
        policy: MigrationPolicy,
        rate_process: RateProcess | None,
        config: ShardConfig,
        *,
        faults,
        diurnal: DiurnalModel | None,
        journal: Journal | None,
    ) -> None:
        if not getattr(policy, "supports_sharding", False):
            raise ShardError(
                f"policy {policy.name!r} prices through per-flow/per-host "
                "state and cannot run sharded; run it unsharded",
                diagnosis={"policy": policy.name},
            )
        self.topology = topology
        self.policy = policy
        self.config = config
        self.streaming = isinstance(flows, StreamingWorkload)
        if self.streaming:
            self.stream: StreamingWorkload | None = flows
            self.flows: FlowSet | None = None
            self.diurnal = diurnal if diurnal is not None else (
                rate_process.diurnal if rate_process is not None else None
            )
            if self.diurnal is None:
                raise ShardError(
                    "streaming sharded days need a diurnal model "
                    "(pass diurnal= or a rate_process)"
                )
            self.plan = ShardPlan.for_stream(flows, config)
        else:
            self.stream = None
            self.flows = flows
            self.diurnal = None
            self.plan = ShardPlan.for_flows(flows, config)
        self.rate_process = rate_process

        # the journal scope is a content token of everything the day's
        # results depend on, so resumed fingerprints can only collide
        # with records computed from bit-identical inputs
        fault_spec = (
            None
            if faults is None
            else {"seed": faults.seed, "config": faults.config.to_dict()}
        )
        process_spec = self.diurnal if self.streaming else rate_process
        day_token = content_fingerprint(
            (topology, flows, process_spec, fault_spec, config.block_size)
        )
        self.supervisor = ShardSupervisor(
            config, scope=f"shard:{day_token[:16]}", journal=journal
        )

    def close(self) -> None:
        self.supervisor.close()

    # -- task plumbing -------------------------------------------------------

    def hour_payloads(self, rates: np.ndarray | None):
        """Per-block ``BlockPayload`` table (materialized mode) or ``None``."""
        if self.streaming:
            return None
        flows = self.flows
        return {
            block.index: BlockPayload(
                sources=flows.sources[block.start : block.stop],
                destinations=flows.destinations[block.start : block.stop],
                rates=rates[block.start : block.stop],
            )
            for block in self.plan.blocks
        }

    def _tasks(
        self,
        hour: int,
        kind: str,
        payloads,
        dist_fields: dict,
        *,
        copies: np.ndarray | None = None,
        surviving_hosts: np.ndarray | None = None,
        park_host: int | None = None,
    ) -> list[ShardTask]:
        suffix = ""
        if copies is not None:
            suffix = f"|c{stable_block_hash(copies.tobytes()):016x}"
        tasks = []
        for shard, blocks in self.plan.shards():
            tasks.append(
                ShardTask(
                    key=f"h{hour}|{kind}|s{shard}{suffix}",
                    kind=kind,
                    hour=hour,
                    shard=shard,
                    blocks=blocks,
                    payloads=None
                    if payloads is None
                    else tuple(payloads[b.index] for b in blocks),
                    stream=self.stream,
                    diurnal=self.diurnal,
                    copies=copies,
                    surviving_hosts=surviving_hosts,
                    park_host=park_host,
                    mem_budget=self.config.mem_budget,
                    chaos=self.config.chaos,
                    **dist_fields,
                )
            )
        return tasks

    def fold_hour(
        self,
        hour: int,
        payloads,
        dist_fields: dict,
        *,
        surviving_hosts: np.ndarray | None = None,
        park_host: int | None = None,
    ) -> FoldedHour:
        results = self.supervisor.run(
            self._tasks(
                hour,
                "agg",
                payloads,
                dist_fields,
                surviving_hosts=surviving_hosts,
                park_host=park_host,
            )
        )
        return fold_aggregates([results[b.index] for b in self.plan.blocks])

    def aggregated_flows(
        self,
        hour: int,
        folded: FoldedHour,
        payloads,
        dist_fields: dict,
        *,
        surviving_hosts: np.ndarray | None = None,
        park_host: int | None = None,
    ) -> AggregatedFlows:
        def serving_fn(copies: np.ndarray) -> float:
            copies = np.ascontiguousarray(np.asarray(copies, dtype=np.int64))
            results = self.supervisor.run(
                self._tasks(
                    hour,
                    "serve",
                    payloads,
                    dist_fields,
                    copies=copies,
                    surviving_hosts=surviving_hosts,
                    park_host=park_host,
                )
            )
            return fold_serving(
                [(b.index, results[b.index]) for b in self.plan.blocks]
            )

        return AggregatedFlows(
            num_flows=folded.num_flows,
            total_rate=folded.total_rate,
            ingress_attraction=folded.ingress,
            egress_attraction=folded.egress,
            serving_fn=serving_fn,
            meta={"hour": hour, "sharded": True},
        )


def simulate_day_sharded(
    topology: Topology,
    flows: FlowSet | StreamingWorkload,
    policy: MigrationPolicy,
    rate_process: RateProcess | None,
    placement: np.ndarray,
    hours: range | None = None,
    *,
    config: ShardConfig,
    session=None,
    faults=None,
    incremental: bool | None = None,
    journal: Journal | None = None,
    diurnal: DiurnalModel | None = None,
    report: dict | None = None,
) -> DayResult:
    """Sharded counterpart of :func:`repro.sim.engine.simulate_day`.

    ``flows`` may be a materialized :class:`FlowSet` (with a
    ``rate_process``, exactly like the unsharded loop) or a
    :class:`StreamingWorkload` (workers regenerate their chunks; the
    parent never materializes the population — pass ``diurnal`` or a
    ``rate_process`` whose diurnal model applies).  ``report``, when
    given, receives the supervisor's counters (dispatches, retries,
    stalls, pool restarts, journal hits, degraded tasks).
    """
    from repro.sim.engine import incremental_enabled

    if incremental is None:
        incremental = incremental_enabled()
    runner = _DayRunner(
        topology,
        flows,
        policy,
        rate_process,
        config,
        faults=faults,
        diurnal=diurnal,
        journal=journal,
    )
    if hours is None:
        if rate_process is not None:
            hours = range(1, rate_process.diurnal.num_hours + 1)
        else:
            hours = range(1, runner.diurnal.num_hours + 1)
    try:
        if faults is not None:
            result = _run_faulty(
                runner, placement, hours, session=session, faults=faults,
                incremental=incremental,
            )
        else:
            result = _run_plain(
                runner, placement, hours, session=session, incremental=incremental,
            )
    finally:
        if report is not None:
            report.update(runner.supervisor.report)
        runner.close()
    return result


def _run_plain(
    runner: _DayRunner, placement, hours, *, session, incremental
) -> DayResult:
    policy = runner.policy
    healthy = runner.supervisor.dist_handle(
        "healthy", runner.topology.graph.distances
    )
    interrupted = False
    records: list[HourRecord] = []
    with Timer.timed("simulate_day_sharded"):
        if session is not None:
            policy.attach_session(session)
        first = True
        with deliver_interrupts():
            try:
                for hour in hours:
                    rates = (
                        None
                        if runner.streaming
                        else runner.rate_process.rates_at(hour)
                    )
                    payloads = runner.hour_payloads(rates)
                    folded = runner.fold_hour(hour, payloads, healthy)
                    agg = runner.aggregated_flows(hour, folded, payloads, healthy)
                    if incremental and session is not None and rates is not None:
                        # same pure epoch bump as the classic loop — nothing
                        # cached depends on rates, so skipping it in
                        # streaming mode changes no bits
                        session.advance(rates)
                    if first:
                        policy.initialize(agg, np.asarray(placement, dtype=np.int64))
                        first = False
                    else:
                        policy.rebind_flows(agg)
                    step = policy.step(None)
                    count("hours_simulated")
                    records.append(
                        HourRecord(
                            hour=hour,
                            communication_cost=step.communication_cost,
                            migration_cost=step.migration_cost,
                            num_migrations=step.num_migrations,
                            replication_cost=step.replication_cost,
                            sync_cost=step.sync_cost,
                            num_replications=step.num_replications,
                            num_replicas=step.num_replicas,
                        )
                    )
            except KeyboardInterrupt:
                interrupted = True
    extra = policy.day_extra()
    if interrupted:
        extra = dict(extra)
        extra["interrupted"] = True
    return DayResult(policy=policy.name, records=tuple(records), extra=extra)


def _run_faulty(
    runner: _DayRunner, placement, hours, *, session, faults, incremental
) -> DayResult:
    from repro.faults.degrade import degrade
    from repro.faults.repair import evacuate
    from repro.session import SolverSession

    policy = runner.policy
    topology = runner.topology
    if not policy.supports_faults:
        raise FaultError(
            f"policy {policy.name!r} does not support fault-aware simulation"
        )
    n = int(np.asarray(placement).size)
    healthy_distances = topology.graph.distances
    current = np.asarray(placement, dtype=np.int64).copy()
    records: list[HourRecord] = []
    fault_log: list[dict] = []
    views: dict = {}
    base_session = session
    if incremental and base_session is None:
        base_session = SolverSession(topology)
    interrupted = False
    first = True
    with Timer.timed("simulate_day_sharded_faulty"):
        with deliver_interrupts():
            try:
                for hour in hours:
                    state = faults.state_at(hour)
                    if state not in views:
                        if incremental:
                            views[state] = base_session.apply(state)
                        elif state.is_healthy:
                            healthy_session = (
                                session
                                if session is not None
                                else SolverSession(topology)
                            )
                            views[state] = (topology, None, healthy_session)
                        else:
                            degraded, audit = degrade(topology, state)
                            views[state] = (degraded, audit, SolverSession(degraded))
                    view, audit, view_session = views[state]
                    rates = (
                        None
                        if runner.streaming
                        else runner.rate_process.rates_at(hour)
                    )
                    if incremental and rates is not None:
                        view_session.advance(rates)

                    live_switches = (
                        audit.surviving_switches
                        if audit is not None
                        else topology.switches
                    )
                    if live_switches.size < n:
                        raise InfeasibleError(
                            f"hour {hour}: only {live_switches.size} surviving "
                            f"switches for a chain of {n} VNFs",
                            diagnosis={
                                "reason": "too_few_surviving_switches",
                                "hour": hour,
                                "num_vnfs": n,
                                "surviving_switches": live_switches.tolist(),
                                "failed_switches": list(state.failed_switches),
                                "components": [list(c) for c in audit.components]
                                if audit is not None
                                else [],
                            },
                        )

                    # 1. forced repair (identical to the unsharded loop:
                    # replica pruning, evacuation, μ-priced distance)
                    replica_rows = policy.replica_rows
                    lost_replicas: list[list[int]] = []
                    if (
                        replica_rows is not None
                        and replica_rows.shape[0]
                        and audit is not None
                    ):
                        live_set = {int(s) for s in live_switches.tolist()}
                        keep = [
                            r
                            for r in range(replica_rows.shape[0])
                            if all(int(s) in live_set for s in replica_rows[r])
                        ]
                        lost_replicas = [
                            [int(s) for s in replica_rows[r]]
                            for r in range(replica_rows.shape[0])
                            if r not in keep
                        ]
                        replica_rows = replica_rows[keep]
                    plan = evacuate(
                        current,
                        live_switches,
                        healthy_distances,
                        diagnosis={"hour": hour},
                        replica_rows=replica_rows,
                    )
                    current = np.asarray(plan.placement, dtype=np.int64)
                    repair_cost = policy.mu * plan.distance
                    if replica_rows is not None:
                        policy.force_replicas(plan.replica_rows)

                    # 2. drop + park, worker-side: each block applies the
                    # surviving-host mask, parks dead endpoints, zeroes
                    # their rates, and aggregates against the degraded APSP
                    live_hosts = (
                        audit.surviving_hosts
                        if audit is not None
                        else topology.hosts
                    )
                    park_host = int(
                        live_hosts[0] if live_hosts.size else topology.hosts[0]
                    )
                    state_key = "healthy" if audit is None else f"state:{state!r}"
                    dist_fields = runner.supervisor.dist_handle(
                        state_key, view.graph.distances
                    )
                    payloads = runner.hour_payloads(rates)
                    surviving = audit.surviving_hosts if audit is not None else None
                    folded = runner.fold_hour(
                        hour,
                        payloads,
                        dist_fields,
                        surviving_hosts=surviving,
                        park_host=park_host,
                    )

                    if folded.all_dropped or live_hosts.size == 0:
                        count("hours_simulated")
                        records.append(
                            HourRecord(
                                hour=hour,
                                communication_cost=0.0,
                                migration_cost=0.0,
                                num_migrations=0,
                                dropped_traffic=folded.dropped_rate,
                                repair_cost=repair_cost,
                                num_repairs=plan.num_moves,
                                num_replicas=(
                                    0
                                    if plan.replica_rows is None
                                    else int(plan.replica_rows.shape[0])
                                ),
                                num_failovers=plan.num_failovers,
                            )
                        )
                        fault_log.append(
                            _log_entry(
                                hour, state, audit, folded, plan, current,
                                replica_rows=plan.replica_rows,
                                lost_replicas=lost_replicas,
                            )
                        )
                        continue

                    agg = runner.aggregated_flows(
                        hour,
                        folded,
                        payloads,
                        dist_fields,
                        surviving_hosts=surviving,
                        park_host=park_host,
                    )

                    # 3. the policy's step on the hour's fabric view
                    if first:
                        # mirror the unsharded loop's initialize-before-loop
                        # (replication state reset) before the first refit
                        policy.initialize(agg, current)
                    first = False
                    policy.refit(
                        view,
                        view_session,
                        agg,
                        current,
                        candidate_switches=live_switches
                        if audit is not None
                        else None,
                    )
                    step = policy.step(None)
                    current = np.asarray(policy.placement, dtype=np.int64)
                    count("hours_simulated")
                    records.append(
                        HourRecord(
                            hour=hour,
                            communication_cost=step.communication_cost,
                            migration_cost=step.migration_cost,
                            num_migrations=step.num_migrations,
                            dropped_traffic=folded.dropped_rate,
                            repair_cost=repair_cost,
                            num_repairs=plan.num_moves,
                            replication_cost=step.replication_cost,
                            sync_cost=step.sync_cost,
                            num_replications=step.num_replications,
                            num_replicas=step.num_replicas,
                            num_failovers=plan.num_failovers,
                        )
                    )
                    fault_log.append(
                        _log_entry(
                            hour, state, audit, folded, plan, current,
                            replica_rows=policy.replica_rows,
                            lost_replicas=lost_replicas,
                        )
                    )
            except KeyboardInterrupt:
                interrupted = True
    extra = {
        "faults": {
            "seed": faults.seed,
            "config": faults.config.to_dict(),
            "trace": [e.to_dict() for e in faults.trace()],
        },
        "fault_log": fault_log,
    }
    extra.update(policy.day_extra())
    if interrupted:
        extra["interrupted"] = True
    return DayResult(policy=policy.name, records=tuple(records), extra=extra)


def _log_entry(
    hour, state, audit, folded: FoldedHour, plan, placement,
    *, replica_rows=None, lost_replicas=(),
) -> dict:
    """Identical dict to the unsharded loop's ``_log_entry``.

    ``folded.dropped_flows`` concatenates per-block global indices in
    block order, which is exactly ``np.flatnonzero`` of the full mask.
    """
    return {
        "hour": hour,
        "failed_switches": list(state.failed_switches),
        "failed_hosts": list(state.failed_hosts),
        "failed_links": [list(link) for link in state.failed_links],
        "partitioned": bool(audit.is_partitioned) if audit is not None else False,
        "dropped_flows": folded.dropped_flows.tolist(),
        "repairs": [list(m) for m in plan.moves],
        "repair_distance": plan.distance,
        "placement": placement.tolist(),
        "failovers": [list(m) for m in plan.failovers],
        "replica_rows": []
        if replica_rows is None
        else np.asarray(replica_rows).tolist(),
        "lost_replicas": [list(r) for r in lost_replicas],
    }


def initial_placement_sharded(
    topology: Topology,
    stream: StreamingWorkload,
    n: int,
    diurnal: DiurnalModel,
    hour: int = 1,
    *,
    config: ShardConfig,
    cache=None,
) -> np.ndarray:
    """TOP's starting placement from a streamed population, never materialized.

    Folds hour-``hour``'s aggregate through a short-lived supervisor and
    runs Algorithm 3 on the resulting :class:`AggregatedFlows` — the same
    ``dp_placement`` call :func:`repro.sim.engine.initial_placement`
    makes, since the DP prices only through attractions and ``Λ``.  If the
    hour is completely silent, falls back to the base (unscaled) rates,
    mirroring the unsharded helper.
    """
    from repro.core.placement import dp_placement

    from repro.sim.policies import MParetoPolicy

    runner = _DayRunner(
        topology,
        stream,
        MParetoPolicy(topology, mu=1.0),  # gate/plan plumbing only
        None,
        config,
        faults=None,
        diurnal=diurnal,
        journal=None,
    )
    try:
        healthy = runner.supervisor.dist_handle(
            "healthy", topology.graph.distances
        )
        folded = runner.fold_hour(hour, None, healthy)
        if not folded.any_positive:
            # silent hour: aggregate the unscaled base rates instead
            runner.diurnal = None
            folded = runner.fold_hour(hour, None, healthy)
            runner.diurnal = diurnal
        agg = AggregatedFlows(
            num_flows=folded.num_flows,
            total_rate=folded.total_rate,
            ingress_attraction=folded.ingress,
            egress_attraction=folded.egress,
        )
        with Timer.timed("initial_placement"):
            return dp_placement(topology, agg, n, cache=cache).placement
    finally:
        runner.close()
