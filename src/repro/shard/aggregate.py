"""Per-block aggregation kernels and the canonical block fold.

The sharded day loop replaces the monolithic per-flow reductions of
:class:`~repro.core.costs.CostContext` with per-*block* partial sums
computed in worker processes and a strict left fold over ascending block
index in the parent.  Floating-point addition is not associative, so the
fold order is part of the result's identity: the canonical sharded
computation *is* the fixed-block left fold, and it is what every shard
count, every retry, and every resumed run reproduces bit for bit.

Two properties anchor the ``verify.shard`` byte-identity campaign:

* **Single-block degeneracy.**  When the whole population fits one block
  the kernels evaluate the *same expressions* the unsharded
  ``CostContext`` does — the same ``rates @ dist[endpoints, :]`` dgemv
  over the same C-contiguous gather, the same ``float(rates.sum())``,
  the same ``min(axis=0).sum()`` — so a sharded day is byte-identical to
  :func:`~repro.sim.engine.simulate_day` at campaign scales.
* **Shard-count invariance.**  Blocks and the fold order depend only on
  ``(num_flows, block_size)``; which shard computed a block is invisible
  to the fold.  This holds at *any* scale, including multi-block
  million-flow days.

The memory degradation ladder lives here too: rung 0 is the full row
gather (``l × N`` doubles); rung 1 assembles the same attraction vector
from column strips, each a bounded ``l × w`` gather.  A dgemv output
column is a dot product over the ``l`` flows only — independent of which
other columns ride in the same call — so strip assembly is expected
bitwise-equal to the full gather.  Because that is an empirical property
of the BLAS at hand, a memoized probe checks it once per process and the
ladder refuses (diagnosed :class:`~repro.errors.ShardError`) rather than
silently returning different bits.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ShardError

__all__ = [
    "BlockAggregate",
    "compute_block_aggregate",
    "compute_block_serving",
    "fold_aggregates",
    "FoldedHour",
    "fold_serving",
    "column_strips_bitwise",
]

# memoized verdict of the rung-1 probe: None = not yet run
_STRIPS_BITWISE: bool | None = None


def column_strips_bitwise() -> bool:
    """Probe (once per process) whether strip-assembled dgemv matches full.

    Mirrors the spirit of ``SolverSession._matmul_rows_bitwise``: assert
    the needed BLAS property empirically on deterministic arrays instead
    of assuming it, and memoize the verdict.
    """
    global _STRIPS_BITWISE
    if _STRIPS_BITWISE is None:
        rng = np.random.default_rng(987654321)
        x = rng.standard_normal(257)
        full_matrix = np.ascontiguousarray(rng.standard_normal((257, 131)))
        want = x @ full_matrix
        verdict = True
        for width in (1, 17, 64):
            got = np.empty_like(want)
            for lo in range(0, want.size, width):
                hi = min(lo + width, want.size)
                strip = np.ascontiguousarray(full_matrix[:, lo:hi])
                got[lo:hi] = x @ strip
            if not np.array_equal(got, want):
                verdict = False
                break
        _STRIPS_BITWISE = verdict
    return _STRIPS_BITWISE


@dataclass(frozen=True)
class BlockAggregate:
    """One block's partial sums — everything the hourly fold needs.

    ``dropped_flows`` holds *global* flow indices (block start already
    added) so concatenating per-block arrays in block order reproduces
    ``np.flatnonzero`` of the full-population drop mask.
    """

    block: int
    num_flows: int
    total_rate: float
    ingress: np.ndarray
    egress: np.ndarray
    any_positive: bool
    dropped_rate: float
    dropped_flows: np.ndarray
    all_dropped: bool


def _fault_mask(
    sources: np.ndarray,
    destinations: np.ndarray,
    surviving_hosts: np.ndarray | None,
) -> np.ndarray:
    """Drop mask for the block: either endpoint on a failed host.

    Matches the set-membership semantics of
    ``FaultAudit.dropped_flow_mask`` (``np.isin`` against the surviving
    host set) block-locally — membership is per-flow, so blocking the
    population commutes with the mask.
    """
    if surviving_hosts is None:
        return np.zeros(sources.shape, dtype=bool)
    alive = np.asarray(surviving_hosts, dtype=np.int64)
    return ~(np.isin(sources, alive) & np.isin(destinations, alive))


def compute_block_aggregate(
    dist: np.ndarray,
    sources: np.ndarray,
    destinations: np.ndarray,
    rates: np.ndarray,
    *,
    block_index: int,
    block_start: int,
    surviving_hosts: np.ndarray | None = None,
    park_host: int | None = None,
    mem_budget: int | None = None,
) -> BlockAggregate:
    """Aggregate one block: attractions, ``Λ`` partial, drop accounting.

    On fault days dropped flows are zero-rated and every dropped endpoint
    is parked on ``park_host`` exactly as the unsharded loop's
    ``_park_flows`` + ``np.where(mask, 0, rates)`` do, then the same
    attraction expressions run against the (possibly degraded) ``dist``.
    """
    mask = _fault_mask(sources, destinations, surviving_hosts)
    dropped = bool(mask.any())
    if dropped:
        if park_host is None:
            raise ShardError(
                f"block {block_index} has dropped flows but no park host"
            )
        dropped_rate = float(rates[mask].sum())
        eff_rates = np.where(mask, 0.0, rates)
        eff_sources = np.where(mask, np.int64(park_host), sources)
        eff_destinations = np.where(mask, np.int64(park_host), destinations)
    else:
        dropped_rate = 0.0
        eff_rates = rates
        eff_sources = sources
        eff_destinations = destinations

    # NaN policy matches CostContext: on degraded topologies dead-node
    # columns hold inf, zero-rated flows turn them into NaN, and no solver
    # ever reads a dead column.
    with np.errstate(invalid="ignore"):
        ingress = _attraction(dist, eff_sources, eff_rates, mem_budget, block_index)
        egress = _attraction(dist, eff_destinations, eff_rates, mem_budget, block_index)

    return BlockAggregate(
        block=block_index,
        num_flows=int(rates.size),
        total_rate=float(eff_rates.sum()) if dropped else float(rates.sum()),
        ingress=ingress,
        egress=egress,
        any_positive=bool(np.any(eff_rates > 0)),
        dropped_rate=dropped_rate,
        dropped_flows=(block_start + np.flatnonzero(mask)).astype(np.int64),
        all_dropped=bool(mask.all()),
    )


def _attraction(
    dist: np.ndarray,
    endpoints: np.ndarray,
    rates: np.ndarray,
    mem_budget: int | None,
    block_index: int,
) -> np.ndarray:
    """``rates @ dist[endpoints, :]`` under the memory degradation ladder.

    Rung 0 gathers the full ``l × N`` row block — the exact expression
    ``CostContext`` evaluates.  Rung 1 (budget exceeded or rung 0 raised
    ``MemoryError``) assembles the same vector from bounded column
    strips, gated by :func:`column_strips_bitwise`.
    """
    num_nodes = dist.shape[1]
    gather_bytes = endpoints.size * num_nodes * 8
    if mem_budget is None or gather_bytes <= mem_budget:
        try:
            return rates @ dist[endpoints, :]
        except MemoryError:
            if mem_budget is None:
                # pick a strip budget that at least halves the working set
                mem_budget = max(gather_bytes // 2, endpoints.size * 8)
    width = max(1, int(mem_budget // max(endpoints.size * 8, 1)))
    if width >= num_nodes:
        width = max(1, num_nodes - 1)
    if not column_strips_bitwise():
        raise ShardError(
            f"block {block_index} exceeds the memory budget and this BLAS "
            "does not produce bitwise-stable column strips; raise "
            "--shard-mem-budget or shrink the block size",
            diagnosis={
                "block": block_index,
                "gather_bytes": gather_bytes,
                "mem_budget": mem_budget,
                "rung": 1,
            },
        )
    out = np.empty(num_nodes)
    columns = np.arange(num_nodes)
    for lo in range(0, num_nodes, width):
        hi = min(lo + width, num_nodes)
        strip = dist[endpoints[:, None], columns[None, lo:hi]]
        out[lo:hi] = rates @ strip
    return out


def compute_block_serving(
    dist: np.ndarray,
    sources: np.ndarray,
    destinations: np.ndarray,
    rates: np.ndarray,
    copies: np.ndarray,
    *,
    block_index: int,
    surviving_hosts: np.ndarray | None = None,
    park_host: int | None = None,
) -> float:
    """One block's min-over-copies serving partial (replication Eq. 1).

    Evaluates exactly ``CostContext._per_copy_costs`` on the block slice
    (same per-copy expression, same ``(r, l)`` layout) followed by
    ``min(axis=0).sum()`` — so the single-block case is bitwise the
    unsharded ``min_copy_serving_cost``.  Only 1-D column gathers are
    needed, so no memory ladder applies.
    """
    mask = _fault_mask(sources, destinations, surviving_hosts)
    if mask.any():
        if park_host is None:
            raise ShardError(
                f"block {block_index} has dropped flows but no park host"
            )
        rates = np.where(mask, 0.0, rates)
        sources = np.where(mask, np.int64(park_host), sources)
        destinations = np.where(mask, np.int64(park_host), destinations)
    copies = np.asarray(copies, dtype=np.int64)
    with np.errstate(invalid="ignore"):
        out = np.empty((copies.shape[0], rates.size))
        for r_idx in range(copies.shape[0]):
            row = copies[r_idx]
            chain = float(dist[row[:-1], row[1:]].sum()) if row.size > 1 else 0.0
            out[r_idx] = rates * (
                dist[sources, row[0]] + chain + dist[row[-1], destinations]
            )
        return float(out.min(axis=0).sum())


@dataclass(frozen=True)
class FoldedHour:
    """The hour's folded books: what the parent builds solvers from."""

    num_flows: int
    total_rate: float
    ingress: np.ndarray
    egress: np.ndarray
    any_positive: bool
    dropped_rate: float
    dropped_flows: np.ndarray
    all_dropped: bool


def fold_aggregates(aggregates: list[BlockAggregate]) -> FoldedHour:
    """Strict left fold in ascending block index — the canonical reduction.

    Requires exactly one aggregate per block ``0..n_blocks-1``.  For a
    single block the fold is the identity (arrays copied, floats adopted
    verbatim), which is what makes single-block sharded days byte-equal
    to unsharded ones.
    """
    if not aggregates:
        raise ShardError("cannot fold an empty aggregate list")
    ordered = sorted(aggregates, key=lambda a: a.block)
    indices = [a.block for a in ordered]
    if indices != list(range(len(ordered))):
        raise ShardError(
            f"aggregate fold needs every block exactly once, got blocks {indices}"
        )
    head = ordered[0]
    total_rate = head.total_rate
    ingress = head.ingress.copy()
    egress = head.egress.copy()
    num_flows = head.num_flows
    any_positive = head.any_positive
    dropped_rate = head.dropped_rate
    all_dropped = head.all_dropped
    for agg in ordered[1:]:
        total_rate = total_rate + agg.total_rate
        ingress += agg.ingress
        egress += agg.egress
        num_flows += agg.num_flows
        any_positive = any_positive or agg.any_positive
        dropped_rate = dropped_rate + agg.dropped_rate
        all_dropped = all_dropped and agg.all_dropped
    dropped_flows = np.concatenate([a.dropped_flows for a in ordered])
    ingress.setflags(write=False)
    egress.setflags(write=False)
    return FoldedHour(
        num_flows=num_flows,
        total_rate=total_rate,
        ingress=ingress,
        egress=egress,
        any_positive=any_positive,
        dropped_rate=dropped_rate,
        dropped_flows=dropped_flows,
        all_dropped=all_dropped,
    )


def fold_serving(partials: list[tuple[int, float]]) -> float:
    """Left-fold per-block serving partials in ascending block index."""
    if not partials:
        raise ShardError("cannot fold an empty serving partial list")
    ordered = sorted(partials, key=lambda p: p[0])
    indices = [p[0] for p in ordered]
    if indices != list(range(len(ordered))):
        raise ShardError(
            f"serving fold needs every block exactly once, got blocks {indices}"
        )
    total = ordered[0][1]
    for _, value in ordered[1:]:
        total = total + value
    return total
