"""Deterministic shard plans over the canonical flow order.

The shard layer's determinism contract has two halves, and this module
owns the first: *what* gets computed is a pure function of the flow
population and the block size, never of the shard count.

* **Blocks** are fixed-size contiguous ranges of the canonical flow
  order (``[0, B), [B, 2B), ...``).  Every per-flow reduction the day
  loop needs — attractions, ``Λ``, drop sums, min-over-copies serving —
  is computed per block and folded by a strict left fold in ascending
  block index (:mod:`repro.shard.aggregate`).  The block table depends
  only on ``(num_flows, block_size)``.
* **Shards** are groups of whole blocks, assigned by a stable hash of
  each block's flow endpoints (for streamed populations: of the chunk's
  seed recipe, which *defines* those endpoints).  Shard assignment is
  pure scheduling — which worker computes a block, never what the block
  computes or how partials fold — so any shard count, any re-dispatch
  after a crash, and any watchdog kill produce bit-identical day books.

For a :class:`~repro.workload.stream.StreamingWorkload` the chunk size
*is* the block size; a mismatch is a configuration error
(:class:`~repro.errors.ShardError`), because re-chunking a streamed
population would change its per-chunk seed streams and therefore the
population itself.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

import numpy as np

from repro.errors import ShardError
from repro.runtime.resilience import ChaosConfig
from repro.workload.flows import FlowSet
from repro.workload.stream import StreamingWorkload

__all__ = ["Block", "ShardConfig", "ShardPlan", "stable_block_hash"]


@dataclass(frozen=True)
class ShardConfig:
    """Knobs of the sharded day loop (see :mod:`repro.shard`).

    ``num_shards`` controls parallel grain only — results are
    bit-identical across shard counts.  ``block_size`` is part of the
    *computation's* identity (it fixes the aggregation blocks); changing
    it changes the canonical fold for multi-block populations, exactly
    like changing a seed changes a workload.  ``workers`` caps the pool
    (``None`` = ``min(num_shards, cpu_count)``; an effective 1 runs
    shards in-process).  ``mem_budget`` (bytes) bounds each block's
    gather working set and arms the degradation ladder;
    ``stall_timeout`` (seconds without a shard heartbeat) arms the
    watchdog.  ``chaos`` injects deterministic faults for soak tests.
    """

    num_shards: int = 1
    block_size: int = 4096
    workers: int | None = None
    mem_budget: int | None = None
    stall_timeout: float | None = None
    max_retries: int = 3
    backoff_base: float = 0.01
    backoff_cap: float = 0.5
    chaos: ChaosConfig | None = None

    def __post_init__(self) -> None:
        if self.num_shards < 1:
            raise ShardError(f"num_shards must be positive, got {self.num_shards}")
        if self.block_size < 1:
            raise ShardError(f"block_size must be positive, got {self.block_size}")
        if self.workers is not None and self.workers < 1:
            raise ShardError(f"workers must be positive, got {self.workers}")
        if self.mem_budget is not None and self.mem_budget <= 0:
            raise ShardError(f"mem_budget must be positive, got {self.mem_budget}")
        if self.stall_timeout is not None and self.stall_timeout <= 0:
            raise ShardError(
                f"stall_timeout must be positive, got {self.stall_timeout}"
            )
        if self.max_retries < 0:
            raise ShardError(f"max_retries must be >= 0, got {self.max_retries}")


@dataclass(frozen=True)
class Block:
    """One contiguous range ``[start, stop)`` of the canonical flow order."""

    index: int
    start: int
    stop: int

    @property
    def size(self) -> int:
        return self.stop - self.start


def stable_block_hash(payload: bytes) -> int:
    """64-bit stable content hash (sha256 prefix; never Python's ``hash``)."""
    return int.from_bytes(hashlib.sha256(payload).digest()[:8], "big")


@dataclass(frozen=True)
class ShardPlan:
    """The block table plus each block's shard assignment.

    ``assignment[b]`` names the shard that computes block ``b``.  The
    parent folds results in ascending *block* order regardless, so the
    assignment (and therefore ``num_shards``) cannot influence a single
    bit of the day's books — it only shapes the parallel schedule.
    """

    num_flows: int
    block_size: int
    num_shards: int
    blocks: tuple[Block, ...]
    assignment: tuple[int, ...]

    @classmethod
    def _blocks_for(cls, num_flows: int, block_size: int) -> tuple[Block, ...]:
        return tuple(
            Block(index=b, start=b * block_size,
                  stop=min((b + 1) * block_size, num_flows))
            for b in range(-(-num_flows // block_size))
        )

    @classmethod
    def for_flows(cls, flows: FlowSet, config: ShardConfig) -> "ShardPlan":
        """Plan over a materialized flow set: hash each block's endpoints."""
        blocks = cls._blocks_for(flows.num_flows, config.block_size)
        assignment = tuple(
            stable_block_hash(
                flows.sources[b.start : b.stop].tobytes()
                + b"|"
                + flows.destinations[b.start : b.stop].tobytes()
            )
            % config.num_shards
            for b in blocks
        )
        return cls(
            num_flows=flows.num_flows,
            block_size=config.block_size,
            num_shards=config.num_shards,
            blocks=blocks,
            assignment=assignment,
        )

    @classmethod
    def for_stream(cls, stream: StreamingWorkload, config: ShardConfig) -> "ShardPlan":
        """Plan over a streamed population: chunk == block, endpoints by recipe.

        The hash input is the chunk's seed recipe — the deterministic
        *definition* of its endpoints — so the parent never generates a
        single flow to build the plan.
        """
        if stream.chunk_size != config.block_size:
            raise ShardError(
                f"streaming chunk_size {stream.chunk_size} != shard "
                f"block_size {config.block_size}; the chunk grid is the "
                "block grid, set them equal",
                diagnosis={
                    "chunk_size": stream.chunk_size,
                    "block_size": config.block_size,
                },
            )
        blocks = cls._blocks_for(stream.num_flows, config.block_size)
        assignment = tuple(
            stable_block_hash(
                f"{stream.seed}:{stream.chunk_size}:{b.index}".encode()
            )
            % config.num_shards
            for b in blocks
        )
        return cls(
            num_flows=stream.num_flows,
            block_size=config.block_size,
            num_shards=config.num_shards,
            blocks=blocks,
            assignment=assignment,
        )

    @property
    def num_blocks(self) -> int:
        return len(self.blocks)

    def blocks_for_shard(self, shard: int) -> tuple[Block, ...]:
        return tuple(
            block
            for block, owner in zip(self.blocks, self.assignment)
            if owner == shard
        )

    def shards(self) -> list[tuple[int, tuple[Block, ...]]]:
        """``(shard_id, blocks)`` for every shard that owns at least one block."""
        out = []
        for shard in range(self.num_shards):
            blocks = self.blocks_for_shard(shard)
            if blocks:
                out.append((shard, blocks))
        return out

    def slice_rates(self, rates: np.ndarray, block: Block) -> np.ndarray:
        if rates.shape != (self.num_flows,):
            raise ShardError(
                f"rate vector shape {rates.shape} != planned flow count "
                f"{self.num_flows}"
            )
        return rates[block.start : block.stop]
