"""The shard supervisor: dispatch, heartbeats, watchdog, salvage, journal.

One :class:`ShardSupervisor` lives for one sharded day.  It owns a
persistent worker pool (forked once, reused every hour), a shared-memory
heartbeat array (one ``float64`` slot per shard), the per-state distance
matrix exports, and the shard journal.  :meth:`run` executes one batch of
:class:`~repro.shard.worker.ShardTask` and returns ``{block_index:
result}`` — the caller folds those in ascending block order, so nothing
the supervisor does (scheduling, retries, kills, resume) can change a
bit of the day's books.

Failure handling, in escalation order:

* **Organic/injected crash** — charged one attempt against the task's
  stable key and re-dispatched after the deterministic
  :func:`~repro.runtime.resilience.backoff_delay`; the retry budget is
  ``config.max_retries`` extra attempts.
* **Dead worker** (``BrokenProcessPool``) — the pool is rebuilt; every
  in-flight task is charged one attempt (the killer is among them, and
  charging the innocents is what clears a transient chaos fault) and
  re-dispatched.
* **Wedged worker** — the watchdog compares each in-flight task's
  dispatch time and its shard's last heartbeat against
  ``config.stall_timeout``; a stalled task gets its pool killed, is
  charged one attempt with backoff, and every innocent in-flight task is
  re-dispatched free of charge.
* **Memory breach** — a task that dies with ``MemoryError`` after the
  worker-side ladder (full gather → column strips) is re-dispatched
  block-by-block (rung 2: smaller payloads, one block's working set at a
  time); a single-block memory failure is terminal and raises a
  diagnosed :class:`~repro.errors.ShardError` (rung 3).

Journal: each completed task's per-block results are recorded under
``task_fingerprint(scope, 0, task.key)``.  Keys are pure content (hour,
kind, shard, stable hash) — never volatile runtime names — so a resumed
run salvages completed shards *mid-hour*, byte-identically: the folded
values are the recorded values.
"""

from __future__ import annotations

import heapq
import itertools
import os
import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import replace
from multiprocessing import shared_memory

import numpy as np

from repro.errors import ShardError
from repro.runtime.instrument import count
from repro.runtime.journal import Journal, task_fingerprint
from repro.runtime.resilience import ResilienceConfig, backoff_delay
from repro.runtime.shm import ShmArrayRef, _export_array
from repro.shard.plan import ShardConfig
from repro.shard.worker import ShardTask, run_shard_task

__all__ = ["ShardSupervisor"]

#: distinguishes dist_key namespaces of supervisors sharing one process
#: (the verify campaign runs hundreds of cases in-process; worker/parent
#: dist caches are keyed by this so "healthy" never aliases across cases)
_SUPERVISOR_SEQ = itertools.count()


class ShardSupervisor:
    """Supervised execution of shard tasks for one day (see module docstring)."""

    def __init__(
        self,
        config: ShardConfig,
        *,
        scope: str = "shard",
        journal: Journal | None = None,
    ) -> None:
        self.config = config
        self.scope = scope
        self.journal = journal
        self.report: dict = {
            "workers": self.workers,
            "dispatched": 0,
            "journal_hits": 0,
            "retries": 0,
            "stalls": 0,
            "pool_restarts": 0,
            "degraded_tasks": 0,
        }
        self._uid = next(_SUPERVISOR_SEQ)
        self._attempts: dict[str, int] = {}
        self._pool: ProcessPoolExecutor | None = None
        self._heartbeat_segment: shared_memory.SharedMemory | None = None
        self._heartbeat_ref: ShmArrayRef | None = None
        self._heartbeat_view: np.ndarray | None = None
        self._dist_exports: dict[str, tuple] = {}
        self._closed = False

    # -- resources -----------------------------------------------------------

    @property
    def workers(self) -> int:
        if self.config.workers is not None:
            return max(1, self.config.workers)
        return max(1, min(self.config.num_shards, os.cpu_count() or 1))

    def dist_handle(self, key: str, dist: np.ndarray) -> dict:
        """Wire fields for one distance matrix, export memoized per key.

        In-process mode passes the array by reference; pool mode copies
        it into a shared segment once and ships the few-byte ref in every
        task.  ``dist_key`` is namespaced per supervisor so worker-side
        attach memos can never alias matrices across runs.
        """
        dist_key = f"{self.scope}#{self._uid}:{key}"
        if self.workers == 1:
            return {"dist_ref": None, "dist_data": dist, "dist_key": dist_key}
        cached = self._dist_exports.get(dist_key)
        if cached is None:
            ref, segment = _export_array(dist)
            cached = (ref, segment)
            self._dist_exports[dist_key] = cached
            count("shard_dist_exports")
        return {"dist_ref": cached[0], "dist_data": None, "dist_key": dist_key}

    def _ensure_heartbeat(self) -> ShmArrayRef:
        if self._heartbeat_ref is None:
            ref, segment = _export_array(np.zeros(self.config.num_shards))
            self._heartbeat_segment = segment
            self._heartbeat_ref = ref
            self._heartbeat_view = np.ndarray(
                ref.shape, dtype=np.dtype(ref.dtype), buffer=segment.buf
            )
        return self._heartbeat_ref

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=self.workers)
        return self._pool

    def _kill_pool(self) -> None:
        pool, self._pool = self._pool, None
        if pool is None:
            return
        processes = list(getattr(pool, "_processes", {}).values())
        pool.shutdown(wait=False, cancel_futures=True)
        for process in processes:
            if process.is_alive():
                process.terminate()
        for process in processes:
            process.join(timeout=5.0)
            if process.is_alive():  # pragma: no cover - wedged beyond SIGTERM
                process.kill()
                process.join(timeout=5.0)

    def _shutdown_pool(self) -> None:
        # Graceful variant for close(): by then run() has drained every
        # future, so the workers are idle and a cooperative shutdown is
        # quick — and unlike terminate(), it cannot wedge the executor's
        # manager thread by killing a worker mid-queue-read.
        pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True, cancel_futures=True)

    def close(self) -> None:
        """Release the pool and every shared segment (idempotent)."""
        if self._closed:
            return
        self._closed = True
        self._shutdown_pool()
        if self._heartbeat_segment is not None:
            try:
                self._heartbeat_segment.close()
                self._heartbeat_segment.unlink()
            except FileNotFoundError:  # pragma: no cover - already unlinked
                pass
            self._heartbeat_segment = None
            self._heartbeat_view = None
            self._heartbeat_ref = None
        for _, segment in self._dist_exports.values():
            try:
                segment.close()
                segment.unlink()
            except FileNotFoundError:  # pragma: no cover - already unlinked
                pass
        self._dist_exports.clear()

    def __enter__(self) -> "ShardSupervisor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- journal -------------------------------------------------------------

    def _fingerprint(self, task: ShardTask) -> str:
        return task_fingerprint(self.scope, 0, task.key)

    def _journal_lookup(self, task: ShardTask):
        if self.journal is None:
            return False, None
        hit, value = self.journal.lookup(self._fingerprint(task))
        if hit:
            self.report["journal_hits"] += 1
        return hit, value

    def _journal_record(self, task: ShardTask, payload) -> None:
        if self.journal is not None:
            self.journal.record(self._fingerprint(task), payload)

    # -- failure bookkeeping --------------------------------------------------

    def _charge(self, task: ShardTask, detail: dict | None) -> int:
        """Charge one attempt; raise diagnosed ShardError past the budget."""
        attempts = self._attempts.get(task.key, 0) + 1
        self._attempts[task.key] = attempts
        if attempts > self.config.max_retries:
            diagnosis = {
                "task": task.key,
                "shard": task.shard,
                "hour": task.hour,
                "attempts": attempts,
                "max_retries": self.config.max_retries,
            }
            if detail:
                diagnosis.update(
                    {"error": detail.get("error"), **(detail.get("diagnosis") or {})}
                )
            raise ShardError(
                f"shard task {task.key} failed {attempts} times "
                f"(budget: 1 + {self.config.max_retries} retries): "
                f"{(detail or {}).get('error', 'stalled worker')}; raise "
                "--shard-mem-budget / the retry budget, or run unsharded",
                diagnosis=diagnosis,
            )
        return attempts

    def _split_blocks(self, task: ShardTask) -> list[ShardTask]:
        """Rung 2: re-dispatch a memory-breached multi-block task per block."""
        self.report["degraded_tasks"] += 1
        count("shard_block_splits")
        out = []
        for position, block in enumerate(task.blocks):
            out.append(
                replace(
                    task,
                    key=f"{task.key}/b{block.index}",
                    blocks=(block,),
                    payloads=None
                    if task.payloads is None
                    else (task.payloads[position],),
                )
            )
        return out

    def _backoff(self) -> ResilienceConfig:
        return ResilienceConfig(
            backoff_base=self.config.backoff_base,
            backoff_cap=self.config.backoff_cap,
            scope=self.scope,
        )

    # -- execution -----------------------------------------------------------

    def run(self, tasks: list[ShardTask]) -> dict[int, object]:
        """Execute one batch of tasks; return ``{block_index: result}``."""
        if self._closed:
            raise ShardError("supervisor already closed")
        results: dict[int, object] = {}
        todo: list[ShardTask] = []
        for task in tasks:
            hit, payload = self._journal_lookup(task)
            if hit:
                for block_index, value in payload:
                    results[block_index] = value
            else:
                todo.append(task)
        if not todo:
            return results
        if self.workers == 1:
            self._run_serial(todo, results)
        else:
            self._run_parallel(todo, results)
        return results

    def _run_serial(self, tasks: list[ShardTask], results: dict) -> None:
        """In-process path (effective worker count 1): same contract, no pool.

        Chaos kills degrade to crashes here (the gate spots the parent
        pid), and the watchdog is moot — a wedged computation would wedge
        the parent too.
        """
        backoff = self._backoff()
        queue = deque(tasks)
        while queue:
            task = queue.popleft()
            hit, payload = self._journal_lookup(task)
            if hit:
                for block_index, value in payload:
                    results[block_index] = value
                continue
            attempt = self._attempts.get(task.key, 0)
            self.report["dispatched"] += 1
            status, payload = run_shard_task(task, attempt)
            if status == "ok":
                self._journal_record(task, payload)
                for block_index, value in payload:
                    results[block_index] = value
                continue
            if payload.get("memory") and len(task.blocks) > 1:
                self._attempts[task.key] = attempt + 1
                queue.extendleft(reversed(self._split_blocks(task)))
                continue
            attempts = self._charge(task, payload)
            self.report["retries"] += 1
            delay = backoff_delay(backoff, task.shard, attempts)
            if delay:
                time.sleep(delay)
            queue.appendleft(task)

    def _run_parallel(self, tasks: list[ShardTask], results: dict) -> None:
        backoff = self._backoff()
        heartbeat = self._ensure_heartbeat()
        pool = self._ensure_pool()
        pending: deque[ShardTask] = deque(tasks)
        retry_heap: list[tuple[float, int, ShardTask]] = []
        sequence = itertools.count()
        inflight: dict = {}  # future -> (task, dispatch_time)
        shard_busy: set[int] = set()

        def dispatch_one() -> bool:
            for position, candidate in enumerate(pending):
                if candidate.shard in shard_busy:
                    continue
                del pending[position]
                hit, payload = self._journal_lookup(candidate)
                if hit:
                    for block_index, value in payload:
                        results[block_index] = value
                    return True
                attempt = self._attempts.get(candidate.key, 0)
                wired = replace(candidate, heartbeat=heartbeat)
                try:
                    future = pool.submit(run_shard_task, wired, attempt)
                except BrokenProcessPool:
                    # the pool died between completions; put the task back
                    # and let the main loop's broken handling rebuild
                    pending.appendleft(candidate)
                    raise
                inflight[future] = (candidate, time.monotonic())
                shard_busy.add(candidate.shard)
                self.report["dispatched"] += 1
                return True
            return False

        def requeue_inflight(*, charge: set[str]) -> None:
            """Return every in-flight task to the queue after a pool loss."""
            for future, (task, _) in list(inflight.items()):
                if task.key in charge:
                    attempts = self._charge(task, None)
                    self.report["retries"] += 1
                    ready = time.monotonic() + backoff_delay(
                        backoff, task.shard, attempts
                    )
                    heapq.heappush(retry_heap, (ready, next(sequence), task))
                else:
                    pending.appendleft(task)
            inflight.clear()
            shard_busy.clear()

        while pending or retry_heap or inflight:
            now = time.monotonic()
            while retry_heap and retry_heap[0][0] <= now:
                _, _, task = heapq.heappop(retry_heap)
                pending.append(task)
            try:
                while len(inflight) < self.workers and pending:
                    if not dispatch_one():
                        break
            except BrokenProcessPool:
                self.report["pool_restarts"] += 1
                count("shard_pool_restarts")
                requeue_inflight(charge={t.key for t, _ in inflight.values()})
                self._kill_pool()
                pool = self._ensure_pool()
                continue
            if not inflight:
                if retry_heap:
                    time.sleep(
                        min(0.05, max(0.0, retry_heap[0][0] - time.monotonic()))
                    )
                continue

            done, _ = wait(set(inflight), timeout=0.05, return_when=FIRST_COMPLETED)
            broken = False
            for future in done:
                task, _ = inflight.pop(future)
                shard_busy.discard(task.shard)
                try:
                    status, payload = future.result()
                except BrokenProcessPool:
                    broken = True
                    # the dead task is charged (it may be the chaos kill
                    # whose fault must age out) and retried with backoff
                    attempts = self._charge(task, None)
                    self.report["retries"] += 1
                    ready = time.monotonic() + backoff_delay(
                        backoff, task.shard, attempts
                    )
                    heapq.heappush(retry_heap, (ready, next(sequence), task))
                    continue
                except Exception as exc:  # pool plumbing failure
                    attempts = self._charge(task, {"error": repr(exc)})
                    self.report["retries"] += 1
                    ready = time.monotonic() + backoff_delay(
                        backoff, task.shard, attempts
                    )
                    heapq.heappush(retry_heap, (ready, next(sequence), task))
                    continue
                if status == "ok":
                    self._journal_record(task, payload)
                    for block_index, value in payload:
                        results[block_index] = value
                    continue
                if payload.get("memory") and len(task.blocks) > 1:
                    self._attempts[task.key] = self._attempts.get(task.key, 0) + 1
                    pending.extendleft(reversed(self._split_blocks(task)))
                    continue
                attempts = self._charge(task, payload)
                self.report["retries"] += 1
                ready = time.monotonic() + backoff_delay(backoff, task.shard, attempts)
                heapq.heappush(retry_heap, (ready, next(sequence), task))

            if broken:
                # a worker died hard: every other in-flight future is
                # poisoned too — charge them all (clears transient chaos)
                # and rebuild the pool
                self.report["pool_restarts"] += 1
                count("shard_pool_restarts")
                requeue_inflight(charge={t.key for t, _ in inflight.values()})
                self._kill_pool()
                pool = self._ensure_pool()
                continue

            if self.config.stall_timeout is not None and inflight:
                now = time.monotonic()
                stalled: set[str] = set()
                view = self._heartbeat_view
                for task, dispatched in inflight.values():
                    last = max(dispatched, float(view[task.shard]))
                    if now - last > self.config.stall_timeout:
                        stalled.add(task.key)
                if stalled:
                    # wedged worker: kill the whole pool (no per-future
                    # preemption exists), charge the stalled tasks, and
                    # re-dispatch the innocents free of charge
                    self.report["stalls"] += len(stalled)
                    self.report["pool_restarts"] += 1
                    count("shard_stalls")
                    self._kill_pool()
                    requeue_inflight(charge=stalled)
                    pool = self._ensure_pool()
