"""Supervised, crash-tolerant sharded execution of the simulated day.

The day loop's per-flow reductions — attraction vectors, ``Λ``, drop
accounting, replication serving — are linear in the flows, so they split
into per-block partial sums.  This package splits a day's flow
population into deterministic shards (:mod:`~repro.shard.plan`), runs
each shard's aggregation in supervised pool workers
(:mod:`~repro.shard.worker`, :mod:`~repro.shard.supervisor` — with
heartbeats, a stall watchdog, memory budgets with a degradation ladder,
deterministic chaos injection and a resumable shard journal), folds the
partials by the canonical ascending-block left fold
(:mod:`~repro.shard.aggregate`), and feeds the folded
:class:`~repro.core.costs.AggregatedFlows` to the unchanged solvers
(:mod:`~repro.shard.engine`).

Determinism contract (enforced by the ``verify.shard`` campaign):
results are bit-identical across shard counts, worker crashes, kills,
stalls, retries and journal resumes; single-block populations are
byte-identical to the unsharded :func:`~repro.sim.engine.simulate_day`.
"""

from repro.shard.aggregate import (
    BlockAggregate,
    FoldedHour,
    compute_block_aggregate,
    compute_block_serving,
    fold_aggregates,
    fold_serving,
)
from repro.shard.engine import initial_placement_sharded, simulate_day_sharded
from repro.shard.plan import Block, ShardConfig, ShardPlan
from repro.shard.supervisor import ShardSupervisor
from repro.shard.worker import BlockPayload, ShardTask, run_shard_task

__all__ = [
    "Block",
    "BlockAggregate",
    "BlockPayload",
    "FoldedHour",
    "ShardConfig",
    "ShardPlan",
    "ShardSupervisor",
    "ShardTask",
    "compute_block_aggregate",
    "compute_block_serving",
    "fold_aggregates",
    "fold_serving",
    "initial_placement_sharded",
    "run_shard_task",
    "simulate_day_sharded",
]
