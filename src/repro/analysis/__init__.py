"""Analysis helpers: cost breakdowns and terminal visualizations."""

from repro.analysis.reports import (
    CostBreakdown,
    cost_breakdown,
    describe_placement,
    migration_summary,
)
from repro.analysis.fattree_view import render_fat_tree_placement

__all__ = [
    "CostBreakdown",
    "cost_breakdown",
    "describe_placement",
    "migration_summary",
    "render_fat_tree_placement",
]
