"""ASCII rendering of VNF placements on fat-tree fabrics.

Draws the three switch layers (core / aggregation / edge) as rows of
cells, marking where each VNF of the chain sits — handy for eyeballing
what the placement algorithms decided, in examples and debugging.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ReproError
from repro.topology.base import Topology

__all__ = ["render_fat_tree_placement"]


def render_fat_tree_placement(
    topology: Topology,
    placement: np.ndarray,
    cell_width: int = 5,
) -> str:
    """Render a fat-tree's switch layers with VNF positions marked.

    Each switch cell shows its label; switches hosting a VNF show
    ``fJ:label``.  Only works for topologies built by
    :func:`~repro.topology.fattree.fat_tree` (it relies on the builder's
    layer counts in ``meta``).
    """
    meta = topology.meta
    required = {"edge_switches", "agg_switches", "core_switches"}
    if not required <= set(meta):
        raise ReproError(
            "render_fat_tree_placement requires a fat_tree-built topology"
        )
    p = np.asarray(placement, dtype=np.int64)
    vnf_at = {int(s): j + 1 for j, s in enumerate(p)}

    num_edge = meta["edge_switches"]
    num_agg = meta["agg_switches"]
    num_core = meta["core_switches"]
    switches = topology.switches
    layers = [
        ("core", switches[num_edge + num_agg : num_edge + num_agg + num_core]),
        ("agg ", switches[num_edge : num_edge + num_agg]),
        ("edge", switches[:num_edge]),
    ]

    def cell(switch: int) -> str:
        label = topology.graph.label(int(switch))
        if int(switch) in vnf_at:
            text = f"f{vnf_at[int(switch)]}:{label}"
        else:
            text = label
        return text.center(max(cell_width, len(text)))

    lines = []
    for name, row in layers:
        lines.append(f"{name} |" + "|".join(cell(int(s)) for s in row) + "|")
    chain = " -> ".join(topology.graph.label(int(s)) for s in p)
    lines.append(f"chain: {chain}")
    return "\n".join(lines)
