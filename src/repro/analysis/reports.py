"""Cost breakdowns and human-readable placement/migration summaries.

The Eq. 1 decomposition (ingress attraction + Λ·chain + egress
attraction) is the lens through which every result in this library makes
sense; :func:`cost_breakdown` exposes it per placement so experiment
output and debugging sessions can see *where* the traffic cost lives,
not just its total.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.costs import CostContext
from repro.core.types import MigrationResult
from repro.errors import ReproError
from repro.topology.base import Topology
from repro.workload.flows import FlowSet

__all__ = [
    "CostBreakdown",
    "cost_breakdown",
    "describe_placement",
    "migration_summary",
]


@dataclass(frozen=True)
class CostBreakdown:
    """Eq. 1 split into its three independent parts."""

    ingress_attraction: float
    chain_cost: float
    egress_attraction: float

    @property
    def total(self) -> float:
        return self.ingress_attraction + self.chain_cost + self.egress_attraction

    def shares(self) -> dict[str, float]:
        """Fractional contribution of each part (zeros when silent)."""
        total = self.total
        if total <= 0:
            return {"ingress": 0.0, "chain": 0.0, "egress": 0.0}
        return {
            "ingress": self.ingress_attraction / total,
            "chain": self.chain_cost / total,
            "egress": self.egress_attraction / total,
        }


def cost_breakdown(
    topology: Topology, flows: FlowSet, placement: np.ndarray
) -> CostBreakdown:
    """Decompose ``C_a(placement)`` into Eq. 1's three terms."""
    ctx = CostContext(topology, flows)
    p = np.asarray(placement, dtype=np.int64)
    if p.ndim != 1 or p.size == 0:
        raise ReproError("placement must be a non-empty 1-D array")
    breakdown = CostBreakdown(
        ingress_attraction=float(ctx.ingress_attraction[p[0]]),
        chain_cost=float(ctx.total_rate * ctx.chain_cost(p)),
        egress_attraction=float(ctx.egress_attraction[p[-1]]),
    )
    # the decomposition must reconstruct the cost model exactly
    assert abs(breakdown.total - ctx.communication_cost(p)) <= 1e-6 * max(
        1.0, breakdown.total
    )
    return breakdown


def describe_placement(
    topology: Topology, flows: FlowSet, placement: np.ndarray
) -> str:
    """Multi-line human summary of a placement: labels, cost split, shares."""
    p = np.asarray(placement, dtype=np.int64)
    breakdown = cost_breakdown(topology, flows, p)
    shares = breakdown.shares()
    labels = " -> ".join(topology.graph.label(int(s)) for s in p)
    lines = [
        f"chain: {labels}",
        f"C_a = {breakdown.total:,.0f}",
        f"  ingress attraction {breakdown.ingress_attraction:,.0f} ({shares['ingress']:.0%})",
        f"  chain cost         {breakdown.chain_cost:,.0f} ({shares['chain']:.0%})",
        f"  egress attraction  {breakdown.egress_attraction:,.0f} ({shares['egress']:.0%})",
    ]
    return "\n".join(lines)


def migration_summary(topology: Topology, result: MigrationResult) -> str:
    """One-paragraph narrative of a migration result."""
    moved = [
        (topology.graph.label(int(a)), topology.graph.label(int(b)))
        for a, b in zip(result.source, result.migration)
        if a != b
    ]
    if not moved:
        return (
            f"{result.algorithm}: no VNFs moved; communication cost "
            f"{result.communication_cost:,.0f}"
        )
    moves = ", ".join(f"{a}->{b}" for a, b in moved)
    return (
        f"{result.algorithm}: moved {len(moved)} VNF(s) ({moves}); "
        f"migration cost {result.migration_cost:,.0f}, "
        f"communication cost {result.communication_cost:,.0f}, "
        f"total {result.cost:,.0f}"
    )
