"""Random graph generators for tests, ablations and benchmarks."""

from __future__ import annotations

import numpy as np

from repro.errors import GraphError
from repro.graphs.adjacency import CostGraph, GraphBuilder
from repro.utils.rng import as_generator

__all__ = ["random_cost_graph"]


def random_cost_graph(
    rng: int | np.random.Generator,
    num_nodes: int,
    edge_prob: float = 0.4,
    weight_low: float = 0.5,
    weight_high: float = 5.0,
) -> CostGraph:
    """A connected random weighted graph.

    A spanning path guarantees connectivity; every other pair gains an
    edge with probability ``edge_prob``.  Weights are uniform on
    ``[weight_low, weight_high)``.
    """
    if num_nodes < 1:
        raise GraphError(f"num_nodes must be at least 1, got {num_nodes}")
    if not (0.0 <= edge_prob <= 1.0):
        raise GraphError(f"edge_prob must be in [0, 1], got {edge_prob}")
    if not (np.isfinite(weight_low) and np.isfinite(weight_high)):
        raise GraphError(
            f"weight bounds must be finite, got [{weight_low}, {weight_high})"
        )
    if weight_low < 0 or weight_high < weight_low:
        raise GraphError(
            "weight bounds must satisfy 0 <= weight_low <= weight_high, "
            f"got [{weight_low}, {weight_high})"
        )
    gen = as_generator(rng)
    builder = GraphBuilder()
    builder.add_nodes(f"v{i}" for i in range(num_nodes))
    for i in range(num_nodes - 1):
        builder.add_edge(i, i + 1, float(gen.uniform(weight_low, weight_high)))
    for i in range(num_nodes):
        for j in range(i + 2, num_nodes):
            if gen.random() < edge_prob:
                builder.add_edge(i, j, float(gen.uniform(weight_low, weight_high)))
    return builder.build()
