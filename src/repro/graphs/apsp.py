"""All-pairs shortest paths: the one entry point over three backends.

The library historically had three APSP implementations with no single
front door: :meth:`CostGraph._compute_apsp` (scipy Dijkstra, the
production backend), :func:`repro.graphs.shortest_paths.
all_pairs_shortest_paths` (pure-Python repeated Dijkstra, the readable
reference) and :func:`repro.graphs.floyd_warshall.floyd_warshall` (a
numpy min-plus implementation).  This module consolidates them:

* :func:`apsp` is the documented entry point — ``method="dijkstra"``
  (default) returns the production ``(dist, pred)`` tables through the
  graph's compute cache; ``method="reference"`` re-derives distances
  with the pure-Python Dijkstra; ``method="oracle"`` runs
  Floyd–Warshall.  The latter two return ``pred=None``: they exist to
  *check* the production tables, never to feed solvers.
* :func:`edges_to_csr` / :func:`solve_csr` are the shared low-level
  pieces: every scipy-backed computation in the library — the cold
  :meth:`CostGraph._compute_apsp` and the delta fix-ups in
  :class:`repro.graphs.incremental.DynamicAPSP` — builds its CSR matrix
  and calls ``csgraph`` through these two functions, so their outputs
  are bit-identical by construction (same matrix, same routine).

Floyd–Warshall is deliberately *not* reachable from any production code
path: it stays the independent verification oracle (different algorithm,
different accumulation order), which is exactly what makes its
cross-checks in :mod:`repro.verify` meaningful.
"""

from __future__ import annotations

import numpy as np
from scipy.sparse import csr_matrix
from scipy.sparse.csgraph import shortest_path as _csgraph_shortest_path

from repro.errors import GraphError

__all__ = ["APSP_METHODS", "apsp", "edges_to_csr", "solve_csr", "compute_tables"]

APSP_METHODS = ("dijkstra", "reference", "oracle")


def edges_to_csr(
    num_nodes: int,
    edges,
    collapsed_weights: np.ndarray,
) -> csr_matrix:
    """The canonical CSR construction shared by every scipy APSP call.

    ``edges`` are ``(u, v, w)`` triples (``u < v``); each contributes two
    symmetric entries carrying the *collapsed* pair weight
    ``collapsed_weights[u, v]`` — exactly what
    :meth:`CostGraph._compute_apsp` has always built, duplicate-summing
    quirks included, so incremental recomputations see the identical
    matrix a cold rebuild would.
    """
    rows: list[int] = []
    cols: list[int] = []
    data: list[float] = []
    for u, v, _w in edges:
        # only the collapsed (minimum) weight participates
        w_eff = collapsed_weights[u, v]
        rows.extend((u, v))
        cols.extend((v, u))
        data.extend((w_eff, w_eff))
    return csr_matrix((data, (rows, cols)), shape=(num_nodes, num_nodes))


def solve_csr(
    sparse: csr_matrix, *, indices: np.ndarray | None = None
) -> tuple[np.ndarray, np.ndarray]:
    """Dijkstra over a CSR matrix; ``indices`` restricts to those source rows.

    scipy runs one independent single-source Dijkstra per requested
    source, so the rows returned for ``indices=[s]`` are bit-identical
    to rows ``s`` of the full ``indices=None`` solve — the property the
    incremental fix-up in :class:`~repro.graphs.incremental.DynamicAPSP`
    relies on (and that its test suite asserts).
    """
    return _csgraph_shortest_path(
        sparse,
        method="D",
        directed=False,
        return_predecessors=True,
        indices=indices,
    )


def compute_tables(graph) -> tuple[np.ndarray, np.ndarray]:
    """Cold ``(dist, pred)`` for a :class:`CostGraph`-like object.

    This is the uncached production computation (``CostGraph._compute_
    apsp`` delegates here); callers wanting the memoized tables should
    use :func:`apsp` or :meth:`CostGraph.apsp` instead.
    """
    sparse = edges_to_csr(graph.num_nodes, graph.edges, graph.weights)
    dist, pred = solve_csr(sparse)
    dist.setflags(write=False)
    return dist, pred


def apsp(graph, *, method: str = "dijkstra") -> tuple[np.ndarray, np.ndarray | None]:
    """The documented APSP entry point: ``(dist, pred)`` for ``graph``.

    ``method="dijkstra"`` (default) returns the cached production tables
    (predecessors included).  ``method="reference"`` recomputes distances
    with the pure-Python repeated Dijkstra and ``method="oracle"`` with
    Floyd–Warshall; both return ``(dist, None)`` and exist only for
    cross-checking — the oracle in particular must stay independent of
    the production backend to keep the verification campaign honest.
    """
    if method == "dijkstra":
        return graph.apsp()
    if method == "reference":
        from repro.graphs.shortest_paths import all_pairs_shortest_paths

        return all_pairs_shortest_paths(graph), None
    if method == "oracle":
        from repro.graphs.floyd_warshall import floyd_warshall

        return floyd_warshall(graph), None
    raise GraphError(f"unknown APSP method {method!r}; choose from {APSP_METHODS}")
