"""Weighted undirected graph with integer node indices and cached metrics.

:class:`CostGraph` is the single graph representation used throughout the
library.  Nodes are referred to by dense integer indices (fast numpy
indexing in the hot paths) and carry human-readable string labels for
display.  Construction goes through :class:`GraphBuilder`, after which the
graph is immutable; the all-pairs shortest-path matrix — the paper's
topology-aware cost ``c(u, v)`` — is computed lazily once and cached.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

import numpy as np

from repro.errors import GraphError
from repro.graphs.apsp import compute_tables
from repro.runtime.cache import get_compute_cache
from repro.runtime.instrument import count
from repro.utils.timing import Timer

__all__ = ["GraphBuilder", "CostGraph"]


class GraphBuilder:
    """Incremental constructor for :class:`CostGraph`.

    Example
    -------
    >>> b = GraphBuilder()
    >>> a, c = b.add_node("a"), b.add_node("c")
    >>> _ = b.add_edge(a, c, 2.0)
    >>> g = b.build()
    >>> g.cost(a, c)
    2.0
    """

    def __init__(self) -> None:
        self._labels: list[str] = []
        self._index: dict[str, int] = {}
        self._edges: list[tuple[int, int, float]] = []

    def add_node(self, label: str) -> int:
        """Register a node; returns its index. Duplicate labels are errors."""
        if label in self._index:
            raise GraphError(f"duplicate node label {label!r}")
        idx = len(self._labels)
        self._labels.append(label)
        self._index[label] = idx
        return idx

    def add_nodes(self, labels: Iterable[str]) -> list[int]:
        return [self.add_node(label) for label in labels]

    def add_edge(self, u: int, v: int, weight: float = 1.0) -> "GraphBuilder":
        """Add an undirected edge. Self-loops and non-positive weights are rejected."""
        n = len(self._labels)
        if not (0 <= u < n and 0 <= v < n):
            raise GraphError(f"edge ({u}, {v}) references unknown node (n={n})")
        if u == v:
            raise GraphError(f"self-loop on node {u} is not allowed")
        if not (weight > 0.0 and np.isfinite(weight)):
            raise GraphError(f"edge ({u}, {v}) weight must be positive finite, got {weight}")
        self._edges.append((u, v, float(weight)))
        return self

    def build(self) -> "CostGraph":
        return CostGraph(self._labels, self._edges)


class CostGraph:
    """Immutable weighted undirected graph with cached all-pairs distances.

    Parameters
    ----------
    labels:
        Node labels; the node count is ``len(labels)``.
    edges:
        ``(u, v, weight)`` triples.  Parallel edges collapse to the minimum
        weight (the cheaper link is always preferred by shortest paths).
    """

    def __init__(self, labels: Sequence[str], edges: Iterable[tuple[int, int, float]]) -> None:
        self._labels = list(labels)
        n = len(self._labels)
        if n == 0:
            raise GraphError("graph must have at least one node")
        self._index = {label: i for i, label in enumerate(self._labels)}
        if len(self._index) != n:
            raise GraphError("node labels must be unique")

        weights = np.full((n, n), np.inf, dtype=np.float64)
        np.fill_diagonal(weights, 0.0)
        edge_list: list[tuple[int, int, float]] = []
        for u, v, w in edges:
            if not (0 <= u < n and 0 <= v < n):
                raise GraphError(f"edge ({u}, {v}) references unknown node (n={n})")
            if u == v:
                raise GraphError(f"self-loop on node {u} is not allowed")
            if not (w > 0.0 and np.isfinite(w)):
                raise GraphError(f"edge ({u}, {v}) weight must be positive finite, got {w}")
            if w < weights[u, v]:
                weights[u, v] = weights[v, u] = float(w)
            edge_list.append((min(u, v), max(u, v), float(w)))
        self._weights = weights
        self._weights.setflags(write=False)
        self._edges = tuple(sorted(set(edge_list)))
        self._adj: list[np.ndarray] = [
            np.flatnonzero(np.isfinite(weights[i]) & (np.arange(n) != i)) for i in range(n)
        ]

    # -- basic accessors ---------------------------------------------------

    @property
    def num_nodes(self) -> int:
        return len(self._labels)

    @property
    def num_edges(self) -> int:
        return len(self._edges)

    @property
    def labels(self) -> tuple[str, ...]:
        return tuple(self._labels)

    @property
    def edges(self) -> tuple[tuple[int, int, float], ...]:
        """Unique undirected edges as ``(min(u,v), max(u,v), weight)``."""
        return self._edges

    @property
    def weights(self) -> np.ndarray:
        """Read-only ``(n, n)`` adjacency weight matrix (inf = no edge)."""
        return self._weights

    def label(self, node: int) -> str:
        return self._labels[node]

    def node(self, label: str) -> int:
        try:
            return self._index[label]
        except KeyError:
            raise GraphError(f"unknown node label {label!r}") from None

    def neighbors(self, node: int) -> np.ndarray:
        """Indices adjacent to ``node`` (ascending, read-only view semantics)."""
        return self._adj[node]

    def has_edge(self, u: int, v: int) -> bool:
        return u != v and bool(np.isfinite(self._weights[u, v]))

    def edge_weight(self, u: int, v: int) -> float:
        if not self.has_edge(u, v):
            raise GraphError(f"no edge between {u} and {v}")
        return float(self._weights[u, v])

    def __iter__(self) -> Iterator[int]:
        return iter(range(self.num_nodes))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"CostGraph(n={self.num_nodes}, m={self.num_edges})"

    # -- shortest-path metrics ---------------------------------------------

    def _apsp(self) -> tuple[np.ndarray, np.ndarray]:
        """``(dist, pred)``, memoized in the process compute cache.

        The cache holds this graph weakly, so the tables die with the
        graph; worker processes each warm their own copy (Dijkstra is
        deterministic, so every copy is bit-identical).
        """
        return get_compute_cache().get_or_compute(self, "apsp", self._compute_apsp)

    def _compute_apsp(self) -> tuple[np.ndarray, np.ndarray]:
        count("apsp_computes")
        with Timer.timed("apsp"):
            dist, pred = compute_tables(self)
        return dist, pred

    def apsp(self) -> tuple[np.ndarray, np.ndarray]:
        """The cached ``(dist, pred)`` tables — the public APSP entry point.

        ``dist[u, v]`` is the shortest-path cost and ``pred[u, v]`` the
        predecessor of ``v`` on one shortest path from ``u`` (scipy's
        ``-9999`` sentinel marks the source itself and unreachable
        nodes).  See :mod:`repro.graphs.apsp` for the backend catalogue.
        """
        return self._apsp()

    def seed_apsp(self, dist: np.ndarray, pred: np.ndarray) -> None:
        """Install externally maintained APSP tables for this graph.

        Used by the incremental solver core: a
        :class:`~repro.graphs.incremental.DynamicAPSP` that has applied
        this graph's edge deltas can seed the tables here, so
        :attr:`distances` never pays a cold recompute.  The seeded
        ``dist`` must be bit-identical to what :meth:`_compute_apsp`
        would produce (the DynamicAPSP contract); ``pred`` must encode a
        valid shortest-path tree for those distances.  A no-op if the
        tables are already cached.
        """
        n = self.num_nodes
        dist = np.asarray(dist, dtype=np.float64)
        if dist.shape != (n, n):
            raise GraphError(f"seeded dist has shape {dist.shape}, want {(n, n)}")
        pred = np.asarray(pred)
        if pred.shape != (n, n):
            raise GraphError(f"seeded pred has shape {pred.shape}, want {(n, n)}")
        dist.setflags(write=False)
        pred.setflags(write=False)
        count("apsp_seeded")
        get_compute_cache().get_or_compute(self, "apsp", lambda: (dist, pred))

    @property
    def distances(self) -> np.ndarray:
        """All-pairs shortest-path cost matrix ``c(u, v)`` (read-only)."""
        return self._apsp()[0]

    def cost(self, u: int, v: int) -> float:
        """Topology-aware cost ``c(u, v)`` between two nodes."""
        return float(self.distances[u, v])

    def shortest_path(self, u: int, v: int) -> list[int]:
        """Node sequence of one shortest ``u``-``v`` path (inclusive).

        Raises :class:`GraphError` when ``v`` is unreachable from ``u``.
        """
        dist, pred = self._apsp()
        if u == v:
            return [u]
        if not np.isfinite(dist[u, v]):
            raise GraphError(f"node {v} is unreachable from node {u}")
        path = [v]
        node = v
        while node != u:
            node = int(pred[u, node])
            path.append(node)
        path.reverse()
        return path

    def is_connected(self) -> bool:
        return bool(np.all(np.isfinite(self.distances[0])))

    def diameter(self) -> float:
        """Greatest shortest-path distance between any node pair."""
        if not self.is_connected():
            raise GraphError("diameter is undefined for a disconnected graph")
        return float(self.distances.max())

    # -- conversions ---------------------------------------------------------

    def to_networkx(self):
        """Export to :class:`networkx.Graph` (used in tests for cross-checks)."""
        import networkx as nx

        g = nx.Graph()
        for i, label in enumerate(self._labels):
            g.add_node(i, label=label)
        for u, v, _ in self._edges:
            g.add_edge(u, v, weight=float(self._weights[u, v]))
        return g

    def reweighted(self, weight_of: "callable") -> "CostGraph":
        """Return a copy whose edge weights are ``weight_of(u, v, old_w)``."""
        new_edges = [(u, v, float(weight_of(u, v, w))) for u, v, w in self._edges]
        return CostGraph(self._labels, new_edges)
