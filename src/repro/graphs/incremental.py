"""Delta-maintained all-pairs shortest paths (the incremental solver core).

The dynamic setting changes only a few edges per hour — a switch dies,
a link repairs — yet :func:`~repro.faults.degrade.degrade` historically
paid a full scipy Dijkstra over every node pair for every distinct fault
state.  :class:`DynamicAPSP` maintains the ``(dist, pred)`` tables under
fail/repair **edge deltas** instead, Ramalingam–Reps style: identify the
source rows whose shortest-path structure the delta can touch, and fix
only those up with single-source recomputations.

Bit-identity contract
---------------------
Distances are **bit-identical** to a cold
:meth:`~repro.graphs.adjacency.CostGraph._compute_apsp` on the same
surviving edge set.  Two facts make this exact rather than approximate:

* *Row screening is lossless.*  Removing edge ``{u, v}`` can change row
  ``s`` only if ``s``'s current shortest-path tree uses the edge
  (``pred[s, u] == v`` or ``pred[s, v] == u``) — an unused edge only
  deletes non-optimal paths, so every other row keeps its exact float
  values.  Restoring ``{u, v}`` with effective weight ``w`` can change
  row ``s`` only if ``dist[s, u] + w < dist[s, v]`` or the mirror test
  holds: any path through the restored edge first reaches one endpoint,
  and float addition of non-negative weights is monotone, so a path that
  does not improve the endpoint cannot improve anything beyond it.
* *Recomputed rows are the cold rows.*  Affected rows are re-solved by
  scipy Dijkstra (``indices=rows``) over a CSR built by the same
  :func:`~repro.graphs.apsp.edges_to_csr` a cold rebuild would use; each
  source is an independent single-source run, so the returned rows are
  byte-for-byte the cold result's rows.

Predecessors of *unaffected* rows keep their previous tree.  That tree
is still valid — none of its edges were removed and its distances are
unchanged to the bit — but on ties it may differ from the tree a cold
scipy run would pick (tie-breaking follows CSR layout).  Consumers that
reconstruct paths therefore get *a* canonical shortest path, with
``dist[s, pred[s, v]] + w == dist[s, v]`` holding exactly; consumers of
distances (every cost in the paper) see bits indistinguishable from a
cold rebuild.  The :mod:`repro.verify.incremental` campaign family and
the hypothesis suite assert both properties after every step.

When a delta dirties more than ``rebuild_threshold`` of the rows, the
fix-up degenerates and a single full solve is cheaper — the fallback the
issue calls the *dirty-fraction rebuild*.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.errors import GraphError
from repro.graphs.adjacency import CostGraph
from repro.graphs.apsp import edges_to_csr, solve_csr
from repro.runtime.instrument import count
from repro.utils.timing import Timer

__all__ = ["DynamicAPSP", "pairs_for_failures"]

#: default dirty-row fraction beyond which a full rebuild is cheaper
DEFAULT_REBUILD_THRESHOLD = 0.5


def _canonical_pairs(pairs: Iterable) -> frozenset[tuple[int, int]]:
    out = set()
    for u, v in pairs:
        u, v = int(u), int(v)
        out.add((u, v) if u < v else (v, u))
    return frozenset(out)


def pairs_for_failures(
    graph: CostGraph,
    *,
    failed_nodes: Iterable[int] = (),
    failed_links: Iterable[tuple[int, int]] = (),
) -> frozenset[tuple[int, int]]:
    """The edge pairs a fault state removes from ``graph``.

    A failed node takes every incident edge down; failed links name
    ``(u, v)`` pairs directly.  Links absent from the graph are ignored
    (matching :func:`~repro.faults.degrade.degrade`'s kept-edge filter).
    """
    dead = {int(x) for x in failed_nodes}
    links = _canonical_pairs(failed_links)
    return frozenset(
        (u, v)
        for u, v, _w in graph.edges
        if u in dead or v in dead or (u, v) in links
    )


class DynamicAPSP:
    """APSP tables for one base graph, maintained under edge deltas.

    The instance anchors on a healthy :class:`CostGraph` and tracks a
    *removed pair set*; :meth:`update_to` transitions to any target set
    by computing the fail/repair delta from the current one and fixing
    up only the affected source rows (see the module docstring for the
    soundness argument).  Tables for the current state are read through
    :meth:`snapshot`.

    Parameters
    ----------
    graph:
        The healthy base graph.  Its cached tables seed the initial
        state, so construction costs nothing when the graph's APSP has
        already been computed.
    rebuild_threshold:
        Dirty-row fraction in ``(0, 1]`` beyond which the update runs
        one full solve instead of per-row fix-ups.
    """

    def __init__(
        self, graph: CostGraph, *, rebuild_threshold: float = DEFAULT_REBUILD_THRESHOLD
    ) -> None:
        if not (0.0 < rebuild_threshold <= 1.0):
            raise GraphError(
                f"rebuild_threshold must be in (0, 1], got {rebuild_threshold!r}"
            )
        self.graph = graph
        self.rebuild_threshold = float(rebuild_threshold)
        self._n = graph.num_nodes
        self._base_edges = graph.edges
        self._base_pairs = frozenset((u, v) for u, v, _w in graph.edges)
        self._removed: frozenset[tuple[int, int]] = frozenset()
        dist, pred = graph.apsp()
        self._dist = np.array(dist, dtype=np.float64)
        self._pred = np.array(pred)
        #: per-instance effort accounting (process-wide counters also fire)
        self.stats = {
            "updates": 0,
            "noop_updates": 0,
            "rows_recomputed": 0,
            "full_rebuilds": 0,
            "leaf_patches": 0,
        }

    # -- state ---------------------------------------------------------------

    @property
    def removed_pairs(self) -> frozenset[tuple[int, int]]:
        """The edge pairs currently failed (canonical ``u < v`` order)."""
        return self._removed

    def snapshot(self) -> tuple[np.ndarray, np.ndarray]:
        """Read-only copies of the current ``(dist, pred)`` tables.

        Copies, not views: the internal tables mutate on the next
        :meth:`update_to`, while a snapshot seeded into a degraded
        graph's cache must stay frozen with that view.
        """
        dist = self._dist.copy()
        pred = self._pred.copy()
        dist.setflags(write=False)
        pred.setflags(write=False)
        return dist, pred

    # -- deltas --------------------------------------------------------------

    def update_for_failures(
        self,
        *,
        failed_nodes: Iterable[int] = (),
        failed_links: Iterable[tuple[int, int]] = (),
    ) -> None:
        """Transition to the state where exactly these failures are in force."""
        self.update_to(
            pairs_for_failures(
                self.graph, failed_nodes=failed_nodes, failed_links=failed_links
            )
        )

    def update_to(self, removed_pairs: Iterable[tuple[int, int]]) -> None:
        """Apply the delta from the current removed set to ``removed_pairs``.

        The target names *absolute* state (every pair that should be
        down), not a relative delta — transitioning A→B→A restores the
        healthy tables exactly.
        """
        target = _canonical_pairs(removed_pairs)
        unknown = target - self._base_pairs
        if unknown:
            raise GraphError(
                f"cannot remove edges absent from the base graph: "
                f"{sorted(unknown)[:5]}"
            )
        if target == self._removed:
            self.stats["noop_updates"] += 1
            return
        remove = target - self._removed
        restore = self._removed - target
        self._apply(remove, restore, target)

    def _degrees(self, removed: frozenset[tuple[int, int]]) -> np.ndarray:
        """Edge-triple degree of every node on the surviving edge set."""
        deg = np.zeros(self._n, dtype=np.int64)
        for u, v, _w in self._base_edges:
            if (u, v) not in removed:
                deg[u] += 1
                deg[v] += 1
        return deg

    def _apply(
        self,
        remove: frozenset[tuple[int, int]],
        restore: frozenset[tuple[int, int]],
        target: frozenset[tuple[int, int]],
    ) -> None:
        n = self._n
        count("apsp_incremental_updates")
        self.stats["updates"] += 1
        with Timer.timed("apsp_incremental"):
            dist, pred = self._dist, self._pred
            sentinel = int(pred[0, 0])  # scipy's self/unreachable marker
            deg_prev = self._degrees(self._removed)
            deg_target = self._degrees(target)

            # Dying-node and leaf fast paths.  A node x whose *every*
            # surviving edge this update removes (``deg_target[x] == 0``)
            # only ever changes its own column and row — both become inf
            # — so those are written directly instead of screened.  Rows
            # that routed *through* x to a surviving node z are still
            # caught: the removed edge {x, z} flags ``pred[s, z] == x``
            # on z's (surviving) side; inductively, any broken tree path
            # crosses such an edge before its first surviving node.  The
            # mirror *attach* patch handles an isolated node v gaining
            # its single edge {v, u}: a leaf is never an intermediate,
            # so for every unaffected row the cold result is the
            # one-addition patch ``dist[s, v] = dist[s, u] + w`` (the
            # unique final hop), bit-identical by construction.  Host
            # access links — the majority of edges on every fabric here
            # — always hit these paths, which keeps host churn and the
            # orphaned hosts of a switch failure from degrading every
            # update to a full rebuild.
            detach = sorted(
                {x for pair in remove for x in pair if deg_target[x] == 0}
            )
            attach: list[tuple[int, int]] = []
            screen_restore: list[tuple[int, int]] = []
            for u, v in restore:
                if deg_target[v] == 1 and deg_prev[v] == 0 and deg_target[u] > 1:
                    attach.append((v, u))
                elif deg_target[u] == 1 and deg_prev[u] == 0 and deg_target[v] > 1:
                    attach.append((u, v))
                else:
                    screen_restore.append((u, v))

            affected = np.zeros(n, dtype=bool)
            # a removal touches row s iff s's tree routes through the edge
            # into a *surviving* endpoint (dead endpoints are column writes)
            for u, v in remove:
                if deg_target[u] > 0:
                    affected |= pred[:, u] == v
                if deg_target[v] > 0:
                    affected |= pred[:, v] == u
            # the new CSR is needed for the fix-up anyway; building it first
            # also yields the exact effective weights scipy will see for the
            # restore screening (duplicate entries sum on CSR conversion)
            kept = [e for e in self._base_edges if (e[0], e[1]) not in target]
            sparse = edges_to_csr(n, kept, self.graph.weights)
            for u, v in screen_restore:
                w = float(sparse[u, v])
                affected |= (dist[:, u] + w < dist[:, v]) | (
                    dist[:, v] + w < dist[:, u]
                )
            # an attached leaf's own row needs a real single-source solve;
            # a dying node's row is an all-inf write, never a solve
            for v, _u in attach:
                affected[v] = True
            for x in detach:
                affected[x] = False
            rows = np.flatnonzero(affected)
            if rows.size > self.rebuild_threshold * n:
                # dirty fraction too high: one full solve beats n fix-ups
                self.stats["full_rebuilds"] += 1
                count("apsp_full_rebuilds")
                full_dist, full_pred = solve_csr(sparse)
                self._dist = np.asarray(full_dist, dtype=np.float64)
                self._pred = np.asarray(full_pred)
                self._removed = target
                return
            if rows.size:
                self.stats["rows_recomputed"] += int(rows.size)
                count("apsp_rows_recomputed", int(rows.size))
                sub_dist, sub_pred = solve_csr(sparse, indices=rows)
                dist[rows, :] = sub_dist
                pred[rows, :] = sub_pred
            # column patches for untouched rows (Dijkstra'd rows are
            # already exact); detach writes run last so they clobber any
            # stale values in rows about to become all-inf
            others = ~affected
            for v, u in attach:
                self.stats["leaf_patches"] += 1
                w = float(sparse[u, v])
                reach = others & np.isfinite(dist[:, u])
                dist[reach, v] = dist[reach, u] + w
                pred[reach, v] = u
                lost = others & ~reach
                dist[lost, v] = np.inf
                pred[lost, v] = sentinel
            for x in detach:
                self.stats["leaf_patches"] += 1
                dist[:, x] = np.inf
                pred[:, x] = sentinel
                dist[x, :] = np.inf
                pred[x, :] = sentinel
                dist[x, x] = 0.0
            self._removed = target

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"DynamicAPSP(n={self._n}, removed={len(self._removed)}, "
            f"updates={self.stats['updates']})"
        )
