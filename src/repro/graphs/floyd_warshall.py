"""Vectorized Floyd–Warshall: an independent all-pairs backend.

:class:`~repro.graphs.adjacency.CostGraph` computes its cached distance
matrix with scipy's Dijkstra; this module provides a second, numpy-only
implementation used to cross-check it in tests and as a fallback where
scipy's csgraph is unavailable.  The inner relaxation is a broadcasted
min-plus update (one ``(n, n)`` matrix op per pivot), following the
"vectorize the hot loop" guidance the project's HPC notes prescribe.
"""

from __future__ import annotations

import numpy as np

from repro.errors import GraphError
from repro.graphs.adjacency import CostGraph

__all__ = ["floyd_warshall", "floyd_warshall_matrix"]


def floyd_warshall_matrix(weights: np.ndarray) -> np.ndarray:
    """All-pairs shortest paths of an adjacency-weight matrix.

    ``weights[u, v]`` is the direct edge weight (``inf`` when absent,
    0 on the diagonal).  Returns a new matrix; the input is not modified.
    Negative cycles are rejected (the library's graphs have positive
    weights, so hitting this is a caller bug).
    """
    weights = np.asarray(weights, dtype=np.float64)
    if weights.ndim != 2 or weights.shape[0] != weights.shape[1]:
        raise GraphError(f"weight matrix must be square, got shape {weights.shape}")
    dist = weights.copy()
    n = dist.shape[0]
    for pivot in range(n):
        # d[u, v] <- min(d[u, v], d[u, pivot] + d[pivot, v]), broadcasted
        via = dist[:, pivot][:, None] + dist[pivot, :][None, :]
        np.minimum(dist, via, out=dist)
    if np.any(np.diagonal(dist) < 0):
        raise GraphError("negative cycle detected")
    return dist


def floyd_warshall(graph: CostGraph) -> np.ndarray:
    """All-pairs shortest paths of a :class:`CostGraph` via Floyd–Warshall."""
    return floyd_warshall_matrix(graph.weights)
