"""Graph substrate: weighted undirected graphs, shortest paths, metric closure.

This package is the foundation of the PPDC model in Section III of the
paper: topologies are :class:`CostGraph` instances, the topology-aware cost
``c(u, v)`` is the all-pairs shortest-path matrix, and the DP algorithms
operate on the metric closure (complete graph) derived from it.
"""

from repro.graphs.adjacency import CostGraph, GraphBuilder
from repro.graphs.apsp import APSP_METHODS, apsp
from repro.graphs.incremental import DynamicAPSP, pairs_for_failures
from repro.graphs.metric_closure import metric_closure, restrict_closure
from repro.graphs.paths import (
    count_distinct_intermediates,
    is_walk,
    walk_cost,
)
from repro.graphs.shortest_paths import (
    all_pairs_shortest_paths,
    bfs_distances,
    dijkstra,
    reconstruct_path,
)

__all__ = [
    "CostGraph",
    "GraphBuilder",
    "APSP_METHODS",
    "apsp",
    "DynamicAPSP",
    "pairs_for_failures",
    "metric_closure",
    "restrict_closure",
    "all_pairs_shortest_paths",
    "bfs_distances",
    "dijkstra",
    "reconstruct_path",
    "is_walk",
    "walk_cost",
    "count_distinct_intermediates",
]
