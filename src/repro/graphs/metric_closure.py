"""Metric closure: the complete graph ``G''`` of Algorithm 2.

The paper's DP (Algo. 2) deliberately runs on the *complete* graph whose
edge ``(u, v)`` costs the shortest-path distance ``c(u, v)`` in the PPDC —
Example 2 shows the DP is suboptimal on the raw graph.  The closure always
satisfies the triangle inequality, which several proofs in the paper rely
on; :func:`metric_closure` asserts it as a numerical sanity check.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

import numpy as np

from repro.errors import GraphError

if TYPE_CHECKING:  # pragma: no cover
    from repro.graphs.adjacency import CostGraph

__all__ = ["metric_closure", "restrict_closure", "satisfies_triangle_inequality"]


def metric_closure(graph: "CostGraph", nodes: Sequence[int] | None = None) -> np.ndarray:
    """Complete-graph cost matrix over ``nodes`` (default: all nodes).

    Entry ``[i, j]`` is the shortest-path cost between ``nodes[i]`` and
    ``nodes[j]`` in ``graph``.  Raises :class:`GraphError` if any selected
    pair is disconnected — a stroll through a disconnected terminal set is
    meaningless.
    """
    dist = graph.distances
    if nodes is None:
        closure = np.array(dist, dtype=np.float64, copy=True)
    else:
        idx = np.asarray(nodes, dtype=np.int64)
        if idx.ndim != 1:
            raise GraphError(f"nodes must be 1-D, got shape {idx.shape}")
        if idx.size and (idx.min() < 0 or idx.max() >= graph.num_nodes):
            raise GraphError("nodes contains out-of-range indices")
        if len(set(idx.tolist())) != idx.size:
            raise GraphError("nodes contains duplicates")
        closure = dist[np.ix_(idx, idx)].copy()
    if not np.all(np.isfinite(closure)):
        raise GraphError("metric closure over disconnected node set")
    return closure


def restrict_closure(closure: np.ndarray, keep: Sequence[int]) -> np.ndarray:
    """Sub-closure over positions ``keep`` of an existing closure matrix."""
    idx = np.asarray(keep, dtype=np.int64)
    return closure[np.ix_(idx, idx)].copy()


def satisfies_triangle_inequality(matrix: np.ndarray, atol: float = 1e-9) -> bool:
    """Check ``d[i,k] <= d[i,j] + d[j,k]`` for all triples (vectorized).

    Used by property-based tests; ``O(n^3)`` memory-light loop over the
    middle index.
    """
    matrix = np.asarray(matrix, dtype=np.float64)
    if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
        raise GraphError(f"matrix must be square, got shape {matrix.shape}")
    n = matrix.shape[0]
    for j in range(n):
        # d[i,k] <= d[i,j] + d[j,k] for all i, k at once
        via_j = matrix[:, j][:, None] + matrix[j, :][None, :]
        if np.any(matrix > via_j + atol):
            return False
    return True
