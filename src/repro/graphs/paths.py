"""Walk/stroll validation helpers.

The n-stroll problem (Section IV) works with *walks* — node sequences that
may revisit nodes and edges.  These helpers validate walks against a graph
or a closure matrix, price them, and count the distinct intermediate nodes
a stroll visits (the quantity the DP grows until it reaches ``n``).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

import numpy as np

from repro.errors import GraphError

if TYPE_CHECKING:  # pragma: no cover
    from repro.graphs.adjacency import CostGraph

__all__ = [
    "is_walk",
    "walk_cost",
    "closure_walk_cost",
    "count_distinct_intermediates",
    "has_immediate_backtrack",
]


def is_walk(graph: "CostGraph", nodes: Sequence[int]) -> bool:
    """True iff consecutive nodes in the sequence are adjacent in ``graph``."""
    if len(nodes) == 0:
        return False
    if len(nodes) == 1:
        return 0 <= nodes[0] < graph.num_nodes
    return all(graph.has_edge(u, v) for u, v in zip(nodes, nodes[1:]))


def walk_cost(graph: "CostGraph", nodes: Sequence[int]) -> float:
    """Sum of edge weights along a walk; raises if it is not a walk."""
    if not is_walk(graph, nodes):
        raise GraphError(f"sequence {list(nodes)} is not a walk in the graph")
    return float(sum(graph.edge_weight(u, v) for u, v in zip(nodes, nodes[1:])))


def closure_walk_cost(closure: np.ndarray, nodes: Sequence[int]) -> float:
    """Walk cost on a metric-closure matrix (every hop is a closure edge)."""
    seq = np.asarray(nodes, dtype=np.int64)
    if seq.ndim != 1 or seq.size == 0:
        raise GraphError("walk must be a non-empty 1-D node sequence")
    if seq.size == 1:
        return 0.0
    return float(closure[seq[:-1], seq[1:]].sum())


def count_distinct_intermediates(nodes: Sequence[int], endpoints: Sequence[int]) -> int:
    """Number of distinct nodes in a walk, excluding ``endpoints``.

    This is the "at least n distinct switches" count of the n-stroll: the
    source and destination hosts never count, no matter how often the walk
    passes through them.
    """
    if len(nodes) == 0:
        raise GraphError("walk must be non-empty")
    excluded = set(endpoints)
    return len({node for node in nodes if node not in excluded})


def has_immediate_backtrack(nodes: Sequence[int]) -> bool:
    """True iff the walk contains an ``a → b → a`` sub-sequence.

    Algorithm 2 (line 6) forbids these because they burn two closure edges
    without visiting a new node; the vectorized DP replicates the rule and
    tests use this predicate to verify it.
    """
    return any(a == c for a, c in zip(nodes, nodes[2:]))
