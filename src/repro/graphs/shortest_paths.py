"""Shortest-path primitives: Dijkstra, BFS and all-pairs computation.

:class:`repro.graphs.CostGraph` uses the scipy ``csgraph`` backend for its
cached all-pairs matrix; this module provides stand-alone, pure-Python
reference implementations.  The references exist for two reasons: they are
the ground truth the vectorized code is tested against, and they document
the algorithms without scipy's indirection (per the project's
"make it work, then make it fast" convention).
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import TYPE_CHECKING

import numpy as np

from repro.errors import GraphError

if TYPE_CHECKING:  # pragma: no cover
    from repro.graphs.adjacency import CostGraph

__all__ = ["dijkstra", "bfs_distances", "all_pairs_shortest_paths", "reconstruct_path"]


def dijkstra(graph: "CostGraph", source: int) -> tuple[np.ndarray, np.ndarray]:
    """Single-source Dijkstra.

    Returns ``(dist, pred)`` where ``dist[v]`` is the shortest-path cost
    from ``source`` and ``pred[v]`` the predecessor of ``v`` on one such
    path (``-1`` for the source and unreachable nodes).
    """
    n = graph.num_nodes
    if not (0 <= source < n):
        raise GraphError(f"source {source} out of range for {n} nodes")
    dist = np.full(n, np.inf)
    pred = np.full(n, -1, dtype=np.int64)
    dist[source] = 0.0
    weights = graph.weights
    visited = np.zeros(n, dtype=bool)
    heap: list[tuple[float, int]] = [(0.0, source)]
    while heap:
        d, u = heapq.heappop(heap)
        if visited[u]:
            continue
        visited[u] = True
        for v in graph.neighbors(u):
            nd = d + weights[u, v]
            if nd < dist[v]:
                dist[v] = nd
                pred[v] = u
                heapq.heappush(heap, (nd, int(v)))
    return dist, pred


def bfs_distances(graph: "CostGraph", source: int) -> tuple[np.ndarray, np.ndarray]:
    """Single-source BFS hop counts (for unweighted / unit-weight graphs).

    Returns ``(dist, pred)`` like :func:`dijkstra`, with ``dist`` counting
    edges.  Edge weights are ignored.
    """
    n = graph.num_nodes
    if not (0 <= source < n):
        raise GraphError(f"source {source} out of range for {n} nodes")
    dist = np.full(n, np.inf)
    pred = np.full(n, -1, dtype=np.int64)
    dist[source] = 0.0
    queue: deque[int] = deque([source])
    while queue:
        u = queue.popleft()
        for v in graph.neighbors(u):
            if not np.isfinite(dist[v]):
                dist[v] = dist[u] + 1.0
                pred[v] = u
                queue.append(int(v))
    return dist, pred


def all_pairs_shortest_paths(graph: "CostGraph") -> np.ndarray:
    """All-pairs shortest-path matrix via repeated reference Dijkstra.

    This is the ``O(n · m log n)`` reference used to validate the cached
    scipy-backed :attr:`CostGraph.distances`; production code should use
    the cached property instead.
    """
    n = graph.num_nodes
    out = np.empty((n, n))
    for source in range(n):
        out[source], _ = dijkstra(graph, source)
    return out


def reconstruct_path(pred: np.ndarray, source: int, target: int) -> list[int]:
    """Rebuild the node sequence from a predecessor array.

    ``pred`` must come from a single-source run rooted at ``source``.
    """
    if source == target:
        return [source]
    if pred[target] < 0:
        raise GraphError(f"node {target} is unreachable from node {source}")
    path = [target]
    node = target
    while node != source:
        node = int(pred[node])
        if node < 0 or len(path) > len(pred):
            raise GraphError("predecessor array is inconsistent")
        path.append(node)
    path.reverse()
    return path
