"""Solver sessions: one topology, many queries, artifacts computed once.

Theorem 1 reduces TOP to an (n−2)-stroll over the metric closure of the
switch set — so the expensive structure (APSP tables, stroll-cost
matrices, candidate sets) is a property of the *topology*, not of any
single query.  :class:`SolverSession` binds that structure to one
:class:`~repro.topology.base.Topology` and answers many placement and
migration queries against it:

>>> session = SolverSession(topology)
>>> result = session.place(flows, sfc=3)                    # Algorithm 3
>>> results = session.place_many([flows_h1, flows_h2], 3)   # batched
>>> step = session.migrate(result.placement, flows_h2, mu=0.5)

Every query routes through the same solver functions as the per-call API
(``dp_placement`` & co.) with the session's :class:`ComputeCache`
threaded in, so results are bit-identical to cold calls — the session
only changes *when* artifacts get computed (eagerly, once), never what
is computed.

``place_many`` additionally offers a one-matmul path for the attraction
terms ``a_in = Σ_i λ_i · c(s(v_i), ·)``: flow sets sharing endpoints
stack their rate vectors into one ``R @ D`` product.  BLAS dgemm kernels
are *not* guaranteed to produce bitwise-identical rows to the dgemv the
single-query path uses, so the matmul path is gated behind a runtime
probe (:func:`_matmul_rows_bitwise`) and falls back to mapping single
queries over the shared cache — same asymptotic win, guaranteed
bit-identity.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.baselines.greedy_liu import greedy_liu_placement
from repro.baselines.mcf_migration import mcf_vm_migration
from repro.baselines.plan import plan_vm_migration
from repro.baselines.random_placement import random_placement
from repro.baselines.steering import steering_placement
from repro.constraints import Constraints, active_constraints
from repro.core.migration import mpareto_migration, no_migration
from repro.core.optimal import optimal_migration, optimal_placement
from repro.core.placement import (
    _stroll_engine,
    _stroll_matrix,
    chain_size,
    dp_placement,
    dp_placement_top1,
)
from repro.core.primal_dual import primal_dual_placement_top1
from repro.core.types import PlacementResult
from repro.errors import (
    BudgetExceededError,
    InfeasibleError,
    PlacementError,
    ReproError,
)
from repro.faults.degrade import ConnectivityAudit, degrade
from repro.faults.process import FaultEvent, FaultState
from repro.graphs.incremental import DynamicAPSP
from repro.runtime.cache import ComputeCache, get_compute_cache
from repro.runtime.instrument import count
from repro.solvers.msg_stage_graph import (
    msg_greedy_migration,
    msg_greedy_placement,
    msg_migration,
    msg_placement,
)
from repro.topology.base import Topology
from repro.workload.flows import FlowSet
from repro.workload.sfc import SFC

__all__ = ["SolverSession"]

#: memoized result of the dgemm-rows-vs-dgemv bitwise probe
_MATMUL_BITWISE: bool | None = None


def _matmul_rows_bitwise() -> bool:
    """True iff ``(R @ D)[k]`` is bitwise equal to ``R[k] @ D`` here.

    BLAS implementations are free to (and commonly do) use different
    kernels, blockings and accumulation orders for matrix-matrix and
    matrix-vector products, so the stacked attraction product is only
    usable where this probe passes — bit-identity to the per-call path is
    a hard contract of the session API.
    """
    global _MATMUL_BITWISE
    if _MATMUL_BITWISE is None:
        rng = np.random.default_rng(12345)
        ok = True
        for rows, inner, cols in ((3, 40, 37), (5, 96, 80)):
            r = rng.standard_normal((rows, inner))
            d = rng.standard_normal((inner, cols))
            product = r @ d
            if any(not np.array_equal(product[k], r[k] @ d) for k in range(rows)):
                ok = False
                break
        _MATMUL_BITWISE = ok
    return _MATMUL_BITWISE


class SolverSession:
    """Amortized query interface for one topology (see module docstring).

    Parameters
    ----------
    topology:
        The PPDC every query runs against.
    cache:
        The :class:`ComputeCache` holding the session's artifacts;
        defaults to the process-global cache, which is what makes
        session answers bit-identical to warm per-call answers.
    mode / extra_edge_slack:
        Session-wide defaults for Algorithm 3's stroll DP (overridable
        per query).
    """

    def __init__(
        self,
        topology: Topology,
        *,
        cache: ComputeCache | None = None,
        mode: str = "second-best",
        extra_edge_slack: int = 16,
    ) -> None:
        self.topology = topology
        self.cache = cache if cache is not None else get_compute_cache()
        self.mode = mode
        self.extra_edge_slack = extra_edge_slack
        #: per-session dependency epochs: which inputs have moved, and how
        #: often — ``apply`` bumps "topology", ``advance`` bumps "rates"
        self.epochs: dict[str, int] = {"topology": 0, "rates": 0}
        #: memoized fault views: FaultState -> (topology, audit, session)
        self._views: dict[FaultState, tuple] = {}
        #: lazily-created delta-maintained APSP over the base graph
        self._dynamic: DynamicAPSP | None = None
        #: last state handed to :meth:`apply` (events fold over this)
        self._applied_state = FaultState()
        #: memoized content fingerprint of the bound topology
        self._fingerprint: str | None = None
        count("sessions_created")
        # the APSP tables underlie every query; pay for them now, once
        topology.graph.distances

    # -- per-topology artifacts ----------------------------------------------

    @property
    def fingerprint(self) -> str:
        """Content fingerprint of the bound topology (sha256 hex).

        The serve layer keys its session pool by this — two topologies
        that pickle to the same canonical bytes share one pooled session.
        Computed once per session (the pickle round-trip is not free).
        """
        if self._fingerprint is None:
            from repro.runtime.shm import content_fingerprint

            self._fingerprint = content_fingerprint(self.topology)
        return self._fingerprint

    @property
    def applied_state(self) -> FaultState:
        """The last :class:`FaultState` handed to :meth:`apply`.

        Event deltas fold over this; a quarantined session's replacement
        replays it so the rebuilt view matches the one that was lost.
        """
        return self._applied_state

    @property
    def distances(self) -> np.ndarray:
        """The APSP cost matrix ``c(u, v)`` (read-only)."""
        return self.topology.graph.distances

    @property
    def edge_switches(self) -> np.ndarray:
        """Distinct top-of-rack switches, cached per session topology."""
        return self.cache.get_or_compute(
            self.topology,
            ("session", "edge_switches"),
            lambda: np.unique(self.topology.host_edge_switch),
        )

    @property
    def host_edge_map(self) -> dict:
        """host node -> its edge (top-of-rack) switch, cached."""
        return self.cache.get_or_compute(
            self.topology,
            ("session", "host_edge_map"),
            lambda: {
                int(h): int(s)
                for h, s in zip(self.topology.hosts, self.topology.host_edge_switch)
            },
        )

    def warm(self, sfc: SFC | int, *, candidate_switches=None) -> "SolverSession":
        """Precompute the stroll matrix for one chain length; returns self."""
        n = chain_size(sfc)
        interior = n - 2
        if interior >= 1:
            if candidate_switches is None:
                sw = self.topology.switches
            else:
                sw = np.asarray(
                    sorted(set(int(c) for c in candidate_switches)), dtype=np.int64
                )
            max_edges = interior + 1 + self.extra_edge_slack
            _stroll_matrix(
                self.topology, sw, interior, self.mode, max_edges, cache=self.cache
            )
        return self

    # -- incremental updates --------------------------------------------------

    def advance(self, rates=None) -> "SolverSession":
        """Register a pure rate tick; invalidates **nothing**.

        Every artifact this session caches — APSP tables, stroll
        matrices, candidate sets — is rate-independent (rates enter the
        score as the scalar ``Λ`` and the attraction products, computed
        per query).  ``advance`` therefore only bumps the ``rates`` epoch
        for observability; the next query reuses every artifact, which
        is exactly the fig11 hourly loop's cost profile.  Returns self.
        """
        self.epochs["rates"] += 1
        count("session_rate_ticks")
        return self

    def apply(
        self, state_or_events: FaultState | Iterable[FaultEvent]
    ) -> tuple[Topology, ConnectivityAudit | None, "SolverSession"]:
        """Project a fault state onto this session.

        Accepts either an absolute :class:`FaultState` or an iterable of
        :class:`FaultEvent` deltas (folded over the last applied state).
        Returns ``(topology, audit, session)``: the healthy state maps to
        ``(self.topology, None, self)``; a degraded state yields a
        degraded view whose APSP tables are **seeded** from this
        session's delta-maintained :class:`DynamicAPSP` — bit-identical
        to a cold recompute (the DynamicAPSP contract) but paying only
        the affected-row fix-up — plus a child session sharing this
        session's cache, so content-identical stroll artifacts are
        adopted rather than rebuilt.  Views are memoized per state: a
        fault episode that revisits a state (fail → repair → fail again)
        pays nothing the second time.
        """
        state = self._coerce_state(state_or_events)
        self._applied_state = state
        view = self._views.get(state)
        if view is None:
            view = self._derive_view(state)
            self._views[state] = view
        return view

    def _coerce_state(
        self, state_or_events: FaultState | Iterable[FaultEvent]
    ) -> FaultState:
        if isinstance(state_or_events, FaultState):
            return state_or_events
        pools = {
            "switch": set(self._applied_state.failed_switches),
            "host": set(self._applied_state.failed_hosts),
            "link": set(self._applied_state.failed_links),
        }
        for event in state_or_events:
            if not isinstance(event, FaultEvent):
                raise ReproError(
                    "apply() expects a FaultState or FaultEvent iterable, "
                    f"got {type(event).__name__}"
                )
            try:
                pool = pools[event.kind]
            except KeyError:
                raise ReproError(f"unknown fault kind {event.kind!r}") from None
            if event.action == "fail":
                pool.add(event.target)
            elif event.action == "repair":
                pool.discard(event.target)
            else:
                raise ReproError(f"unknown fault action {event.action!r}")
        return FaultState(
            failed_switches=tuple(sorted(pools["switch"])),
            failed_hosts=tuple(sorted(pools["host"])),
            failed_links=tuple(sorted(pools["link"])),
        )

    def _derive_view(
        self, state: FaultState
    ) -> tuple[Topology, ConnectivityAudit | None, "SolverSession"]:
        if state.is_healthy:
            return (self.topology, None, self)
        self.epochs["topology"] += 1
        count("session_fault_views")
        if self._dynamic is None:
            self._dynamic = DynamicAPSP(self.topology.graph)
        self._dynamic.update_for_failures(
            failed_nodes=tuple(state.failed_switches) + tuple(state.failed_hosts),
            failed_links=state.failed_links,
        )
        degraded, audit = degrade(
            self.topology, state, apsp_seed=self._dynamic.snapshot()
        )
        child = SolverSession(
            degraded,
            cache=self.cache,
            mode=self.mode,
            extra_edge_slack=self.extra_edge_slack,
        )
        return (degraded, audit, child)

    # -- queries -------------------------------------------------------------

    _PLACERS: dict = {
        "dp": dp_placement,
        "top1": dp_placement_top1,
        "dp-stroll": dp_placement_top1,
        "primal-dual": primal_dual_placement_top1,
        "optimal": optimal_placement,
        "steering": steering_placement,
        "greedy": greedy_liu_placement,
        "random": random_placement,
        "msg": msg_placement,
        "msg-greedy": msg_greedy_placement,
    }

    _MIGRATORS: dict = {
        "mpareto": mpareto_migration,
        "optimal": optimal_migration,
        "none": no_migration,
        "no-migration": no_migration,
        "plan": plan_vm_migration,
        "mcf": mcf_vm_migration,
        "msg": msg_migration,
        "msg-greedy": msg_greedy_migration,
    }

    #: algorithms that understand the typed ``constraints=`` object; every
    #: other solver optimizes pure traffic cost and must not silently
    #: ignore a capacity or delay bound
    _CONSTRAINED_PLACERS = frozenset({"msg", "msg-greedy", "optimal"})
    _CONSTRAINED_MIGRATORS = frozenset({"msg", "msg-greedy", "optimal"})

    def place(
        self,
        flows: FlowSet,
        sfc: SFC | int,
        *,
        algo: str | None = None,
        constraints: Constraints | None = None,
        **options,
    ) -> PlacementResult:
        """Place ``sfc`` for ``flows`` with ``algo``, reusing session artifacts.

        ``algo`` is one of ``dp`` (Algorithm 3), ``top1``/``dp-stroll``
        (Algorithm 2 on one flow), ``primal-dual``, ``optimal``
        (Algorithm 4), ``msg``/``msg-greedy`` (the constrained
        stage-graph family), ``steering``, ``greedy`` or ``random``;
        extra keyword options go to the solver (e.g. ``budget=`` for
        ``optimal``, ``seed=`` for ``random``).  ``algo=None`` picks
        ``dp`` unconstrained and ``msg`` when ``constraints`` bind; an
        algorithm that cannot honor active constraints is refused rather
        than allowed to ignore them.
        """
        active = active_constraints(constraints)
        if algo is None:
            algo = "dp" if active is None else "msg"
        try:
            solver = self._PLACERS[algo]
        except KeyError:
            raise ReproError(
                f"unknown placement algo {algo!r}; "
                f"choose from {sorted(self._PLACERS)}"
            ) from None
        if active is not None:
            if algo not in self._CONSTRAINED_PLACERS:
                raise ReproError(
                    f"placement algo {algo!r} does not support constraints; "
                    f"choose from {sorted(self._CONSTRAINED_PLACERS)}"
                )
            options["constraints"] = active
        count("session_queries")
        options.setdefault("cache", self.cache)
        if algo == "dp":
            options.setdefault("mode", self.mode)
            options.setdefault("extra_edge_slack", self.extra_edge_slack)
        return solver(self.topology, flows, sfc, **options)

    def migrate(
        self,
        prev: np.ndarray,
        flows: FlowSet,
        *,
        mu: float,
        algo: str | None = None,
        constraints: Constraints | None = None,
        **options,
    ):
        """Migrate from placement ``prev`` under the new rates in ``flows``.

        ``algo`` is one of ``mpareto`` (Algorithm 5), ``optimal``
        (Algorithm 6), ``msg``/``msg-greedy`` (constrained), ``none``
        (stay put), or the VM baselines ``plan`` / ``mcf`` (which keep
        the VNF placement fixed and move VMs; for those ``mu`` is the
        per-VM coefficient).  ``algo=None`` picks ``mpareto``
        unconstrained and ``msg`` when ``constraints`` bind.
        """
        active = active_constraints(constraints)
        if algo is None:
            algo = "mpareto" if active is None else "msg"
        try:
            solver = self._MIGRATORS[algo]
        except KeyError:
            raise ReproError(
                f"unknown migration algo {algo!r}; "
                f"choose from {sorted(self._MIGRATORS)}"
            ) from None
        if active is not None:
            if algo not in self._CONSTRAINED_MIGRATORS:
                raise ReproError(
                    f"migration algo {algo!r} does not support constraints; "
                    f"choose from {sorted(self._CONSTRAINED_MIGRATORS)}"
                )
            options["constraints"] = active
        count("session_queries")
        options.setdefault("cache", self.cache)
        # all migrators share the lead signature (topology, flows, prev, mu)
        return solver(self.topology, flows, prev, mu, **options)

    def replication_step(
        self,
        replica_set,
        flows: FlowSet,
        *,
        mu: float,
        rho: float,
        sync_fraction: float,
        max_replicas: int,
        migrate_result=None,
        exact: bool = False,
        candidate_switches=None,
    ):
        """One keep/migrate/replicate/release decision against session artifacts.

        The lattice solvers live in :mod:`repro.core.replication`; this
        query routes them through the session's compute cache (same
        answers as the direct calls — bit-identical, like every other
        session query).  ``migrate_result`` is the hour's Algorithm 5
        answer when the caller already holds one (the
        ``tom-replication`` policy computes it via :meth:`migrate` so
        the replica-free path shares mPareto's exact artifacts);
        ``exact=True`` prices the full corridor lattice instead of the
        greedy menu.
        """
        from repro.core.replication import exact_replication_step, replication_step

        count("session_queries")
        if migrate_result is None and not exact:
            options = {}
            if candidate_switches is not None:
                options["candidate_switches"] = candidate_switches
            migrate_result = self.migrate(
                replica_set.primary, flows, mu=mu, **options
            )
        solver = exact_replication_step if exact else replication_step
        return solver(
            self.topology,
            flows,
            replica_set,
            mu,
            rho=rho,
            sync_fraction=sync_fraction,
            max_replicas=max_replicas,
            migrate_result=migrate_result,
            candidate_switches=candidate_switches,
            cache=self.cache,
        )

    #: graceful-degradation fallback chains for deadline-bounded solves;
    #: later entries are strictly cheaper (greedy and stay-put are O(l·|V_s|)
    #: one-shot scans that cannot time out in practice).  Constrained
    #: solves fall back inside the constrained family — a capacity or
    #: delay bound must never be dropped to meet a deadline, so the last
    #: resort is the beam-width-1 stage-graph sweep, not ``greedy``.
    _PLACE_FALLBACK = ("dp", "greedy")
    _MIGRATE_FALLBACK = ("mpareto", "none")
    _PLACE_FALLBACK_CONSTRAINED = ("msg", "msg-greedy")
    _MIGRATE_FALLBACK_CONSTRAINED = ("msg", "msg-greedy")

    def solve(
        self,
        flows: FlowSet,
        sfc: SFC | int,
        *,
        prev: np.ndarray | None = None,
        mu: float = 0.0,
        algo: str | None = None,
        deadline: float | None = None,
        constraints: Constraints | None = None,
        **options,
    ):
        """Unified facade: placement when ``prev is None``, else migration.

        ``deadline`` (seconds of wall clock for this solve) turns on
        graceful degradation: the requested algorithm runs first, and if
        it exceeds its search budget (:class:`BudgetExceededError`), times
        out, or the deadline is already spent, the facade walks a fallback
        chain of strictly cheaper solvers — ``optimal → dp → greedy`` for
        placements, ``optimal → mpareto → none`` for migrations — and
        returns the first stage that completes.  The result is flagged
        ``meta["degraded"] = True`` whenever it did not come from the
        requested algorithm; a timeout is *never* surfaced to the caller.
        The final chain stage always runs regardless of remaining budget,
        so ``solve`` with a deadline always returns a result.

        ``constraints`` (one typed :class:`~repro.constraints.Constraints`
        object) rides through to every stage; under a deadline the
        fallback chain becomes ``optimal → msg → msg-greedy``, staying
        inside the constraint-honoring family.  An
        :class:`~repro.errors.InfeasibleError` is an *answer*, not a
        timeout, and propagates from any stage.

        Without ``deadline`` the behaviour (and every result bit) is
        identical to the pre-deadline facade; ``Constraints.none()`` is
        indistinguishable from passing no constraints at all.
        """
        if deadline is None:
            if prev is None:
                return self.place(
                    flows, sfc, algo=algo, constraints=constraints, **options
                )
            return self.migrate(
                prev, flows, mu=mu, algo=algo, constraints=constraints, **options
            )
        return self._solve_with_deadline(
            flows, sfc, prev=prev, mu=mu, algo=algo, deadline=deadline,
            constraints=constraints, **options,
        )

    def _solve_with_deadline(
        self,
        flows: FlowSet,
        sfc: SFC | int,
        *,
        prev: np.ndarray | None,
        mu: float,
        algo: str | None,
        deadline: float,
        constraints: Constraints | None = None,
        **options,
    ):
        import builtins
        import time

        if not (deadline >= 0.0) or not np.isfinite(deadline):
            raise ReproError(
                f"deadline must be a non-negative number of seconds, got {deadline!r}"
            )
        active = active_constraints(constraints)
        if prev is None:
            default = "dp" if active is None else "msg"
            fallback = (
                self._PLACE_FALLBACK
                if active is None
                else self._PLACE_FALLBACK_CONSTRAINED
            )
        else:
            default = "mpareto" if active is None else "msg"
            fallback = (
                self._MIGRATE_FALLBACK
                if active is None
                else self._MIGRATE_FALLBACK_CONSTRAINED
            )
        requested = algo or default
        chain = [requested] + [stage for stage in fallback if stage != requested]
        start = time.perf_counter()
        attempts: list[dict] = []
        for position, stage in enumerate(chain):
            final = position == len(chain) - 1
            remaining = deadline - (time.perf_counter() - start)
            if not final and remaining <= 0.0:
                attempts.append({"algo": stage, "outcome": "skipped"})
                continue
            # solver-specific options (budget=, seed=, candidate_switches=,
            # ...) only make sense for the requested algorithm; fallback
            # stages run on their defaults with the session cache — and
            # the constraints, which are a property of the query, not of
            # any one solver
            if stage == requested:
                stage_options = dict(options)
            else:
                stage_options = {k: v for k, v in options.items() if k == "cache"}
            try:
                if prev is None:
                    result = self.place(
                        flows, sfc, algo=stage, constraints=constraints,
                        **stage_options,
                    )
                else:
                    result = self.migrate(
                        prev, flows, mu=mu, algo=stage, constraints=constraints,
                        **stage_options,
                    )
            except (BudgetExceededError, builtins.TimeoutError) as exc:
                if final:
                    raise  # unreachable with the built-in chains; see below
                attempts.append(
                    {"algo": stage, "outcome": f"failed:{type(exc).__name__}"}
                )
                continue
            attempts.append({"algo": stage, "outcome": "completed"})
            result.extra["degraded"] = stage != requested
            result.extra["deadline"] = {
                "budget": deadline,
                "requested": requested,
                "selected": stage,
                "attempts": attempts,
            }
            count("degraded_solves" if stage != requested else "deadline_solves")
            return result
        raise ReproError("deadline fallback chain exhausted")  # pragma: no cover

    # -- batching ------------------------------------------------------------

    def place_many(
        self,
        flowsets: Iterable[FlowSet],
        sfc: SFC | int,
        *,
        algo: str | None = None,
        batch: str = "auto",
        constraints: Constraints | None = None,
        **options,
    ) -> list[PlacementResult]:
        """Place one chain for many flow sets on the shared artifacts.

        ``batch="auto"`` takes the stacked-matmul attraction path only
        when this BLAS passes the bitwise probe (see module docstring);
        ``"map"`` forces per-set queries, ``"matmul"`` forces the stacked
        path (results then match the per-call path to rounding, not
        necessarily bitwise).  Results are in input order and — on the
        ``auto``/``map`` paths — bit-identical to ``[self.place(f, sfc)
        for f in flowsets]``.

        Active ``constraints`` route every set through the constrained
        family (``algo=None`` resolves to ``msg``), which means the map
        path — the matmul fast path is a ``dp``-only optimization and
        refuses to drop a bound silently.
        """
        flowsets = list(flowsets)
        active = active_constraints(constraints)
        if algo is None:
            algo = "dp" if active is None else "msg"
        if batch not in ("auto", "map", "matmul"):
            raise ReproError(f"unknown batch mode {batch!r}")
        if batch == "auto":
            batch = (
                "matmul"
                if algo == "dp" and active is None and _matmul_rows_bitwise()
                else "map"
            )
        if batch == "matmul" and algo == "dp":
            if active is not None:
                raise ReproError(
                    "the matmul batch path cannot honor constraints; "
                    "use batch='map' (or algo='msg')"
                )
            return self._place_many_matmul(flowsets, sfc, **options)
        return [
            self.place(f, sfc, algo=algo, constraints=constraints, **options)
            for f in flowsets
        ]

    def _place_many_matmul(
        self,
        flowsets: Sequence[FlowSet],
        sfc: SFC | int,
        *,
        extra_edge_slack: int | None = None,
        mode: str | None = None,
        candidate_switches=None,
        cache: ComputeCache | None = None,
    ) -> list[PlacementResult]:
        """Algorithm 3 over many flow sets with stacked attraction matmuls.

        Flow sets sharing endpoint arrays (the fig11 shape: the same VM
        pairs re-rated every hour) contribute rows of one
        ``R @ dist[endpoints, :]`` product; everything after the
        attraction terms — the cached stroll matrix, the score argmin,
        the winner-stroll reconstruction — is shared with the per-call
        path.  Small chains (n ≤ 2) and restricted candidate sets fall
        back to per-set queries.
        """
        n = chain_size(sfc)
        mode = self.mode if mode is None else mode
        slack = self.extra_edge_slack if extra_edge_slack is None else extra_edge_slack
        if n <= 2 or candidate_switches is not None:
            return [
                self.place(
                    f,
                    sfc,
                    algo="dp",
                    mode=mode,
                    extra_edge_slack=slack,
                    candidate_switches=candidate_switches,
                    cache=cache,
                )
                for f in flowsets
            ]
        topology = self.topology
        if n > topology.num_switches:
            raise InfeasibleError(
                f"SFC of {n} VNFs cannot be placed on {topology.num_switches} switches"
            )
        cache = cache if cache is not None else self.cache
        dist = topology.graph.distances
        sw = topology.switches
        interior = n - 2
        max_edges = interior + 1 + slack
        closure, b_cost, b_edges = _stroll_matrix(
            topology, sw, interior, mode, max_edges, cache=cache
        )

        # group flow sets by endpoint content; each group's attractions
        # are rows of one rates-matrix product over the shared gathers
        from repro.core.costs import AggregatedFlows

        if any(isinstance(f, AggregatedFlows) for f in flowsets):
            # pre-reduced populations carry no endpoint arrays to stack;
            # the per-set path prices them through their folded aggregates
            return [
                self.place(f, sfc, algo="dp", mode=mode, extra_edge_slack=slack)
                for f in flowsets
            ]

        groups: dict[tuple, list[int]] = {}
        for i, flows in enumerate(flowsets):
            flows.validate_against(topology)
            key = (flows.sources.tobytes(), flows.destinations.tobytes())
            groups.setdefault(key, []).append(i)

        results: list[PlacementResult | None] = [None] * len(flowsets)
        for members in groups.values():
            first = flowsets[members[0]]
            rates_matrix = np.stack([flowsets[i].rates for i in members])
            a_in_all = rates_matrix @ dist[first.sources, :]
            a_out_all = rates_matrix @ dist[first.destinations, :]
            for row, i in enumerate(members):
                count("session_queries")
                count("dp_solves")
                a_in_full = a_in_all[row]
                a_out_full = a_out_all[row]
                lam = float(flowsets[i].rates.sum())
                a_in = a_in_full[sw]
                a_out = a_out_full[sw]
                chain_term = np.full_like(b_cost, np.inf)
                finite = np.isfinite(b_cost)
                chain_term[finite] = lam * b_cost[finite]
                score = a_in[:, None] + chain_term + a_out[None, :]
                flat = int(np.argmin(score))
                s_pos, t_pos = divmod(flat, sw.size)
                if not np.isfinite(score[s_pos, t_pos]):
                    raise InfeasibleError("no feasible (ingress, egress) stroll found")
                engine = _stroll_engine(
                    topology, closure, sw, t_pos, mode, max_edges, cache=cache
                )
                stroll = engine.solve(s_pos, interior)
                distinct = stroll.distinct
                if distinct.size < interior:
                    raise PlacementError(
                        "winning stroll lost its distinct interior on reconstruction"
                    )
                positions = np.concatenate(([s_pos], distinct[:interior], [t_pos]))
                placement = sw[positions]
                chain = float(dist[placement[:-1], placement[1:]].sum())
                cost = float(
                    a_in_full[placement[0]] + lam * chain + a_out_full[placement[-1]]
                )
                results[i] = PlacementResult(
                    placement=placement,
                    cost=cost,
                    algorithm="dp",
                    extra={
                        "score": float(score[s_pos, t_pos]),
                        "stroll_edges": int(b_edges[s_pos, t_pos]),
                        "stroll_cost": float(b_cost[s_pos, t_pos]),
                        "batched": True,
                    },
                )
        return results  # type: ignore[return-value]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SolverSession({self.topology.name!r}, mode={self.mode!r})"
