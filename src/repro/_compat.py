"""Deprecation shims for the pre-session solver signatures.

The solver entry points (``dp_placement``, ``optimal_placement``, the
baselines, …) were unified behind one keyword-only calling convention::

    solver(topology, flows, sfc, *, seed=..., cache=..., budget=...)

Old call styles keep working for one release: trailing positional
arguments beyond the lead block, and the legacy parameter names
(``node_budget`` → ``budget``, ``rng`` → ``seed``), are remapped here and
emit exactly one :class:`DeprecationWarning` per call.  Internal code
never goes through this shim — CI runs the compat tests under
``-W error::DeprecationWarning`` to prove it.
"""

from __future__ import annotations

import functools
import inspect
import warnings
from typing import Callable, Mapping

__all__ = ["legacy_signature"]


def legacy_signature(
    *legacy_order: str, renames: Mapping[str, str] | None = None
) -> Callable:
    """Adapt legacy positional/keyword calls onto a keyword-only signature.

    Parameters
    ----------
    legacy_order:
        The *new* names of the formerly-positional parameters, in the
        order the old signature accepted them after the lead positional
        block.  A call passing extra positional arguments has them bound
        to these names.
    renames:
        Map of legacy keyword name -> new keyword name (e.g.
        ``{"node_budget": "budget"}``).

    The wrapped function must take its lead parameters as plain
    positional-or-keyword parameters and everything else keyword-only;
    the lead block's size is read off its signature.  Any legacy usage —
    extra positionals, renamed keywords, or both — triggers exactly one
    :class:`DeprecationWarning` per call and is then forwarded to the new
    signature unchanged, so legacy and new-style calls return identical
    results.
    """
    renames = dict(renames or {})

    def decorate(fn: Callable) -> Callable:
        parameters = inspect.signature(fn).parameters.values()
        lead = sum(1 for p in parameters if p.kind is p.POSITIONAL_OR_KEYWORD)

        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            legacy_used: list[str] = []
            if len(args) > lead:
                extra = args[lead:]
                if len(extra) > len(legacy_order):
                    raise TypeError(
                        f"{fn.__name__}() takes at most "
                        f"{lead + len(legacy_order)} positional arguments "
                        f"({lead + len(extra)} given)"
                    )
                for name, value in zip(legacy_order, extra):
                    if name in kwargs:
                        raise TypeError(
                            f"{fn.__name__}() got multiple values for argument {name!r}"
                        )
                    kwargs[name] = value
                    legacy_used.append(f"positional {name!r}")
                args = args[:lead]
            for old, new in renames.items():
                if old in kwargs:
                    if new in kwargs:
                        raise TypeError(
                            f"{fn.__name__}() got values for both {old!r} and {new!r}"
                        )
                    kwargs[new] = kwargs.pop(old)
                    legacy_used.append(f"{old!r} (now {new!r})")
            if legacy_used:
                warnings.warn(
                    f"{fn.__name__}(): legacy call style "
                    f"({', '.join(legacy_used)}) is deprecated; pass "
                    "parameters by their new keyword names "
                    "(see repro._compat)",
                    DeprecationWarning,
                    stacklevel=2,
                )
            return fn(*args, **kwargs)

        return wrapper

    return decorate
