"""Tombstones for the retired pre-session solver signatures.

The solver entry points (``dp_placement``, ``optimal_placement``, the
baselines, …) were unified behind one keyword-only calling convention::

    solver(topology, flows, sfc, *, seed=..., cache=..., budget=...)

For one release the old call styles — trailing positional arguments
beyond the lead block, and the legacy parameter names (``node_budget`` →
``budget``, ``rng`` → ``seed``) — were remapped here with a
:class:`DeprecationWarning`.  That release has shipped; the shims are
retired.  Legacy calls now raise :class:`TypeError` with a message that
names the keyword to use, so a stale call site fails loudly at the call,
not three frames deep inside a solver.  CI runs the suite under
``-W error::DeprecationWarning`` to prove no deprecation path remains.
"""

from __future__ import annotations

import functools
import inspect
from typing import Callable, Mapping

__all__ = ["legacy_signature"]


def legacy_signature(
    *legacy_order: str, renames: Mapping[str, str] | None = None
) -> Callable:
    """Reject legacy positional/keyword calls with a pointed ``TypeError``.

    Parameters
    ----------
    legacy_order:
        The *new* names of the formerly-positional parameters, in the
        order the old signature accepted them after the lead positional
        block — used to tell the caller which keyword each stray
        positional argument should become.
    renames:
        Map of retired keyword name -> current name (e.g.
        ``{"node_budget": "budget"}``).

    The wrapped function must take its lead parameters as plain
    positional-or-keyword parameters and everything else keyword-only;
    the lead block's size is read off its signature.  New-style calls
    pass through untouched (the wrapper adds no per-call remapping).
    """
    renames = dict(renames or {})

    def decorate(fn: Callable) -> Callable:
        parameters = inspect.signature(fn).parameters.values()
        lead = sum(1 for p in parameters if p.kind is p.POSITIONAL_OR_KEYWORD)

        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            if len(args) > lead:
                extra = args[lead:]
                hints = ", ".join(
                    f"{name}={value!r}"
                    for name, value in zip(legacy_order, extra)
                )
                hint = f" — pass {hints} by keyword" if hints else ""
                raise TypeError(
                    f"{fn.__name__}() takes {lead} positional arguments but "
                    f"{len(args)} were given; the pre-1.0 positional call "
                    f"style was removed{hint}"
                )
            for old, new in renames.items():
                if old in kwargs:
                    raise TypeError(
                        f"{fn.__name__}() got the retired keyword {old!r}; "
                        f"it was renamed to {new!r}"
                    )
            return fn(*args, **kwargs)

        return wrapper

    return decorate
