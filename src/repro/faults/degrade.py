"""Degraded topology views and the connectivity audit.

:func:`degrade` projects a :class:`~repro.faults.process.FaultState`
onto a topology: every edge incident to a failed switch/host and every
failed link is removed, while the node set is kept intact (failed nodes
become isolated, so placements, flow endpoints and APSP tables stay
index-compatible with the healthy fabric — the contract
``Topology.with_graph`` enforces).  The companion
:class:`ConnectivityAudit` is computed from the same kept-edge set and
answers the questions the fault-aware simulator asks every hour:

* which connected components the *live* nodes form, and whether the
  fabric is partitioned;
* the **surviving component** — the component with the most live
  switches (ties broken toward the component containing the smallest
  switch index) — which is where VNFs are evacuated to and the only
  region whose flows can still be served;
* which flows must be dropped this hour (either endpoint failed or
  stranded outside the surviving component).

The degraded graph's shortest paths report ``inf`` for pairs separated
by the failures (see ``graphs/shortest_paths`` and the disconnected-
graph tests); the audit is what turns those ``inf`` s into explicit
drop/evacuate decisions before any solver sees them.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

import numpy as np

from repro.faults.process import FaultState
from repro.graphs.adjacency import CostGraph
from repro.topology.base import Topology
from repro.workload.flows import FlowSet

__all__ = ["ConnectivityAudit", "degrade"]


@dataclass(frozen=True)
class ConnectivityAudit:
    """Connectivity facts about one degraded topology view.

    ``components`` lists the connected components of the *live* node set
    (failed nodes excluded), each an ascending tuple of node indices,
    ordered by (descending live-switch count, ascending smallest switch,
    ascending smallest node) — so ``components[0]`` is the surviving
    component whenever any live switch exists.
    """

    components: tuple[tuple[int, ...], ...]
    surviving_switches: np.ndarray
    surviving_hosts: np.ndarray
    failed_switches: np.ndarray
    failed_hosts: np.ndarray
    #: live but unreachable from the surviving component
    partitioned_switches: np.ndarray
    partitioned_hosts: np.ndarray

    def __post_init__(self) -> None:
        for name in (
            "surviving_switches",
            "surviving_hosts",
            "failed_switches",
            "failed_hosts",
            "partitioned_switches",
            "partitioned_hosts",
        ):
            arr = np.asarray(getattr(self, name), dtype=np.int64)
            arr.setflags(write=False)
            object.__setattr__(self, name, arr)

    @property
    def is_partitioned(self) -> bool:
        """True iff some live node is cut off from the surviving component."""
        return bool(self.partitioned_switches.size or self.partitioned_hosts.size)

    @property
    def num_live_switches(self) -> int:
        """Live switches reachable within the surviving component."""
        return int(self.surviving_switches.size)

    def dropped_flow_mask(self, flows: FlowSet) -> np.ndarray:
        """Boolean mask of flows that cannot be served this hour.

        A flow is dropped iff its source or destination host is failed
        or lies outside the surviving component — in either case no path
        to any surviving-component VNF exists on the degraded fabric.
        """
        alive = set(self.surviving_hosts.tolist())
        return np.asarray(
            [
                int(s) not in alive or int(d) not in alive
                for s, d in zip(flows.sources, flows.destinations)
            ],
            dtype=bool,
        )

    def to_dict(self) -> dict:
        return {
            "components": [list(c) for c in self.components],
            "surviving_switches": self.surviving_switches.tolist(),
            "surviving_hosts": self.surviving_hosts.tolist(),
            "failed_switches": self.failed_switches.tolist(),
            "failed_hosts": self.failed_hosts.tolist(),
            "partitioned_switches": self.partitioned_switches.tolist(),
            "partitioned_hosts": self.partitioned_hosts.tolist(),
            "is_partitioned": self.is_partitioned,
        }


def _live_components(
    num_nodes: int, dead: set[int], edges: list[tuple[int, int, float]]
) -> list[tuple[int, ...]]:
    """Connected components of the live nodes under the kept edges (BFS)."""
    adjacency: dict[int, list[int]] = {
        node: [] for node in range(num_nodes) if node not in dead
    }
    for u, v, _ in edges:
        adjacency[u].append(v)
        adjacency[v].append(u)
    seen: set[int] = set()
    components: list[tuple[int, ...]] = []
    for start in sorted(adjacency):
        if start in seen:
            continue
        queue = deque([start])
        seen.add(start)
        component = []
        while queue:
            node = queue.popleft()
            component.append(node)
            for nbr in adjacency[node]:
                if nbr not in seen:
                    seen.add(nbr)
                    queue.append(nbr)
        components.append(tuple(sorted(component)))
    return components


def degrade(
    topology: Topology,
    state: FaultState,
    *,
    apsp_seed: tuple[np.ndarray, np.ndarray] | None = None,
) -> tuple[Topology, ConnectivityAudit]:
    """Project ``state`` onto ``topology``: degraded view + audit.

    The returned topology has the same node set (failed nodes isolated)
    and carries ``meta["faults"] = state.to_dict()`` so downstream
    consumers (journals, reports) can see which view they priced against.
    It is built with ``allow_disconnected=True`` — a degraded view is the
    one legitimate producer of a disconnected switch layer, which
    ``Topology.__post_init__`` otherwise rejects.

    ``apsp_seed`` installs pre-maintained ``(dist, pred)`` tables on the
    degraded graph (see :meth:`CostGraph.seed_apsp`) — the incremental
    path hands over a :class:`~repro.graphs.incremental.DynamicAPSP`
    snapshot here so the view never pays a cold APSP recompute.
    """
    dead = set(state.failed_switches) | set(state.failed_hosts)
    failed_links = set(state.failed_links)
    kept = [
        (u, v, w)
        for u, v, w in topology.graph.edges
        if u not in dead and v not in dead and (u, v) not in failed_links
    ]
    graph = CostGraph(topology.graph.labels, kept)
    if apsp_seed is not None:
        graph.seed_apsp(*apsp_seed)
    degraded = topology.with_graph(
        graph,
        name=f"{topology.name}/degraded",
        allow_disconnected=True,
    )
    degraded.meta["faults"] = state.to_dict()

    switch_set = set(int(s) for s in topology.switches)
    components = _live_components(topology.graph.num_nodes, dead, kept)
    # surviving component: most live switches; ties toward the component
    # holding the smallest switch index, then the smallest node index
    components.sort(
        key=lambda c: (
            -sum(1 for node in c if node in switch_set),
            min((node for node in c if node in switch_set), default=np.inf),
            c[0],
        )
    )
    surviving = (
        set(components[0])
        if components and any(node in switch_set for node in components[0])
        else set()
    )
    live = [node for node in range(topology.graph.num_nodes) if node not in dead]
    audit = ConnectivityAudit(
        components=tuple(components),
        surviving_switches=np.asarray(
            sorted(node for node in surviving if node in switch_set), dtype=np.int64
        ),
        surviving_hosts=np.asarray(
            sorted(node for node in surviving if node not in switch_set),
            dtype=np.int64,
        ),
        failed_switches=np.asarray(sorted(state.failed_switches), dtype=np.int64),
        failed_hosts=np.asarray(sorted(state.failed_hosts), dtype=np.int64),
        partitioned_switches=np.asarray(
            sorted(
                node for node in live if node in switch_set and node not in surviving
            ),
            dtype=np.int64,
        ),
        partitioned_hosts=np.asarray(
            sorted(
                node
                for node in live
                if node not in switch_set and node not in surviving
            ),
            dtype=np.int64,
        ),
    )
    return degraded, audit
