"""repro.faults — fault injection, degraded views, and forced repair.

The survivability layer's three pieces, cheapest first:

1. :class:`FaultProcess` — a seeded, pre-drawn timeline of switch /
   host / link failure-and-repair events (same seed ⇒ byte-identical
   trace).
2. :func:`degrade` — the fault state projected onto a topology: same
   node set, edges incident to failures removed, plus a
   :class:`ConnectivityAudit` naming the surviving component, detected
   partitions and the flows that must be dropped.
3. :func:`evacuate` — the forced TOM repair moving VNFs off dead or
   stranded switches, priced on the healthy APSP (see
   :mod:`repro.faults.repair` for the cost convention).

The fault-aware day loop in :mod:`repro.sim.engine` wires the three
together; :mod:`repro.verify.faults` fuzzes them under seeded campaigns.
"""

from repro.faults.degrade import ConnectivityAudit, degrade
from repro.faults.process import FaultConfig, FaultEvent, FaultProcess, FaultState
from repro.faults.repair import RepairPlan, evacuate

__all__ = [
    "FaultConfig",
    "FaultEvent",
    "FaultProcess",
    "FaultState",
    "ConnectivityAudit",
    "degrade",
    "RepairPlan",
    "evacuate",
]
