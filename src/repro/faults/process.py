"""Seeded fault processes: timed failure-and-repair event streams.

A :class:`FaultProcess` turns a :class:`FaultConfig` into a deterministic
per-hour sequence of switch/host/link failures and repairs over one
topology.  Every hour's draws are made from an independent
``SeedSequence`` child (the :class:`~repro.workload.dynamics.RedrawnRates`
pattern), and the full event trace plus the per-hour
:class:`FaultState` s are materialized eagerly at construction — so the
same ``(topology, config, seed)`` triple always yields a byte-identical
trace no matter how often or in what order the process is queried.

Model: a memoryless per-hour failure/repair chain.  Each hour, every
*up* element of a category fails independently with that category's
failure probability, and every *down* element repairs independently with
probability ``1 / mean_repair_hours`` (so repair times are geometric
with the configured mean).  Repairs are drawn before failures, so an
element repaired at hour ``h`` can fail again at ``h + 1`` but not
within the same hour.  Draws are fixed-size vectors per category per
hour — one value per element whether it is up or down — so the stream
layout is a pure function of the topology shape, never of the evolving
fault state.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import FaultError
from repro.topology.base import Topology
from repro.utils.rng import spawn_rngs

__all__ = ["FaultConfig", "FaultEvent", "FaultState", "FaultProcess"]


@dataclass(frozen=True)
class FaultConfig:
    """Per-hour failure/repair probabilities for one simulated day.

    ``switch_rate`` / ``host_rate`` / ``link_rate`` are the per-element,
    per-hour failure probabilities; ``mean_repair_hours`` is the mean of
    the geometric repair time (``<= 1`` repairs everything the next
    hour).  ``max_failed_switches`` optionally caps how many switches may
    be down at once — failures drawn past the cap are discarded that hour
    (in ascending switch order, deterministically) so sweeps can explore
    aggressive failure rates without trivially killing the whole fabric.
    """

    switch_rate: float = 0.02
    host_rate: float = 0.0
    link_rate: float = 0.0
    mean_repair_hours: float = 4.0
    max_failed_switches: int | None = None

    def __post_init__(self) -> None:
        for name in ("switch_rate", "host_rate", "link_rate"):
            rate = getattr(self, name)
            if not (0.0 <= rate <= 1.0) or not np.isfinite(rate):
                raise FaultError(
                    f"{name} must be a probability in [0, 1], got {rate!r}"
                )
        if not (self.mean_repair_hours > 0) or not np.isfinite(self.mean_repair_hours):
            raise FaultError(
                "mean_repair_hours must be positive and finite, got "
                f"{self.mean_repair_hours!r}"
            )
        if self.max_failed_switches is not None and self.max_failed_switches < 0:
            raise FaultError(
                "max_failed_switches must be non-negative or None, got "
                f"{self.max_failed_switches!r}"
            )

    @property
    def repair_probability(self) -> float:
        return min(1.0, 1.0 / self.mean_repair_hours)

    def to_dict(self) -> dict:
        return {
            "switch_rate": self.switch_rate,
            "host_rate": self.host_rate,
            "link_rate": self.link_rate,
            "mean_repair_hours": self.mean_repair_hours,
            "max_failed_switches": self.max_failed_switches,
        }


@dataclass(frozen=True)
class FaultEvent:
    """One timed event: ``kind`` in {switch, host, link}, ``action`` in
    {fail, repair}.  ``target`` is a node index for switches/hosts and a
    ``(u, v)`` pair (``u < v``) for links."""

    hour: int
    kind: str
    action: str
    target: int | tuple[int, int]

    def to_dict(self) -> dict:
        target = (
            list(self.target) if isinstance(self.target, tuple) else self.target
        )
        return {
            "hour": self.hour,
            "kind": self.kind,
            "action": self.action,
            "target": target,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FaultEvent":
        """Inverse of :meth:`to_dict` (the serve layer's ingestion format).

        Link targets arrive as 2-element lists (JSON has no tuples) and
        are canonicalized back to ``(u, v)`` with ``u < v``.
        """
        try:
            hour = int(data["hour"])
            kind = str(data["kind"])
            action = str(data["action"])
            target = data["target"]
        except (KeyError, TypeError, ValueError) as exc:
            raise FaultError(f"malformed fault event {data!r}: {exc}") from None
        if kind not in ("switch", "host", "link"):
            raise FaultError(f"unknown fault kind {kind!r}")
        if action not in ("fail", "repair"):
            raise FaultError(f"unknown fault action {action!r}")
        if kind == "link":
            if not isinstance(target, (list, tuple)) or len(target) != 2:
                raise FaultError(f"link target must be a (u, v) pair, got {target!r}")
            u, v = int(target[0]), int(target[1])
            target = (min(u, v), max(u, v))
        else:
            target = int(target)
        return cls(hour=hour, kind=kind, action=action, target=target)


@dataclass(frozen=True)
class FaultState:
    """Which elements are down at one instant (hashable, canonical order)."""

    failed_switches: tuple[int, ...] = ()
    failed_hosts: tuple[int, ...] = ()
    failed_links: tuple[tuple[int, int], ...] = ()

    @property
    def is_healthy(self) -> bool:
        return not (self.failed_switches or self.failed_hosts or self.failed_links)

    def to_dict(self) -> dict:
        return {
            "failed_switches": list(self.failed_switches),
            "failed_hosts": list(self.failed_hosts),
            "failed_links": [list(link) for link in self.failed_links],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FaultState":
        """Inverse of :meth:`to_dict` (re-canonicalizes ordering)."""
        return cls(
            failed_switches=tuple(sorted(int(s) for s in data.get("failed_switches", ()))),
            failed_hosts=tuple(sorted(int(h) for h in data.get("failed_hosts", ()))),
            failed_links=tuple(
                sorted((int(u), int(v)) for u, v in data.get("failed_links", ()))
            ),
        )


class FaultProcess:
    """Deterministic fault timeline for ``horizon`` hours of one topology.

    Hour 0 is always healthy (the day starts from an intact fabric);
    hours ``1..horizon`` carry the drawn events.  :meth:`state_at` clamps
    beyond-horizon queries to the final state so a simulation loop can
    safely run on any hour range within the horizon.
    """

    def __init__(
        self,
        topology: Topology,
        config: FaultConfig,
        *,
        seed: int,
        horizon: int,
    ) -> None:
        if horizon < 1:
            raise FaultError(f"horizon must be at least 1 hour, got {horizon}")
        self.topology = topology
        self.config = config
        self.seed = int(seed)
        self.horizon = int(horizon)
        self._events: list[tuple[FaultEvent, ...]] = [()]
        self._states: list[FaultState] = [FaultState()]
        self._draw()

    # -- construction ---------------------------------------------------------

    def _draw(self) -> None:
        config = self.config
        switches = [int(s) for s in self.topology.switches]
        hosts = [int(h) for h in self.topology.hosts]
        links = [(u, v) for u, v, _ in self.topology.graph.edges]
        categories = (
            ("switch", switches, config.switch_rate),
            ("host", hosts, config.host_rate),
            ("link", links, config.link_rate),
        )
        p_repair = config.repair_probability
        down: dict[str, set] = {"switch": set(), "host": set(), "link": set()}
        for hour, rng in enumerate(spawn_rngs(self.seed, self.horizon), start=1):
            events: list[FaultEvent] = []
            for kind, elements, rate in categories:
                # fixed-size draws per category: the stream layout never
                # depends on the evolving fault state
                repair_draws = rng.random(len(elements))
                fail_draws = rng.random(len(elements))
                failed = down[kind]
                for i, element in enumerate(elements):
                    if element in failed and repair_draws[i] < p_repair:
                        failed.discard(element)
                        events.append(FaultEvent(hour, kind, "repair", element))
                for i, element in enumerate(elements):
                    if element in failed or fail_draws[i] >= rate:
                        continue
                    if (
                        kind == "switch"
                        and config.max_failed_switches is not None
                        and len(failed) >= config.max_failed_switches
                    ):
                        continue
                    failed.add(element)
                    events.append(FaultEvent(hour, kind, "fail", element))
            self._events.append(tuple(events))
            self._states.append(
                FaultState(
                    failed_switches=tuple(sorted(down["switch"])),
                    failed_hosts=tuple(sorted(down["host"])),
                    failed_links=tuple(sorted(down["link"])),
                )
            )

    # -- queries --------------------------------------------------------------

    def events_at(self, hour: int) -> tuple[FaultEvent, ...]:
        """The events that took effect at ``hour`` (empty for hour 0)."""
        if hour < 0:
            raise FaultError(f"hour must be non-negative, got {hour}")
        return self._events[min(hour, self.horizon)]

    def state_at(self, hour: int) -> FaultState:
        """The fault state in force during ``hour`` (clamped to horizon)."""
        if hour < 0:
            raise FaultError(f"hour must be non-negative, got {hour}")
        return self._states[min(hour, self.horizon)]

    def trace(self) -> tuple[FaultEvent, ...]:
        """Every event of the timeline, in (hour, draw) order."""
        return tuple(e for events in self._events for e in events)

    def to_dict(self) -> dict:
        """JSON-friendly canonical form; equal dicts ⇔ identical timelines."""
        return {
            "seed": self.seed,
            "horizon": self.horizon,
            "config": self.config.to_dict(),
            "events": [e.to_dict() for e in self.trace()],
            "states": [s.to_dict() for s in self._states],
        }
