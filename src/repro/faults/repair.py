"""Forced repair of placements stranded on failed or partitioned switches.

Cost convention (documented for the survivability experiments): when a
switch dies, the VNF instance on it is gone — what migrates is the VNF's
*state*, restored from its last-known-good replica onto a surviving
switch (the replication-aware framing of Carpio & Jukan).  The repair is
booked as a TOM migration priced on the **healthy** topology's APSP
distance ``c_healthy(from, to)``: the replica path existed before the
failure, and pricing on the degraded fabric would be ``inf`` (the dead
switch has no edges left).  The simulator multiplies the plan's summed
distance by the policy's μ, exactly like Eq. 8's ``C_b``.

When the policy carries a live :class:`~repro.core.replication.ReplicaSet`
(``replica_rows``), a stranded VNF with a surviving replica instance does
not pay that price at all: the replica *is* the last-known-good state,
already running on a live switch, so the repair is a **free failover** —
the replica instance is promoted to primary, its copy is retired, and the
move is logged under ``failovers`` (not ``moves``) so the ``verify.faults``
pricing audit (μ × Σ healthy distance over *paid* moves) stays exact.

Evacuation is deterministic: VNFs are processed in chain order, each
first checking the replica copies in deployment order for a live, free
instance (free failover), then falling back to the nearest allowed,
unoccupied, non-replica-held switch (ties broken toward the smaller
switch index).  VNFs already on an allowed switch stay put.  If replica
occupancy ever leaves a paid move with no free switch, the remaining
replica copies are decommissioned to make room (the primary service
always wins over survivability spares).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import InfeasibleError

__all__ = ["RepairPlan", "evacuate"]


@dataclass(frozen=True)
class RepairPlan:
    """The outcome of one forced evacuation.

    ``moves`` lists *paid* ``(vnf_index, from_switch, to_switch)`` in
    chain order; ``distance`` is ``Σ c_healthy(from, to)`` over those
    moves (the simulator books ``μ · distance`` as repair cost).
    ``failovers`` lists the free promotions onto live replica instances
    (same triple shape, zero distance), and ``replica_rows`` is the
    replica matrix that survives the plan (consumed and decommissioned
    copies removed; ``None`` when the caller passed no replicas).
    """

    placement: np.ndarray
    moves: tuple[tuple[int, int, int], ...]
    distance: float
    failovers: tuple[tuple[int, int, int], ...] = ()
    replica_rows: np.ndarray | None = None

    def __post_init__(self) -> None:
        placement = np.asarray(self.placement, dtype=np.int64)
        placement.setflags(write=False)
        object.__setattr__(self, "placement", placement)
        if self.replica_rows is not None:
            rows = np.asarray(self.replica_rows, dtype=np.int64)
            rows = rows.reshape(-1, placement.size) if rows.size else rows.reshape(
                0, placement.size
            )
            rows.setflags(write=False)
            object.__setattr__(self, "replica_rows", rows)

    @property
    def num_moves(self) -> int:
        return len(self.moves)

    @property
    def num_failovers(self) -> int:
        return len(self.failovers)

    def to_dict(self) -> dict:
        return {
            "placement": self.placement.tolist(),
            "moves": [list(m) for m in self.moves],
            "distance": self.distance,
            "failovers": [list(m) for m in self.failovers],
            "replica_rows": (
                None if self.replica_rows is None else self.replica_rows.tolist()
            ),
        }


def evacuate(
    placement: np.ndarray,
    allowed_switches: np.ndarray,
    healthy_distances: np.ndarray,
    *,
    diagnosis: dict | None = None,
    replica_rows: np.ndarray | None = None,
) -> RepairPlan:
    """Move every VNF not on an ``allowed`` switch to the nearest free one.

    ``healthy_distances`` is the intact fabric's APSP table (see the
    module docstring for why repair is priced there).  ``replica_rows``
    is an ``(r, n)`` matrix of live replica chain copies (already pruned
    to the surviving component by the caller); a stranded VNF with a
    live replica instance fails over for free instead of paying a move.
    Raises :class:`InfeasibleError` (carrying ``diagnosis``) when the
    allowed set cannot host all VNFs distinctly.
    """
    src = np.asarray(placement, dtype=np.int64)
    allowed = [int(s) for s in allowed_switches]
    allowed_set = set(allowed)
    if len(allowed_set) < src.size:
        raise InfeasibleError(
            f"cannot evacuate {src.size} VNFs onto {len(allowed_set)} "
            "surviving switches",
            diagnosis={
                "reason": "too_few_surviving_switches",
                "num_vnfs": int(src.size),
                "surviving_switches": sorted(allowed_set),
                **(diagnosis or {}),
            },
        )
    rows = None
    if replica_rows is not None:
        rows = np.asarray(replica_rows, dtype=np.int64)
        rows = rows.reshape(-1, src.size) if rows.size else rows.reshape(0, src.size)
    new = src.copy()
    occupied = {int(p) for p in src if int(p) in allowed_set}
    retired: set[int] = set()

    def replica_held() -> set[int]:
        """Switches still held by live, unconsumed replica instances."""
        held: set[int] = set()
        if rows is None:
            return held
        for r_idx in range(rows.shape[0]):
            if r_idx in retired:
                continue
            held.update(int(s) for s in rows[r_idx] if int(s) in allowed_set)
        return held

    moves: list[tuple[int, int, int]] = []
    failovers: list[tuple[int, int, int]] = []
    distance = 0.0
    for j in range(src.size):
        origin = int(src[j])
        if origin in allowed_set:
            continue
        # free failover: promote a live replica instance of VNF j
        target = None
        if rows is not None:
            for r_idx in range(rows.shape[0]):
                if r_idx in retired:
                    continue
                cand = int(rows[r_idx, j])
                if cand in allowed_set and cand not in occupied:
                    target = cand
                    retired.add(r_idx)
                    break
        if target is not None:
            occupied.add(target)
            new[j] = target
            failovers.append((j, origin, target))
            continue
        held = replica_held()
        candidates = sorted(
            (s for s in allowed if s not in occupied and s not in held),
            key=lambda s: (float(healthy_distances[origin, s]), s),
        )
        if not candidates:
            # replica copies are expendable spares: decommission them all
            # so the primary chain can always be rehosted (|allowed| >= n)
            retired.update(range(rows.shape[0]))
            candidates = sorted(
                (s for s in allowed if s not in occupied),
                key=lambda s: (float(healthy_distances[origin, s]), s),
            )
        target = candidates[0]
        occupied.add(target)
        new[j] = target
        moves.append((j, origin, target))
        distance += float(healthy_distances[origin, target])
    surviving = None
    if rows is not None:
        keep = [r for r in range(rows.shape[0]) if r not in retired]
        surviving = rows[keep] if keep else np.empty((0, src.size), dtype=np.int64)
    return RepairPlan(
        placement=new,
        moves=tuple(moves),
        distance=distance,
        failovers=tuple(failovers),
        replica_rows=surviving,
    )
