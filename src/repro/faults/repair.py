"""Forced repair of placements stranded on failed or partitioned switches.

Cost convention (documented for the survivability experiments): when a
switch dies, the VNF instance on it is gone — what migrates is the VNF's
*state*, restored from its last-known-good replica onto a surviving
switch (the replication-aware framing of Carpio & Jukan).  The repair is
booked as a TOM migration priced on the **healthy** topology's APSP
distance ``c_healthy(from, to)``: the replica path existed before the
failure, and pricing on the degraded fabric would be ``inf`` (the dead
switch has no edges left).  The simulator multiplies the plan's summed
distance by the policy's μ, exactly like Eq. 8's ``C_b``.

Evacuation is deterministic: VNFs are processed in chain order, each
moving to the nearest allowed, unoccupied switch (ties broken toward the
smaller switch index).  VNFs already on an allowed switch stay put.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import InfeasibleError

__all__ = ["RepairPlan", "evacuate"]


@dataclass(frozen=True)
class RepairPlan:
    """The outcome of one forced evacuation.

    ``moves`` lists ``(vnf_index, from_switch, to_switch)`` in chain
    order; ``distance`` is ``Σ c_healthy(from, to)`` over the moves (the
    simulator books ``μ · distance`` as repair cost).
    """

    placement: np.ndarray
    moves: tuple[tuple[int, int, int], ...]
    distance: float

    def __post_init__(self) -> None:
        placement = np.asarray(self.placement, dtype=np.int64)
        placement.setflags(write=False)
        object.__setattr__(self, "placement", placement)

    @property
    def num_moves(self) -> int:
        return len(self.moves)

    def to_dict(self) -> dict:
        return {
            "placement": self.placement.tolist(),
            "moves": [list(m) for m in self.moves],
            "distance": self.distance,
        }


def evacuate(
    placement: np.ndarray,
    allowed_switches: np.ndarray,
    healthy_distances: np.ndarray,
    *,
    diagnosis: dict | None = None,
) -> RepairPlan:
    """Move every VNF not on an ``allowed`` switch to the nearest free one.

    ``healthy_distances`` is the intact fabric's APSP table (see the
    module docstring for why repair is priced there).  Raises
    :class:`InfeasibleError` (carrying ``diagnosis``) when the allowed
    set cannot host all VNFs distinctly.
    """
    src = np.asarray(placement, dtype=np.int64)
    allowed = [int(s) for s in allowed_switches]
    allowed_set = set(allowed)
    if len(allowed_set) < src.size:
        raise InfeasibleError(
            f"cannot evacuate {src.size} VNFs onto {len(allowed_set)} "
            "surviving switches",
            diagnosis={
                "reason": "too_few_surviving_switches",
                "num_vnfs": int(src.size),
                "surviving_switches": sorted(allowed_set),
                **(diagnosis or {}),
            },
        )
    new = src.copy()
    occupied = {int(p) for p in src if int(p) in allowed_set}
    moves: list[tuple[int, int, int]] = []
    distance = 0.0
    for j in range(src.size):
        origin = int(src[j])
        if origin in allowed_set:
            continue
        candidates = sorted(
            (s for s in allowed if s not in occupied),
            key=lambda s: (float(healthy_distances[origin, s]), s),
        )
        # guaranteed non-empty: |allowed| >= n and each move occupies one
        target = candidates[0]
        occupied.add(target)
        new[j] = target
        moves.append((j, origin, target))
        distance += float(healthy_distances[origin, target])
    return RepairPlan(placement=new, moves=tuple(moves), distance=distance)
