"""Gravity-model VM pair placement: spatially skewed workloads.

The uniform pair placement of :func:`~repro.workload.flows.place_vm_pairs`
spreads traffic evenly across racks, which (on symmetric fabrics) makes
the optimal chain position insensitive to rates (DESIGN.md §4b).  Real
tenants cluster: a few racks host the hot services.  The gravity model
reproduces that: each rack gets a random *mass* from a Zipf-like
distribution, and pair endpoints are drawn with probability proportional
to rack mass (intra-rack pairs pick one rack by mass; inter-rack pairs
pick an ordered rack pair by the product of masses — the classic gravity
form).  Skewed workloads are where placement (and migration) genuinely
matter, so sensitivity studies use this generator.
"""

from __future__ import annotations

import numpy as np

from repro.errors import WorkloadError
from repro.topology.base import Topology
from repro.utils.rng import as_generator
from repro.workload.flows import FlowSet

__all__ = ["gravity_rack_masses", "place_vm_pairs_gravity"]


def gravity_rack_masses(
    num_racks: int,
    skew: float = 1.2,
    rng: int | np.random.Generator | None = 0,
) -> np.ndarray:
    """Normalized rack masses: a shuffled Zipf profile with exponent ``skew``.

    ``skew = 0`` degenerates to uniform; larger values concentrate mass in
    fewer racks.
    """
    if num_racks < 1:
        raise WorkloadError(f"num_racks must be positive, got {num_racks}")
    if skew < 0:
        raise WorkloadError(f"skew must be non-negative, got {skew}")
    gen = as_generator(rng)
    ranks = np.arange(1, num_racks + 1, dtype=float)
    masses = ranks ** (-skew)
    gen.shuffle(masses)
    return masses / masses.sum()


def place_vm_pairs_gravity(
    topology: Topology,
    num_pairs: int,
    intra_rack_fraction: float = 0.8,
    skew: float = 1.2,
    seed: int | np.random.Generator | None = 0,
) -> FlowSet:
    """Place VM pairs with gravity-model rack selection.

    Keeps the paper's 80 % intra-rack rule; only *which* racks host the
    pairs becomes skewed.  Rates are initialized to 1 (attach a
    :class:`~repro.workload.traffic.TrafficModel` afterwards, as with the
    uniform generator).
    """
    if num_pairs < 1:
        raise WorkloadError(f"num_pairs must be positive, got {num_pairs}")
    if not (0.0 <= intra_rack_fraction <= 1.0):
        raise WorkloadError(
            f"intra_rack_fraction must be in [0, 1], got {intra_rack_fraction}"
        )
    gen = as_generator(seed)
    racks = topology.racks()
    num_racks = len(racks)
    if num_racks < 2 and intra_rack_fraction < 1.0:
        raise WorkloadError(
            "inter-rack pairs requested but the topology has a single rack"
        )
    masses = gravity_rack_masses(num_racks, skew=skew, rng=gen)

    sources = np.empty(num_pairs, dtype=np.int64)
    destinations = np.empty(num_pairs, dtype=np.int64)
    intra = gen.random(num_pairs) < intra_rack_fraction
    for i in range(num_pairs):
        if intra[i]:
            rack = racks[int(gen.choice(num_racks, p=masses))]
            sources[i] = rack[int(gen.integers(rack.size))]
            destinations[i] = rack[int(gen.integers(rack.size))]
        else:
            r1 = int(gen.choice(num_racks, p=masses))
            # renormalize over the remaining racks for the second pick
            rest = masses.copy()
            rest[r1] = 0.0
            rest = rest / rest.sum()
            r2 = int(gen.choice(num_racks, p=rest))
            rack1, rack2 = racks[r1], racks[r2]
            sources[i] = rack1[int(gen.integers(rack1.size))]
            destinations[i] = rack2[int(gen.integers(rack2.size))]

    return FlowSet(
        sources=sources,
        destinations=destinations,
        rates=np.ones(num_pairs),
        meta={
            "generator": "gravity",
            "skew": skew,
            "intra_rack_fraction": intra_rack_fraction,
        },
    )
