"""Service function chains (SFCs).

An SFC ``(f_1, ..., f_n)`` forces VM traffic through its VNFs in order.
The IETF data-center use-case draft [3] — the paper's source — splits
real-world service functions into *access* functions (5-6 per chain) and
*application* functions (4-5 per chain), for chains of up to 13 VNFs.
The catalog names below follow that draft's examples; only the chain
*length* matters to the algorithms, but named VNFs keep examples and
experiment output readable.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import WorkloadError

__all__ = [
    "SFC",
    "ACCESS_FUNCTIONS",
    "APPLICATION_FUNCTIONS",
    "access_sfc",
    "application_sfc",
    "full_sfc",
    "sfc_of_size",
]

#: Access-side service functions (security / admission), per [3] §3.
ACCESS_FUNCTIONS: tuple[str, ...] = (
    "firewall",
    "ddos-protection",
    "intrusion-detection",
    "nat",
    "vpn-gateway",
    "traffic-shaper",
)

#: Application-side service functions (performance / delivery), per [3] §3.
APPLICATION_FUNCTIONS: tuple[str, ...] = (
    "load-balancer",
    "cache-proxy",
    "wan-optimizer",
    "tls-terminator",
    "application-firewall",
    "compression",
    "media-transcoder",
)


@dataclass(frozen=True)
class SFC:
    """An ordered service function chain.

    ``functions`` are the VNF names, ingress first.  The chain must be
    non-empty and free of duplicates (each VNF is a single instance on its
    own switch in the paper's model).
    """

    functions: tuple[str, ...]
    name: str = "sfc"

    def __post_init__(self) -> None:
        if not self.functions:
            raise WorkloadError("an SFC must contain at least one VNF")
        if len(set(self.functions)) != len(self.functions):
            raise WorkloadError(f"SFC {self.name!r} contains duplicate VNFs")

    @property
    def size(self) -> int:
        """``n``, the number of VNFs."""
        return len(self.functions)

    @property
    def ingress(self) -> str:
        return self.functions[0]

    @property
    def egress(self) -> str:
        return self.functions[-1]

    def __iter__(self):
        return iter(self.functions)

    def __len__(self) -> int:
        return self.size


def access_sfc(size: int = 5) -> SFC:
    """An access chain of ``size`` functions (the draft's 5-6 typical)."""
    if not (1 <= size <= len(ACCESS_FUNCTIONS)):
        raise WorkloadError(
            f"access SFC size must be in [1, {len(ACCESS_FUNCTIONS)}], got {size}"
        )
    return SFC(ACCESS_FUNCTIONS[:size], name=f"access-{size}")


def application_sfc(size: int = 4) -> SFC:
    """An application chain of ``size`` functions (the draft's 4-5 typical)."""
    if not (1 <= size <= len(APPLICATION_FUNCTIONS)):
        raise WorkloadError(
            f"application SFC size must be in [1, {len(APPLICATION_FUNCTIONS)}], got {size}"
        )
    return SFC(APPLICATION_FUNCTIONS[:size], name=f"application-{size}")


def full_sfc() -> SFC:
    """The maximal 13-VNF chain the paper considers (access then application)."""
    return SFC(ACCESS_FUNCTIONS + APPLICATION_FUNCTIONS, name="full-13")


def sfc_of_size(n: int) -> SFC:
    """A chain of exactly ``n`` VNFs drawn access-first from the catalog."""
    catalog = ACCESS_FUNCTIONS + APPLICATION_FUNCTIONS
    if not (1 <= n <= len(catalog)):
        raise WorkloadError(f"SFC size must be in [1, {len(catalog)}], got {n}")
    return SFC(catalog[:n], name=f"chain-{n}")
