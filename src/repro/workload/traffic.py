"""Traffic-rate models.

The paper follows "diverse flow characteristics found in Facebook data
centers [43]": rates in ``[0, 10000]`` with 25 % of flows light
(``[0, 3000)``), 70 % medium (``[3000, 7000]``) and 5 % heavy
(``(7000, 10000]``).  :class:`FacebookTrafficModel` reproduces that mix
exactly; :class:`UniformTrafficModel` is a plain control model.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

import numpy as np

from repro.errors import WorkloadError
from repro.utils.rng import as_generator

__all__ = ["RateBand", "TrafficModel", "FacebookTrafficModel", "UniformTrafficModel"]


@dataclass(frozen=True)
class RateBand:
    """A traffic class: draw ``U[low, high)`` with selection probability ``share``."""

    name: str
    share: float
    low: float
    high: float

    def __post_init__(self) -> None:
        if not (0.0 <= self.share <= 1.0):
            raise WorkloadError(f"band {self.name!r} share {self.share} not in [0, 1]")
        if not (0.0 <= self.low < self.high):
            raise WorkloadError(
                f"band {self.name!r} range [{self.low}, {self.high}) is invalid"
            )


class TrafficModel(ABC):
    """Samples per-flow base traffic rates ``λ_i``."""

    @abstractmethod
    def sample(self, count: int, rng: int | np.random.Generator | None = None) -> np.ndarray:
        """Draw ``count`` rates."""


class FacebookTrafficModel(TrafficModel):
    """The paper's 25/70/5 light/medium/heavy mix over [0, 10000].

    Each flow first picks a band according to the shares, then draws its
    rate uniformly inside the band — which keeps the published marginal
    shares exact regardless of band widths.
    """

    DEFAULT_BANDS = (
        RateBand("light", 0.25, 0.0, 3000.0),
        RateBand("medium", 0.70, 3000.0, 7000.0),
        RateBand("heavy", 0.05, 7000.0, 10000.0),
    )

    def __init__(self, bands: tuple[RateBand, ...] = DEFAULT_BANDS) -> None:
        if not bands:
            raise WorkloadError("at least one rate band is required")
        total = sum(band.share for band in bands)
        if abs(total - 1.0) > 1e-9:
            raise WorkloadError(f"band shares must sum to 1, got {total}")
        self.bands = tuple(bands)

    def sample(self, count: int, rng: int | np.random.Generator | None = None) -> np.ndarray:
        if count < 1:
            raise WorkloadError(f"count must be positive, got {count}")
        gen = as_generator(rng)
        shares = np.array([band.share for band in self.bands])
        choices = gen.choice(len(self.bands), size=count, p=shares)
        lows = np.array([band.low for band in self.bands])[choices]
        highs = np.array([band.high for band in self.bands])[choices]
        return gen.uniform(lows, highs)

    def band_of(self, rate: float) -> RateBand:
        """Classify a rate back into its band (half-open on the right)."""
        for band in self.bands:
            if band.low <= rate < band.high:
                return band
        last = self.bands[-1]
        if rate == last.high:
            return last
        raise WorkloadError(f"rate {rate} is outside every band")


class UniformTrafficModel(TrafficModel):
    """Uniform rates on ``[low, high)`` — a structure-free control model."""

    def __init__(self, low: float = 0.0, high: float = 10000.0) -> None:
        if not (0.0 <= low < high):
            raise WorkloadError(f"invalid uniform range [{low}, {high})")
        self.low = low
        self.high = high

    def sample(self, count: int, rng: int | np.random.Generator | None = None) -> np.ndarray:
        if count < 1:
            raise WorkloadError(f"count must be positive, got {count}")
        gen = as_generator(rng)
        return gen.uniform(self.low, self.high, size=count)
