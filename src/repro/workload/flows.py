"""VM flow sets and the rack-local pair placement of the paper's setup.

A :class:`FlowSet` holds ``l`` communicating VM pairs
``P = {(v_1, v'_1), ..., (v_l, v'_l)}`` as three aligned numpy arrays:
source hosts, destination hosts, and traffic rates ``λ_i``.  The paper
places "80 % of the VM pairs into hosts under the same edge switches"
because that fraction of DC traffic stays within the rack [8];
:func:`place_vm_pairs` implements that rule.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import WorkloadError
from repro.topology.base import Topology
from repro.utils.rng import as_generator

__all__ = ["FlowSet", "place_vm_pairs"]


@dataclass(frozen=True)
class FlowSet:
    """``l`` VM flows: aligned ``(sources, destinations, rates)`` arrays.

    ``sources[i]`` and ``destinations[i]`` are host node indices in the
    owning topology's graph; ``rates[i]`` is the traffic rate ``λ_i``.
    Instances are immutable; rate changes produce new flow sets via
    :meth:`with_rates` (the traffic rate vector is "not a constant vector"
    in a dynamic PPDC, but the pairs themselves persist).
    """

    sources: np.ndarray
    destinations: np.ndarray
    rates: np.ndarray
    meta: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        src = np.asarray(self.sources, dtype=np.int64)
        dst = np.asarray(self.destinations, dtype=np.int64)
        rates = np.asarray(self.rates, dtype=np.float64)
        if not (src.ndim == dst.ndim == rates.ndim == 1):
            raise WorkloadError("sources, destinations and rates must be 1-D")
        if not (src.size == dst.size == rates.size):
            raise WorkloadError(
                f"misaligned flow arrays: {src.size}, {dst.size}, {rates.size}"
            )
        if src.size == 0:
            raise WorkloadError("a FlowSet must contain at least one flow")
        if np.any(rates < 0):
            raise WorkloadError("traffic rates must be non-negative")
        for arr, name in ((src, "sources"), (dst, "destinations"), (rates, "rates")):
            arr.setflags(write=False)
            object.__setattr__(self, name, arr)

    @property
    def num_flows(self) -> int:
        return int(self.sources.size)

    @property
    def total_rate(self) -> float:
        """``Λ = Σ_i λ_i`` — the multiplier of the inter-VNF chain cost."""
        return float(self.rates.sum())

    def with_rates(self, rates: np.ndarray) -> "FlowSet":
        """Same VM pairs with a new traffic-rate vector."""
        rates = np.asarray(rates, dtype=np.float64)
        if rates.shape != self.rates.shape:
            raise WorkloadError(
                f"rate vector shape {rates.shape} != flow count {self.rates.shape}"
            )
        return FlowSet(self.sources, self.destinations, rates, dict(self.meta))

    def with_endpoints(self, sources: np.ndarray, destinations: np.ndarray) -> "FlowSet":
        """Same rates with relocated VM endpoints (used by VM-migration baselines)."""
        return FlowSet(sources, destinations, self.rates, dict(self.meta))

    def subset(self, indices: np.ndarray) -> "FlowSet":
        idx = np.asarray(indices, dtype=np.int64)
        return FlowSet(
            self.sources[idx], self.destinations[idx], self.rates[idx], dict(self.meta)
        )

    def validate_against(self, topology: Topology) -> None:
        """Check every endpoint is a host of ``topology``."""
        host_set = set(topology.hosts.tolist())
        endpoints = set(self.sources.tolist()) | set(self.destinations.tolist())
        stray = endpoints - host_set
        if stray:
            raise WorkloadError(f"flow endpoints {sorted(stray)[:5]} are not hosts")

    def intra_rack_fraction(self, topology: Topology) -> float:
        """Fraction of flows whose endpoints share an edge switch."""
        racks_src = np.array([topology.rack_of_host(int(h)) for h in self.sources])
        racks_dst = np.array([topology.rack_of_host(int(h)) for h in self.destinations])
        return float(np.mean(racks_src == racks_dst))


def place_vm_pairs(
    topology: Topology,
    num_pairs: int,
    intra_rack_fraction: float = 0.8,
    seed: int | np.random.Generator | None = 0,
) -> FlowSet:
    """Place ``num_pairs`` VM pairs with the paper's 80 % rack locality.

    For an intra-rack pair both endpoints are drawn (uniformly, with
    replacement across pairs) from the hosts of one uniformly chosen rack;
    the two VMs may share a host, matching Fig. 3 where ``v_1`` and
    ``v'_1`` are both stored at ``h_1``.  Inter-rack pairs draw endpoints
    from two distinct racks.  Rates are initialized to 1 and are normally
    overwritten by a :class:`~repro.workload.traffic.TrafficModel`.
    """
    if num_pairs < 1:
        raise WorkloadError(f"num_pairs must be positive, got {num_pairs}")
    if not (0.0 <= intra_rack_fraction <= 1.0):
        raise WorkloadError(
            f"intra_rack_fraction must be in [0, 1], got {intra_rack_fraction}"
        )
    rng = as_generator(seed)
    racks = topology.racks()
    if len(racks) < 2 and intra_rack_fraction < 1.0:
        raise WorkloadError(
            "inter-rack pairs requested but the topology has a single rack"
        )

    sources = np.empty(num_pairs, dtype=np.int64)
    destinations = np.empty(num_pairs, dtype=np.int64)
    intra = rng.random(num_pairs) < intra_rack_fraction
    num_racks = len(racks)
    for i in range(num_pairs):
        if intra[i]:
            rack = racks[int(rng.integers(num_racks))]
            sources[i] = rack[int(rng.integers(rack.size))]
            destinations[i] = rack[int(rng.integers(rack.size))]
        else:
            r1, r2 = rng.choice(num_racks, size=2, replace=False)
            rack1, rack2 = racks[int(r1)], racks[int(r2)]
            sources[i] = rack1[int(rng.integers(rack1.size))]
            destinations[i] = rack2[int(rng.integers(rack2.size))]

    return FlowSet(
        sources=sources,
        destinations=destinations,
        rates=np.ones(num_pairs),
        meta={"intra_rack_fraction": intra_rack_fraction},
    )
