"""Streaming chunked workload generation for paper-scale flow populations.

A million-flow day must never fully materialize in the parent process:
the sharded day loop (:mod:`repro.shard`) hands each worker a chunk
*recipe* — (workload spec, chunk index) — and the worker regenerates its
endpoints and base rates locally.  Determinism rests on two pillars:

* **Per-chunk seed streams.**  The root :class:`numpy.random.SeedSequence`
  is spawned once into ``num_chunks`` children, one per chunk, so chunk
  ``c``'s draws depend only on ``(seed, chunk_size, c)`` — never on which
  process generates it, in what order, or how many shards the run uses.
* **Chunk == block.**  The chunk size is the shard layer's aggregation
  block size; the canonical flow order is chunk 0's flows, then chunk
  1's, and so on.  :meth:`StreamingWorkload.materialize` concatenates the
  chunks in that order, so a streamed run and a materialized run describe
  the *same* population, flow for flow — the byte-identity comparator in
  ``verify.shard`` leans on this.

Endpoint placement inside a chunk follows the paper's 80 % rack-locality
rule exactly as :func:`~repro.workload.flows.place_vm_pairs` does, but
against a :class:`RackTable` — a picklable few-KB stand-in for the
topology's rack structure — so workers never need the full
:class:`~repro.topology.base.Topology` (whose distance matrix is shipped
once via shared memory, not per task).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

import numpy as np

from repro.errors import WorkloadError
from repro.topology.base import Topology
from repro.workload.flows import FlowSet
from repro.workload.traffic import FacebookTrafficModel, TrafficModel

__all__ = ["RackTable", "FlowChunk", "StreamingWorkload"]


@dataclass(frozen=True)
class RackTable:
    """Hosts grouped by rack, flattened for cheap pickling.

    ``hosts`` holds every host node index in rack-major order;
    ``offsets[r]:offsets[r+1]`` delimits rack ``r``.  This is all the
    endpoint sampler needs — a few KB even at k=32 — so chunk recipes
    stay tiny on the wire.
    """

    hosts: np.ndarray
    offsets: np.ndarray

    def __post_init__(self) -> None:
        hosts = np.asarray(self.hosts, dtype=np.int64)
        offsets = np.asarray(self.offsets, dtype=np.int64)
        if offsets.ndim != 1 or offsets.size < 2:
            raise WorkloadError("offsets must hold at least one rack boundary pair")
        if offsets[0] != 0 or offsets[-1] != hosts.size:
            raise WorkloadError("offsets must span exactly the host array")
        if np.any(np.diff(offsets) <= 0):
            raise WorkloadError("every rack must contain at least one host")
        hosts.setflags(write=False)
        offsets.setflags(write=False)
        object.__setattr__(self, "hosts", hosts)
        object.__setattr__(self, "offsets", offsets)

    @classmethod
    def from_topology(cls, topology: Topology) -> "RackTable":
        racks = topology.racks()
        hosts = np.concatenate(racks)
        offsets = np.zeros(len(racks) + 1, dtype=np.int64)
        np.cumsum([rack.size for rack in racks], out=offsets[1:])
        return cls(hosts=hosts, offsets=offsets)

    @property
    def num_racks(self) -> int:
        return int(self.offsets.size - 1)

    def rack(self, index: int) -> np.ndarray:
        return self.hosts[self.offsets[index] : self.offsets[index + 1]]


@dataclass(frozen=True)
class FlowChunk:
    """One regenerated chunk: aligned endpoint/rate/offset arrays.

    ``start`` is the chunk's offset in the canonical flow order, so
    ``start + i`` is flow ``i``'s global index.
    """

    index: int
    start: int
    sources: np.ndarray
    destinations: np.ndarray
    base_rates: np.ndarray
    offsets: np.ndarray

    @property
    def num_flows(self) -> int:
        return int(self.sources.size)


@dataclass(frozen=True)
class StreamingWorkload:
    """A deterministic chunked flow population that never fully materializes.

    The spec is pure data (picklable, a few KB): regenerating chunk ``c``
    anywhere always yields the same arrays.  ``chunk_size`` doubles as
    the shard layer's aggregation block size and is part of the
    workload's identity — changing it changes the population (each chunk
    has its own seed stream), exactly like changing ``seed``.

    ``max_offset`` > 0 draws per-flow diurnal cohort offsets uniformly
    from ``[0, max_offset)``; at 0 every flow rides the same envelope.
    """

    rack_table: RackTable
    num_flows: int
    chunk_size: int = 4096
    intra_rack_fraction: float = 0.8
    traffic: TrafficModel = field(default_factory=FacebookTrafficModel)
    max_offset: float = 0.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_flows < 1:
            raise WorkloadError(f"num_flows must be positive, got {self.num_flows}")
        if self.chunk_size < 1:
            raise WorkloadError(f"chunk_size must be positive, got {self.chunk_size}")
        if not (0.0 <= self.intra_rack_fraction <= 1.0):
            raise WorkloadError(
                f"intra_rack_fraction must be in [0, 1], got {self.intra_rack_fraction}"
            )
        if self.max_offset < 0:
            raise WorkloadError(f"max_offset must be non-negative, got {self.max_offset}")
        if self.rack_table.num_racks < 2 and self.intra_rack_fraction < 1.0:
            raise WorkloadError(
                "inter-rack pairs requested but the topology has a single rack"
            )

    @property
    def num_chunks(self) -> int:
        return -(-self.num_flows // self.chunk_size)

    def chunk_bounds(self, index: int) -> tuple[int, int]:
        """``(start, stop)`` of chunk ``index`` in the canonical flow order."""
        if not (0 <= index < self.num_chunks):
            raise WorkloadError(
                f"chunk {index} out of range for {self.num_chunks} chunks"
            )
        start = index * self.chunk_size
        return start, min(start + self.chunk_size, self.num_flows)

    def chunk(self, index: int) -> FlowChunk:
        """Regenerate chunk ``index`` — identical in every process, always.

        The chunk's generator is seeded from spawn child ``index`` of the
        root sequence; endpoints, then base rates, then cohort offsets
        are drawn from it in that fixed order.
        """
        start, stop = self.chunk_bounds(index)
        count = stop - start
        child = np.random.SeedSequence(self.seed).spawn(self.num_chunks)[index]
        rng = np.random.default_rng(child)

        table = self.rack_table
        num_racks = table.num_racks
        sources = np.empty(count, dtype=np.int64)
        destinations = np.empty(count, dtype=np.int64)
        intra = rng.random(count) < self.intra_rack_fraction
        for i in range(count):
            if intra[i]:
                rack = table.rack(int(rng.integers(num_racks)))
                sources[i] = rack[int(rng.integers(rack.size))]
                destinations[i] = rack[int(rng.integers(rack.size))]
            else:
                r1, r2 = rng.choice(num_racks, size=2, replace=False)
                rack1, rack2 = table.rack(int(r1)), table.rack(int(r2))
                sources[i] = rack1[int(rng.integers(rack1.size))]
                destinations[i] = rack2[int(rng.integers(rack2.size))]

        base_rates = self.traffic.sample(count, rng=rng)
        if self.max_offset > 0:
            offsets = rng.uniform(0.0, self.max_offset, size=count)
        else:
            offsets = np.zeros(count)
        return FlowChunk(
            index=index,
            start=start,
            sources=sources,
            destinations=destinations,
            base_rates=base_rates,
            offsets=offsets,
        )

    def chunks(self) -> Iterator[FlowChunk]:
        for index in range(self.num_chunks):
            yield self.chunk(index)

    def materialize(
        self, topology: Topology | None = None
    ) -> tuple[FlowSet, np.ndarray]:
        """Concatenate every chunk into ``(FlowSet, cohort_offsets)``.

        This *is* the canonical population (chunks in index order), so a
        monolithic run over the returned flow set and a streamed run over
        the chunks see flow ``i`` with the same endpoints and base rate.
        Intended for the verify comparator and modest ``num_flows`` —
        materializing defeats the point at a million flows.
        """
        parts = list(self.chunks())
        flows = FlowSet(
            sources=np.concatenate([p.sources for p in parts]),
            destinations=np.concatenate([p.destinations for p in parts]),
            rates=np.concatenate([p.base_rates for p in parts]),
            meta={
                "intra_rack_fraction": self.intra_rack_fraction,
                "streamed": {"seed": self.seed, "chunk_size": self.chunk_size},
            },
        )
        if topology is not None:
            flows.validate_against(topology)
        return flows, np.concatenate([p.offsets for p in parts])
