"""The paper's diurnal traffic model (Eq. 9) and time-zone cohorts.

The paper models dynamic cloud traffic as cycle-stationary over an
``N = 12``-hour day (6 AM to 6 PM): rates ramp up linearly from 6 AM to
noon and back down until 6 PM, scaled by

    τ_h = 0                          h = 0
    τ_h = 2 (h / N) (1 − τ_min)      h = 1 .. N/2
    τ_h = 2 ((N − h) / N) (1 − τ_min)  h = N/2 + 1 .. N

with ``τ_min = 0.2`` taken from Eramo et al. [20].  We implement the
equation exactly as printed (``variant="literal"``); note that it reaches
``1 − τ_min = 0.8`` at noon and 0 at the boundaries, so ``τ_min`` acts as
a peak-attenuation parameter rather than a floor.  ``variant="floored"``
adds ``τ_min`` throughout (floor ``τ_min``, peak 1.0), the reading
consistent with [20]'s sinusoid, and is offered for sensitivity studies.

To model US time zones, half of the flows (east coast) run three hours
*earlier* than the rest: at simulation hour ``h`` an east-coast flow is
already at local hour ``h + 3``.  Hours outside ``[0, N]`` scale to 0
(outside the modeled working day).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import WorkloadError
from repro.utils.rng import as_generator

__all__ = ["DiurnalModel", "assign_cohorts", "assign_cohorts_spatial"]


@dataclass(frozen=True)
class DiurnalModel:
    """Eq. 9 diurnal scale factor.

    Attributes
    ----------
    num_hours:
        ``N`` in Eq. 9 (the paper uses 12).
    tau_min:
        The ``τ_min`` parameter (the paper uses 0.2).
    variant:
        ``"literal"`` = the equation exactly as published;
        ``"floored"`` = the equation plus ``τ_min`` (floor at τ_min, peak 1).
    """

    num_hours: int = 12
    tau_min: float = 0.2
    variant: str = "literal"

    def __post_init__(self) -> None:
        if self.num_hours < 2 or self.num_hours % 2 != 0:
            raise WorkloadError(
                f"num_hours must be a positive even integer, got {self.num_hours}"
            )
        if not (0.0 <= self.tau_min < 1.0):
            raise WorkloadError(f"tau_min must be in [0, 1), got {self.tau_min}")
        if self.variant not in ("literal", "floored"):
            raise WorkloadError(f"unknown variant {self.variant!r}")

    def scale(self, hour: float) -> float:
        """``τ_h`` for a (possibly fractional or out-of-day) hour."""
        return float(self.scales(np.asarray([hour]))[0])

    def scales(self, hours: np.ndarray) -> np.ndarray:
        """Vectorized ``τ_h``; hours outside ``[0, N]`` scale to zero."""
        h = np.asarray(hours, dtype=np.float64)
        n = float(self.num_hours)
        up = 2.0 * (h / n) * (1.0 - self.tau_min)
        down = 2.0 * ((n - h) / n) * (1.0 - self.tau_min)
        tau = np.where(h <= n / 2.0, up, down)
        inside = (h > 0) & (h <= n)
        tau = np.where(inside, tau, 0.0)
        if self.variant == "floored":
            tau = np.where(inside, tau + self.tau_min, tau)
        return tau

    def pattern(self) -> np.ndarray:
        """``τ_h`` for the integer hours ``0 .. N`` (Fig. 8's base series)."""
        return self.scales(np.arange(self.num_hours + 1))

    def flow_scales(self, hour: float, cohort_offsets: np.ndarray) -> np.ndarray:
        """Per-flow scale at simulation ``hour`` given per-flow hour offsets.

        ``cohort_offsets[i]`` is how far ahead flow ``i``'s local time runs
        (3 for the paper's east-coast cohort, 0 for west).
        """
        offsets = np.asarray(cohort_offsets, dtype=np.float64)
        return self.scales(hour + offsets)

    def peak_hour(self) -> int:
        return self.num_hours // 2


def assign_cohorts_spatial(
    topology,
    flows,
    offset_hours: float = 3.0,
) -> np.ndarray:
    """Per-flow hour offsets correlated with *where* the flow lives.

    Flows whose source host sits in the first half of the data center's
    racks form the early ("east coast") cohort; the rest run on the base
    clock.  Rationale: cloud schedulers place users' jobs with locality,
    so jobs submitted from different time zones occupy different regions
    of the fabric.  Without this spatial correlation, an unweighted
    fat tree under uniformly spread flows has a *static* optimal chain
    placement (the fully central one costs ``(n+5)·Λ`` at every hour) and
    no migration scheme — the paper's or anyone's — can reduce traffic;
    the dynamics of the paper's Figs. 1/3 and 11 presuppose traffic whose
    spatial center of mass moves over the day.  See DESIGN.md §4.
    """
    racks = sorted({topology.rack_of_host(int(h)) for h in topology.hosts})
    early_racks = set(racks[: len(racks) // 2])
    offsets = np.asarray(
        [
            float(offset_hours) if topology.rack_of_host(int(h)) in early_racks else 0.0
            for h in flows.sources
        ]
    )
    return offsets


def assign_cohorts(
    num_flows: int,
    fraction_early: float = 0.5,
    offset_hours: float = 3.0,
    seed: int | np.random.Generator | None = 0,
) -> np.ndarray:
    """Assign per-flow hour offsets: ``fraction_early`` of flows run early.

    Returns an array of offsets in ``{offset_hours, 0}``.  The assignment
    is an exact split (first ``round(fraction * l)`` after shuffling), not
    a Bernoulli draw, so small flow sets keep the intended 50/50 balance.
    """
    if num_flows < 1:
        raise WorkloadError(f"num_flows must be positive, got {num_flows}")
    if not (0.0 <= fraction_early <= 1.0):
        raise WorkloadError(f"fraction_early must be in [0, 1], got {fraction_early}")
    rng = as_generator(seed)
    offsets = np.zeros(num_flows)
    num_early = int(round(fraction_early * num_flows))
    order = rng.permutation(num_flows)
    offsets[order[:num_early]] = float(offset_hours)
    return offsets
