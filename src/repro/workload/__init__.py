"""Workload substrate: VM flows, traffic-rate models, SFCs, diurnal dynamics.

Reproduces the paper's Section VI experiment setup:

* VM pairs placed with 80 % rack locality (Benson et al. [8]);
* per-flow rates drawn from the Facebook-like 25/70/5 light/medium/heavy
  mix over [0, 10000] (Roy et al. [43]);
* SFCs of up to 13 VNFs drawn from the IETF access/application catalog [3];
* the Eq. 9 diurnal scale factor with two coasts 3 hours apart.
"""

from repro.workload.flows import FlowSet, place_vm_pairs
from repro.workload.gravity import gravity_rack_masses, place_vm_pairs_gravity
from repro.workload.sfc import SFC, access_sfc, application_sfc, full_sfc, sfc_of_size
from repro.workload.traffic import (
    FacebookTrafficModel,
    RateBand,
    TrafficModel,
    UniformTrafficModel,
)
from repro.workload.diurnal import DiurnalModel, assign_cohorts, assign_cohorts_spatial
from repro.workload.dynamics import RateProcess, RedrawnRates, ScaledRates
from repro.workload.zoom import ZoomTrafficModel
from repro.workload.arrivals import ArrivalDepartureRates
from repro.workload.stream import FlowChunk, RackTable, StreamingWorkload

__all__ = [
    "FlowSet",
    "place_vm_pairs",
    "place_vm_pairs_gravity",
    "gravity_rack_masses",
    "SFC",
    "access_sfc",
    "application_sfc",
    "full_sfc",
    "sfc_of_size",
    "TrafficModel",
    "FacebookTrafficModel",
    "UniformTrafficModel",
    "RateBand",
    "DiurnalModel",
    "assign_cohorts",
    "assign_cohorts_spatial",
    "RateProcess",
    "ScaledRates",
    "RedrawnRates",
    "ZoomTrafficModel",
    "ArrivalDepartureRates",
    "RackTable",
    "FlowChunk",
    "StreamingWorkload",
]
