"""Hour-to-hour rate processes: how the traffic-rate vector evolves.

The paper describes its dynamic traffic as the Eq. 9 diurnal envelope
applied to flows with Facebook-like rate diversity, but leaves open how
much per-flow *churn* there is hour to hour.  Both readings are
implemented:

* :class:`ScaledRates` — each flow keeps one base rate for the whole day;
  only the diurnal scale (and the cohort offset) changes.  This is the
  most literal reading; note that under it, spatially uniform workloads
  on an unweighted fat tree have a *static* optimal placement (see
  :func:`~repro.workload.diurnal.assign_cohorts_spatial`), so migration
  cannot help by construction.
* :class:`RedrawnRates` — each hour every flow redraws its base rate from
  the traffic model before the diurnal scale is applied.  This models the
  "highly diverse and dynamic" per-flow churn of production traces [43]
  (the same VM pair moves between light/medium/heavy classes over the
  day) and is the regime in which the paper's migration dynamics
  (Fig. 11) are visible.  A ``churn`` fraction < 1 redraws only that
  share of flows each hour, interpolating between the two models.

Processes are deterministic given their seed, and every policy compared
in one experiment sees the exact same rate sequence.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.errors import WorkloadError
from repro.utils.rng import spawn_rngs
from repro.workload.diurnal import DiurnalModel
from repro.workload.flows import FlowSet
from repro.workload.traffic import TrafficModel

__all__ = ["RateProcess", "ScaledRates", "RedrawnRates"]


class RateProcess(ABC):
    """A deterministic per-hour traffic-rate sequence for one flow set."""

    @abstractmethod
    def rates_at(self, hour: int) -> np.ndarray:
        """Effective traffic-rate vector at integer ``hour``."""


class ScaledRates(RateProcess):
    """Fixed base rates, diurnally scaled per cohort."""

    def __init__(
        self,
        flows: FlowSet,
        diurnal: DiurnalModel,
        cohort_offsets: np.ndarray,
    ) -> None:
        offsets = np.asarray(cohort_offsets, dtype=float)
        if offsets.shape != (flows.num_flows,):
            raise WorkloadError(
                f"cohort_offsets shape {offsets.shape} != flow count {flows.num_flows}"
            )
        self.base = flows.rates.copy()
        self.diurnal = diurnal
        self.offsets = offsets

    def rates_at(self, hour: int) -> np.ndarray:
        return self.base * self.diurnal.flow_scales(hour, self.offsets)


class RedrawnRates(RateProcess):
    """Hourly per-flow redraws from a traffic model, diurnally scaled.

    Rates for every hour are pre-drawn at construction from a seeded
    stream, so repeated queries (and different policies) always see
    identical sequences.
    """

    def __init__(
        self,
        flows: FlowSet,
        diurnal: DiurnalModel,
        cohort_offsets: np.ndarray,
        traffic_model: TrafficModel,
        seed: int,
        churn: float = 1.0,
        max_hour: int | None = None,
    ) -> None:
        offsets = np.asarray(cohort_offsets, dtype=float)
        if offsets.shape != (flows.num_flows,):
            raise WorkloadError(
                f"cohort_offsets shape {offsets.shape} != flow count {flows.num_flows}"
            )
        if not (0.0 < churn <= 1.0):
            raise WorkloadError(f"churn must be in (0, 1], got {churn}")
        self.diurnal = diurnal
        self.offsets = offsets
        horizon = (max_hour if max_hour is not None else diurnal.num_hours) + 1
        num_flows = flows.num_flows
        rngs = spawn_rngs(seed, horizon)
        bases = np.empty((horizon, num_flows))
        current = flows.rates.copy()
        for hour in range(horizon):
            fresh = traffic_model.sample(num_flows, rng=rngs[hour])
            if churn >= 1.0:
                current = fresh
            else:
                flip = rngs[hour].random(num_flows) < churn
                current = np.where(flip, fresh, current)
            bases[hour] = current
        self._bases = bases

    def rates_at(self, hour: int) -> np.ndarray:
        if not (0 <= hour < self._bases.shape[0]):
            raise WorkloadError(
                f"hour {hour} beyond the pre-drawn horizon {self._bases.shape[0] - 1}"
            )
        return self._bases[hour] * self.diurnal.flow_scales(hour, self.offsets)
