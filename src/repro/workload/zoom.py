"""A session-structured traffic model after the paper's Zoom motivation.

The introduction motivates dynamic PPDC traffic with Zoom cloud
conferencing: "one Zoom Meeting Connector VM could support 200 meetings
simultaneously with up to 1000 participants in a meeting.  Different
Zoom meetings could have a dramatically different number of participants
... resulting in diverse and dynamic cloud traffic."

:class:`ZoomTrafficModel` renders that structure as a generative model a
flow's rate can be drawn from:

* each flow is a *meeting connector* serving a random number of
  concurrent meetings (truncated geometric, up to ``max_meetings``);
* each meeting has a participant count from a heavy-tailed (Zipf-like)
  distribution truncated at ``max_participants``;
* each participant contributes ``rate_per_participant`` units, and the
  meeting's media mix (video / voice / text) scales that contribution.

The resulting marginal is heavy-tailed with occasional very large flows
— more extreme than the Facebook 25/70/5 mix — and is used as an
alternative rate model in sensitivity studies.  Rates are clipped to the
paper's global [0, ``rate_cap``] range so both models are comparable.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import WorkloadError
from repro.utils.rng import as_generator
from repro.workload.traffic import TrafficModel

__all__ = ["ZoomTrafficModel"]

#: media-mix multipliers: (share, rate multiplier)
_MEDIA_MIX = (
    ("video", 0.5, 1.0),
    ("voice", 0.35, 0.25),
    ("text", 0.15, 0.02),
)


@dataclass(frozen=True)
class ZoomTrafficModel(TrafficModel):
    """Heavy-tailed meeting-connector traffic (see module docstring)."""

    max_meetings: int = 200
    max_participants: int = 1000
    mean_meetings: float = 8.0
    participant_zipf_a: float = 1.6
    rate_per_participant: float = 2.0
    rate_cap: float = 10000.0

    def __post_init__(self) -> None:
        if self.max_meetings < 1 or self.max_participants < 1:
            raise WorkloadError("meeting and participant caps must be positive")
        if self.mean_meetings <= 0:
            raise WorkloadError(f"mean_meetings must be positive, got {self.mean_meetings}")
        if self.participant_zipf_a <= 1.0:
            raise WorkloadError(
                f"participant_zipf_a must exceed 1, got {self.participant_zipf_a}"
            )
        if self.rate_per_participant <= 0 or self.rate_cap <= 0:
            raise WorkloadError("rates must be positive")

    def sample(self, count: int, rng: int | np.random.Generator | None = None) -> np.ndarray:
        if count < 1:
            raise WorkloadError(f"count must be positive, got {count}")
        gen = as_generator(rng)
        rates = np.empty(count)
        shares = np.asarray([share for _, share, _ in _MEDIA_MIX])
        multipliers = np.asarray([mult for _, _, mult in _MEDIA_MIX])
        for i in range(count):
            meetings = int(
                min(self.max_meetings, 1 + gen.geometric(1.0 / self.mean_meetings))
            )
            participants = np.minimum(
                gen.zipf(self.participant_zipf_a, size=meetings),
                self.max_participants,
            )
            media = gen.choice(len(_MEDIA_MIX), size=meetings, p=shares)
            load = float(
                (participants * multipliers[media]).sum() * self.rate_per_participant
            )
            rates[i] = min(load, self.rate_cap)
        return rates

    def describe(self) -> str:
        return (
            f"ZoomTrafficModel(meetings<= {self.max_meetings}, "
            f"participants<= {self.max_participants}, cap={self.rate_cap:g})"
        )
