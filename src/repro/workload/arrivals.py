"""Flow arrival/departure dynamics: the paper's "new users join" case.

Section V notes that "new users join for the first time [35] is a
special case of TOM, wherein their traffic rates change from zero to
some positive values".  :class:`ArrivalDepartureRates` renders that as a
rate process: each flow has an activity window — it *arrives* at a
random hour and *departs* after an exponential-ish holding time — and
contributes its (diurnally scaled) rate only while active.  Flows that
never arrived yet, or already left, contribute exactly zero, so the
placement algorithms see rates switching 0 → λ → 0 over the day.
"""

from __future__ import annotations

import numpy as np

from repro.errors import WorkloadError
from repro.utils.rng import as_generator
from repro.workload.diurnal import DiurnalModel
from repro.workload.dynamics import RateProcess
from repro.workload.flows import FlowSet

__all__ = ["ArrivalDepartureRates"]


class ArrivalDepartureRates(RateProcess):
    """Rates gated by per-flow activity windows.

    Parameters
    ----------
    flows:
        The VM pairs with their base (peak) rates.
    diurnal:
        The Eq. 9 envelope applied on top of the activity gating.
    cohort_offsets:
        Per-flow time-zone offsets, as elsewhere.
    mean_holding_hours:
        Mean session length; holding times are geometric with this mean
        (discrete hours), truncated to at least one hour.
    always_on_fraction:
        Share of flows active for the whole day (long-lived services).
    seed:
        Seeds arrivals and holding times.
    """

    def __init__(
        self,
        flows: FlowSet,
        diurnal: DiurnalModel,
        cohort_offsets: np.ndarray,
        mean_holding_hours: float = 4.0,
        always_on_fraction: float = 0.25,
        seed: int | np.random.Generator | None = 0,
    ) -> None:
        offsets = np.asarray(cohort_offsets, dtype=float)
        if offsets.shape != (flows.num_flows,):
            raise WorkloadError(
                f"cohort_offsets shape {offsets.shape} != flow count {flows.num_flows}"
            )
        if mean_holding_hours <= 0:
            raise WorkloadError(
                f"mean_holding_hours must be positive, got {mean_holding_hours}"
            )
        if not (0.0 <= always_on_fraction <= 1.0):
            raise WorkloadError(
                f"always_on_fraction must be in [0, 1], got {always_on_fraction}"
            )
        gen = as_generator(seed)
        num_flows = flows.num_flows
        n_hours = diurnal.num_hours

        arrivals = gen.integers(1, n_hours + 1, size=num_flows).astype(float)
        holding = np.maximum(
            1, gen.geometric(min(1.0, 1.0 / mean_holding_hours), size=num_flows)
        ).astype(float)
        departures = arrivals + holding
        always_on = gen.random(num_flows) < always_on_fraction
        arrivals[always_on] = 0.0
        departures[always_on] = float(n_hours) + 1.0

        self.base = flows.rates.copy()
        self.diurnal = diurnal
        self.offsets = offsets
        self.arrivals = arrivals
        self.departures = departures

    def active_at(self, hour: int) -> np.ndarray:
        """Boolean mask of flows active at integer ``hour``."""
        h = float(hour)
        return (self.arrivals <= h) & (h < self.departures)

    def rates_at(self, hour: int) -> np.ndarray:
        scales = self.diurnal.flow_scales(hour, self.offsets)
        return np.where(self.active_at(hour), self.base * scales, 0.0)

    def churn_between(self, hour_a: int, hour_b: int) -> int:
        """How many flows arrive or depart in the half-open span ``(a, b]``."""
        if hour_b < hour_a:
            raise WorkloadError("hour_b must be >= hour_a")
        arrivals = int(
            np.count_nonzero((self.arrivals > hour_a) & (self.arrivals <= hour_b))
        )
        departures = int(
            np.count_nonzero((self.departures > hour_a) & (self.departures <= hour_b))
        )
        return arrivals + departures
