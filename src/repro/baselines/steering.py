"""Steering [55]: dependency-degree ordered VNF placement.

Steering (Zhang et al., ICNP 2013) models services as dependent when they
appear consecutively in a requested chain, weighs each dependency by the
traffic crossing it, then repeatedly "picks the service with the highest
dependency degree and finds its best location (i.e., minimizing the
average time) until all services are placed".

**Single-SFC degeneration.**  In the paper's setting every inter-VNF
dependency carries the same aggregate traffic ``Λ``, so the
dependency-degree ordering gives Steering no usable signal about chain
adjacency: when a service is placed, its chain neighbours are as likely
unplaced as placed, and its "best location" reduces to the switch
minimizing the average subscriber delay — the p-median-style score
``a_in[q] + a_out[q]``.  Steering therefore selects the ``n``
individually best (distinct) switches and the SFC visits them in chain
order, paying whatever inter-VNF zigzag that ordering implies.  This is
exactly why the paper's DP — which optimizes the chain as a whole —
beats it by large margins.

``chain_aware=True`` switches to the charitable reading in which services
are processed in chain order and each placement sees its already-placed
predecessor (a compact-chain greedy).  Both variants are compared in the
baseline ablation.
"""

from __future__ import annotations

import numpy as np

from repro._compat import legacy_signature
from repro.core.costs import CostContext, validate_placement
from repro.core.placement import chain_size
from repro.core.types import PlacementResult
from repro.errors import InfeasibleError
from repro.runtime.cache import ComputeCache
from repro.topology.base import Topology
from repro.workload.flows import FlowSet
from repro.workload.sfc import SFC

__all__ = ["steering_placement"]


@legacy_signature("chain_aware")
def steering_placement(
    topology: Topology,
    flows: FlowSet,
    sfc: SFC | int,
    *,
    chain_aware: bool = False,
    cache: ComputeCache | None = None,
) -> PlacementResult:
    """Place the chain with Steering's greedy rule (see module docstring)."""
    n = chain_size(sfc)
    if n > topology.num_switches:
        raise InfeasibleError(
            f"SFC of {n} VNFs cannot be placed on {topology.num_switches} switches"
        )
    ctx = CostContext(topology, flows, cache=cache)
    sw = ctx.switches
    a_in = ctx.ingress_attraction[sw]
    a_out = ctx.egress_attraction[sw]
    sdist = ctx.distances[np.ix_(sw, sw)]
    lam = ctx.total_rate

    used = np.zeros(sw.size, dtype=bool)
    chosen: list[int] = []
    for j in range(n):
        if chain_aware:
            if j == 0:
                score = a_in.copy()
            else:
                score = lam * sdist[chosen[-1]].copy()
            if j == n - 1:
                score = score + a_out
        else:
            # single-SFC degeneration: every service scores locations by
            # average subscriber delay, independent of the chain
            score = a_in + a_out
            score = score.astype(float).copy()
        score[used] = np.inf
        pick = int(np.argmin(score))
        used[pick] = True
        chosen.append(pick)

    placement = sw[np.asarray(chosen, dtype=np.int64)]
    validate_placement(topology, placement, n)
    return PlacementResult(
        placement=placement,
        cost=ctx.communication_cost(placement),
        algorithm="steering" if not chain_aware else "steering-chain-aware",
        extra={"chain_aware": chain_aware},
    )
