"""PLAN [17]: utility-driven policy-aware VM migration (Cui et al., TPDS 2017).

PLAN "migrates VMs to hosts with available resources to maximize the
utility, which is the reduction of the VM's communication cost minus its
migration cost".  With a fixed VNF placement, a VM's communication cost
depends only on the distance from its host to its anchor switch (the SFC
ingress for source VMs, the egress for destination VMs), so the utility
of moving VM ``v`` (rate ``λ``) from host ``h`` to host ``h'`` is

    u(v, h') = λ · (c(h, anchor) − c(h', anchor)) − μ_vm · c(h, h')

PLAN greedily applies the highest-utility feasible move, host capacities
permitting, each VM moving at most once per invocation.
"""

from __future__ import annotations

import heapq

import numpy as np

from repro.baselines.common import (
    VMMigrationResult,
    apply_vm_moves,
    resolve_host_capacity,
    vm_table,
)
from repro._compat import legacy_signature
from repro.core.costs import CostContext, validate_placement
from repro.runtime.cache import ComputeCache
from repro.topology.base import Topology
from repro.workload.flows import FlowSet

__all__ = ["plan_vm_migration"]


@legacy_signature("host_capacity")
def plan_vm_migration(
    topology: Topology,
    flows: FlowSet,
    vnf_placement: np.ndarray,
    mu_vm: float,
    *,
    host_capacity: int | np.ndarray | None = None,
    cache: ComputeCache | None = None,
) -> VMMigrationResult:
    """One PLAN migration round under the new traffic rates in ``flows``."""
    placement = validate_placement(topology, vnf_placement)
    ctx = CostContext(topology, flows, cache=cache)
    hosts_arr = topology.hosts
    dist = ctx.distances
    capacity = resolve_host_capacity(topology, flows, host_capacity)

    vm_hosts, anchors, rates, _ = vm_table(flows, int(placement[0]), int(placement[-1]))
    num_vms = vm_hosts.size
    host_pos = {int(h): i for i, h in enumerate(hosts_arr)}
    occupancy = np.bincount(
        [host_pos[int(h)] for h in vm_hosts], minlength=hosts_arr.size
    )

    # utility[v, h'] = λ_v (c(h_v, a_v) − c(h', a_v)) − μ_vm c(h_v, h')
    current_cost = rates * dist[vm_hosts, anchors]
    candidate_cost = rates[:, None] * dist[anchors][:, hosts_arr]
    move_cost = mu_vm * dist[vm_hosts][:, hosts_arr]
    utility = current_cost[:, None] - candidate_cost - move_cost

    # best-first greedy: a max-heap of (utility, vm, host position)
    heap: list[tuple[float, int, int]] = []
    best_targets = np.argsort(-utility, axis=1)[:, :8]  # top-8 per VM is plenty
    for v in range(num_vms):
        for pos in best_targets[v]:
            if utility[v, pos] > 0:
                heapq.heappush(heap, (-float(utility[v, pos]), v, int(pos)))

    new_hosts = vm_hosts.copy()
    moved = np.zeros(num_vms, dtype=bool)
    while heap:
        neg_u, v, pos = heapq.heappop(heap)
        if moved[v]:
            continue
        target = int(hosts_arr[pos])
        if target == new_hosts[v]:
            continue
        if occupancy[pos] >= capacity[pos]:
            continue
        occupancy[pos] += 1
        occupancy[host_pos[int(new_hosts[v])]] -= 1
        new_hosts[v] = target
        moved[v] = True

    new_flows, moved_mask = apply_vm_moves(flows, new_hosts)
    migration_cost = float(mu_vm * dist[vm_hosts[moved_mask], new_hosts[moved_mask]].sum())
    new_ctx = ctx.with_flows(new_flows)
    comm = new_ctx.communication_cost(placement)
    return VMMigrationResult(
        flows=new_flows,
        vnf_placement=placement,
        cost=comm + migration_cost,
        communication_cost=comm,
        migration_cost=migration_cost,
        num_migrated=int(moved_mask.sum()),
        algorithm="plan",
        extra={"free_capacity": int((capacity - occupancy).sum())},
    )
