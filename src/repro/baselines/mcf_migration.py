"""MCF [24]: VM migration as a minimum-cost flow (Flores et al., INFOCOM 2020).

Flores et al. observe that minimizing the total communication + migration
cost of the VMs is a minimum cost flow problem.  With a fixed VNF
placement, every VM's communication cost depends only on its own host
(the per-endpoint separation described in :mod:`repro.baselines.common`),
so the instance is a transportation problem:

* one unit of supply per VM;
* one arc per (VM, candidate host) with cost
  ``λ · c(host, anchor) + μ_vm · c(current, host)``;
* per-host capacities.

Because every VM ships exactly one unit, the transportation instance is
an *assignment* problem: expanding each candidate host into one column
per free slot makes it a rectangular linear-sum assignment, solved
exactly at C speed by :func:`scipy.optimize.linear_sum_assignment`
(cross-checked against the library's own successive-shortest-path
solver in the tests).  Two standard reductions shrink it further
without changing the optimum in practice: VMs for which staying put is
already their unconstrained best choice are fixed (their slots are
reserved first), and each remaining VM offers only its ``top_k``
cheapest hosts plus its current host as candidates.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.common import (
    VMMigrationResult,
    apply_vm_moves,
    resolve_host_capacity,
    vm_table,
)
from repro._compat import legacy_signature
from repro.core.costs import CostContext, validate_placement
from repro.errors import InfeasibleError
from repro.runtime.cache import ComputeCache
from repro.topology.base import Topology
from repro.workload.flows import FlowSet

__all__ = ["mcf_vm_migration"]


def _assign_with_slots(cost_matrix: np.ndarray, capacity: np.ndarray) -> np.ndarray:
    """Exact min-cost unit assignment under column capacities.

    Expands each column into ``capacity[j]`` slot columns and solves the
    rectangular linear-sum assignment (Jonker–Volgenant via scipy).
    Returns, per row, the index of the chosen *original* column.
    """
    from scipy.optimize import linear_sum_assignment

    rows, cols = cost_matrix.shape
    caps = np.asarray(capacity, dtype=np.int64)
    if caps.shape != (cols,):
        raise InfeasibleError("capacity vector misaligned with cost matrix")
    if caps.sum() < rows:
        raise InfeasibleError(
            f"{rows} movers but only {caps.sum()} free slots among candidates"
        )
    slot_owner = np.repeat(np.arange(cols), caps)
    expanded = cost_matrix[:, slot_owner]
    row_idx, col_idx = linear_sum_assignment(expanded)
    chosen = np.empty(rows, dtype=np.int64)
    chosen[row_idx] = slot_owner[col_idx]
    return chosen


@legacy_signature("host_capacity", "top_k")
def mcf_vm_migration(
    topology: Topology,
    flows: FlowSet,
    vnf_placement: np.ndarray,
    mu_vm: float,
    *,
    host_capacity: int | np.ndarray | None = None,
    top_k: int = 8,
    cache: ComputeCache | None = None,
) -> VMMigrationResult:
    """One MCF migration round under the new traffic rates in ``flows``."""
    placement = validate_placement(topology, vnf_placement)
    ctx = CostContext(topology, flows, cache=cache)
    hosts_arr = topology.hosts
    dist = ctx.distances
    capacity = resolve_host_capacity(topology, flows, host_capacity)

    vm_hosts, anchors, rates, _ = vm_table(flows, int(placement[0]), int(placement[-1]))
    num_vms = vm_hosts.size
    host_pos = {int(h): i for i, h in enumerate(hosts_arr)}
    cur_pos = np.asarray([host_pos[int(h)] for h in vm_hosts], dtype=np.int64)

    # total per-VM cost of ending up at each host
    comm = rates[:, None] * dist[anchors][:, hosts_arr]
    move = mu_vm * dist[vm_hosts][:, hosts_arr]
    total = comm + move

    # VMs whose unconstrained argmin is their current host stay put; their
    # occupancy is charged against capacity before the flow runs.
    stays = total.argmin(axis=1) == cur_pos
    remaining_capacity = capacity.copy()
    for pos in cur_pos[stays]:
        remaining_capacity[pos] -= 1
    if np.any(remaining_capacity < 0):
        raise InfeasibleError(
            "host capacity is below current occupancy; raise host_capacity"
        )

    movers = np.flatnonzero(~stays)
    new_hosts = vm_hosts.copy()
    if movers.size:
        # sparse candidate set: top_k cheapest hosts plus the current host
        k = min(top_k, hosts_arr.size)
        candidate_pos = np.argsort(total[movers], axis=1)[:, :k]
        candidate_set = sorted(set(candidate_pos.ravel().tolist()) | set(cur_pos[movers].tolist()))
        col_of = {pos: i for i, pos in enumerate(candidate_set)}
        cols = np.asarray(candidate_set, dtype=np.int64)

        big = 1.0 + float(np.max(total[movers][:, cols])) * (movers.size + 1)
        cost_matrix = np.full((movers.size, cols.size), big)
        for row, v in enumerate(movers):
            for pos in candidate_pos[row]:
                cost_matrix[row, col_of[int(pos)]] = total[v, int(pos)]
            cur = int(cur_pos[v])
            cost_matrix[row, col_of[cur]] = total[v, cur]

        chosen_pos = _assign_with_slots(
            cost_matrix, remaining_capacity[cols]
        )
        for row, v in enumerate(movers):
            new_hosts[v] = int(hosts_arr[cols[chosen_pos[row]]])

    new_flows, moved_mask = apply_vm_moves(flows, new_hosts)
    migration_cost = float(mu_vm * dist[vm_hosts[moved_mask], new_hosts[moved_mask]].sum())
    new_ctx = ctx.with_flows(new_flows)
    comm_cost = new_ctx.communication_cost(placement)
    return VMMigrationResult(
        flows=new_flows,
        vnf_placement=placement,
        cost=comm_cost + migration_cost,
        communication_cost=comm_cost,
        migration_cost=migration_cost,
        num_migrated=int(moved_mask.sum()),
        algorithm="mcf",
        extra={"free_capacity": int(capacity.sum()) - num_vms, "movers": int(movers.size)},
    )
