"""Shared machinery for the VM-migration baselines (PLAN and MCF).

Both baselines keep the VNF placement fixed and relocate *VMs*.  Because
every flow's cost separates per endpoint
(``λ_i·(c(s(v_i), p(1)) + chain + c(p(n), s(v'_i)))``), each VM's
contribution depends only on its own host and its *anchor* — the ingress
switch for source VMs, the egress switch for destination VMs.  The
:func:`vm_table` helper flattens a flow set into that per-VM view; the
baselines then differ only in how they pick destination hosts.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import MigrationError
from repro.topology.base import Topology
from repro.workload.flows import FlowSet

__all__ = [
    "VMMigrationResult",
    "vm_table",
    "host_occupancy",
    "default_host_capacity",
    "resolve_host_capacity",
    "apply_vm_moves",
]


@dataclass(frozen=True)
class VMMigrationResult:
    """Outcome of a VM-migration baseline round.

    ``cost = communication_cost + migration_cost`` mirrors
    :class:`~repro.core.types.MigrationResult` so Fig. 11 can tabulate VNF
    and VM approaches side by side; ``num_migrated`` counts moved VMs.
    """

    flows: FlowSet
    vnf_placement: np.ndarray
    cost: float
    communication_cost: float
    migration_cost: float
    num_migrated: int
    algorithm: str
    extra: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        arr = np.asarray(self.vnf_placement, dtype=np.int64)
        arr.setflags(write=False)
        object.__setattr__(self, "vnf_placement", arr)
        if abs((self.communication_cost + self.migration_cost) - self.cost) > 1e-6 * max(
            1.0, abs(self.cost)
        ):
            raise MigrationError(
                "cost must equal communication_cost + migration_cost "
                f"({self.communication_cost} + {self.migration_cost} != {self.cost})"
            )

    @property
    def placement(self) -> np.ndarray:
        """The (unchanged) VNF placement (common result surface)."""
        return self.vnf_placement

    @property
    def meta(self) -> dict:
        """Algorithm id, cost breakdown, and diagnostics in one dict."""
        return {
            "algorithm": self.algorithm,
            "communication_cost": float(self.communication_cost),
            "migration_cost": float(self.migration_cost),
            "num_migrated": int(self.num_migrated),
            **self.extra,
        }

    def to_dict(self) -> dict:
        """JSON-friendly view: ``{placement, cost, meta}``."""
        return {
            "placement": self.vnf_placement.tolist(),
            "cost": float(self.cost),
            "meta": self.meta,
        }


def vm_table(
    flows: FlowSet, ingress: int, egress: int
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Flatten a flow set into per-VM arrays ``(hosts, anchors, rates, flow_ids)``.

    Row ``i < l`` is flow ``i``'s source VM (anchored at the ingress
    switch); row ``l + i`` is its destination VM (anchored at the egress).
    """
    l = flows.num_flows
    hosts = np.concatenate([flows.sources, flows.destinations]).astype(np.int64)
    anchors = np.concatenate(
        [np.full(l, ingress, dtype=np.int64), np.full(l, egress, dtype=np.int64)]
    )
    rates = np.concatenate([flows.rates, flows.rates])
    flow_ids = np.concatenate([np.arange(l), np.arange(l)])
    return hosts, anchors, rates, flow_ids


def host_occupancy(topology: Topology, flows: FlowSet) -> np.ndarray:
    """VMs currently on each host, indexed by host *position* in ``topology.hosts``."""
    counts = np.bincount(
        np.concatenate([flows.sources, flows.destinations]),
        minlength=topology.graph.num_nodes,
    )
    return counts[topology.hosts]


def default_host_capacity(
    topology: Topology, flows: FlowSet, free_slots: int = 1
) -> np.ndarray:
    """Per-host VM capacity: current occupancy plus ``free_slots``.

    The paper only says baselines migrate "to hosts with available
    resources"; production data centers run near capacity, so the model
    gives every host a small number of free slots rather than unlimited
    room — otherwise VM migration could co-locate the entire workload
    next to the service chain, which no operator allows.  Returned as a
    vector indexed by host position.
    """
    if free_slots < 0:
        raise MigrationError(f"free_slots must be non-negative, got {free_slots}")
    return host_occupancy(topology, flows) + free_slots


def resolve_host_capacity(
    topology: Topology,
    flows: FlowSet,
    host_capacity: int | np.ndarray | None,
) -> np.ndarray:
    """Normalize a capacity spec (scalar / vector / None) to a per-host vector."""
    if host_capacity is None:
        return default_host_capacity(topology, flows)
    if np.isscalar(host_capacity):
        cap = np.full(topology.num_hosts, int(host_capacity), dtype=np.int64)
    else:
        cap = np.asarray(host_capacity, dtype=np.int64)
        if cap.shape != (topology.num_hosts,):
            raise MigrationError(
                f"capacity vector shape {cap.shape} != host count {topology.num_hosts}"
            )
    occupancy = host_occupancy(topology, flows)
    if np.any(cap < occupancy):
        raise MigrationError(
            "host capacity is below current occupancy on some hosts"
        )
    return cap


def apply_vm_moves(
    flows: FlowSet, new_hosts: np.ndarray
) -> tuple[FlowSet, np.ndarray]:
    """Rebuild a flow set from a per-VM host assignment (see :func:`vm_table`).

    Returns ``(new_flows, moved_mask)`` where ``moved_mask`` is per-VM.
    """
    l = flows.num_flows
    hosts = np.asarray(new_hosts, dtype=np.int64)
    if hosts.shape != (2 * l,):
        raise MigrationError(
            f"expected one host per VM ({2 * l}), got shape {hosts.shape}"
        )
    old = np.concatenate([flows.sources, flows.destinations])
    moved = hosts != old
    new_flows = flows.with_endpoints(hosts[:l], hosts[l:])
    return new_flows, moved
