"""Re-implementations of the state-of-the-art systems the paper compares to.

VNF placement (Fig. 9, Fig. 10):

* ``steering`` — Steering, Zhang et al. ICNP 2013 [55]
* ``greedy_liu`` — the two-step greedy of Liu et al. TSC 2017 [34]

VM migration (Fig. 11):

* ``plan`` — PLAN, Cui et al. TPDS 2017 [17]
* ``mcf_migration`` — the min-cost-flow formulation of Flores et al.
  INFOCOM 2020 [24]
* ``no-migration`` lives in :mod:`repro.core.migration` (it is the
  degenerate point of the migration problem, not an external system).

Each baseline is implemented from the description in the paper's §VI plus
the cited source's decision rule, and is priced through the exact same
:class:`~repro.core.costs.CostContext` as our algorithms.
"""

from repro.baselines.common import VMMigrationResult, default_host_capacity, vm_table
from repro.baselines.steering import steering_placement
from repro.baselines.greedy_liu import greedy_liu_placement
from repro.baselines.plan import plan_vm_migration
from repro.baselines.random_placement import random_placement, random_placement_quantiles
from repro.baselines.mcf_migration import mcf_vm_migration

__all__ = [
    "VMMigrationResult",
    "default_host_capacity",
    "vm_table",
    "steering_placement",
    "greedy_liu_placement",
    "plan_vm_migration",
    "random_placement",
    "random_placement_quantiles",
    "mcf_vm_migration",
]
