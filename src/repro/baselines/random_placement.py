"""Random placement: the zero-information control baseline.

Not part of the paper's comparison set, but indispensable for sanity:
every real algorithm must beat a uniformly random distinct placement,
and the gap to random calibrates how much headroom an instance offers
(flat unit fat trees leave surprisingly little — see DESIGN.md §4b).
"""

from __future__ import annotations

import numpy as np

from repro._compat import legacy_signature
from repro.core.costs import CostContext, validate_placement
from repro.core.placement import chain_size
from repro.core.types import PlacementResult
from repro.errors import InfeasibleError
from repro.runtime.cache import ComputeCache
from repro.topology.base import Topology
from repro.utils.rng import as_generator
from repro.workload.flows import FlowSet
from repro.workload.sfc import SFC

__all__ = ["random_placement", "random_placement_quantiles"]


@legacy_signature("seed", renames={"rng": "seed"})
def random_placement(
    topology: Topology,
    flows: FlowSet,
    sfc: SFC | int,
    *,
    seed: int | np.random.Generator | None = 0,
    cache: ComputeCache | None = None,
) -> PlacementResult:
    """A uniformly random distinct placement, priced like every algorithm."""
    n = chain_size(sfc)
    if n > topology.num_switches:
        raise InfeasibleError(
            f"SFC of {n} VNFs cannot be placed on {topology.num_switches} switches"
        )
    gen = as_generator(seed)
    placement = gen.choice(topology.switches, size=n, replace=False)
    validate_placement(topology, placement, n)
    ctx = CostContext(topology, flows, cache=cache)
    return PlacementResult(
        placement=placement,
        cost=ctx.communication_cost(placement),
        algorithm="random",
    )


@legacy_signature("samples", "seed", renames={"rng": "seed"})
def random_placement_quantiles(
    topology: Topology,
    flows: FlowSet,
    sfc: SFC | int,
    *,
    samples: int = 200,
    seed: int = 0,
    cache: ComputeCache | None = None,
) -> dict[str, float]:
    """Cost distribution of random placements: min / median / mean / max.

    Gives an instance's *headroom profile*: how much worse than the
    median random placement can a bad placement be, and how close to the
    best random draw do the real algorithms land.
    """
    if samples < 1:
        raise InfeasibleError(f"samples must be positive, got {samples}")
    gen = as_generator(seed)
    costs = np.asarray(
        [
            random_placement(topology, flows, sfc, seed=gen, cache=cache).cost
            for _ in range(samples)
        ]
    )
    return {
        "min": float(costs.min()),
        "median": float(np.median(costs)),
        "mean": float(costs.mean()),
        "max": float(costs.max()),
        "samples": float(samples),
    }
