"""Greedy [34]: the two-step middlebox placement of Liu et al. (TSC 2017).

Liu et al. sort middleboxes by an *importance factor* (how many policies
use them) and then place each at the switch with the lowest *cost score*:
"the increment of the total end-to-end delay by adding this MB plus the
weighted average delay of all unplaced MBs to this MB".

**Single-SFC degeneration.**  With one SFC every middlebox has the same
importance, so the sorted processing order is arbitrary and carries no
chain-adjacency information (matching
:mod:`repro.baselines.steering`); what distinguishes Greedy is its cost
score.  For a middlebox at switch ``q`` we charge

* the realized increment — the subscriber delay ``a_in[q] + a_out[q]``
  (the only end-to-end delay measurable when the MB's chain neighbours
  are not yet placed);
* the look-ahead — the remaining unplaced MBs assumed at an average
  position: ``(#unplaced) · Λ · mean_w c(q, w)``.

The look-ahead pushes Greedy off the network edge (unlike Steering) but
is distance-to-everywhere rather than distance-to-where-the-chain-goes,
so like Steering it pays an uncoordinated inter-VNF zigzag — the reason
the paper's DP beats both by large margins (and Greedy slightly more:
the look-ahead drags every MB toward the global mean instead of letting
the chain settle on the subscribers' centre of mass).

``chain_aware=True`` processes middleboxes in chain order with the
predecessor-distance increment (the charitable compact-chain reading).
"""

from __future__ import annotations

import numpy as np

from repro._compat import legacy_signature
from repro.core.costs import CostContext, validate_placement
from repro.core.placement import chain_size
from repro.core.types import PlacementResult
from repro.errors import InfeasibleError
from repro.runtime.cache import ComputeCache
from repro.topology.base import Topology
from repro.workload.flows import FlowSet
from repro.workload.sfc import SFC

__all__ = ["greedy_liu_placement"]


@legacy_signature("chain_aware")
def greedy_liu_placement(
    topology: Topology,
    flows: FlowSet,
    sfc: SFC | int,
    *,
    chain_aware: bool = False,
    cache: ComputeCache | None = None,
) -> PlacementResult:
    """Place the chain with Liu et al.'s cost-score greedy."""
    n = chain_size(sfc)
    if n > topology.num_switches:
        raise InfeasibleError(
            f"SFC of {n} VNFs cannot be placed on {topology.num_switches} switches"
        )
    ctx = CostContext(topology, flows, cache=cache)
    sw = ctx.switches
    a_in = ctx.ingress_attraction[sw]
    a_out = ctx.egress_attraction[sw]
    sdist = ctx.distances[np.ix_(sw, sw)]
    lam = ctx.total_rate
    # average delay from each switch, over *reachable* peers only: on a
    # degraded view the failed switches' inf columns would otherwise push
    # every row's mean to inf (and 0 * inf to nan on the last VNF, which
    # argmin would then pick), collapsing the score to pure noise
    finite = np.isfinite(sdist)
    reachable = finite.any(axis=1)
    mean_delay = np.where(
        finite.all(axis=1),
        np.where(finite, sdist, 0.0).mean(axis=1),
        np.where(finite, sdist, 0.0).sum(axis=1) / np.maximum(finite.sum(axis=1), 1),
    )

    used = np.zeros(sw.size, dtype=bool)
    chosen: list[int] = []
    for j in range(n):
        if chain_aware:
            if j == 0:
                increment = a_in.copy()
            else:
                increment = lam * sdist[chosen[-1]].copy()
            if j == n - 1:
                increment = increment + a_out
        else:
            # chain-blind increment: only the subscriber delay is
            # measurable when the MB's chain neighbours are unplaced
            increment = (a_in + a_out).astype(float).copy()
        lookahead = (n - 1 - j) * lam * mean_delay
        score = increment + lookahead
        score[~reachable] = np.inf  # fully isolated switches are not candidates
        score[used] = np.inf
        pick = int(np.argmin(score))
        used[pick] = True
        chosen.append(pick)

    placement = sw[np.asarray(chosen, dtype=np.int64)]
    validate_placement(topology, placement, n)
    return PlacementResult(
        placement=placement,
        cost=ctx.communication_cost(placement),
        algorithm="greedy" if not chain_aware else "greedy-chain-aware",
        extra={"chain_aware": chain_aware},
    )
