"""Exception hierarchy for :mod:`repro`.

Every error raised deliberately by this library derives from
:class:`ReproError`, so callers can catch the whole family with one clause
while still being able to distinguish configuration mistakes from
infeasible problem instances.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class GraphError(ReproError):
    """A graph is malformed or an operation references unknown nodes."""


class TopologyError(ReproError):
    """A topology builder received inconsistent or unsupported parameters."""


class WorkloadError(ReproError):
    """A workload (flows, traffic model, SFC) is inconsistent."""


class PlacementError(ReproError):
    """A VNF placement is infeasible or violates the distinctness rule."""


class MigrationError(ReproError):
    """A VNF/VM migration request cannot be satisfied."""


class InfeasibleError(ReproError):
    """The problem instance admits no feasible solution.

    Raised, for example, when an SFC has more VNFs than there are switches,
    or when a min-cost-flow instance cannot route the required amount.
    """


class BudgetExceededError(ReproError):
    """An exact solver was asked to explore a search space beyond its guard.

    The exhaustive solvers (Algorithms 4 and 6 in the paper) are
    ``O(|V_s|^n)``; this error is raised instead of silently running for
    hours when the instance exceeds the configured node budget.
    """


class SolverError(ReproError):
    """An internal solver reached an inconsistent state (library bug)."""
