"""Exception hierarchy for :mod:`repro`.

Every error raised deliberately by this library derives from
:class:`ReproError`, so callers can catch the whole family with one clause
while still being able to distinguish configuration mistakes from
infeasible problem instances.
"""

from __future__ import annotations

import builtins


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class GraphError(ReproError):
    """A graph is malformed or an operation references unknown nodes."""


class TopologyError(ReproError):
    """A topology builder received inconsistent or unsupported parameters."""


class WorkloadError(ReproError):
    """A workload (flows, traffic model, SFC) is inconsistent."""


class PlacementError(ReproError):
    """A VNF placement is infeasible or violates the distinctness rule."""


class MigrationError(ReproError):
    """A VNF/VM migration request cannot be satisfied."""


class FaultError(ReproError):
    """A fault-injection request is malformed or unsupported.

    Raised by the :mod:`repro.faults` layer for invalid fault
    configurations and by policies that cannot run under a fault-aware
    simulation (the VM-migration baselines keep per-host capacity state
    that has no defined semantics when hosts die mid-day).
    """


class ConstraintError(ReproError):
    """A :class:`~repro.constraints.Constraints` object is malformed.

    Raised eagerly at construction time (zero or negative capacities,
    non-finite bounds, negative occupancy) — a malformed constraint set
    is a configuration mistake, distinct from a well-formed but
    unsatisfiable instance (:class:`InfeasibleError`).
    """


class InfeasibleError(ReproError):
    """The problem instance admits no feasible solution.

    Raised, for example, when an SFC has more VNFs than there are switches,
    or when a min-cost-flow instance cannot route the required amount.

    ``diagnosis`` optionally carries a JSON-friendly dict explaining *why*
    the instance is infeasible (the fault-aware simulator fills it with
    the failed-switch set, surviving component and the hour it happened,
    so an experiment sweep can report the event instead of crashing).
    """

    def __init__(self, message: str, *, diagnosis: dict | None = None) -> None:
        super().__init__(message)
        #: structured explanation of the infeasibility (may be empty)
        self.diagnosis: dict = diagnosis if diagnosis is not None else {}


class BudgetExceededError(ReproError):
    """An exact solver was asked to explore a search space beyond its guard.

    The exhaustive solvers (Algorithms 4 and 6 in the paper) are
    ``O(|V_s|^n)``; this error is raised instead of silently running for
    hours when the instance exceeds the configured node budget.
    """


class SolverError(ReproError):
    """An internal solver reached an inconsistent state (library bug)."""


class ShardError(ReproError):
    """The sharded day-loop layer cannot proceed (see :mod:`repro.shard`).

    Raised with a ``diagnosis`` dict naming the knob that would unblock
    the run: a shard whose block cannot fit the memory budget even after
    degrading to column strips, a supervisor whose shard exhausted its
    retry budget, or a plan/workload mismatch (e.g. streaming chunk size
    disagreeing with the shard plan's block size).
    """

    def __init__(self, message: str, *, diagnosis: dict | None = None) -> None:
        super().__init__(message)
        #: structured context for the failure (JSON-friendly)
        self.diagnosis = diagnosis or {}


class TaskError(ReproError):
    """A task failed inside an executor after exhausting its retry budget.

    Raised by the :mod:`repro.runtime.executor` layer when a mapped task
    keeps failing (or its worker process keeps dying) beyond the configured
    ``max_retries`` and the failure policy is ``"fail"``.  Unlike a plain
    re-raise, it carries the *worker-side* traceback text across the
    process boundary, plus which task failed and how many attempts it got.
    """

    def __init__(
        self,
        message: str,
        *,
        index: int | None = None,
        attempts: int | None = None,
        worker_traceback: str = "",
    ) -> None:
        super().__init__(message)
        #: position of the failed task in the mapped sequence
        self.index = index
        #: how many attempts the task was given before giving up
        self.attempts = attempts
        #: formatted traceback captured in the worker process ("" if none)
        self.worker_traceback = worker_traceback


class TimeoutError(TaskError, builtins.TimeoutError):
    """A task exceeded its configured ``task_timeout``.

    Also derives from the builtin :class:`TimeoutError` so generic
    ``except TimeoutError`` handlers and the executor's timeout
    classification both catch it, whether the timeout was enforced by the
    parent (a hung worker) or injected by the chaos layer.
    """
