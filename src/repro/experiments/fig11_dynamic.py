"""Fig. 11: VNF migration under dynamic traffic (the headline experiment).

Three registered experiments cover the four panels:

* ``fig11a_hourly`` — per-hour total cost of mPareto, Optimal, PLAN and
  MCF (panel (a)) together with their per-hour migration counts
  (panel (b));
* ``fig11c_vary_l`` — total day cost vs the number of VM pairs ``l``
  (exponential scale, base 2) for mPareto and Optimal at μ = 10⁴ and
  10⁵, against NoMigration (panel (c));
* ``fig11d_vary_n`` — total day cost vs the SFC length ``n`` for mPareto
  vs NoMigration (panel (d)).

Experimental regime (see EXPERIMENTS.md for the full rationale):

* per-flow rates redraw every hour (production-style churn) under the
  Eq. 9 diurnal envelope with the two 3-hour-offset cohorts;
* the day starts from the literal hour-0 TOP placement — Eq. 9 gives
  τ₀ = 0, so every placement ties as "initial optimal" and an arbitrary
  one is used (this staleness is exactly what NoMigration pays for);
* the VM-migration baselines get deliberately *favorable* terms — VM
  moves priced at ``VM_SIZE_RATIO = 0.02×`` a VNF move (physically a VM
  image costs ~10× more, under which PLAN/MCF never move at all and
  coincide with NoMigration) and ``FREE_SLOTS = 4`` spare VM slots per
  host — so Fig. 11(b)'s "many VM migrations" is visible and the
  comparison is an upper bound on what VM migration can achieve;
* the Optimal series is Algorithm 6 (warm-started branch-and-bound),
  restricted to a candidate neighbourhood when the fabric is too large
  for the full exact search.
"""

from __future__ import annotations

from functools import partial

import numpy as np

from repro.experiments.common import ExperimentResult, check_scale, register
from repro.sim.policies import (
    McfVmPolicy,
    MParetoPolicy,
    NoMigrationPolicy,
    OptimalVnfPolicy,
    PlanVmPolicy,
)
from repro.sim.runner import RunConfig, run_replications
from repro.topology.fattree import fat_tree
from repro.workload.traffic import FacebookTrafficModel

__all__ = ["run_hourly", "run_vary_l", "run_vary_n"]

_BASE = {
    "smoke": {"k": 4, "l": 8, "n": 3, "replications": 2, "seed": 17,
              "ls": (4, 8), "ns": (2, 3), "budget": 50_000},
    "default": {"k": 8, "l": 64, "n": 7, "replications": 3, "seed": 17,
                "ls": (8, 16, 32, 64, 128), "ns": (3, 5, 7, 9),
                "budget": 400_000},
    "paper": {"k": 16, "l": 256, "n": 7, "replications": 20, "seed": 17,
              "ls": (16, 32, 64, 128, 256, 512, 1024), "ns": (3, 5, 7, 9, 11, 13),
              "budget": 400_000},
}

#: deliberately favorable to the VM baselines — see module docstring.
#: (The physically-motivated value from the paper's μ methodology is ~10:
#: a VM image dwarfs a 100 MB VNF container; at that price PLAN and MCF
#: simply never migrate and equal NoMigration.)
VM_SIZE_RATIO = 0.02

#: spare VM slots per host for the VM-migration baselines
FREE_SLOTS = 4


def _optimal_candidates(topology, scale: str):
    """Candidate restriction for Algorithm 6 on large fabrics.

    The full exact search is used up to k=8; on the paper-scale k=16
    fabric the exact reference is restricted to every fourth switch plus
    whatever the policies touch (documented as "restricted-exact").
    """
    if scale != "paper":
        return None
    return topology.switches[::4].tolist()


def _config(params, l, n, mu, replications=None):
    return RunConfig(
        num_pairs=l,
        num_vnfs=n,
        mu=mu,
        dynamics="redrawn",
        initial_placement="hour0",
        replications=replications or params["replications"],
        seed=params["seed"],
    )


@register("fig11a_hourly", "Hourly costs and migration counts of all policies")
def run_hourly(scale: str = "default", workers: int = 1) -> ExperimentResult:
    params = _BASE[check_scale(scale)]
    topo = fat_tree(params["k"])
    cands = _optimal_candidates(topo, scale)
    # factories are partials of module-level classes (never lambdas) so the
    # replication tasks stay picklable for the parallel executor
    factories = {
        "mpareto": MParetoPolicy,
        "optimal": partial(
            OptimalVnfPolicy,
            budget=params["budget"],
            candidate_switches=cands,
        ),
        "plan": partial(
            PlanVmPolicy, vm_size_ratio=VM_SIZE_RATIO, free_slots=FREE_SLOTS
        ),
        "mcf": partial(
            McfVmPolicy, vm_size_ratio=VM_SIZE_RATIO, free_slots=FREE_SLOTS
        ),
    }
    config = _config(params, params["l"], params["n"], mu=1e4)
    results, summaries = run_replications(
        topo, FacebookTrafficModel(), config, factories, workers=workers
    )

    hours = [r.hour for r in results[0].days["mpareto"].records]
    rows = []
    for idx, hour in enumerate(hours):
        row = {"hour": hour}
        for name in factories:
            cost = np.mean([rep.days[name].records[idx].total_cost for rep in results])
            migs = np.mean(
                [rep.days[name].records[idx].num_migrations for rep in results]
            )
            row[f"{name}_cost"] = float(cost)
            row[f"{name}_migs"] = float(migs)
        rows.append(row)

    mp = summaries["mpareto"]["total_cost"].mean
    opt = summaries["optimal"]["total_cost"].mean
    notes = [
        f"mPareto over Optimal (day total): {mp / opt - 1.0:.1%} (paper: 5-10%)",
    ]
    for base in ("plan", "mcf"):
        total = summaries[base]["total_cost"].mean
        notes.append(
            f"mPareto saves vs {base.upper()}: {1.0 - mp / total:.1%} "
            "(paper: 52-63%)"
        )
    notes.append(
        "migration volume (day): "
        + ", ".join(
            f"{name}={summaries[name]['migrations'].mean:.1f}" for name in factories
        )
        + " (paper Fig. 11(b): far fewer VNF than VM migrations)"
    )
    return ExperimentResult(
        experiment="fig11a_hourly",
        description="Fig. 11(a,b): hourly cost and migrations, mu=1e4",
        rows=rows,
        notes=notes,
        params={**params, "mu": 1e4, "vm_size_ratio": VM_SIZE_RATIO, "free_slots": FREE_SLOTS},
    )


@register("fig11c_vary_l", "Day cost vs number of VM pairs (exp scale)")
def run_vary_l(scale: str = "default", workers: int = 1) -> ExperimentResult:
    params = _BASE[check_scale(scale)]
    topo = fat_tree(params["k"])
    cands = _optimal_candidates(topo, scale)
    rows = []
    reductions = []
    restricted = cands is not None
    for l in params["ls"]:
        row = {"l": l, "n": params["n"], "optimal_restricted": restricted}
        for mu in (1e4, 1e5):
            factories = {
                "mpareto": MParetoPolicy,
                "optimal": partial(
                    OptimalVnfPolicy,
                    budget=params["budget"],
                    candidate_switches=cands,
                ),
                "nomig": NoMigrationPolicy,
            }
            _, summaries = run_replications(
                topo,
                FacebookTrafficModel(),
                _config(params, l, params["n"], mu),
                factories,
                workers=workers,
            )
            tag = f"mu{mu:.0e}".replace("e+0", "e")
            row[f"mpareto_{tag}"] = summaries["mpareto"]["total_cost"].mean
            row[f"optimal_{tag}"] = summaries["optimal"]["total_cost"].mean
            if mu == 1e4:
                row["no_migration"] = summaries["nomig"]["total_cost"].mean
                reductions.append(1.0 - row[f"mpareto_{tag}"] / row["no_migration"])
        rows.append(row)
    notes = [
        f"mPareto reduction vs NoMigration (mu=1e4): up to {max(reductions):.1%} "
        "(paper: up to 73%)",
        "mu=1e4 totals <= mu=1e5 totals (cheaper migration helps): "
        f"{all(r['mpareto_mu1e4'] <= r['mpareto_mu1e5'] + 1e-6 for r in rows)}",
    ]
    return ExperimentResult(
        experiment="fig11c_vary_l",
        description="Fig. 11(c): day cost vs l at mu=1e4/1e5",
        rows=rows,
        notes=notes,
        params=params,
    )


@register("fig11d_vary_n", "Day cost vs SFC length: mPareto vs NoMigration")
def run_vary_n(scale: str = "default", workers: int = 1) -> ExperimentResult:
    params = _BASE[check_scale(scale)]
    topo = fat_tree(params["k"])
    rows = []
    reductions = []
    for n in params["ns"]:
        factories = {
            "mpareto": MParetoPolicy,
            "nomig": NoMigrationPolicy,
        }
        _, summaries = run_replications(
            topo,
            FacebookTrafficModel(),
            _config(params, params["l"], n, 1e4),
            factories,
            workers=workers,
        )
        mp = summaries["mpareto"]["total_cost"].mean
        stay = summaries["nomig"]["total_cost"].mean
        reductions.append(1.0 - mp / stay)
        rows.append(
            {
                "n": n,
                "l": params["l"],
                "mpareto": mp,
                "no_migration": stay,
                "reduction": 1.0 - mp / stay,
            }
        )
    notes = [
        f"mPareto reduction vs NoMigration: {min(reductions):.1%} to "
        f"{max(reductions):.1%} (paper: up to 73%)",
    ]
    return ExperimentResult(
        experiment="fig11d_vary_n",
        description="Fig. 11(d): day cost vs n at mu=1e4",
        rows=rows,
        notes=notes,
        params=params,
    )
