"""Fig. 14 (extension): migrate-vs-replicate frontiers over the sync ratio ρ.

Not a figure of the source paper — the replication extension (DESIGN.md
§5j, after Carpio & Jukan's replica-placement line of work): the
``tom-replication`` policy prices a third per-hour action, *replicate*
(pay ``C_r = ρ·μ·Σc`` once plus an ongoing consistency-sync stream),
against the paper's keep/migrate pair, and this experiment sweeps ρ to
trace the resulting cost frontier:

* the **fault-free block** reports the mean day-cost split
  (communication / migration / replication / sync) and replica activity
  per ρ, against the plain-TOM (mPareto) baseline — at small ρ replicas
  are near-free and serving cost drops (per-flow min over chain copies);
  as ρ grows the one-off copy plus the sync stream crowd the action out,
  and past the ``C_r <= C_b`` dominance gate (ρ > 1) the policy is
  structurally identical to plain TOM;
* the **fault block** re-runs each replication on an identical seeded
  fault stream: a live replica on a surviving switch turns a would-be
  paid evacuation into a *free failover*, so dropped traffic stays
  byte-equal (endpoint-determined) while repair cost falls.

A replication whose day hits a diagnosed :class:`~repro.errors.
InfeasibleError` lands in the ``infeasible`` counters rather than
crashing the sweep.
"""

from __future__ import annotations

import numpy as np

from repro.core.placement import dp_placement
from repro.errors import InfeasibleError
from repro.experiments.common import ExperimentResult, check_scale, map_points, register
from repro.faults import FaultConfig, FaultProcess
from repro.sim.engine import simulate_day
from repro.sim.metrics import replication_summary
from repro.sim.policies import MParetoPolicy, TomReplicationPolicy
from repro.topology.fattree import fat_tree
from repro.utils.rng import spawn_seeds
from repro.workload.diurnal import DiurnalModel
from repro.workload.dynamics import RedrawnRates
from repro.workload.flows import place_vm_pairs
from repro.workload.traffic import FacebookTrafficModel

__all__ = ["run_replication_sweep"]

_BASE = {
    "smoke": {"k": 4, "l": 6, "n": 2, "replications": 2, "seed": 29,
              "horizon": 6, "rhos": (0.1, 0.5)},
    "default": {"k": 4, "l": 16, "n": 3, "replications": 3, "seed": 29,
                "horizon": 12, "rhos": (0.05, 0.1, 0.2, 0.5, 0.9)},
    "paper": {"k": 8, "l": 64, "n": 5, "replications": 10, "seed": 29,
              "horizon": 24, "rhos": (0.02, 0.05, 0.1, 0.2, 0.5, 0.9)},
}

MU = 1e2
SYNC_FRACTION = 1e-3
MAX_REPLICAS = 2
SWITCH_RATE = 0.1
MEAN_REPAIR_HOURS = 4.0

_SUMMARY_METRICS = (
    "total_cost",
    "communication_cost",
    "migration_cost",
    "replication_cost",
    "sync_cost",
    "repair_cost",
    "dropped_traffic",
    "replications",
    "failovers",
    "peak_replicas",
)


def _run_point(point: tuple) -> dict:
    """One (ρ, faulty?, replication) day; picklable sweep task.

    ``rho is None`` selects the plain-TOM baseline.  The fault stream is
    seeded from the replication seed alone, so every ρ (and the
    baseline) of one replication sees the identical failure trace.
    """
    k, l, n, rho, faulty, horizon, seed = point
    topology = fat_tree(k)
    flow_seed, rate_seed, fault_seed = spawn_seeds(seed, 3)
    flows = place_vm_pairs(topology, l, seed=flow_seed)
    flows = flows.with_rates(FacebookTrafficModel().sample(l, rng=rate_seed))
    diurnal = DiurnalModel(num_hours=horizon)
    rate_process = RedrawnRates(
        flows, diurnal, np.zeros(l), FacebookTrafficModel(), seed=rate_seed
    )
    faults = None
    if faulty:
        faults = FaultProcess(
            topology,
            FaultConfig(switch_rate=SWITCH_RATE,
                        mean_repair_hours=MEAN_REPAIR_HOURS),
            seed=fault_seed,
            horizon=horizon,
        )
    placement = dp_placement(topology, flows, n).placement
    if rho is None:
        policy = MParetoPolicy(topology, mu=MU)
    else:
        policy = TomReplicationPolicy(
            topology, mu=MU, rho=rho,
            sync_fraction=SYNC_FRACTION, max_replicas=MAX_REPLICAS,
        )
    try:
        day = simulate_day(
            topology,
            flows,
            policy,
            rate_process,
            placement,
            range(1, horizon + 1),
            faults=faults,
        )
    except InfeasibleError as exc:
        return {"infeasible": True, "diagnosis": exc.diagnosis}
    return {"infeasible": False, **replication_summary(day)}


def _mean_block(outcomes: list[dict], prefix: str) -> dict:
    done = [o for o in outcomes if not o["infeasible"]]
    row = {f"{prefix}_infeasible": len(outcomes) - len(done)}
    for metric in _SUMMARY_METRICS:
        row[f"{prefix}_{metric}"] = (
            float(np.mean([o[metric] for o in done])) if done else float("nan")
        )
    return row


@register("fig14_replication",
          "Migrate-vs-replicate cost frontier over the sync ratio rho")
def run_replication_sweep(
    scale: str = "default", workers: int = 1
) -> ExperimentResult:
    params = _BASE[check_scale(scale)]
    k, l, n = params["k"], params["l"], params["n"]
    horizon = params["horizon"]
    reps = params["replications"]
    rep_seeds = spawn_seeds(params["seed"], reps)

    rho_values: tuple = (None,) + tuple(params["rhos"])
    points = [
        (k, l, n, rho, faulty, horizon, rep_seeds[rep])
        for rho in rho_values
        for faulty in (False, True)
        for rep in range(reps)
    ]
    results = map_points(_run_point, points, workers=workers)

    by_key: dict[tuple, list[dict]] = {}
    for (_, _, _, rho, faulty, *_), res in zip(points, results):
        by_key.setdefault((rho, faulty), []).append(res)

    baseline = {
        **_mean_block(by_key[(None, False)], "base"),
        **_mean_block(by_key[(None, True)], "base_fault"),
    }
    rows = []
    for rho in params["rhos"]:
        rows.append(
            {
                "rho": rho,
                **_mean_block(by_key[(rho, False)], "repl"),
                **_mean_block(by_key[(rho, True)], "repl_fault"),
                **baseline,
            }
        )

    first, last = rows[0], rows[-1]
    notes = []
    if not np.isnan(first["repl_total_cost"]):
        notes.append(
            f"fault-free day cost at rho={first['rho']}: "
            f"{first['repl_total_cost']:.0f} vs plain-TOM baseline "
            f"{first['base_total_cost']:.0f} "
            f"({first['repl_replications']:.1f} replications/day, "
            f"peak {first['repl_peak_replicas']:.1f} replicas)"
        )
        notes.append(
            "replica activity fades as rho grows: "
            f"{first['repl_replications']:.1f} -> "
            f"{last['repl_replications']:.1f} replications/day"
        )
    if not np.isnan(first["repl_fault_repair_cost"]):
        notes.append(
            "fault block (identical fault streams): repair cost "
            f"{first['repl_fault_repair_cost']:.0f} with replicas "
            f"({first['repl_fault_failovers']:.1f} free failovers/day) vs "
            f"{baseline['base_fault_repair_cost']:.0f} without; dropped "
            "traffic is endpoint-determined and stays equal: "
            f"{first['repl_fault_dropped_traffic']:.0f} vs "
            f"{baseline['base_fault_dropped_traffic']:.0f}"
        )
    return ExperimentResult(
        experiment="fig14_replication",
        description="Replication extension: cost frontier over the sync ratio rho",
        rows=rows,
        notes=notes,
        params={**params, "mu": MU, "sync_fraction": SYNC_FRACTION,
                "max_replicas": MAX_REPLICAS, "switch_rate": SWITCH_RATE,
                "mean_repair_hours": MEAN_REPAIR_HOURS},
    )
