"""Extension experiments: the paper's Section VII future-work questions.

* ``ext_replication`` — "to which extent VNF replication could be
  beneficial in terms of dynamic traffic mitigation when compared to VNF
  migration": a static r-replica deployment (flows pick their cheapest
  chain copy, nothing ever moves) against single-chain mPareto migration,
  over the same dynamic day.
* ``ext_multi_sfc`` — "different VM flows can request different SFCs":
  two flow classes with their own chains on disjoint switches, placed
  heaviest-first and migrated per class.
* ``ext_schedules`` — how often should TOM run?  Every-hour mPareto vs
  periodic (every 3 h) vs threshold-triggered migration.
* ``ext_arrivals`` — the paper's "new users join" TOM case: flows arrive
  and depart during the day (rates switching 0 → λ → 0) and migration
  chases the active population.
"""

from __future__ import annotations

import numpy as np

from repro.core.multi_sfc import multi_sfc_cost, multi_sfc_migration, multi_sfc_placement
from repro.core.replication import replicated_communication_cost, replicated_placement
from repro.experiments.common import ExperimentResult, check_scale, register
from repro.sim.engine import simulate_day
from repro.sim.policies import MParetoPolicy, NoMigrationPolicy
from repro.sim.schedules import PeriodicMParetoPolicy, ThresholdMParetoPolicy
from repro.topology.fattree import fat_tree
from repro.utils.rng import spawn_rngs
from repro.workload.diurnal import DiurnalModel, assign_cohorts
from repro.workload.dynamics import RedrawnRates
from repro.workload.flows import place_vm_pairs
from repro.workload.traffic import FacebookTrafficModel

__all__ = ["run_replication", "run_multi_sfc", "run_schedules", "run_arrivals"]

_PARAMS = {
    "smoke": {"k": 4, "l": 8, "n": 3, "mu": 1e3, "replications": 2, "seed": 23},
    "default": {"k": 8, "l": 48, "n": 5, "mu": 1e4, "replications": 3, "seed": 23},
    "paper": {"k": 16, "l": 128, "n": 7, "mu": 1e4, "replications": 10, "seed": 23},
}


def _dynamic_setup(topo, params, rng):
    model = FacebookTrafficModel()
    flows = place_vm_pairs(topo, params["l"], seed=rng)
    flows = flows.with_rates(model.sample(params["l"], rng=rng))
    diurnal = DiurnalModel()
    offsets = assign_cohorts(params["l"], seed=rng)
    process = RedrawnRates(
        flows, diurnal, offsets, model, seed=int(rng.integers(0, 2**31 - 1))
    )
    # the literal hour-0 start: every placement ties at cost 0
    placement = np.sort(rng.choice(topo.switches, size=params["n"], replace=False))
    return flows, diurnal, process, placement


@register("ext_replication", "Static VNF replication vs VNF migration (future work)")
def run_replication(scale: str = "default") -> ExperimentResult:
    params = _PARAMS[check_scale(scale)]
    topo = fat_tree(params["k"])
    diurnal = DiurnalModel()
    rows_acc: dict[str, list[float]] = {}
    max_copies = 3 if 3 * params["n"] <= topo.num_switches else 1

    for rng in spawn_rngs(params["seed"], params["replications"]):
        flows, diurnal, process, placement = _dynamic_setup(topo, params, rng)

        # dynamic day, single chain: mPareto vs the stale hour-0 placement
        mp = simulate_day(
            topo, flows, MParetoPolicy(topo, params["mu"]), process, placement
        )
        stay = simulate_day(
            topo, flows, NoMigrationPolicy(topo, params["mu"]), process, placement
        )
        rows_acc.setdefault("mpareto", []).append(mp.total_cost)
        rows_acc.setdefault("no_migration", []).append(stay.total_cost)

        # static replication: copies placed once (hour-1 rates), never move
        for r in range(1, max_copies + 1):
            hour1 = flows.with_rates(process.rates_at(1))
            deployment = replicated_placement(topo, hour1, params["n"], num_copies=r)
            day_cost = sum(
                replicated_communication_cost(
                    topo, flows.with_rates(process.rates_at(h)), deployment.copies
                )
                for h in range(1, diurnal.num_hours + 1)
            )
            rows_acc.setdefault(f"replicas_{r}", []).append(day_cost)

    rows = [
        {"strategy": name, "day_cost": float(np.mean(values))}
        for name, values in rows_acc.items()
    ]
    mp_cost = float(np.mean(rows_acc["mpareto"]))
    best_rep = min(
        (float(np.mean(v)), k) for k, v in rows_acc.items() if k.startswith("replicas")
    )
    notes = [
        f"best static replication ({best_rep[1]}) vs mPareto migration: "
        f"{best_rep[0] / mp_cost - 1.0:+.1%} day cost",
        "replication amortizes staleness across copies but cannot chase "
        "traffic; migration adapts — the trade the paper's future work asks about",
    ]
    return ExperimentResult(
        experiment="ext_replication",
        description="Future work: replication vs migration under dynamic traffic",
        rows=rows,
        notes=notes,
        params={**params, "max_copies": max_copies},
    )


@register("ext_multi_sfc", "Two SFC classes on disjoint chains (future work)")
def run_multi_sfc(scale: str = "default") -> ExperimentResult:
    from repro.topology.weights import apply_uniform_delays

    params = _PARAMS[check_scale(scale)]
    # weighted links break the unit fat tree's placement-invariant core
    # (DESIGN.md 4b), so per-class migration has real work to do
    topo = apply_uniform_delays(fat_tree(params["k"]), seed=params["seed"])
    model = FacebookTrafficModel()
    rows = []
    for rep, rng in enumerate(spawn_rngs(params["seed"] + 1, params["replications"])):
        flows = place_vm_pairs(topo, params["l"], seed=rng)
        flows = flows.with_rates(model.sample(params["l"], rng=rng))
        class_of = np.zeros(params["l"], dtype=np.int64)
        class_of[params["l"] // 2 :] = 1
        sfcs = [params["n"], max(2, params["n"] - 2)]

        placed = multi_sfc_placement(topo, flows, class_of, sfcs)
        # the classes trade places: class 0 goes quiet, class 1 heats up
        new_rates = model.sample(params["l"], rng=rng)
        new_rates[class_of == 0] *= 0.1
        new_rates[class_of == 1] *= 2.0
        new_flows = flows.with_rates(new_rates)
        stay = multi_sfc_cost(topo, new_flows, class_of, placed.placements)
        migrated, results = multi_sfc_migration(
            topo, new_flows, class_of, placed, params["mu"]
        )
        total = sum(r.cost for r in results)
        rows.append(
            {
                "replication": rep,
                "initial_cost": placed.cost,
                "stay_cost": stay,
                "migrated_cost": total,
                "vnfs_moved": int(sum(r.num_migrated for r in results)),
            }
        )
    savings = [1.0 - r["migrated_cost"] / r["stay_cost"] for r in rows]
    notes = [
        f"per-class mPareto saves {np.mean(savings):.1%} on average vs staying",
        "chains never share a switch before or after migration (asserted "
        "by the library)",
    ]
    return ExperimentResult(
        experiment="ext_multi_sfc",
        description="Future work: two SFC classes, disjoint chains",
        rows=rows,
        notes=notes,
        params=params,
    )


@register("ext_schedules", "How often should TOM run? (scheduling ablation)")
def run_schedules(scale: str = "default") -> ExperimentResult:
    params = _PARAMS[check_scale(scale)]
    topo = fat_tree(params["k"])
    policies = {
        "every_hour": lambda: MParetoPolicy(topo, params["mu"]),
        "periodic_3h": lambda: PeriodicMParetoPolicy(topo, params["mu"], period=3),
        "threshold_10pct": lambda: ThresholdMParetoPolicy(
            topo, params["mu"], threshold=0.1
        ),
        "threshold_50pct": lambda: ThresholdMParetoPolicy(
            topo, params["mu"], threshold=0.5
        ),
        "never": lambda: NoMigrationPolicy(topo, params["mu"]),
    }
    totals: dict[str, list[float]] = {name: [] for name in policies}
    moves: dict[str, list[float]] = {name: [] for name in policies}
    for rng in spawn_rngs(params["seed"] + 2, params["replications"]):
        flows, _diurnal, process, placement = _dynamic_setup(topo, params, rng)
        for name, factory in policies.items():
            day = simulate_day(topo, flows, factory(), process, placement)
            totals[name].append(day.total_cost)
            moves[name].append(float(day.total_migrations))
    rows = [
        {
            "policy": name,
            "day_cost": float(np.mean(totals[name])),
            "migrations": float(np.mean(moves[name])),
        }
        for name in policies
    ]
    best = min(rows, key=lambda r: r["day_cost"])
    notes = [
        f"cheapest schedule at this scale: {best['policy']}",
        "threshold policies buy most of every-hour's benefit with fewer "
        "TOM invocations — the operational knob the paper's 'executes "
        "periodically' leaves open",
    ]
    return ExperimentResult(
        experiment="ext_schedules",
        description="Scheduling ablation: when to run TOM",
        rows=rows,
        notes=notes,
        params=params,
    )


@register("ext_arrivals", "Flow arrivals/departures: the 'new users join' TOM case")
def run_arrivals(scale: str = "default") -> ExperimentResult:
    from repro.workload.arrivals import ArrivalDepartureRates

    params = _PARAMS[check_scale(scale)]
    topo = fat_tree(params["k"])
    model = FacebookTrafficModel()
    diurnal = DiurnalModel()
    rows = []
    stay_costs, move_costs, churns, moves = [], [], [], []
    for rng in spawn_rngs(params["seed"] + 9, params["replications"]):
        flows = place_vm_pairs(topo, params["l"], seed=rng)
        flows = flows.with_rates(model.sample(params["l"], rng=rng))
        offsets = assign_cohorts(params["l"], seed=rng)
        process = ArrivalDepartureRates(
            flows, diurnal, offsets, mean_holding_hours=3.0,
            always_on_fraction=0.2, seed=int(rng.integers(0, 2**31 - 1)),
        )
        placement = np.sort(
            rng.choice(topo.switches, size=params["n"], replace=False)
        )
        mp = simulate_day(topo, flows, MParetoPolicy(topo, params["mu"]), process, placement)
        stay = simulate_day(topo, flows, NoMigrationPolicy(topo, params["mu"]), process, placement)
        stay_costs.append(stay.total_cost)
        move_costs.append(mp.total_cost)
        churns.append(process.churn_between(0, diurnal.num_hours))
        moves.append(mp.total_migrations)
    rows.append(
        {
            "policy": "mpareto",
            "day_cost": float(np.mean(move_costs)),
            "vnf_moves": float(np.mean(moves)),
            "session_churn": float(np.mean(churns)),
        }
    )
    rows.append(
        {
            "policy": "no_migration",
            "day_cost": float(np.mean(stay_costs)),
            "vnf_moves": 0.0,
            "session_churn": float(np.mean(churns)),
        }
    )
    saving = 1.0 - rows[0]["day_cost"] / rows[1]["day_cost"]
    notes = [
        f"flows arrive/depart {rows[0]['session_churn']:.0f} times per day "
        "(rates switching 0 -> lambda -> 0: the paper's 'new users join' "
        "special case of TOM)",
        f"mPareto saves {saving:.1%} vs never migrating under session churn",
    ]
    return ExperimentResult(
        experiment="ext_arrivals",
        description="TOM under flow arrivals and departures",
        rows=rows,
        notes=notes,
        params=params,
    )
