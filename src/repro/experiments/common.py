"""Shared experiment infrastructure: results, scales, and the registry.

Every figure of the paper's evaluation section has one module here whose
``run(scale)`` regenerates it as an :class:`ExperimentResult` — a list of
rows (one per x-axis point) with one column per algorithm series, plus
free-form notes recording the qualitative checks (who wins, by how much).

Three scales are supported everywhere:

* ``smoke`` — seconds; used by the test suite.
* ``default`` — minutes on a laptop; used by ``pytest benchmarks/``.
* ``paper`` — the paper's fabric sizes (k=16, 20 replications); hours.
  Exact ("Optimal") series automatically degrade to restricted-exact or
  are skipped where the search is infeasible, and say so in the notes.
"""

from __future__ import annotations

import inspect
import json
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping, Sequence

from repro.errors import ReproError
from repro.runtime import instrument
from repro.runtime.executor import get_executor
from repro.utils.tables import rows_to_table
from repro.utils.timing import Timer

__all__ = [
    "SCALES",
    "ExperimentResult",
    "register",
    "get_experiment",
    "list_experiments",
    "map_points",
    "accepts_workers",
    "run_experiment",
]

SCALES = ("smoke", "default", "paper")


@dataclass
class ExperimentResult:
    """One regenerated table/figure."""

    experiment: str
    description: str
    rows: list[dict]
    columns: list[str] | None = None
    notes: list[str] = field(default_factory=list)
    params: dict = field(default_factory=dict)

    def to_table(self) -> str:
        header = f"{self.experiment}: {self.description}"
        # dict-valued params (e.g. the runtime report) would swamp the
        # header; they stay in to_json and are rendered by --profile
        flat = {k: v for k, v in self.params.items() if not isinstance(v, dict)}
        if flat:
            header += "\nparams: " + ", ".join(
                f"{k}={v}" for k, v in sorted(flat.items())
            )
        body = rows_to_table(self.rows, columns=self.columns, title=header)
        if self.notes:
            body += "\n" + "\n".join(f"note: {note}" for note in self.notes)
        return body

    def to_json(self) -> str:
        return json.dumps(
            {
                "experiment": self.experiment,
                "description": self.description,
                "params": self.params,
                "rows": self.rows,
                "notes": self.notes,
            },
            indent=2,
            default=str,
        )

    def column(self, name: str) -> list[Any]:
        return [row.get(name) for row in self.rows]

    def to_chart(self) -> str:
        """Sparkline chart of the numeric columns (see ``repro run --plot``).

        The first column is treated as the x axis; every other column
        whose values are numeric becomes a series.
        """
        from repro.utils.plotting import series_chart

        if not self.rows:
            return "(empty)"
        columns = list(self.rows[0].keys())
        x_name = columns[0]
        series = {}
        for name in columns[1:]:
            values = [row.get(name) for row in self.rows]
            # bool is an int subclass but True/False columns are flags,
            # not series — exclude them explicitly
            numeric = [
                float(v)
                if isinstance(v, (int, float)) and not isinstance(v, bool)
                else float("nan")
                for v in values
            ]
            if any(v == v for v in numeric):  # at least one non-NaN
                series[name] = numeric
        return series_chart(series, x_labels=self.column(x_name))


ExperimentFn = Callable[[str], ExperimentResult]

_REGISTRY: dict[str, tuple[str, ExperimentFn]] = {}


def register(name: str, description: str) -> Callable[[ExperimentFn], ExperimentFn]:
    """Decorator adding an experiment to the global registry."""

    def deco(fn: ExperimentFn) -> ExperimentFn:
        if name in _REGISTRY:
            raise ReproError(f"experiment {name!r} registered twice")
        _REGISTRY[name] = (description, fn)
        return fn

    return deco


def get_experiment(name: str) -> ExperimentFn:
    try:
        return _REGISTRY[name][1]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise ReproError(f"unknown experiment {name!r}; known: {known}") from None


def list_experiments() -> Mapping[str, str]:
    """Name -> description of every registered experiment."""
    return {name: desc for name, (desc, _fn) in sorted(_REGISTRY.items())}


def check_scale(scale: str) -> str:
    if scale not in SCALES:
        raise ReproError(f"scale must be one of {SCALES}, got {scale!r}")
    return scale


def map_points(
    fn: Callable[[Any], Any], points: Sequence[Any], workers: int = 1
) -> list[Any]:
    """Map a sweep function over its points, optionally across processes.

    The shared fan-out helper for experiment modules: ``fn`` receives one
    point spec and returns that point's result; results come back in
    point order regardless of ``workers``, and for ``workers > 1`` both
    ``fn`` and every point must be picklable (module-level function,
    tuple/dataclass specs).  Each point must be self-contained — sweeps
    that thread state between points cannot fan out.
    """
    return get_executor(workers).map(fn, list(points))


def accepts_workers(fn: Callable) -> bool:
    """Whether an experiment function takes a ``workers`` keyword."""
    try:
        return "workers" in inspect.signature(fn).parameters
    except (TypeError, ValueError):  # builtins / odd callables
        return False


def run_experiment(name: str, scale: str = "default", workers: int = 1) -> ExperimentResult:
    """Run a registered experiment with instrumentation.

    Resets the process instrumentation (counters, phase timers, cache
    statistics), runs the experiment — passing ``workers`` through when
    the experiment supports it — and attaches the runtime report (worker
    count, per-phase wall time, cache hit rates, DP solve counts,
    speedup) as ``result.params["runtime"]``.  This is what ``repro run``
    executes; ``--profile`` prints the attached report.
    """
    fn = get_experiment(name)
    # experiments that haven't adopted the executor yet just run serially
    effective_workers = workers if accepts_workers(fn) else 1
    instrument.reset()
    timer = Timer()
    with timer:
        if accepts_workers(fn):
            result = fn(scale, workers=effective_workers)
        else:
            result = fn(scale)
    result.params["runtime"] = instrument.report(
        workers=effective_workers, elapsed=timer.last
    )
    return result
