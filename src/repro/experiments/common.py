"""Shared experiment infrastructure: results, scales, and the registry.

Every figure of the paper's evaluation section has one module here whose
``run(scale)`` regenerates it as an :class:`ExperimentResult` — a list of
rows (one per x-axis point) with one column per algorithm series, plus
free-form notes recording the qualitative checks (who wins, by how much).

Three scales are supported everywhere:

* ``smoke`` — seconds; used by the test suite.
* ``default`` — minutes on a laptop; used by ``pytest benchmarks/``.
* ``paper`` — the paper's fabric sizes (k=16, 20 replications); hours.
  Exact ("Optimal") series automatically degrade to restricted-exact or
  are skipped where the search is infeasible, and say so in the notes.
"""

from __future__ import annotations

import inspect
import json
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping, Sequence

from repro.errors import ReproError
from repro.runtime import instrument
from repro.runtime.executor import get_executor
from repro.runtime.resilience import (
    ResilienceConfig,
    TaskFailure,
    drain_failures,
    get_resilience,
    use_resilience,
)
from repro.utils.tables import rows_to_table
from repro.utils.timing import Timer

__all__ = [
    "SCALES",
    "ExperimentResult",
    "register",
    "get_experiment",
    "list_experiments",
    "map_points",
    "completed_only",
    "zip_completed",
    "accepts_workers",
    "run_experiment",
]

SCALES = ("smoke", "default", "paper")


@dataclass
class ExperimentResult:
    """One regenerated table/figure."""

    experiment: str
    description: str
    rows: list[dict]
    columns: list[str] | None = None
    notes: list[str] = field(default_factory=list)
    params: dict = field(default_factory=dict)

    def to_table(self) -> str:
        header = f"{self.experiment}: {self.description}"
        # dict-valued params (e.g. the runtime report) would swamp the
        # header; they stay in to_json and are rendered by --profile
        flat = {k: v for k, v in self.params.items() if not isinstance(v, dict)}
        if flat:
            header += "\nparams: " + ", ".join(
                f"{k}={v}" for k, v in sorted(flat.items())
            )
        body = rows_to_table(self.rows, columns=self.columns, title=header)
        if self.notes:
            body += "\n" + "\n".join(f"note: {note}" for note in self.notes)
        return body

    def to_dict(self) -> dict:
        """JSON-friendly view; inverse of :meth:`from_dict`.

        Nested solver results and fault states inside ``rows`` / ``params``
        are expected to already be in their own ``to_dict`` shapes
        (``{placement, cost, meta}`` / ``{failed_switches, ...}`` — the
        same schema :class:`~repro.serve.server.ServeResult` serializes),
        so experiment artifacts and serve traces share one reader.
        """
        return {
            "experiment": self.experiment,
            "description": self.description,
            "params": self.params,
            "rows": self.rows,
            "notes": self.notes,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ExperimentResult":
        """Inverse of :meth:`to_dict` (columns are derived, not stored)."""
        return cls(
            experiment=str(data["experiment"]),
            description=str(data["description"]),
            rows=list(data["rows"]),
            notes=list(data.get("notes", [])),
            params=dict(data.get("params", {})),
        )

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, default=str)

    def column(self, name: str) -> list[Any]:
        return [row.get(name) for row in self.rows]

    def to_chart(self) -> str:
        """Sparkline chart of the numeric columns (see ``repro run --plot``).

        The first column is treated as the x axis; every other column
        whose values are numeric becomes a series.
        """
        from repro.utils.plotting import series_chart

        if not self.rows:
            return "(empty)"
        columns = list(self.rows[0].keys())
        x_name = columns[0]
        series = {}
        for name in columns[1:]:
            values = [row.get(name) for row in self.rows]
            # bool is an int subclass but True/False columns are flags,
            # not series — exclude them explicitly
            numeric = [
                float(v)
                if isinstance(v, (int, float)) and not isinstance(v, bool)
                else float("nan")
                for v in values
            ]
            if any(v == v for v in numeric):  # at least one non-NaN
                series[name] = numeric
        return series_chart(series, x_labels=self.column(x_name))


ExperimentFn = Callable[[str], ExperimentResult]

_REGISTRY: dict[str, tuple[str, ExperimentFn]] = {}


def register(name: str, description: str) -> Callable[[ExperimentFn], ExperimentFn]:
    """Decorator adding an experiment to the global registry."""

    def deco(fn: ExperimentFn) -> ExperimentFn:
        if name in _REGISTRY:
            raise ReproError(f"experiment {name!r} registered twice")
        _REGISTRY[name] = (description, fn)
        return fn

    return deco


def get_experiment(name: str) -> ExperimentFn:
    try:
        return _REGISTRY[name][1]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise ReproError(f"unknown experiment {name!r}; known: {known}") from None


def list_experiments() -> Mapping[str, str]:
    """Name -> description of every registered experiment."""
    return {name: desc for name, (desc, _fn) in sorted(_REGISTRY.items())}


def check_scale(scale: str) -> str:
    if scale not in SCALES:
        raise ReproError(f"scale must be one of {SCALES}, got {scale!r}")
    return scale


def map_points(
    fn: Callable[[Any], Any],
    points: Sequence[Any],
    workers: int = 1,
    resilience: ResilienceConfig | None = None,
) -> list[Any]:
    """Map a sweep function over its points, optionally across processes.

    The shared fan-out helper for experiment modules: ``fn`` receives one
    point spec and returns that point's result; results come back in
    point order regardless of ``workers``, and for ``workers > 1`` both
    ``fn`` and every point must be picklable (module-level function,
    tuple/dataclass specs).  Each point must be self-contained — sweeps
    that thread state between points cannot fan out.

    ``resilience`` overrides the active execution policy (retries,
    timeouts, journal, chaos).  Under its ``skip`` failure policy a point
    that exhausts its retries yields its
    :class:`~repro.runtime.resilience.TaskFailure` in place of a result —
    use :func:`completed_only` / :func:`zip_completed` to degrade
    gracefully while keeping point alignment.
    """
    return get_executor(workers, resilience).map(fn, list(points))


def completed_only(results: Sequence[Any]) -> list[Any]:
    """Results with skipped :class:`TaskFailure` placeholders removed."""
    return [result for result in results if not isinstance(result, TaskFailure)]


def zip_completed(points: Sequence[Any], results: Sequence[Any]) -> list[tuple]:
    """Pair each sweep point with its result, dropping skipped failures.

    Keeps point/result alignment intact under ``--on-failure=skip``:
    because :func:`map_points` preserves positions (a failed point holds
    a placeholder rather than vanishing), zipping then filtering can
    never mispair a point with a neighbouring point's result.
    """
    return [
        (point, result)
        for point, result in zip(points, results)
        if not isinstance(result, TaskFailure)
    ]


def accepts_workers(fn: Callable) -> bool:
    """Whether an experiment function takes a ``workers`` keyword."""
    try:
        return "workers" in inspect.signature(fn).parameters
    except (TypeError, ValueError):  # builtins / odd callables
        return False


def run_experiment(
    name: str,
    scale: str = "default",
    workers: int = 1,
    resilience: ResilienceConfig | None = None,
) -> ExperimentResult:
    """Run a registered experiment with instrumentation and resilience.

    Resets the process instrumentation (counters, phase timers, cache
    statistics), installs the execution policy (``resilience`` or the
    active one) scoped to ``name@scale`` — so an attached checkpoint
    journal keys its fingerprints to this run — runs the experiment,
    passing ``workers`` through when the experiment supports it, and
    attaches the runtime report (worker count, per-phase wall time, cache
    hit rates, retry/salvage/resume counters, speedup, and any skipped
    tasks under ``"failures"``) as ``result.params["runtime"]``.  This is
    what ``repro run`` executes; ``--profile`` prints the attached report.
    """
    fn = get_experiment(name)
    # experiments that haven't adopted the executor yet just run serially
    effective_workers = workers if accepts_workers(fn) else 1
    instrument.reset()
    drain_failures()  # drop leftovers from any earlier, unreported run
    policy = resilience if resilience is not None else get_resilience()
    timer = Timer()
    with use_resilience(policy.scoped(f"{name}@{scale}")):
        with timer:
            if accepts_workers(fn):
                result = fn(scale, workers=effective_workers)
            else:
                result = fn(scale)
    report = instrument.report(workers=effective_workers, elapsed=timer.last)
    report["failures"] = [failure.to_dict() for failure in drain_failures()]
    result.params["runtime"] = report
    return result
