"""Validation experiments: checking the model's own premises.

* ``val_link_utilization`` — the paper assumes "enough edge bandwidths"
  because links run ~40 % utilized [31].  This experiment routes every
  policy-preserving flow over its shortest paths and reports the hottest
  link for the DP placement vs the chain-blind baselines: bad placements
  don't just cost aggregate traffic, they concentrate it.
* ``val_gravity_dynamics`` — DESIGN.md §4b's claim quantified: under
  gravity-skewed workloads, migration recovers real cost even with the
  mildest (scaled-only) dynamics, whereas uniform workloads give it
  nothing to chase on a unit fat tree.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.steering import steering_placement
from repro.core.costs import CostContext
from repro.core.migration import mpareto_migration
from repro.core.placement import dp_placement
from repro.experiments.common import ExperimentResult, check_scale, register
from repro.routing.link_loads import utilization_report
from repro.topology.fattree import fat_tree
from repro.utils.rng import spawn_rngs
from repro.workload.diurnal import DiurnalModel, assign_cohorts_spatial
from repro.workload.dynamics import ScaledRates
from repro.workload.flows import place_vm_pairs
from repro.workload.gravity import place_vm_pairs_gravity
from repro.workload.traffic import FacebookTrafficModel

__all__ = ["run_link_utilization", "run_gravity_dynamics"]

_PARAMS = {
    "smoke": {"k": 4, "l": 12, "n": 3, "replications": 2, "seed": 41},
    "default": {"k": 8, "l": 64, "n": 5, "replications": 4, "seed": 41},
    "paper": {"k": 16, "l": 256, "n": 7, "replications": 10, "seed": 41},
}


@register("val_link_utilization", "Hottest-link load: DP vs chain-blind placement")
def run_link_utilization(scale: str = "default") -> ExperimentResult:
    params = _PARAMS[check_scale(scale)]
    topo = fat_tree(params["k"])
    model = FacebookTrafficModel()
    rows = []
    for rep, rng in enumerate(spawn_rngs(params["seed"], params["replications"])):
        flows = place_vm_pairs(topo, params["l"], seed=rng)
        flows = flows.with_rates(model.sample(params["l"], rng=rng))
        dp = dp_placement(topo, flows, params["n"])
        steering = steering_placement(topo, flows, params["n"])
        # one shared capacity: provision for the DP placement at 40%
        dp_report = utilization_report(topo, flows, dp.placement)
        capacity = dp_report.capacity
        st_report = utilization_report(
            topo, flows, steering.placement, capacity=capacity
        )
        rows.append(
            {
                "replication": rep,
                "dp_max_util": dp_report.max_utilization,
                "steering_max_util": st_report.max_utilization,
                "steering_overloaded_links": len(st_report.overloaded),
                "dp_total_volume": dp_report.extra["total_volume"],
                "steering_total_volume": st_report.extra["total_volume"],
            }
        )
    worse = float(
        np.mean([r["steering_max_util"] / r["dp_max_util"] for r in rows])
    )
    notes = [
        "capacity provisioned so the DP placement's hottest link runs at "
        "40% (the paper's [31] premise)",
        f"under that capacity, Steering's hottest link runs {worse:.2f}x "
        "hotter on average — chain-blind placement concentrates traffic, "
        "not just inflates it",
    ]
    return ExperimentResult(
        experiment="val_link_utilization",
        description="Link utilization under 40%-provisioning (premise check)",
        rows=rows,
        notes=notes,
        params=params,
    )


@register("val_gravity_dynamics", "Gravity-skewed workloads give migration room")
def run_gravity_dynamics(scale: str = "default") -> ExperimentResult:
    params = _PARAMS[check_scale(scale)]
    topo = fat_tree(params["k"])
    model = FacebookTrafficModel()
    diurnal = DiurnalModel()
    mu = 100.0
    rows = []
    for generator in ("uniform", "gravity"):
        day_stay: list[float] = []
        day_move: list[float] = []
        moves: list[int] = []
        for rng in spawn_rngs(params["seed"] + 7, params["replications"]):
            if generator == "gravity":
                flows = place_vm_pairs_gravity(topo, params["l"], skew=1.6, seed=rng)
            else:
                flows = place_vm_pairs(topo, params["l"], seed=rng)
            flows = flows.with_rates(model.sample(params["l"], rng=rng))
            offsets = assign_cohorts_spatial(topo, flows)
            process = ScaledRates(flows, diurnal, offsets)
            placement = dp_placement(
                topo, flows.with_rates(process.rates_at(1)), params["n"]
            ).placement
            stay = move = 0.0
            moved = 0
            current = placement
            for hour in range(1, diurnal.num_hours + 1):
                hour_flows = flows.with_rates(process.rates_at(hour))
                ctx = CostContext(topo, hour_flows)
                stay += ctx.communication_cost(placement)
                result = mpareto_migration(topo, hour_flows, current, mu)
                move += result.cost
                moved += result.num_migrated
                current = result.migration
            day_stay.append(stay)
            day_move.append(move)
            moves.append(moved)
        rows.append(
            {
                "workload": generator,
                "no_migration_day_cost": float(np.mean(day_stay)),
                "mpareto_day_cost": float(np.mean(day_move)),
                "saving": 1.0 - float(np.mean(day_move)) / float(np.mean(day_stay)),
                "vnf_moves": float(np.mean(moves)),
            }
        )
    by_name = {r["workload"]: r for r in rows}
    notes = [
        "scaled-only dynamics (the mildest model) with spatial cohorts",
        f"uniform workload saving: {by_name['uniform']['saving']:.1%}; "
        f"gravity workload saving: {by_name['gravity']['saving']:.1%} — "
        "spatial skew is what gives migration something to chase "
        "(DESIGN.md 4b)",
    ]
    return ExperimentResult(
        experiment="val_gravity_dynamics",
        description="Migration value under uniform vs gravity workloads",
        rows=rows,
        notes=notes,
        params={**params, "mu": mu},
    )
