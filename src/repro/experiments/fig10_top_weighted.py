"""Fig. 10: TOP placement on *weighted* PPDCs (link delays), varying n.

Adopts the parameter setting of Greedy [34]: per-link delays drawn from a
uniform distribution with mean 1.5 ms and variance 0.5 ms, on the k=8
fat tree.  The paper reports the DP within 6–12 % of Optimal and 56–64 %
below Steering and Greedy on this setting.
"""

from __future__ import annotations

from repro.experiments.common import (
    ExperimentResult,
    check_scale,
    map_points,
    register,
    zip_completed,
)
from repro.experiments.fig09_top import sweep_cell
from repro.topology.fattree import fat_tree
from repro.topology.weights import apply_uniform_delays
from repro.workload.traffic import FacebookTrafficModel

__all__ = ["run"]

_SCALE_PARAMS = {
    "smoke": {"k": 4, "ns": (3, 4), "l": 8, "replications": 2, "seed": 13,
              "budget": 100_000},
    "default": {"k": 8, "ns": (3, 5, 9, 13), "l": 64, "replications": 5, "seed": 13,
                "budget": 400_000},
    "paper": {"k": 8, "ns": tuple(range(3, 14)), "l": 128, "replications": 20,
              "seed": 13, "budget": 2_000_000},
}


@register("fig10_top_weighted", "TOP placement on delay-weighted PPDCs vs n")
def run(scale: str = "default", workers: int = 1) -> ExperimentResult:
    params = _SCALE_PARAMS[check_scale(scale)]
    topo = apply_uniform_delays(
        fat_tree(params["k"]), mean=1.5, variance=0.5, seed=params["seed"]
    )
    model = FacebookTrafficModel()
    cells = map_points(
        sweep_cell,
        [
            (topo, model, params["l"], n, params["replications"],
             params["seed"] * 1000 + n, params["budget"])
            for n in params["ns"]
        ],
        workers=workers,
    )
    rows = [
        {"n": n, "l": params["l"], **cell}
        for n, cell in zip_completed(params["ns"], cells)
    ]

    notes = []
    dp_vs_opt = [r["dp"] / r["optimal"] - 1.0 for r in rows if r.get("optimal")]
    if dp_vs_opt:
        notes.append(
            f"DP over Optimal: {min(dp_vs_opt):.1%} to {max(dp_vs_opt):.1%} "
            "(paper: 6% to 12%)"
        )
    for base in ("steering", "greedy"):
        savings = [1.0 - r["dp"] / r[base] for r in rows if r.get(base)]
        notes.append(
            f"DP saves vs {base}: {min(savings):.1%} to {max(savings):.1%} "
            "(paper: 56% to 64% across both baselines)"
        )
    return ExperimentResult(
        experiment="fig10_top_weighted",
        description="Fig. 10: TOP with uniform link delays (mean 1.5, var 0.5)",
        rows=rows,
        notes=notes,
        params=params,
    )
