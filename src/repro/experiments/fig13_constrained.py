"""Fig. 13 (extension): multi-SFC contention under per-switch capacity.

Not a figure of the source paper — a capacity-planning extension on top
of the constrained solver family (DESIGN.md §5i).  A batch of tenant
SFCs competes for a fat-tree fabric where every switch can host at most
``vnf_capacity`` co-resident VNFs; :func:`repro.solvers.contention.
place_chains` admits them one at a time with the MSG stage-graph solver,
each accepted chain consuming slots (and bandwidth headroom) that the
chains after it no longer see.  The sweep crosses capacity tightness
against the two admission orders:

* ``first-fit`` — chains admitted in arrival order;
* ``contention-aware`` — heaviest chain rate first, so the flows that
  pay the most per hop pick their switches while the fabric is empty.

For each point the experiment reports how many chains were admitted,
the traffic rate actually served, and the summed Eq. 1 cost of the
admitted chains.  Expected qualitative shape: at loose capacity both
orders admit everything and tie; as capacity tightens, rejections
appear and contention-aware serves at least as much traffic as
first-fit (it spends the scarce slots on the heaviest chains), at the
price of pushing light chains to the rejection list.
"""

from __future__ import annotations

import numpy as np

from repro.constraints import Constraints
from repro.experiments.common import ExperimentResult, check_scale, map_points, register
from repro.solvers.contention import ORDERS, place_chains
from repro.topology.fattree import fat_tree
from repro.utils.rng import spawn_seeds
from repro.workload.flows import place_vm_pairs
from repro.workload.traffic import FacebookTrafficModel

__all__ = ["run_constrained_contention"]

_BASE = {
    "smoke": {"k": 2, "l": 4, "n": 2, "num_chains": 4, "replications": 2,
              "seed": 31, "capacities": (1, None)},
    "default": {"k": 4, "l": 8, "n": 3, "num_chains": 10, "replications": 3,
                "seed": 31, "capacities": (1, 2, 3, None)},
    "paper": {"k": 8, "l": 16, "n": 5, "num_chains": 32, "replications": 10,
              "seed": 31, "capacities": (1, 2, 3, 4, None)},
}


def _run_point(point: tuple) -> dict:
    """One (capacity, order, replication) admission run; picklable."""
    k, l, n, num_chains, capacity, order, seed = point
    topology = fat_tree(k)
    chain_seeds = spawn_seeds(seed, 2 * num_chains)
    chains = []
    for i in range(num_chains):
        flows = place_vm_pairs(topology, l, seed=chain_seeds[2 * i])
        flows = flows.with_rates(
            FacebookTrafficModel().sample(l, rng=chain_seeds[2 * i + 1])
        )
        chains.append((flows, n))
    constraints = Constraints(vnf_capacity=capacity)
    result = place_chains(topology, chains, constraints=constraints, order=order)
    offered = float(sum(flows.total_rate for flows, _ in chains))
    served = float(
        sum(
            flows.total_rate
            for (flows, _), placed in zip(chains, result.placements)
            if placed is not None
        )
    )
    return {
        "accepted": result.accepted,
        "rejected": len(result.rejections),
        "offered_rate": offered,
        "served_rate": served,
        "total_cost": result.total_cost,
    }


@register(
    "fig13_constrained",
    "Chains admitted and traffic served vs per-switch VNF capacity",
)
def run_constrained_contention(
    scale: str = "default", workers: int = 1
) -> ExperimentResult:
    params = _BASE[check_scale(scale)]
    k, l, n = params["k"], params["l"], params["n"]
    num_chains = params["num_chains"]
    reps = params["replications"]
    rep_seeds = spawn_seeds(params["seed"], reps)

    points = [
        (k, l, n, num_chains, capacity, order, rep_seeds[rep])
        for capacity in params["capacities"]
        for order in ORDERS
        for rep in range(reps)
    ]
    results = map_points(_run_point, points, workers=workers)

    by_key: dict[tuple, list[dict]] = {}
    for (_k, _l, _n, _c, capacity, order, _seed), res in zip(points, results):
        by_key.setdefault((capacity, order), []).append(res)

    rows = []
    for capacity in params["capacities"]:
        row: dict = {
            "vnf_capacity": capacity if capacity is not None else "inf",
            "offered_chains": num_chains,
        }
        for order in ORDERS:
            outcomes = by_key[(capacity, order)]
            tag = order.replace("-", "_")
            for metric in ("accepted", "served_rate", "total_cost"):
                row[f"{tag}_{metric}"] = float(
                    np.mean([o[metric] for o in outcomes])
                )
        rows.append(row)

    loose = rows[-1]  # capacities are swept tight -> loose (None last)
    tight = rows[0]
    notes = [
        "uncapacitated fabric admits every chain under both orders: "
        f"{loose['first_fit_accepted'] == num_chains and loose['contention_aware_accepted'] == num_chains}",
        "capacity pressure causes rejections at the tightest point "
        f"(first-fit admits {tight['first_fit_accepted']:.1f}/{num_chains})",
        "contention-aware serves at least as much traffic as first-fit "
        "at the tightest capacity: "
        f"{tight['contention_aware_served_rate'] >= tight['first_fit_served_rate'] - 1e-9}",
    ]
    return ExperimentResult(
        experiment="fig13_constrained",
        description=(
            "Multi-SFC contention: admitted chains and served traffic vs "
            "per-switch VNF capacity (first-fit vs contention-aware)"
        ),
        rows=rows,
        notes=notes,
        params={**params, "orders": list(ORDERS)},
    )
