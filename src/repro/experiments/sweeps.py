"""Generic parameter-sweep machinery, exposed as a public API.

The per-figure experiments hard-code the paper's sweeps; downstream users
typically want their own grids ("my topology, my chain lengths, my
algorithms").  :func:`placement_sweep` runs an arbitrary grid of
(topology × l × n) cells over any set of placement algorithms with the
paired-workload methodology the figures use (every algorithm sees the
identical workloads per cell), returning tidy rows ready for
:func:`~repro.utils.results_io.write_rows_csv` or a DataFrame.
"""

from __future__ import annotations

import zlib
from typing import Callable, Mapping, Sequence

import numpy as np

from repro.errors import ReproError
from repro.topology.base import Topology
from repro.utils.rng import spawn_rngs
from repro.utils.stats import mean_ci
from repro.workload.flows import FlowSet, place_vm_pairs
from repro.workload.traffic import TrafficModel

__all__ = ["placement_sweep"]

PlacementFn = Callable[[Topology, FlowSet, int], object]
WorkloadFn = Callable[[Topology, int, np.random.Generator], FlowSet]


def _default_workload(model: TrafficModel) -> WorkloadFn:
    def build(topology: Topology, l: int, rng: np.random.Generator) -> FlowSet:
        flows = place_vm_pairs(topology, l, seed=rng)
        return flows.with_rates(model.sample(l, rng=rng))

    return build


def placement_sweep(
    topologies: Mapping[str, Topology],
    algorithms: Mapping[str, PlacementFn],
    ls: Sequence[int],
    ns: Sequence[int],
    traffic_model: TrafficModel | None = None,
    workload: WorkloadFn | None = None,
    replications: int = 5,
    seed: int = 0,
    confidence: float = 0.95,
) -> list[dict]:
    """Run every algorithm over the (topology × l × n) grid.

    Returns one row per cell with, for each algorithm, the mean cost and
    its confidence half-width (keys ``<name>`` and ``<name>_ci``).
    Algorithms that raise on a cell report ``None`` there (e.g. exact
    solvers exceeding their budget) — the sweep keeps going.
    """
    if not topologies or not algorithms:
        raise ReproError("topologies and algorithms must be non-empty")
    if replications < 1:
        raise ReproError(f"replications must be positive, got {replications}")
    if workload is None:
        if traffic_model is None:
            raise ReproError("provide either traffic_model or workload")
        workload = _default_workload(traffic_model)

    rows: list[dict] = []
    for topo_name, topology in topologies.items():
        for l in ls:
            for n in ns:
                # stable across processes (built-in str hashing is salted)
                cell_seed = zlib.crc32(
                    f"{seed}|{topo_name}|{l}|{n}".encode()
                ) % (2**31 - 1)
                costs: dict[str, list[float]] = {name: [] for name in algorithms}
                failed: set[str] = set()
                for rng in spawn_rngs(cell_seed, replications):
                    flows = workload(topology, l, rng)
                    for name, algorithm in algorithms.items():
                        if name in failed:
                            continue
                        try:
                            result = algorithm(topology, flows, n)
                        except Exception:
                            failed.add(name)
                            continue
                        costs[name].append(float(getattr(result, "cost")))
                row: dict = {"topology": topo_name, "l": l, "n": n}
                for name in algorithms:
                    values = costs[name]
                    if values and name not in failed:
                        ci = mean_ci(values, confidence=confidence)
                        row[name] = ci.mean
                        row[f"{name}_ci"] = ci.halfwidth
                    else:
                        row[name] = None
                        row[f"{name}_ci"] = None
                rows.append(row)
    return rows
