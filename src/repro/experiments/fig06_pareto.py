"""Fig. 6(b): the (C_b, C_a) trace of the parallel migration frontiers.

The paper plots, for a k=16 fat tree with n=6 VNFs and μ=200, the
migration cost ``C_b(p, m)`` (x) against the post-migration communication
cost ``C_a(m)`` (y) of every parallel frontier, observing that the trace
forms a Pareto front (C_a falls as C_b rises) and noting that a convex
front certifies mPareto's scalarized optimum (Theorem 5).

Scenario: the Fig. 1/3 story at fabric scale — traffic whose spatial
centre of mass moves across the day (spatial time-zone cohorts under the
Eq. 9 envelope), so the fresh placement ``p'`` sits across the fabric
from ``p`` and the corridors are long enough to trace.

**Reproduction finding** (recorded in the notes and EXPERIMENTS.md): the
*endpoint-sorted non-dominated subset* of the frontiers is a Pareto front
by construction, but the raw frontier sequence is not always monotone in
``C_a``: when each VNF independently picks among the fat tree's many
equal-length shortest paths, the chain can scatter mid-transit and
intermediate frontiers transiently cost more than both endpoints.
mPareto is unaffected — it scans every frontier and takes the minimum —
but the paper's "the frontiers are a Pareto front" observation holds for
coherent migrations, not universally.
"""

from __future__ import annotations

import numpy as np

from repro.core.costs import CostContext
from repro.core.migration import (
    front_is_convex,
    frontier_trace,
    is_pareto_front,
    pareto_points,
)
from repro.core.placement import dp_placement
from repro.experiments.common import ExperimentResult, check_scale, register
from repro.topology.fattree import fat_tree
from repro.workload.diurnal import DiurnalModel, assign_cohorts_spatial
from repro.workload.dynamics import ScaledRates
from repro.workload.flows import place_vm_pairs
from repro.workload.traffic import FacebookTrafficModel

__all__ = ["run"]

_SCALE_PARAMS = {
    "smoke": {"k": 4, "n": 3, "num_pairs": 8, "mu": 200.0, "seed": 2},
    "default": {"k": 8, "n": 6, "num_pairs": 12, "mu": 200.0, "seed": 2},
    "paper": {"k": 16, "n": 6, "num_pairs": 48, "mu": 200.0, "seed": 2},
}


@register("fig06_pareto", "Parallel-frontier Pareto trace (C_b vs C_a)")
def run(scale: str = "default") -> ExperimentResult:
    params = _SCALE_PARAMS[check_scale(scale)]
    topo = fat_tree(params["k"])
    model = FacebookTrafficModel()
    diurnal = DiurnalModel()

    # scan seeds deterministically for an instance whose optimum moves
    trace = None
    for seed in range(params["seed"], params["seed"] + 16):
        flows = place_vm_pairs(topo, params["num_pairs"], seed=seed)
        flows = flows.with_rates(model.sample(params["num_pairs"], rng=seed))
        offsets = assign_cohorts_spatial(topo, flows)
        process = ScaledRates(flows, diurnal, offsets)
        early = flows.with_rates(process.rates_at(1))  # east cohort dominates
        late = flows.with_rates(process.rates_at(9))  # west cohort only
        source = dp_placement(topo, early, params["n"]).placement
        target = dp_placement(topo, late, params["n"]).placement
        ctx = CostContext(topo, late)
        candidate = frontier_trace(ctx, source, target, params["mu"])
        if trace is None or candidate.num_frontiers > trace.num_frontiers:
            trace = candidate
        if trace.num_frontiers >= 3:
            break
    assert trace is not None

    rows = [
        {
            "frontier": i,
            "C_b": float(trace.migration_costs[i]),
            "C_a": float(trace.communication_costs[i]),
            "C_t": float(trace.total_costs[i]),
            "distinct": bool(trace.distinct[i]),
        }
        for i in range(trace.num_frontiers)
    ]
    best = trace.best_index(require_distinct=True)
    front = pareto_points(trace)
    notes = [
        f"frontier count h_max = {trace.num_frontiers}",
        f"raw frontier sequence is a Pareto front: {is_pareto_front(trace)} "
        "(paper: yes; see module docstring for when this breaks)",
        f"non-dominated frontiers: {front.tolist()}",
        f"front is convex (Theorem 5 condition): {front_is_convex(trace)}",
        f"mPareto selects frontier {best} with C_t = {trace.total_costs[best]:,.0f}",
    ]
    return ExperimentResult(
        experiment="fig06_pareto",
        description="Fig. 6(b): C_b vs C_a over parallel migration frontiers",
        rows=rows,
        notes=notes,
        params=params,
    )
