"""Fig. 12 (extension): survivability under in-fabric fault injection.

Not a figure of the source paper — a robustness extension: the fault-aware
day loop (:func:`repro.sim.engine.simulate_day` with a seeded
:class:`~repro.faults.process.FaultProcess`) is swept over switch failure
rates, comparing the TOM policy (mPareto, which re-optimizes on the
degraded fabric every hour) against NoMigration (which only receives the
forced repairs).  For each failure rate the experiment reports the mean
day cost split into communication / migration / repair, the dropped
traffic, and the repair count.

Expected qualitative shape: total cost and dropped traffic grow with the
failure rate for every policy (more repairs, more partitioned flows),
while mPareto holds a widening edge over NoMigration in communication
cost — after each repair it re-optimizes the whole chain on the
surviving component, NoMigration stays wherever the evacuation dropped
it.  A replication whose day hits a diagnosed
:class:`~repro.errors.InfeasibleError` (the fabric lost too many
switches for the chain) is recorded in the ``infeasible`` column rather
than crashing the sweep.
"""

from __future__ import annotations

import numpy as np

from repro.core.placement import dp_placement
from repro.errors import InfeasibleError
from repro.experiments.common import ExperimentResult, check_scale, map_points, register
from repro.faults import FaultConfig, FaultProcess
from repro.sim.engine import simulate_day
from repro.sim.policies import MParetoPolicy, NoMigrationPolicy
from repro.topology.fattree import fat_tree
from repro.utils.rng import spawn_seeds
from repro.workload.diurnal import DiurnalModel
from repro.workload.dynamics import RedrawnRates
from repro.workload.flows import place_vm_pairs
from repro.workload.traffic import FacebookTrafficModel

__all__ = ["run_survivability"]

_BASE = {
    "smoke": {"k": 4, "l": 6, "n": 2, "replications": 2, "seed": 23,
              "horizon": 6, "rates": (0.0, 0.1)},
    "default": {"k": 4, "l": 16, "n": 3, "replications": 3, "seed": 23,
                "horizon": 12, "rates": (0.0, 0.02, 0.05, 0.1, 0.2)},
    "paper": {"k": 8, "l": 64, "n": 5, "replications": 10, "seed": 23,
              "horizon": 24, "rates": (0.0, 0.01, 0.02, 0.05, 0.1, 0.2)},
}

MU = 1e2
MEAN_REPAIR_HOURS = 4.0

_POLICIES = {
    "mpareto": MParetoPolicy,
    "nomig": NoMigrationPolicy,
}


def _run_point(point: tuple) -> dict:
    """One (failure rate, policy, replication) day; picklable sweep task."""
    k, l, n, policy_name, switch_rate, horizon, seed = point
    topology = fat_tree(k)
    flow_seed, rate_seed, fault_seed = spawn_seeds(seed, 3)
    flows = place_vm_pairs(topology, l, seed=flow_seed)
    flows = flows.with_rates(FacebookTrafficModel().sample(l, rng=rate_seed))
    diurnal = DiurnalModel(num_hours=horizon)
    rate_process = RedrawnRates(
        flows, diurnal, np.zeros(l), FacebookTrafficModel(), seed=rate_seed
    )
    faults = FaultProcess(
        topology,
        FaultConfig(switch_rate=switch_rate, mean_repair_hours=MEAN_REPAIR_HOURS),
        seed=fault_seed,
        horizon=horizon,
    )
    placement = dp_placement(topology, flows, n).placement
    policy = _POLICIES[policy_name](topology, mu=MU)
    try:
        day = simulate_day(
            topology,
            flows,
            policy,
            rate_process,
            placement,
            range(1, horizon + 1),
            faults=faults,
        )
    except InfeasibleError as exc:
        return {"infeasible": True, "diagnosis": exc.diagnosis}
    return {
        "infeasible": False,
        "total_cost": day.total_cost,
        "communication_cost": day.total_communication_cost,
        "migration_cost": day.total_migration_cost,
        "repair_cost": day.total_repair_cost,
        "dropped_traffic": day.total_dropped_traffic,
        "repairs": day.total_repairs,
        "migrations": day.total_migrations,
    }


@register("fig12_survivability", "Day cost and dropped traffic vs failure rate")
def run_survivability(scale: str = "default", workers: int = 1) -> ExperimentResult:
    params = _BASE[check_scale(scale)]
    k, l, n = params["k"], params["l"], params["n"]
    horizon = params["horizon"]
    reps = params["replications"]
    rep_seeds = spawn_seeds(params["seed"], reps)

    points = [
        (k, l, n, policy, rate, horizon, rep_seeds[rep])
        for rate in params["rates"]
        for policy in _POLICIES
        for rep in range(reps)
    ]
    results = map_points(_run_point, points, workers=workers)

    by_key: dict[tuple, list[dict]] = {}
    for (kk, ll, nn, policy, rate, *_), res in zip(points, results):
        by_key.setdefault((rate, policy), []).append(res)

    rows = []
    for rate in params["rates"]:
        row: dict = {"switch_rate": rate}
        for policy in _POLICIES:
            outcomes = by_key[(rate, policy)]
            done = [o for o in outcomes if not o["infeasible"]]
            row[f"{policy}_infeasible"] = len(outcomes) - len(done)
            for metric in ("total_cost", "communication_cost", "repair_cost",
                           "dropped_traffic", "repairs"):
                row[f"{policy}_{metric}"] = (
                    float(np.mean([o[metric] for o in done])) if done else float("nan")
                )
        rows.append(row)

    zero = rows[0]
    worst = rows[-1]
    notes = [
        "rate 0.0 is the classic fault-free day (repair = dropped = 0): "
        f"{zero['mpareto_repair_cost'] == 0.0 and zero['mpareto_dropped_traffic'] == 0.0}",
        f"dropped traffic grows with the failure rate (mpareto): "
        f"{zero['mpareto_dropped_traffic']:.0f} -> {worst['mpareto_dropped_traffic']:.0f}",
    ]
    if not np.isnan(worst["mpareto_communication_cost"]) and not np.isnan(
        worst["nomig_communication_cost"]
    ):
        edge = 1.0 - worst["mpareto_communication_cost"] / max(
            worst["nomig_communication_cost"], 1e-12
        )
        notes.append(
            f"mPareto communication-cost edge over NoMigration at the worst "
            f"rate: {edge:.1%} (it re-optimizes after every forced repair)"
        )
    return ExperimentResult(
        experiment="fig12_survivability",
        description="Survivability: day cost + dropped traffic vs switch failure rate",
        rows=rows,
        notes=notes,
        params={**params, "mu": MU, "mean_repair_hours": MEAN_REPAIR_HOURS},
    )
