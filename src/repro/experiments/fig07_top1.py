"""Fig. 7: TOP-1 algorithms on a k=8 unweighted PPDC with one VM pair.

The paper plots, for n = 2…8(+), the communication cost of

* **DP-Stroll** (Algorithm 2),
* **Optimal** (Algorithm 4, exact), and
* **PrimalDual** — plotted as its 2+ε *guarantee*, i.e. 2 × Optimal
  ("we compare DP-Stroll with the 2+ε guarantee (i.e., two times of
  Optimal) of PrimalDual"),

observing that DP-Stroll stays within ~8 % of Optimal and far below the
guarantee.  We additionally run two extra series: the bit-faithful
``mode="paper"`` DP (the pseudocode's single-successor memo — the closest
analogue of the paper's own implementation, and the one expected to show
its ~8 % gap) and our concrete primal-dual implementation (Algorithm 1).
Every data point averages ``replications`` random single-flow workloads
(95 % CI half-widths are reported alongside).
"""

from __future__ import annotations

import numpy as np

from repro.errors import BudgetExceededError
from repro.experiments.common import (
    ExperimentResult,
    check_scale,
    completed_only,
    map_points,
    register,
)
from repro.session import SolverSession
from repro.topology.fattree import fat_tree
from repro.utils.rng import spawn_rngs
from repro.utils.stats import mean_ci
from repro.workload.flows import place_vm_pairs
from repro.workload.traffic import FacebookTrafficModel

__all__ = ["run", "top1_point"]

_SCALE_PARAMS = {
    "smoke": {"k": 4, "ns": (2, 3), "replications": 2, "seed": 5},
    "default": {"k": 8, "ns": (2, 3, 4, 5, 6), "replications": 5, "seed": 5},
    "paper": {"k": 8, "ns": tuple(range(2, 14)), "replications": 20, "seed": 5},
}


def top1_point(task: tuple) -> dict:
    """One x-axis point (fixed ``n``) of the Fig. 7 sweep.

    ``task`` is ``(topology, model, n, seed, replications)`` — a
    self-contained, picklable spec so points can fan out across worker
    processes via :func:`map_points`.
    """
    topo, model, n, seed, replications = task
    session = SolverSession(topo)
    dp_costs, paper_costs, opt_costs, pd_costs = [], [], [], []
    optimal_ok = True
    for rng in spawn_rngs(seed, replications):
        flows = place_vm_pairs(topo, 1, intra_rack_fraction=0.0, seed=rng)
        flows = flows.with_rates(model.sample(1, rng=rng))
        dp_costs.append(session.place(flows, n, algo="top1").cost)
        paper_costs.append(session.place(flows, n, algo="top1", mode="paper").cost)
        pd_costs.append(session.place(flows, n, algo="primal-dual").cost)
        if optimal_ok:
            try:
                opt_costs.append(
                    session.place(flows, n, algo="optimal", budget=400_000).cost
                )
            except BudgetExceededError:
                optimal_ok = False
    dp = mean_ci(dp_costs)
    paper_dp = mean_ci(paper_costs)
    pd = mean_ci(pd_costs)
    opt = mean_ci(opt_costs) if optimal_ok and opt_costs else None
    return {
        "n": n,
        "dp_stroll": dp.mean,
        "dp_ci": dp.halfwidth,
        "dp_stroll_paper_mode": paper_dp.mean,
        "optimal": opt.mean if opt else None,
        "primaldual_guarantee": 2.0 * opt.mean if opt else None,
        "primal_dual_actual": pd.mean,
    }


@register("fig07_top1", "TOP-1: DP-Stroll vs Optimal vs the 2+eps guarantee")
def run(scale: str = "default", workers: int = 1) -> ExperimentResult:
    params = _SCALE_PARAMS[check_scale(scale)]
    topo = fat_tree(params["k"])
    model = FacebookTrafficModel()
    rows = completed_only(
        map_points(
            top1_point,
            [
                (topo, model, n, params["seed"] * 1000 + n, params["replications"])
                for n in params["ns"]
            ],
            workers=workers,
        )
    )
    notes = []
    gaps = [
        row["dp_stroll"] / row["optimal"] - 1.0 for row in rows if row["optimal"]
    ]
    if gaps:
        notes.append(
            f"DP-Stroll over Optimal: mean gap {np.mean(gaps):.1%}, "
            f"max {np.max(gaps):.1%} (paper: ~8% with its single-successor "
            "memo; see dp_stroll_paper_mode for that variant)"
        )
        paper_gaps = [
            r["dp_stroll_paper_mode"] / r["optimal"] - 1.0
            for r in rows
            if r["optimal"]
        ]
        notes.append(
            f"paper-mode DP over Optimal: mean gap {np.mean(paper_gaps):.1%}, "
            f"max {np.max(paper_gaps):.1%}"
        )
        notes.append(
            "DP-Stroll below the 2+eps guarantee at every measured n: "
            f"{all(r['dp_stroll'] <= r['primaldual_guarantee'] for r in rows if r['optimal'])}"
        )
    return ExperimentResult(
        experiment="fig07_top1",
        description="Fig. 7: TOP-1 comparison on the k=%d fat tree, l=1" % params["k"],
        rows=rows,
        notes=notes,
        params=params,
    )
