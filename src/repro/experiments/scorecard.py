"""The reproduction scorecard: every headline claim, checked in one run.

``repro run scorecard`` executes a compact version of each figure's
qualitative claim and prints PASS/FAIL per claim — the executable
summary of EXPERIMENTS.md.  Claims are deliberately the *shape*
statements (who wins, orderings, bounds), not absolute numbers.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.greedy_liu import greedy_liu_placement
from repro.baselines.steering import steering_placement
from repro.core.migration import mpareto_migration, no_migration
from repro.core.optimal import optimal_migration, optimal_placement
from repro.core.placement import dp_placement, dp_placement_top1
from repro.experiments.common import ExperimentResult, check_scale, register
from repro.topology.fattree import fat_tree
from repro.utils.rng import spawn_rngs
from repro.workload.diurnal import DiurnalModel
from repro.workload.flows import FlowSet, place_vm_pairs
from repro.workload.traffic import FacebookTrafficModel

__all__ = ["run"]

_PARAMS = {
    "smoke": {"k": 4, "l": 8, "n": 3, "trials": 2},
    "default": {"k": 8, "l": 32, "n": 5, "trials": 4},
    "paper": {"k": 8, "l": 128, "n": 7, "trials": 10},
}


@register("scorecard", "Executable PASS/FAIL summary of every headline claim")
def run(scale: str = "default") -> ExperimentResult:
    params = _PARAMS[check_scale(scale)]
    topo = fat_tree(params["k"])
    model = FacebookTrafficModel()
    rows: list[dict] = []

    def claim(figure: str, statement: str, holds: bool, detail: str) -> None:
        rows.append(
            {
                "figure": figure,
                "claim": statement,
                "verdict": "PASS" if holds else "FAIL",
                "detail": detail,
            }
        )

    # --- Example 1 (Fig. 3): the exact worked numbers -----------------------
    ft2 = fat_tree(2)
    h1, h2 = int(ft2.hosts[0]), int(ft2.hosts[1])
    ex_flows = FlowSet(sources=[h1, h2], destinations=[h1, h2], rates=[100.0, 1.0])
    initial = dp_placement(ft2, ex_flows, 2)
    flipped = ex_flows.with_rates([1.0, 100.0])
    stale = no_migration(ft2, flipped, initial.placement)
    moved = mpareto_migration(ft2, flipped, initial.placement, mu=1.0)
    exact = (
        abs(initial.cost - 410.0) < 1e-9
        and abs(stale.cost - 1004.0) < 1e-9
        and abs(moved.cost - 416.0) < 1e-9
    )
    claim(
        "Fig.3",
        "worked example is 410 / 1004 / 416 (58.6% reduction)",
        exact,
        f"measured {initial.cost:.0f}/{stale.cost:.0f}/{moved.cost:.0f}",
    )

    # --- Fig. 7: DP-Stroll vs Optimal vs guarantee --------------------------
    gaps, guarded = [], []
    for rng in spawn_rngs(71, params["trials"]):
        flows = place_vm_pairs(topo, 1, intra_rack_fraction=0.0, seed=rng)
        flows = flows.with_rates(model.sample(1, rng=rng))
        stroll = dp_placement_top1(topo, flows, params["n"])
        opt = optimal_placement(topo, flows, params["n"], budget=300_000)
        gaps.append(stroll.cost / opt.cost - 1.0)
        guarded.append(stroll.cost <= 2.0 * opt.cost + 1e-9)
    claim(
        "Fig.7",
        "DP-Stroll >= Optimal and below the 2+eps guarantee",
        all(g >= -1e-9 for g in gaps) and all(guarded),
        f"mean gap {np.mean(gaps):.1%} (paper ~8%)",
    )

    # --- Fig. 9/10: DP ~ Optimal, both beat the baselines -------------------
    dp_total = opt_total = steering_total = greedy_total = 0.0
    for rng in spawn_rngs(72, params["trials"]):
        flows = place_vm_pairs(topo, params["l"], seed=rng)
        flows = flows.with_rates(model.sample(params["l"], rng=rng))
        dp_total += dp_placement(topo, flows, params["n"]).cost
        opt_total += optimal_placement(
            topo, flows, params["n"], budget=300_000
        ).cost
        steering_total += steering_placement(topo, flows, params["n"]).cost
        greedy_total += greedy_liu_placement(topo, flows, params["n"]).cost
    claim(
        "Fig.9/10",
        "Optimal <= DP < Steering and Greedy",
        opt_total <= dp_total + 1e-6
        and dp_total < steering_total
        and dp_total < greedy_total,
        f"DP saves {1 - dp_total / steering_total:.0%} vs Steering, "
        f"{1 - dp_total / greedy_total:.0%} vs Greedy "
        "(paper: 56-64% at its largest chains)",
    )

    # --- Fig. 11: migration sandwich and the NoMigration gap ----------------
    mp_sum = opt_sum = stay_sum = 0.0
    for rng in spawn_rngs(73, params["trials"]):
        flows = place_vm_pairs(topo, params["l"], seed=rng)
        flows = flows.with_rates(model.sample(params["l"], rng=rng))
        stale_p = np.sort(rng.choice(topo.switches, size=params["n"], replace=False))
        new_flows = flows.with_rates(model.sample(params["l"], rng=rng))
        mp_sum += mpareto_migration(topo, new_flows, stale_p, 1e4).cost
        opt_sum += optimal_migration(
            topo, new_flows, stale_p, 1e4, budget=300_000
        ).cost
        stay_sum += no_migration(topo, new_flows, stale_p).cost
    claim(
        "Fig.11",
        "Optimal <= mPareto <= NoMigration under stale placements",
        opt_sum <= mp_sum + 1e-6 and mp_sum <= stay_sum + 1e-6,
        f"mPareto within {mp_sum / opt_sum - 1:.1%} of exact "
        f"(paper: 5-10%), saves {1 - mp_sum / stay_sum:.0%} vs staying "
        "(paper: up to 73%)",
    )

    # --- Fig. 8: the Eq. 9 pattern ------------------------------------------
    diurnal = DiurnalModel()
    pattern = diurnal.pattern()
    claim(
        "Fig.8",
        "Eq. 9: silent boundaries, 1 - tau_min peak at noon, symmetric",
        pattern[0] == 0.0
        and pattern[-1] == 0.0
        and abs(pattern[6] - 0.8) < 1e-12
        and np.allclose(pattern, pattern[::-1]),
        f"peak {pattern.max():.2f} at hour {int(np.argmax(pattern))}",
    )

    failed = [row["figure"] for row in rows if row["verdict"] == "FAIL"]
    notes = [
        f"{len(rows) - len(failed)}/{len(rows)} headline claims PASS"
        + (f"; FAILING: {failed}" if failed else ""),
        "full measured-vs-published detail lives in EXPERIMENTS.md",
    ]
    return ExperimentResult(
        experiment="scorecard",
        description="Reproduction scorecard: headline claims",
        rows=rows,
        notes=notes,
        params=params,
    )
