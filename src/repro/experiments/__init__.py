"""Experiment harness: one module per figure/table of the paper.

Importing this package registers every experiment; run them via

>>> from repro.experiments import get_experiment
>>> result = get_experiment("fig07_top1")("smoke")
>>> print(result.to_table())          # doctest: +SKIP

or from the command line: ``python -m repro.cli run fig07_top1``.
"""

from repro.experiments.common import (
    SCALES,
    ExperimentResult,
    completed_only,
    get_experiment,
    list_experiments,
    map_points,
    register,
    run_experiment,
    zip_completed,
)

# importing the modules populates the registry
from repro.experiments import (  # noqa: F401  (registration side effects)
    ablations,
    extensions,
    fig03_example,
    fig06_pareto,
    fig07_top1,
    fig08_diurnal,
    fig09_top,
    fig10_top_weighted,
    fig11_dynamic,
    fig12_survivability,
    fig13_constrained,
    fig14_replication,
    scorecard,
    tables,
    validations,
)

__all__ = [
    "SCALES",
    "ExperimentResult",
    "completed_only",
    "get_experiment",
    "list_experiments",
    "map_points",
    "register",
    "run_experiment",
    "zip_completed",
]
