"""Fig. 1 / Fig. 3 / Example 1: the worked migration example, verified exactly.

The smallest PPDC in the paper (the k=2 fat tree, equal to the linear
chain of Fig. 1) with two flows ``λ = <100, 1>``:

* initial optimal placement costs **410**;
* after the rate flip to ``<1, 100>`` staying costs **1004**;
* mPareto migrates both VNFs for a migration cost of **6** and a total of
  **416** — the paper's 58.6 % reduction.

All three numbers are computed (not hard-coded) and asserted by the test
suite; this experiment tabulates the stages so the README quickstart and
the benchmark harness show the exact published walk-through.
"""

from __future__ import annotations

import numpy as np

from repro.core.migration import mpareto_migration, no_migration
from repro.core.placement import dp_placement
from repro.experiments.common import ExperimentResult, check_scale, register
from repro.topology.fattree import fat_tree
from repro.workload.flows import FlowSet

__all__ = ["run"]


@register("fig03_example", "Example 1 worked end-to-end on the k=2 fat tree")
def run(scale: str = "default") -> ExperimentResult:
    check_scale(scale)  # the example is constant-size at every scale
    topo = fat_tree(2)
    h1, h2 = int(topo.hosts[0]), int(topo.hosts[1])
    flows = FlowSet(sources=[h1, h2], destinations=[h1, h2], rates=[100.0, 1.0])

    initial = dp_placement(topo, flows, 2)
    flipped = flows.with_rates([1.0, 100.0])
    stale = no_migration(topo, flipped, initial.placement)
    migrated = mpareto_migration(topo, flipped, initial.placement, mu=1.0)
    reduction = 1.0 - migrated.cost / stale.cost

    def labels(placement: np.ndarray) -> str:
        return ",".join(topo.graph.label(int(x)) for x in placement)

    rows = [
        {
            "stage": "initial TOP placement (λ=<100,1>)",
            "placement": labels(initial.placement),
            "comm_cost": initial.cost,
            "migration_cost": 0.0,
            "total_cost": initial.cost,
        },
        {
            "stage": "rates flip to <1,100>, no migration",
            "placement": labels(stale.migration),
            "comm_cost": stale.communication_cost,
            "migration_cost": 0.0,
            "total_cost": stale.cost,
        },
        {
            "stage": "mPareto migration",
            "placement": labels(migrated.migration),
            "comm_cost": migrated.communication_cost,
            "migration_cost": migrated.migration_cost,
            "total_cost": migrated.cost,
        },
    ]
    notes = [
        f"total-cost reduction vs staying: {reduction:.1%} (paper: 58.6%)",
        f"paper-expected stage costs 410 / 1004 / 416; measured "
        f"{initial.cost:.0f} / {stale.cost:.0f} / {migrated.cost:.0f}",
    ]
    return ExperimentResult(
        experiment="fig03_example",
        description="Example 1: VNF migration on the k=2 fat tree",
        rows=rows,
        notes=notes,
        params={"k": 2, "mu": 1.0},
    )
