"""Table II: the algorithm/baseline map of the paper's evaluation."""

from __future__ import annotations

from repro.experiments.common import ExperimentResult, check_scale, register

__all__ = ["run"]


@register("table02_algorithms", "Table II: compared algorithms per problem")
def run(scale: str = "default") -> ExperimentResult:
    check_scale(scale)
    rows = [
        {
            "problem": "TOP-1",
            "our_solutions": "DP-Stroll (dp_placement_top1), Optimal (optimal_placement)",
            "existing_work": "PrimalDual [10] (primal_dual_placement_top1)",
        },
        {
            "problem": "TOP",
            "our_solutions": "DP (dp_placement), Optimal (optimal_placement)",
            "existing_work": "Steering [55] (steering_placement), Greedy [34] (greedy_liu_placement)",
        },
        {
            "problem": "TOM",
            "our_solutions": "mPareto (mpareto_migration), Optimal (optimal_migration)",
            "existing_work": "PLAN [17] (plan_vm_migration), MCF [24] (mcf_vm_migration)",
        },
    ]
    return ExperimentResult(
        experiment="table02_algorithms",
        description="Table II: summary of compared algorithms",
        rows=rows,
        notes=["each cell names the repro function implementing the series"],
    )
