"""Ablation studies for the design choices DESIGN.md calls out.

* ``ablation_complete_graph`` — Example 2's point: the stroll DP must run
  on the metric closure; on the raw graph it returns dearer strolls.
* ``ablation_dp_backends`` — the pseudocode's single-successor memo
  ("paper" mode) vs the strengthened best/second-best DP, cross-checked
  against the loop-faithful reference implementation.
* ``ablation_frontiers`` — Algorithm 5's parallel frontiers vs the naive
  endpoint rule (stay at ``p`` or jump to ``p'``) vs exact Algorithm 6.
* ``ablation_mu`` — sensitivity of the migration benefit to the
  migration coefficient μ.
* ``ablation_dynamics`` — how much headroom migration has (fresh-vs-stale
  placement gap at μ=0) under each traffic-dynamics model; documents why
  the Fig. 11 regime uses hourly redraws.
"""

from __future__ import annotations

import numpy as np

from repro.core.costs import CostContext
from repro.core.migration import best_full_frontier, mpareto_migration
from repro.core.optimal import optimal_migration
from repro.core.placement import dp_placement
from repro.core.stroll import dp_stroll, dp_stroll_reference
from repro.errors import InfeasibleError, MigrationError, SolverError
from repro.experiments.common import ExperimentResult, check_scale, register
from repro.graphs.generators import random_cost_graph
from repro.graphs.metric_closure import metric_closure
from repro.topology.fattree import fat_tree
from repro.utils.rng import spawn_rngs
from repro.workload.diurnal import DiurnalModel, assign_cohorts, assign_cohorts_spatial
from repro.workload.dynamics import RedrawnRates, ScaledRates
from repro.workload.flows import place_vm_pairs
from repro.workload.traffic import FacebookTrafficModel

__all__ = [
    "run_complete_graph",
    "run_dp_backends",
    "run_frontiers",
    "run_mu",
    "run_dynamics",
]


def _raw_cost_matrix(graph) -> np.ndarray:
    """Adjacency weights with +inf for non-edges (the non-closure input)."""
    return graph.weights.copy()


@register("ablation_complete_graph", "Stroll DP on metric closure vs raw graph")
def run_complete_graph(scale: str = "default") -> ExperimentResult:
    check_scale(scale)
    rows = []
    worse = 0
    failed = 0
    trials = 6 if scale == "smoke" else 20
    for seed in range(trials):
        rng = np.random.default_rng(seed)
        # sparse graphs make the point: on dense graphs raw walks already
        # approximate closure walks, Example 2 is about the sparse case
        graph = random_cost_graph(rng, 10, edge_prob=0.12)
        closure = metric_closure(graph)
        raw = _raw_cost_matrix(graph)
        on_closure = dp_stroll(closure, 0, 9, 3).cost
        try:
            on_raw = dp_stroll(raw, 0, 9, 3).cost
        except (SolverError, InfeasibleError):
            # the raw graph may not even contain an (n+1)-edge stroll —
            # the obstacle the paper's G'' construction removes
            on_raw = None
            failed += 1
        if on_raw is not None and on_raw > on_closure + 1e-9:
            worse += 1
        rows.append(
            {
                "seed": seed,
                "closure_cost": on_closure,
                "raw_graph_cost": on_raw,
                "penalty": (on_raw / on_closure - 1.0) if on_raw is not None else None,
            }
        )
    notes = [
        f"raw-graph DP strictly worse on {worse}/{trials} instances and "
        f"outright failed on {failed}/{trials} (never better) — "
        "Example 2's motivation for G''",
    ]
    return ExperimentResult(
        experiment="ablation_complete_graph",
        description="Example 2 ablation: DP input graph",
        rows=rows,
        notes=notes,
        params={"trials": trials},
    )


@register("ablation_dp_backends", "Stroll DP variants: second-best vs paper vs reference")
def run_dp_backends(scale: str = "default") -> ExperimentResult:
    check_scale(scale)
    trials = 6 if scale == "smoke" else 25
    rows = []
    agree = 0
    improvements = []
    for seed in range(trials):
        rng = np.random.default_rng(1000 + seed)
        closure = metric_closure(random_cost_graph(rng, 9))
        strengthened = dp_stroll(closure, 0, 8, 3).cost
        paper = dp_stroll(closure, 0, 8, 3, mode="paper").cost
        reference = dp_stroll_reference(closure, 0, 8, 3).cost
        agree += int(abs(paper - reference) < 1e-9)
        improvements.append(paper / strengthened - 1.0)
        rows.append(
            {
                "seed": seed,
                "second_best": strengthened,
                "paper_mode": paper,
                "reference": reference,
            }
        )
    notes = [
        f"vectorized paper mode == pseudocode reference on {agree}/{trials} instances",
        f"paper mode over second-best: mean {np.mean(improvements):+.1%}, "
        f"max {np.max(improvements):+.1%} (ties on symmetric fabrics, can "
        "lose badly on tie-dense instances)",
    ]
    return ExperimentResult(
        experiment="ablation_dp_backends",
        description="Backtrack-handling ablation for Algorithm 2",
        rows=rows,
        notes=notes,
        params={"trials": trials},
    )


@register("ablation_frontiers", "mPareto frontiers vs endpoint rule vs exact TOM")
def run_frontiers(scale: str = "default") -> ExperimentResult:
    params = {
        "smoke": {"k": 4, "l": 8, "n": 3, "trials": 3, "mu": 100.0},
        "default": {"k": 8, "l": 32, "n": 5, "trials": 8, "mu": 1e3},
        "paper": {"k": 8, "l": 128, "n": 7, "trials": 20, "mu": 1e4},
    }[check_scale(scale)]
    topo = fat_tree(params["k"])
    model = FacebookTrafficModel()
    rows = []
    for trial, rng in enumerate(spawn_rngs(31, params["trials"])):
        flows = place_vm_pairs(topo, params["l"], seed=rng)
        flows = flows.with_rates(model.sample(params["l"], rng=rng))
        source = dp_placement(topo, flows, params["n"]).placement
        new_flows = flows.with_rates(model.sample(params["l"], rng=rng))
        ctx = CostContext(topo, new_flows)

        mp = mpareto_migration(topo, new_flows, source, params["mu"])
        # endpoint rule: stay at p or jump wholesale to p'
        fresh = dp_placement(topo, new_flows, params["n"]).placement
        endpoint_cost = min(
            ctx.total_cost(source, source, params["mu"]),
            ctx.total_cost(source, fresh, params["mu"]),
        )
        # Definition 1's complete frontier set, when enumerable
        try:
            _, full_cost = best_full_frontier(
                ctx, source, fresh, params["mu"], limit=50_000
            )
        except MigrationError:
            full_cost = None
        opt = optimal_migration(topo, new_flows, source, params["mu"])
        rows.append(
            {
                "trial": trial,
                "mpareto": mp.cost,
                "full_frontier_set": full_cost,
                "endpoints_only": endpoint_cost,
                "optimal": opt.cost,
                "frontiers": mp.extra["num_frontiers"],
            }
        )
    mp_mean = np.mean([r["mpareto"] for r in rows])
    ep_mean = np.mean([r["endpoints_only"] for r in rows])
    opt_mean = np.mean([r["optimal"] for r in rows])
    notes = [
        f"mPareto within {mp_mean / opt_mean - 1.0:.2%} of exact TOM on average",
        f"interior frontiers buy {1.0 - mp_mean / ep_mean:.2%} over the "
        "endpoint-only rule on average",
    ]
    return ExperimentResult(
        experiment="ablation_frontiers",
        description="Value of parallel migration frontiers (Algorithm 5)",
        rows=rows,
        notes=notes,
        params=params,
    )


@register("ablation_mu", "Migration-coefficient sensitivity of mPareto")
def run_mu(scale: str = "default") -> ExperimentResult:
    params = {
        "smoke": {"k": 4, "l": 8, "n": 3, "mus": (0.0, 1e2, 1e4)},
        "default": {"k": 8, "l": 64, "n": 5, "mus": (0.0, 1e1, 1e2, 1e3, 1e4, 1e5)},
        "paper": {"k": 16, "l": 256, "n": 7, "mus": (0.0, 1e2, 1e3, 1e4, 1e5, 1e6)},
    }[check_scale(scale)]
    topo = fat_tree(params["k"])
    model = FacebookTrafficModel()
    rng = spawn_rngs(37, 1)[0]
    flows = place_vm_pairs(topo, params["l"], seed=rng)
    flows = flows.with_rates(model.sample(params["l"], rng=rng))
    # the hour-0 start (see fig11_dynamic): an arbitrary placement, so
    # migration has real work to do at every mu
    source = np.sort(rng.choice(topo.switches, size=params["n"], replace=False))
    new_flows = flows.with_rates(model.sample(params["l"], rng=rng))
    ctx = CostContext(topo, new_flows)
    stay = ctx.communication_cost(source)

    rows = []
    for mu in params["mus"]:
        result = mpareto_migration(topo, new_flows, source, mu)
        rows.append(
            {
                "mu": mu,
                "total_cost": result.cost,
                "migration_cost": result.migration_cost,
                "vnfs_moved": result.num_migrated,
                "stay_cost": stay,
            }
        )
    moves = [r["vnfs_moved"] for r in rows]
    notes = [
        f"migrations monotonically vanish as mu grows: {moves}",
        "total cost is non-decreasing in mu: "
        f"{all(a['total_cost'] <= b['total_cost'] + 1e-6 for a, b in zip(rows, rows[1:]))}",
    ]
    return ExperimentResult(
        experiment="ablation_mu",
        description="mPareto vs migration coefficient",
        rows=rows,
        notes=notes,
        params=params,
    )


@register("ablation_dynamics", "Migration headroom under each dynamics model")
def run_dynamics(scale: str = "default") -> ExperimentResult:
    params = {
        "smoke": {"k": 4, "l": 8, "n": 3},
        "default": {"k": 8, "l": 32, "n": 5},
        "paper": {"k": 8, "l": 128, "n": 7},
    }[check_scale(scale)]
    topo = fat_tree(params["k"])
    model = FacebookTrafficModel()
    diurnal = DiurnalModel()
    flows = place_vm_pairs(topo, params["l"], seed=3)
    flows = flows.with_rates(model.sample(params["l"], rng=3))

    rows = []
    for dynamics in ("scaled", "redrawn"):
        for cohorts in ("random", "spatial"):
            offsets = (
                assign_cohorts_spatial(topo, flows)
                if cohorts == "spatial"
                else assign_cohorts(params["l"], seed=3)
            )
            if dynamics == "scaled":
                process = ScaledRates(flows, diurnal, offsets)
            else:
                process = RedrawnRates(flows, diurnal, offsets, model, seed=3)
            stale_placement = dp_placement(
                topo, flows.with_rates(process.rates_at(1)), params["n"]
            ).placement
            stale = fresh = 0.0
            for hour in range(1, diurnal.num_hours + 1):
                hour_flows = flows.with_rates(process.rates_at(hour))
                ctx = CostContext(topo, hour_flows)
                stale += ctx.communication_cost(stale_placement)
                fresh += dp_placement(topo, hour_flows, params["n"]).cost
            rows.append(
                {
                    "dynamics": dynamics,
                    "cohorts": cohorts,
                    "stale_day_cost": stale,
                    "fresh_day_cost": fresh,
                    "headroom": 1.0 - fresh / stale if stale > 0 else 0.0,
                }
            )
    notes = [
        "headroom = the largest possible migration saving (mu=0, TOP at "
        "hour 1); on an unweighted fat tree with spatially uniform scaled "
        "traffic it collapses to ~0 — the reason Fig. 11 needs per-hour "
        "rate churn (see EXPERIMENTS.md)",
    ]
    return ExperimentResult(
        experiment="ablation_dynamics",
        description="Fresh-vs-stale placement gap per dynamics model",
        rows=rows,
        notes=notes,
        params=params,
    )
