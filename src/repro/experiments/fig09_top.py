"""Fig. 9: TOP placement comparison on unweighted PPDCs.

Two sweeps over the k=8 fat tree (hop-count costs):

* Fig. 9(a): total VM communication cost vs the number of VM pairs ``l``
  at fixed ``n``;
* Fig. 9(b): the same vs the number of VNFs ``n`` at fixed ``l``;

for four algorithms: Optimal (Algorithm 4, where the exact search fits
its budget), DP (Algorithm 3), Greedy (Liu [34]) and Steering [55].  The
paper's qualitative claim: DP ≈ Optimal, both clearly below Greedy and
Steering.
"""

from __future__ import annotations

import numpy as np

from repro.errors import BudgetExceededError
from repro.experiments.common import (
    ExperimentResult,
    check_scale,
    map_points,
    register,
    zip_completed,
)
from repro.session import SolverSession
from repro.topology.fattree import fat_tree
from repro.utils.rng import spawn_rngs
from repro.utils.stats import mean_ci
from repro.workload.flows import place_vm_pairs
from repro.workload.traffic import FacebookTrafficModel

__all__ = ["run", "sweep_placements", "sweep_cell"]

_SCALE_PARAMS = {
    "smoke": {
        "k": 4,
        "ls": (4, 8),
        "fixed_n": 3,
        "ns": (3, 4),
        "fixed_l": 8,
        "replications": 2,
        "seed": 9,
        "budget": 100_000,
    },
    "default": {
        "k": 8,
        "ls": (8, 16, 32, 64),
        "fixed_n": 5,
        "ns": (3, 5, 9, 13),
        "fixed_l": 32,
        "replications": 5,
        "seed": 9,
        "budget": 400_000,
    },
    "paper": {
        "k": 8,
        "ls": (16, 32, 64, 128, 256),
        "fixed_n": 5,
        "ns": tuple(range(3, 14)),
        "fixed_l": 128,
        "replications": 20,
        "seed": 9,
        "budget": 2_000_000,
    },
}

_ALGORITHMS = ("dp", "greedy", "steering")


def sweep_placements(topology, model, l, n, replications, seed, budget):
    """One (l, n) cell: mean cost per algorithm over paired workloads.

    All replications share one :class:`~repro.session.SolverSession`, so
    the per-topology artifacts (APSP, stroll matrices) are derived once
    for the whole cell.
    """
    session = SolverSession(topology)
    costs: dict[str, list[float]] = {name: [] for name in _ALGORITHMS}
    costs["optimal"] = []
    optimal_ok = True
    for rng in spawn_rngs(seed, replications):
        flows = place_vm_pairs(topology, l, seed=rng)
        flows = flows.with_rates(model.sample(l, rng=rng))
        for name in _ALGORITHMS:
            costs[name].append(session.place(flows, n, algo=name).cost)
        if optimal_ok:
            try:
                costs["optimal"].append(
                    session.place(flows, n, algo="optimal", budget=budget).cost
                )
            except BudgetExceededError:
                optimal_ok = False
    row: dict = {}
    for name, values in costs.items():
        if values and (name != "optimal" or optimal_ok):
            ci = mean_ci(values)
            row[name] = ci.mean
        else:
            row[name] = None
    return row


def sweep_cell(task: tuple) -> dict:
    """Picklable per-point adapter for :func:`map_points` fan-out.

    ``task`` is ``(topology, model, l, n, replications, seed,
    budget)`` — self-contained, so cells can run in any process.
    Also used by the Fig. 10 weighted sweep.
    """
    return sweep_placements(*task)


@register("fig09_top", "TOP placement vs l and vs n (unweighted k=8)")
def run(scale: str = "default", workers: int = 1) -> ExperimentResult:
    params = _SCALE_PARAMS[check_scale(scale)]
    topo = fat_tree(params["k"])
    model = FacebookTrafficModel()
    points = [
        ("vary_l", l, params["fixed_n"], params["seed"] * 100 + l)
        for l in params["ls"]
    ] + [
        ("vary_n", params["fixed_l"], n, params["seed"] * 1000 + n)
        for n in params["ns"]
    ]
    cells = map_points(
        sweep_cell,
        [
            (topo, model, l, n, params["replications"], seed, params["budget"])
            for _sweep, l, n, seed in points
        ],
        workers=workers,
    )
    # zip_completed drops points skipped under --on-failure=skip while
    # keeping every surviving cell aligned with its point spec
    rows = [
        {"sweep": sweep, "l": l, "n": n, **cell}
        for (sweep, l, n, _seed), cell in zip_completed(points, cells)
    ]

    notes = []
    dp_vs_opt = [
        row["dp"] / row["optimal"] - 1.0 for row in rows if row.get("optimal")
    ]
    if dp_vs_opt:
        notes.append(
            f"DP over Optimal: mean {np.mean(dp_vs_opt):.1%}, max {np.max(dp_vs_opt):.1%}"
        )
    for base in ("steering", "greedy"):
        savings = [1.0 - row["dp"] / row[base] for row in rows if row.get(base)]
        notes.append(
            f"DP saves vs {base}: mean {np.mean(savings):.1%}, max {np.max(savings):.1%}"
        )
    return ExperimentResult(
        experiment="fig09_top",
        description="Fig. 9: TOP comparison, unweighted fat tree",
        rows=rows,
        notes=notes,
        params=params,
    )
