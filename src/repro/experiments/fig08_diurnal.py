"""Fig. 8: the daily VM traffic-rate pattern of Eq. 9.

One row per hour of the simulated day with the scale factor of the west
cohort (base clock), the east cohort (3 hours ahead), and the blended
mean — the two-bump daily shape the paper visualizes.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.common import ExperimentResult, check_scale, register
from repro.workload.diurnal import DiurnalModel

__all__ = ["run"]


@register("fig08_diurnal", "Eq. 9 diurnal traffic scale with two coasts")
def run(scale: str = "default") -> ExperimentResult:
    check_scale(scale)  # constant-size at every scale
    model = DiurnalModel()
    hours = np.arange(model.num_hours + 1)
    west = model.scales(hours)
    east = model.scales(hours + 3.0)
    rows = [
        {
            "hour": int(h),
            "tau_west": float(west[i]),
            "tau_east": float(east[i]),
            "mean_scale": float((west[i] + east[i]) / 2.0),
        }
        for i, h in enumerate(hours)
    ]
    peak = int(np.argmax([row["mean_scale"] for row in rows]))
    notes = [
        f"peak of each cohort: {1 - model.tau_min:.2f} at its local noon",
        f"blended peak at hour {rows[peak]['hour']} "
        "(between the two cohorts' noons)",
        "tau_0 = tau_N = 0: the working day starts and ends silent (Eq. 9)",
    ]
    return ExperimentResult(
        experiment="fig08_diurnal",
        description="Fig. 8: daily traffic rate pattern (Eq. 9, N=12, tau_min=0.2)",
        rows=rows,
        notes=notes,
        params={"num_hours": model.num_hours, "tau_min": model.tau_min},
    )
