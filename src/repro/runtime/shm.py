"""Ship per-topology solver artifacts to worker processes via shared memory.

Parallel runs historically re-derived the per-topology artifacts —
the APSP tables and Algorithm 3's stroll-cost matrices — once per worker
process, because every worker warms its own :class:`ComputeCache`.  The
artifacts are pure functions of the topology, so the parent can compute
them once, copy them into :mod:`multiprocessing.shared_memory` segments,
and hand every worker read-only NumPy views instead.

The hand-off is content-addressed: :func:`content_fingerprint` hashes the
canonical pickle of the topology (the same dump→load→dump trick the
resilience journal uses), and a worker only adopts artifacts whose
fingerprint matches the topology a task actually carries.  Adopted
arrays are byte-copies of what the worker would have computed itself
(Dijkstra and the stroll DP are deterministic), so journal resume and
serial/parallel bit-identity are preserved by construction.

Lifetime: the parent owns the segments (created in
:func:`export_session_artifacts`, unlinked by
:meth:`ArtifactExport.close`); workers attach without taking ownership —
:func:`_attach_array` unregisters the attachment from the
``resource_tracker`` so worker exits do not double-unlink the parent's
segments.  Sharing can be disabled wholesale (``--no-shared-artifacts``)
via :func:`set_artifact_sharing`.
"""

from __future__ import annotations

import dataclasses
import hashlib
import multiprocessing
import os
import pickle
from dataclasses import dataclass
from multiprocessing import resource_tracker, shared_memory
from typing import Any, Callable, Iterable

import numpy as np

from repro.errors import ReproError
from repro.runtime.cache import get_compute_cache
from repro.runtime.instrument import count

__all__ = [
    "ShmArrayRef",
    "SharedArtifacts",
    "ArtifactExport",
    "SharedArtifactRunner",
    "content_fingerprint",
    "export_session_artifacts",
    "adopt_artifacts",
    "set_artifact_sharing",
    "sharing_enabled",
]

#: pickle protocol pinned to match the resilience journal's fingerprints
_PICKLE_PROTOCOL = 4

#: process-global switch; the CLI's --no-shared-artifacts clears it
_SHARING_ENABLED = True

#: pid at import time — in a *forked* worker this still names the parent
#: (inherited memory), while a *spawned* worker re-imports and stamps its
#: own pid; see :func:`_owns_resource_tracker`
_IMPORT_PID = os.getpid()


def _owns_resource_tracker() -> bool:
    """True iff this process runs its own resource-tracker daemon.

    Forked workers inherit the parent's tracker, so attach-time
    registrations deduplicate against the parent's create-time one and
    must NOT be unregistered (that would strip the parent's own cleanup
    registration).  Spawned workers start a fresh tracker whose
    registration would unlink the parent's segment on worker exit — there
    the unregister is required.
    """
    return (
        multiprocessing.parent_process() is not None and _IMPORT_PID == os.getpid()
    )


def set_artifact_sharing(enabled: bool) -> bool:
    """Enable/disable shared-memory artifact hand-off; returns the old value."""
    global _SHARING_ENABLED
    previous = _SHARING_ENABLED
    _SHARING_ENABLED = bool(enabled)
    return previous


def sharing_enabled() -> bool:
    return _SHARING_ENABLED


def content_fingerprint(obj: Any) -> str:
    """sha256 of the canonical pickle of ``obj``.

    One dump→load→dump round-trip canonicalizes pickle's memo accidents
    (see :func:`repro.runtime.journal.task_fingerprint`), so parent and
    worker compute the same fingerprint for equal-valued objects.
    """
    try:
        payload = pickle.dumps(obj, protocol=_PICKLE_PROTOCOL)
        payload = pickle.dumps(pickle.loads(payload), protocol=_PICKLE_PROTOCOL)
    except Exception as exc:
        raise ReproError(f"cannot fingerprint unpicklable object: {exc!r}") from exc
    return hashlib.sha256(payload).hexdigest()


@dataclass(frozen=True)
class ShmArrayRef:
    """Picklable pointer to one ndarray living in a shared-memory segment."""

    name: str
    shape: tuple
    dtype: str


@dataclass(frozen=True)
class SharedArtifacts:
    """Picklable manifest of one topology's shared solver artifacts.

    ``strolls`` pairs each :class:`ComputeCache` key (the exact tuple
    :func:`repro.core.placement._stroll_matrix` would use) with the refs
    of its ``(closure, b_cost, b_edges)`` arrays.
    """

    fingerprint: str
    apsp_dist: ShmArrayRef
    apsp_pred: ShmArrayRef
    strolls: tuple


class ArtifactExport:
    """Parent-side handle owning the segments; ``close()`` unlinks them."""

    def __init__(
        self, shared: SharedArtifacts, segments: list[shared_memory.SharedMemory]
    ) -> None:
        self.shared = shared
        self._segments = segments

    def close(self) -> None:
        """Release and unlink every segment (idempotent)."""
        segments, self._segments = self._segments, []
        for segment in segments:
            try:
                segment.close()
                segment.unlink()
            except FileNotFoundError:  # already unlinked
                pass

    def __enter__(self) -> "ArtifactExport":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def _export_array(arr: np.ndarray) -> tuple[ShmArrayRef, shared_memory.SharedMemory]:
    arr = np.ascontiguousarray(arr)
    segment = shared_memory.SharedMemory(create=True, size=max(arr.nbytes, 1))
    view = np.ndarray(arr.shape, dtype=arr.dtype, buffer=segment.buf)
    view[...] = arr
    return ShmArrayRef(segment.name, tuple(arr.shape), str(arr.dtype)), segment


def export_session_artifacts(
    topology,
    chain_sizes: Iterable[int] = (),
    *,
    mode: str = "second-best",
    extra_edge_slack: int = 16,
) -> ArtifactExport:
    """Compute a topology's artifacts once and copy them into shared memory.

    ``chain_sizes`` lists the SFC lengths whose stroll matrices should
    ship alongside the APSP tables (lengths ≤ 2 are solved exactly
    without a matrix and are skipped).
    """
    count("shm_exports")
    segments: list[shared_memory.SharedMemory] = []
    try:
        dist, pred = topology.graph._apsp()
        dist_ref, segment = _export_array(dist)
        segments.append(segment)
        pred_ref, segment = _export_array(pred)
        segments.append(segment)

        from repro.core.placement import _stroll_matrix

        sw = topology.switches
        strolls = []
        for n in sorted(set(int(x) for x in chain_sizes)):
            interior = n - 2
            if interior < 1:
                continue
            max_edges = interior + 1 + extra_edge_slack
            arrays = _stroll_matrix(topology, sw, interior, mode, max_edges)
            key = ("stroll_matrix", sw.tobytes(), interior, mode, max_edges)
            refs = []
            for arr in arrays:
                ref, segment = _export_array(arr)
                segments.append(segment)
                refs.append(ref)
            strolls.append((key, tuple(refs)))
        shared = SharedArtifacts(
            fingerprint=content_fingerprint(topology),
            apsp_dist=dist_ref,
            apsp_pred=pred_ref,
            strolls=tuple(strolls),
        )
    except BaseException:
        ArtifactExport(None, segments).close()
        raise
    return ArtifactExport(shared, segments)


# -- worker side --------------------------------------------------------------

#: fingerprint -> (canonical topology, attached segments kept alive for the
#: process, since the adopted ndarray views borrow their buffers)
_ADOPTED: dict[str, tuple[Any, list[shared_memory.SharedMemory]]] = {}


def _attach_array(ref: ShmArrayRef) -> tuple[np.ndarray, shared_memory.SharedMemory]:
    segment = shared_memory.SharedMemory(name=ref.name)
    # Attaching registers the segment with this process's resource tracker
    # as if we owned it, so a spawned worker's exit would unlink (and warn
    # about) the parent's segments.  The parent owns lifetime; drop the
    # registration — but only where this process has its own tracker (a
    # forked worker shares the parent's, whose registration must survive).
    if _owns_resource_tracker():
        try:
            resource_tracker.unregister(segment._name, "shared_memory")
        except Exception:  # pragma: no cover - tracker internals vary
            pass
    arr = np.ndarray(ref.shape, dtype=np.dtype(ref.dtype), buffer=segment.buf)
    arr.setflags(write=False)
    return arr, segment


def adopt_artifacts(shared: SharedArtifacts, topology) -> Any:
    """Attach the shared arrays and seed this process's compute cache.

    The first adoption of a fingerprint makes its ``topology`` the
    process-canonical instance for that content: later tasks carrying an
    equal-valued (but identity-distinct, freshly unpickled) topology are
    rewritten onto the canonical one so the per-owner cache entries —
    APSP, stroll matrices, attraction gathers — actually hit.  Returns
    the canonical topology.
    """
    entry = _ADOPTED.get(shared.fingerprint)
    if entry is not None:
        return entry[0]
    segments: list[shared_memory.SharedMemory] = []
    dist, segment = _attach_array(shared.apsp_dist)
    segments.append(segment)
    pred, segment = _attach_array(shared.apsp_pred)
    segments.append(segment)
    cache = get_compute_cache()
    cache.get_or_compute(topology.graph, "apsp", lambda: (dist, pred))
    for key, refs in shared.strolls:
        arrays = []
        for ref in refs:
            arr, segment = _attach_array(ref)
            segments.append(segment)
            arrays.append(arr)
        value = tuple(arrays)
        cache.get_or_compute(topology, key, lambda value=value: value)
    count("shm_adoptions")
    _ADOPTED[shared.fingerprint] = (topology, segments)
    return topology


@dataclass(frozen=True)
class SharedArtifactRunner:
    """Picklable task-fn wrapper shipping artifacts to workers once.

    Shipped through the pool *initializer* (like any mapped fn), never
    inside task payloads — so the tasks the resilience journal
    fingerprints are byte-for-byte the same with or without sharing, and
    resume stays bit-identical.  Tasks whose topology fingerprint does
    not match are run unchanged.
    """

    fn: Callable[[Any], Any]
    shared: SharedArtifacts

    def __call__(self, task: Any) -> Any:
        topology = getattr(task, "topology", None)
        if (
            topology is not None
            and content_fingerprint(topology) == self.shared.fingerprint
        ):
            canonical = adopt_artifacts(self.shared, topology)
            if canonical is not topology:
                task = dataclasses.replace(task, topology=canonical)
        return self.fn(task)
