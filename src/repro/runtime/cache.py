"""An explicit, bounded, observable compute cache.

Historically the library's cross-call reuse was scattered: Algorithm 3's
stroll-cost matrices lived in a hidden module-global weak-dict in
:mod:`repro.core.placement`, and the all-pairs shortest-path tables were
memoized privately on each :class:`~repro.graphs.adjacency.CostGraph`.
:class:`ComputeCache` replaces both with one object that

* keys every entry by an *owner* object (a topology, a graph) held
  **weakly**, so caches die with the objects they describe;
* bounds the total number of entries with LRU eviction; and
* counts hits / misses / evictions, so the instrumentation layer
  (:mod:`repro.runtime.instrument`) can report cache effectiveness.

One process-global default cache exists per interpreter; worker processes
spawned by :mod:`repro.runtime.executor` therefore warm their own caches
independently and deterministically — cached and freshly-computed values
are bit-identical by construction, since the cache only ever stores the
result of a pure ``compute()`` call.

Dependency versioning
---------------------
The incremental solver core adds a second axis: artifacts can *declare
what they derive from* via named **epochs**.  ``depends_on=("strolls",)``
stamps an entry's key with the current ``("strolls", epoch)`` pair, so
one :meth:`bump` of the epoch orphans every stamped entry at once — no
enumeration, no callbacks; the stale keys simply stop being asked for and
age out through LRU.  :class:`~repro.session.SolverSession` uses this for
``apply(events)`` / ``advance(rates)``: a fault hour bumps the epochs of
the touched artifacts, a pure rate tick bumps nothing.

A third axis is *shared* (owner-less) entries: content-addressed
artifacts such as stroll tables keyed by a hash of their input closure,
which any topology may adopt.  They live under an internal anchor owner
so the same LRU bound and eviction machinery applies.

Observability and concurrency
-----------------------------
Every dependency epoch carries its own hit/miss/invalidation counters
(:meth:`epoch_stats`), reported through :func:`repro.runtime.instrument.report`
and the serve layer's metrics endpoint — cache health per artifact family
without anyone reaching into private state.  All mutating operations are
guarded by an :class:`~threading.RLock`: lookups happen under the lock,
``compute()`` runs outside it (a racing miss computes twice — both
results are bit-identical by the purity contract, and the second store is
idempotent), so the long-lived placement service can share one cache
across solver threads without corruption.
"""

from __future__ import annotations

import threading
import weakref
from collections import OrderedDict
from typing import Any, Callable, Hashable

from repro.errors import ReproError

__all__ = ["ComputeCache", "get_compute_cache", "set_compute_cache"]

#: default bound on the total number of cached entries per cache
DEFAULT_MAX_ENTRIES = 512

_MISSING = object()


class _SharedAnchor:
    """Weak-referenceable stand-in owner for owner-less shared entries."""

    __slots__ = ("__weakref__",)


class ComputeCache:
    """Bounded LRU cache of pure computations, keyed by (owner, key).

    ``owner`` is held weakly: all of an owner's entries vanish when the
    owner is garbage-collected (matching the old per-topology weak-dict
    semantics).  ``key`` must be hashable and should encode *every* input
    of the computation other than the owner itself.
    """

    def __init__(self, max_entries: int = DEFAULT_MAX_ENTRIES) -> None:
        if max_entries < 1:
            raise ReproError(f"max_entries must be positive, got {max_entries}")
        self.max_entries = int(max_entries)
        self._store: "weakref.WeakKeyDictionary[Any, dict[Hashable, Any]]" = (
            weakref.WeakKeyDictionary()
        )
        #: LRU bookkeeping: (id(owner), key) -> weakref to the owner.  Dead
        #: refs are skipped (their entries are already gone from _store).
        self._recency: "OrderedDict[tuple[int, Hashable], weakref.ref]" = OrderedDict()
        #: strongly-held owner for content-addressed shared entries; its
        #: entries obey the same LRU bound as everyone else's
        self._shared_anchor = _SharedAnchor()
        #: named dependency epochs; monotonically increasing, never reset
        #: (a cleared cache must not resurrect entries stamped pre-clear)
        self._epochs: dict[str, int] = {}
        #: per-dependency hit/miss/invalidation counters (see epoch_stats)
        self._epoch_stats: dict[str, dict[str, int]] = {}
        #: guards every structural mutation; compute() runs outside it
        self._lock = threading.RLock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    # -- core API -----------------------------------------------------------

    def get_or_compute(
        self, owner: Any, key: Hashable, compute: Callable[[], Any]
    ) -> Any:
        """Return the cached value for ``(owner, key)``, computing on miss."""
        return self._get_or_compute(owner, key, compute, ())

    def _get_or_compute(
        self,
        owner: Any,
        key: Hashable,
        compute: Callable[[], Any],
        depends_on: tuple[str, ...],
    ) -> Any:
        with self._lock:
            entries = self._store.get(owner)
            if entries is not None:
                value = entries.get(key, _MISSING)
                if value is not _MISSING:
                    self.hits += 1
                    self._attribute(depends_on, "hits")
                    self._recency.move_to_end((id(owner), key))
                    return value
            self.misses += 1
            self._attribute(depends_on, "misses")
        # compute outside the lock: a racing miss computes twice, both
        # bit-identical (purity contract); first store below wins
        value = compute()
        with self._lock:
            entries = self._store.get(owner)
            if entries is None:
                entries = self._store.setdefault(owner, {})
            stored = entries.get(key, _MISSING)
            if stored is not _MISSING:
                self._recency.move_to_end((id(owner), key))
                return stored
            entries[key] = value
            self._recency[(id(owner), key)] = weakref.ref(owner)
            self._evict()
        return value

    def _attribute(self, depends_on: tuple[str, ...], field: str) -> None:
        for name in depends_on:
            stats = self._epoch_stats.setdefault(
                name, {"hits": 0, "misses": 0, "invalidations": 0}
            )
            stats[field] += 1

    # -- dependency epochs ----------------------------------------------------

    def epoch(self, name: str) -> int:
        """Current epoch of dependency ``name`` (0 until first bump)."""
        return self._epochs.get(name, 0)

    def bump(self, name: str) -> int:
        """Advance dependency ``name``'s epoch, orphaning stamped entries.

        Every entry created with ``depends_on=(name, ...)`` was keyed
        with the then-current epoch; after the bump those keys are never
        generated again, so the stale entries age out through LRU while
        fresh lookups recompute against the new epoch.  Returns the new
        epoch value.
        """
        with self._lock:
            self._epochs[name] = self._epochs.get(name, 0) + 1
            self._attribute((name,), "invalidations")
            return self._epochs[name]

    def epoch_stats(self) -> dict[str, dict[str, int]]:
        """Per-dependency cache health: hit/miss/invalidation counts.

        Keys are dependency names that were ever stamped (via
        ``depends_on=``) or bumped; each value carries the current
        ``epoch`` plus ``hits`` / ``misses`` (lookups of entries stamped
        with that dependency) and ``invalidations`` (:meth:`bump` calls).
        This is the public surface the serve layer's metrics endpoint
        reports — nobody needs to reach into private state.
        """
        with self._lock:
            return {
                name: {"epoch": self.epoch(name), **stats}
                for name, stats in sorted(self._epoch_stats.items())
            }

    def _stamp(self, key: Hashable, depends_on: tuple[str, ...]) -> Hashable:
        if not depends_on:
            return key
        return (key, tuple((name, self.epoch(name)) for name in depends_on))

    def get_or_compute_versioned(
        self,
        owner: Any,
        key: Hashable,
        compute: Callable[[], Any],
        *,
        depends_on: tuple[str, ...] = (),
    ) -> Any:
        """Like :meth:`get_or_compute`, with the key stamped by epochs.

        ``depends_on`` names the dependency epochs this artifact derives
        from; bumping any of them invalidates the entry.
        """
        return self._get_or_compute(
            owner, self._stamp(key, depends_on), compute, depends_on
        )

    # -- shared (owner-less) entries -----------------------------------------

    def get_or_compute_shared(
        self,
        key: Hashable,
        compute: Callable[[], Any],
        *,
        depends_on: tuple[str, ...] = (),
    ) -> Any:
        """A content-addressed entry any caller may adopt.

        ``key`` must encode *all* inputs of the computation (typically a
        hash of the content it derives from); the entry is owned by the
        cache itself, bounded by the usual LRU machinery, and optionally
        stamped with dependency epochs.
        """
        return self._get_or_compute(
            self._shared_anchor, self._stamp(key, depends_on), compute, depends_on
        )

    def has_shared(self, key: Hashable, *, depends_on: tuple[str, ...] = ()) -> bool:
        """Whether a shared entry for ``key`` is currently cached."""
        entries = self._store.get(self._shared_anchor)
        return entries is not None and self._stamp(key, depends_on) in entries

    def _evict(self) -> None:
        while len(self._recency) > self.max_entries:
            (owner_id, key), ref = self._recency.popitem(last=False)
            owner = ref()
            if owner is None:
                continue  # died with its owner; not an eviction
            entries = self._store.get(owner)
            if entries is not None and key in entries:
                del entries[key]
                if not entries:
                    del self._store[owner]
                self.evictions += 1

    # -- introspection ------------------------------------------------------

    def __len__(self) -> int:
        """Number of live cached entries across all owners."""
        return sum(len(entries) for entries in self._store.values())

    @property
    def num_owners(self) -> int:
        """External owners with live entries (the internal shared anchor
        is bookkeeping, not an owner callers ever see)."""
        return len(self._store) - (1 if self._shared_anchor in self._store else 0)

    @property
    def num_shared_entries(self) -> int:
        """Live content-addressed shared entries (owner-less)."""
        entries = self._store.get(self._shared_anchor)
        return len(entries) if entries is not None else 0

    def owner_entries(self, owner: Any) -> int:
        """Number of live entries cached for ``owner``."""
        entries = self._store.get(owner)
        return len(entries) if entries is not None else 0

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from cache (0.0 before any lookup)."""
        lookups = self.hits + self.misses
        return self.hits / lookups if lookups else 0.0

    def stats(self) -> dict:
        """Counters and occupancy as a plain dict (JSON-friendly)."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "hit_rate": self.hit_rate,
            "entries": len(self),
            "owners": self.num_owners,
            "shared_entries": self.num_shared_entries,
            "max_entries": self.max_entries,
            "epochs": self.epoch_stats(),
        }

    # -- maintenance --------------------------------------------------------

    def clear(self) -> None:
        """Drop every entry (counters are kept; see :meth:`reset_stats`)."""
        with self._lock:
            self._store.clear()
            self._recency.clear()

    def reset_stats(self) -> None:
        with self._lock:
            self.hits = 0
            self.misses = 0
            self.evictions = 0
            self._epoch_stats.clear()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ComputeCache(entries={len(self)}/{self.max_entries}, "
            f"hits={self.hits}, misses={self.misses})"
        )


#: the process-global default cache; each worker process gets its own
_DEFAULT_CACHE = ComputeCache()


def get_compute_cache() -> ComputeCache:
    """The active process-global :class:`ComputeCache`."""
    return _DEFAULT_CACHE


def set_compute_cache(cache: ComputeCache) -> ComputeCache:
    """Swap the process-global cache; returns the previous one."""
    global _DEFAULT_CACHE
    if not isinstance(cache, ComputeCache):
        raise ReproError(f"expected a ComputeCache, got {type(cache).__name__}")
    previous = _DEFAULT_CACHE
    _DEFAULT_CACHE = cache
    return previous
