"""An explicit, bounded, observable compute cache.

Historically the library's cross-call reuse was scattered: Algorithm 3's
stroll-cost matrices lived in a hidden module-global weak-dict in
:mod:`repro.core.placement`, and the all-pairs shortest-path tables were
memoized privately on each :class:`~repro.graphs.adjacency.CostGraph`.
:class:`ComputeCache` replaces both with one object that

* keys every entry by an *owner* object (a topology, a graph) held
  **weakly**, so caches die with the objects they describe;
* bounds the total number of entries with LRU eviction; and
* counts hits / misses / evictions, so the instrumentation layer
  (:mod:`repro.runtime.instrument`) can report cache effectiveness.

One process-global default cache exists per interpreter; worker processes
spawned by :mod:`repro.runtime.executor` therefore warm their own caches
independently and deterministically — cached and freshly-computed values
are bit-identical by construction, since the cache only ever stores the
result of a pure ``compute()`` call.
"""

from __future__ import annotations

import weakref
from collections import OrderedDict
from typing import Any, Callable, Hashable

from repro.errors import ReproError

__all__ = ["ComputeCache", "get_compute_cache", "set_compute_cache"]

#: default bound on the total number of cached entries per cache
DEFAULT_MAX_ENTRIES = 512

_MISSING = object()


class ComputeCache:
    """Bounded LRU cache of pure computations, keyed by (owner, key).

    ``owner`` is held weakly: all of an owner's entries vanish when the
    owner is garbage-collected (matching the old per-topology weak-dict
    semantics).  ``key`` must be hashable and should encode *every* input
    of the computation other than the owner itself.
    """

    def __init__(self, max_entries: int = DEFAULT_MAX_ENTRIES) -> None:
        if max_entries < 1:
            raise ReproError(f"max_entries must be positive, got {max_entries}")
        self.max_entries = int(max_entries)
        self._store: "weakref.WeakKeyDictionary[Any, dict[Hashable, Any]]" = (
            weakref.WeakKeyDictionary()
        )
        #: LRU bookkeeping: (id(owner), key) -> weakref to the owner.  Dead
        #: refs are skipped (their entries are already gone from _store).
        self._recency: "OrderedDict[tuple[int, Hashable], weakref.ref]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    # -- core API -----------------------------------------------------------

    def get_or_compute(
        self, owner: Any, key: Hashable, compute: Callable[[], Any]
    ) -> Any:
        """Return the cached value for ``(owner, key)``, computing on miss."""
        entries = self._store.get(owner)
        if entries is not None:
            value = entries.get(key, _MISSING)
            if value is not _MISSING:
                self.hits += 1
                self._recency.move_to_end((id(owner), key))
                return value
        self.misses += 1
        value = compute()
        if entries is None:
            entries = self._store.setdefault(owner, {})
        entries[key] = value
        self._recency[(id(owner), key)] = weakref.ref(owner)
        self._evict()
        return value

    def _evict(self) -> None:
        while len(self._recency) > self.max_entries:
            (owner_id, key), ref = self._recency.popitem(last=False)
            owner = ref()
            if owner is None:
                continue  # died with its owner; not an eviction
            entries = self._store.get(owner)
            if entries is not None and key in entries:
                del entries[key]
                if not entries:
                    del self._store[owner]
                self.evictions += 1

    # -- introspection ------------------------------------------------------

    def __len__(self) -> int:
        """Number of live cached entries across all owners."""
        return sum(len(entries) for entries in self._store.values())

    @property
    def num_owners(self) -> int:
        return len(self._store)

    def owner_entries(self, owner: Any) -> int:
        """Number of live entries cached for ``owner``."""
        entries = self._store.get(owner)
        return len(entries) if entries is not None else 0

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from cache (0.0 before any lookup)."""
        lookups = self.hits + self.misses
        return self.hits / lookups if lookups else 0.0

    def stats(self) -> dict:
        """Counters and occupancy as a plain dict (JSON-friendly)."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "hit_rate": self.hit_rate,
            "entries": len(self),
            "owners": self.num_owners,
            "max_entries": self.max_entries,
        }

    # -- maintenance --------------------------------------------------------

    def clear(self) -> None:
        """Drop every entry (counters are kept; see :meth:`reset_stats`)."""
        self._store.clear()
        self._recency.clear()

    def reset_stats(self) -> None:
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ComputeCache(entries={len(self)}/{self.max_entries}, "
            f"hits={self.hits}, misses={self.misses})"
        )


#: the process-global default cache; each worker process gets its own
_DEFAULT_CACHE = ComputeCache()


def get_compute_cache() -> ComputeCache:
    """The active process-global :class:`ComputeCache`."""
    return _DEFAULT_CACHE


def set_compute_cache(cache: ComputeCache) -> ComputeCache:
    """Swap the process-global cache; returns the previous one."""
    global _DEFAULT_CACHE
    if not isinstance(cache, ComputeCache):
        raise ReproError(f"expected a ComputeCache, got {type(cache).__name__}")
    previous = _DEFAULT_CACHE
    _DEFAULT_CACHE = cache
    return previous
