"""Serial / process-parallel execution of picklable task specs.

The harness fans two shapes of work out across cores: the per-replication
work of :func:`repro.sim.runner.run_replications` (workload draw → initial
TOP placement → every policy's day) and the per-point work of experiment
sweeps (:func:`repro.experiments.common.map_points`).  Both route through
one :class:`Executor`:

* :class:`SerialExecutor` — a plain ordered loop in this process; and
* :class:`ParallelExecutor` — a :class:`concurrent.futures.ProcessPoolExecutor`
  fan-out preserving task order.

Tasks must be *self-contained and picklable* — a task carries everything
its computation needs (topology, config, seeds), never shared mutable
state — which is what makes the two executors bit-identical: the same
seeds go in, so the same results come out regardless of ``workers``.

Each worker process has its own compute cache and instrumentation; the
parallel executor wraps every task to capture an instrumentation snapshot
delta (counters, phase timers, cache hits/misses) and merges it back into
the parent, so profiling reports see all work wherever it ran.  Both
executors also time every task under the shared ``tasks`` timer, from
which the report derives its speedup estimate.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from concurrent.futures import ProcessPoolExecutor
from typing import Any, Callable, Iterable, Sequence

from repro.errors import ReproError
from repro.runtime import instrument
from repro.utils.timing import Timer

__all__ = ["Executor", "SerialExecutor", "ParallelExecutor", "get_executor"]


class Executor(ABC):
    """Maps a picklable function over task specs, preserving order."""

    #: number of worker processes this executor uses (1 = in-process)
    workers: int = 1

    @abstractmethod
    def map(self, fn: Callable[[Any], Any], tasks: Iterable[Any]) -> list[Any]:
        """Apply ``fn`` to every task, returning results in task order."""


class SerialExecutor(Executor):
    """In-process ordered execution (the ``workers=1`` reference path)."""

    workers = 1

    def map(self, fn: Callable[[Any], Any], tasks: Iterable[Any]) -> list[Any]:
        results = []
        for task in tasks:
            with Timer.timed("tasks"):
                results.append(fn(task))
        return results


def _instrumented_call(payload: tuple[Callable[[Any], Any], Any]) -> tuple[Any, dict]:
    """Worker-side shim: run one task and report what it cost.

    Returns ``(result, snapshot_delta)`` so the parent can fold the
    worker's counters, timers and cache statistics into its own.
    """
    fn, task = payload
    before = instrument.snapshot()
    with Timer.timed("tasks"):
        result = fn(task)
    return result, instrument.snapshot_delta(instrument.snapshot(), before)


class ParallelExecutor(Executor):
    """Process-pool fan-out; results keep task order, stats merge back."""

    def __init__(self, workers: int) -> None:
        if workers < 2:
            raise ReproError(
                f"ParallelExecutor needs at least 2 workers, got {workers}"
            )
        self.workers = int(workers)

    def map(self, fn: Callable[[Any], Any], tasks: Iterable[Any]) -> list[Any]:
        tasks = list(tasks)
        if not tasks:
            return []
        max_workers = min(self.workers, len(tasks))
        with ProcessPoolExecutor(max_workers=max_workers) as pool:
            pairs = list(
                pool.map(_instrumented_call, [(fn, task) for task in tasks])
            )
        results = []
        for result, delta in pairs:
            instrument.merge_snapshot(delta)
            results.append(result)
        return results


def get_executor(workers: int | None = 1) -> Executor:
    """Select the executor for a ``workers`` argument (``None``/1 = serial)."""
    workers = 1 if workers is None else int(workers)
    if workers < 1:
        raise ReproError(f"workers must be a positive integer, got {workers}")
    if workers == 1:
        return SerialExecutor()
    return ParallelExecutor(workers)


def map_tasks(
    fn: Callable[[Any], Any], tasks: Sequence[Any], workers: int | None = 1
) -> list[Any]:
    """One-shot convenience: ``get_executor(workers).map(fn, tasks)``."""
    return get_executor(workers).map(fn, tasks)
