"""Serial / process-parallel execution of picklable task specs.

The harness fans two shapes of work out across cores: the per-replication
work of :func:`repro.sim.runner.run_replications` (workload draw → initial
TOP placement → every policy's day) and the per-point work of experiment
sweeps (:func:`repro.experiments.common.map_points`).  Both route through
one :class:`Executor`:

* :class:`SerialExecutor` — a plain ordered loop in this process;
* :class:`ParallelExecutor` — submit-based dispatch onto a
  :class:`concurrent.futures.ProcessPoolExecutor`, preserving task order;
* :class:`ChaosExecutor` — a fault-injecting wrapper around either, used
  by the test suite to prove the resilience machinery keeps results
  bit-identical under crashes, delays and timeouts.

Tasks must be *self-contained and picklable* — a task carries everything
its computation needs (topology, config, seeds), never shared mutable
state — which is what makes the executors bit-identical: the same seeds
go in, so the same results come out regardless of ``workers``, retries,
or worker deaths.

Every ``map`` resolves the active
:class:`~repro.runtime.resilience.ResilienceConfig` (or one passed
explicitly) and applies its policy:

* failed tasks are retried up to ``max_retries`` with exponential backoff
  and deterministic jitter (:func:`~repro.runtime.resilience.backoff_delay`);
* a worker death (``BrokenProcessPool``) loses only the tasks in flight —
  completed results are kept, the pool is rebuilt, and each in-flight
  task is charged one attempt and re-submitted (so a task that keeps
  killing its worker still exhausts its budget and terminates the loop);
* a task exceeding ``task_timeout`` has its (hung) pool killed and is
  charged one timed-out attempt; innocent in-flight neighbours re-run
  free of charge.  Serial execution cannot preempt a running task, so
  there timeouts only classify injected/organic ``TimeoutError`` s;
* tasks that exhaust their budget either abort the map with
  :class:`~repro.errors.TaskError` (policy ``fail``) or leave a
  structured :class:`~repro.runtime.resilience.TaskFailure` in their
  result slot (policy ``skip``);
* when a journal is attached, finished tasks are checkpointed and
  journalled tasks are skipped on resume (counted as ``journal_hits``).

The function is shipped to each worker process *once* via the pool
initializer (not pickled per task), and tasks are submitted individually
— at most ``workers`` in flight — so submission time approximates start
time, which is what makes the parent-side deadline enforcement honest.

Each worker process has its own compute cache and instrumentation; the
worker-side shim captures an instrumentation snapshot delta (counters,
phase timers, cache hits/misses) per task and the parent merges it back,
so profiling reports see all work wherever it ran.  Both executors also
time every task under the shared ``tasks`` timer, from which the report
derives its speedup estimate.
"""

from __future__ import annotations

import builtins
import heapq
import time
import traceback as traceback_module
from abc import ABC, abstractmethod
from collections import deque
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor
from concurrent.futures import wait as futures_wait
from concurrent.futures.process import BrokenProcessPool
from typing import Any, Callable, Iterable, Sequence

from repro.errors import ReproError, TaskError
from repro.runtime import instrument
from repro.runtime.instrument import count
from repro.runtime.journal import task_fingerprint
from repro.runtime.resilience import (
    ResilienceConfig,
    TaskFailure,
    backoff_delay,
    chaos_wrap,
    get_resilience,
    record_failure,
)
from repro.utils.timing import Timer

__all__ = [
    "ChaosExecutor",
    "Executor",
    "ParallelExecutor",
    "SerialExecutor",
    "get_executor",
    "map_tasks",
]


class Executor(ABC):
    """Maps a picklable function over task specs, preserving order."""

    #: number of worker processes this executor uses (1 = in-process)
    workers: int = 1

    #: explicit policy override; ``None`` resolves the active one per map
    resilience: ResilienceConfig | None = None

    @abstractmethod
    def map(self, fn: Callable[[Any], Any], tasks: Iterable[Any]) -> list[Any]:
        """Apply ``fn`` to every task, returning results in task order."""

    def _config(self) -> ResilienceConfig:
        return self.resilience if self.resilience is not None else get_resilience()


def _call_fn(fn: Callable[[Any], Any], task: Any, attempt: int) -> Any:
    """Invoke a task function, passing the attempt number when supported.

    Attempt-aware callables (``accepts_attempt = True``, e.g. the chaos
    wrapper) receive which attempt this is, so transient fault injection
    can clear on retry; plain functions keep the one-argument contract.
    """
    if getattr(fn, "accepts_attempt", False):
        return fn(task, attempt)
    return fn(task)


class SerialExecutor(Executor):
    """In-process ordered execution (the ``workers=1`` reference path)."""

    workers = 1

    def __init__(self, resilience: ResilienceConfig | None = None) -> None:
        self.resilience = resilience

    def map(self, fn: Callable[[Any], Any], tasks: Iterable[Any]) -> list[Any]:
        config = self._config()
        fn = chaos_wrap(fn, config.chaos)
        results: list[Any] = []
        for index, task in enumerate(tasks):
            if config.journal is not None:
                fingerprint = task_fingerprint(config.scope, index, task)
                hit, value = config.journal.lookup(fingerprint)
                if hit:
                    count("journal_hits")
                    results.append(value)
                    continue
            else:
                fingerprint = None
            results.append(self._run_one(fn, index, task, config, fingerprint))
        return results

    def _run_one(
        self,
        fn: Callable[[Any], Any],
        index: int,
        task: Any,
        config: ResilienceConfig,
        fingerprint: str | None,
    ) -> Any:
        failed_attempts = 0
        while True:
            try:
                with Timer.timed("tasks"):
                    result = _call_fn(fn, task, failed_attempts)
            except Exception as exc:
                is_timeout = isinstance(exc, builtins.TimeoutError)
                if is_timeout:
                    count("task_timeouts")
                failed_attempts += 1
                if failed_attempts <= config.max_retries:
                    count("task_retries")
                    delay = backoff_delay(config, index, failed_attempts)
                    if delay > 0:
                        time.sleep(delay)
                    continue
                failure = TaskFailure(
                    index=index,
                    attempts=failed_attempts,
                    error=repr(exc),
                    traceback=traceback_module.format_exc(),
                    timeout=is_timeout,
                )
                if config.on_failure == "skip":
                    count("tasks_skipped")
                    record_failure(failure)
                    return failure
                raise TaskError(
                    f"task {index} failed after {failed_attempts} attempt(s): "
                    f"{failure.error}",
                    index=index,
                    attempts=failed_attempts,
                    worker_traceback=failure.traceback,
                ) from exc
            if fingerprint is not None:
                config.journal.record(fingerprint, result)
            return result


# -- worker-side shims --------------------------------------------------------

#: the mapped function, shipped once per worker process by the initializer
#: instead of being pickled into every task payload
_WORKER_FN: Callable[[Any], Any] | None = None


def _init_worker(fn: Callable[[Any], Any]) -> None:
    global _WORKER_FN
    _WORKER_FN = fn


def _run_task(index: int, attempt: int, task: Any) -> tuple:
    """Worker-side shim: run one task and report what happened and what it cost.

    Exceptions are caught *here*, in the worker, so the formatted
    traceback (which does not survive pickling on an exception object)
    crosses the process boundary as text.  Returns either
    ``("ok", index, result, delta)`` or
    ``("err", index, (error_repr, traceback_text, is_timeout), delta)``
    where ``delta`` is the instrumentation snapshot to merge back.
    """
    before = instrument.snapshot()
    try:
        with Timer.timed("tasks"):
            result = _call_fn(_WORKER_FN, task, attempt)
    except Exception as exc:
        delta = instrument.snapshot_delta(instrument.snapshot(), before)
        detail = (
            repr(exc),
            traceback_module.format_exc(),
            isinstance(exc, builtins.TimeoutError),
        )
        return ("err", index, detail, delta)
    delta = instrument.snapshot_delta(instrument.snapshot(), before)
    return ("ok", index, result, delta)


class ParallelExecutor(Executor):
    """Process-pool fan-out; results keep task order, stats merge back.

    Dispatch is submit-based (never a single ``pool.map``), so one dead
    worker forfeits only the tasks in flight; everything already
    completed is salvaged and the pool is rebuilt (see module docstring
    for the full failure semantics).
    """

    def __init__(
        self, workers: int, resilience: ResilienceConfig | None = None
    ) -> None:
        if workers < 2:
            raise ReproError(
                f"ParallelExecutor needs at least 2 workers, got {workers}"
            )
        self.workers = int(workers)
        self.resilience = resilience

    # -- pool lifecycle -----------------------------------------------------

    @staticmethod
    def _new_pool(fn: Callable[[Any], Any], max_workers: int) -> ProcessPoolExecutor:
        return ProcessPoolExecutor(
            max_workers=max_workers, initializer=_init_worker, initargs=(fn,)
        )

    @staticmethod
    def _kill_pool(pool: ProcessPoolExecutor) -> None:
        """Tear a pool down without waiting on hung or dead workers."""
        pool.shutdown(wait=False, cancel_futures=True)
        processes = getattr(pool, "_processes", None) or {}
        for process in list(processes.values()):
            try:
                process.terminate()
            except Exception:  # already dead / being reaped
                pass

    # -- the dispatch loop --------------------------------------------------

    def map(self, fn: Callable[[Any], Any], tasks: Iterable[Any]) -> list[Any]:
        config = self._config()
        fn = chaos_wrap(fn, config.chaos)
        tasks = list(tasks)
        if not tasks:
            return []
        n = len(tasks)
        results: list[Any] = [None] * n
        attempts = [0] * n  # failed attempts so far, per task

        fingerprints: list[str] | None = None
        remaining = list(range(n))
        if config.journal is not None:
            fingerprints = [
                task_fingerprint(config.scope, i, task) for i, task in enumerate(tasks)
            ]
            remaining = []
            for i in range(n):
                hit, value = config.journal.lookup(fingerprints[i])
                if hit:
                    count("journal_hits")
                    results[i] = value
                else:
                    remaining.append(i)
            if not remaining:
                return results

        max_workers = min(self.workers, len(remaining))
        pending: deque[int] = deque(remaining)
        retry_heap: list[tuple[float, int]] = []  # (ready time, task index)
        inflight: dict[Future, int] = {}
        deadlines: dict[int, float] = {}
        pool = self._new_pool(fn, max_workers)

        def finish(index: int, result: Any) -> None:
            results[index] = result
            if fingerprints is not None:
                config.journal.record(fingerprints[index], result)

        def fail_or_retry(index: int, failure: TaskFailure) -> None:
            """Schedule a retry if budget remains, else apply the policy."""
            if attempts[index] <= config.max_retries:
                count("task_retries")
                delay = backoff_delay(config, index, attempts[index])
                heapq.heappush(retry_heap, (time.monotonic() + delay, index))
                return
            if config.on_failure == "skip":
                count("tasks_skipped")
                record_failure(failure)
                results[index] = failure
                return
            raise TaskError(
                f"task {index} failed after {failure.attempts} attempt(s): "
                f"{failure.error}",
                index=index,
                attempts=failure.attempts,
                worker_traceback=failure.traceback,
            )

        def crash_failure(index: int) -> TaskFailure:
            return TaskFailure(
                index=index,
                attempts=attempts[index],
                error="worker process died (BrokenProcessPool)",
            )

        def rebuild_after_crash() -> None:
            """Salvage a broken pool: charge the in-flight tasks, restart."""
            nonlocal pool
            count("pool_restarts")
            for index in sorted(inflight.values()):
                deadlines.pop(index, None)
                attempts[index] += 1
                fail_or_retry(index, crash_failure(index))
            inflight.clear()
            self._kill_pool(pool)
            pool = self._new_pool(fn, max_workers)

        try:
            while pending or inflight or retry_heap:
                now = time.monotonic()
                while retry_heap and retry_heap[0][0] <= now:
                    pending.append(heapq.heappop(retry_heap)[1])
                while pending and len(inflight) < max_workers:
                    index = pending.popleft()
                    try:
                        future = pool.submit(
                            _run_task, index, attempts[index], tasks[index]
                        )
                    except BrokenProcessPool:
                        pending.appendleft(index)
                        rebuild_after_crash()
                        continue
                    inflight[future] = index
                    if config.task_timeout is not None:
                        deadlines[index] = time.monotonic() + config.task_timeout
                if not inflight:
                    if retry_heap:  # only backoff waits remain
                        time.sleep(
                            max(0.0, retry_heap[0][0] - time.monotonic())
                        )
                    continue

                wait_timeout = None
                if deadlines:
                    wait_timeout = max(0.0, min(deadlines.values()) - time.monotonic())
                if retry_heap:
                    until_retry = max(0.0, retry_heap[0][0] - time.monotonic())
                    wait_timeout = (
                        until_retry
                        if wait_timeout is None
                        else min(wait_timeout, until_retry)
                    )
                completed, _ = futures_wait(
                    set(inflight), timeout=wait_timeout, return_when=FIRST_COMPLETED
                )

                broken = False
                for future in completed:
                    index = inflight.pop(future)
                    deadlines.pop(index, None)
                    try:
                        status, _, value, delta = future.result()
                    except BrokenProcessPool:
                        broken = True
                        attempts[index] += 1
                        fail_or_retry(index, crash_failure(index))
                        continue
                    instrument.merge_snapshot(delta)
                    if status == "ok":
                        finish(index, value)
                        continue
                    error_repr, traceback_text, is_timeout = value
                    if is_timeout:
                        count("task_timeouts")
                    attempts[index] += 1
                    fail_or_retry(
                        index,
                        TaskFailure(
                            index=index,
                            attempts=attempts[index],
                            error=error_repr,
                            traceback=traceback_text,
                            timeout=is_timeout,
                        ),
                    )
                if broken:
                    rebuild_after_crash()
                    continue

                # parent-side deadline enforcement: a worker stuck past its
                # task's deadline cannot be reclaimed, so the pool goes too
                now = time.monotonic()
                expired = sorted(
                    index for index, deadline in deadlines.items() if deadline <= now
                )
                if expired:
                    count("pool_restarts")
                    survivors = sorted(
                        index for index in inflight.values() if index not in expired
                    )
                    for index in expired:
                        count("task_timeouts")
                        attempts[index] += 1
                        fail_or_retry(
                            index,
                            TaskFailure(
                                index=index,
                                attempts=attempts[index],
                                error=(
                                    "task exceeded task_timeout="
                                    f"{config.task_timeout}s"
                                ),
                                timeout=True,
                            ),
                        )
                    # innocents killed alongside the hung worker re-run
                    # without being charged an attempt
                    pending.extendleft(reversed(survivors))
                    inflight.clear()
                    deadlines.clear()
                    self._kill_pool(pool)
                    pool = self._new_pool(fn, max_workers)
        except BaseException:
            self._kill_pool(pool)
            raise
        pool.shutdown(wait=True)
        return results


class ChaosExecutor(Executor):
    """Fault-injecting wrapper: delegate to ``inner`` with chaos applied.

    Wraps the mapped function in the seeded
    :class:`~repro.runtime.resilience.ChaosConfig` injection before
    handing it to the wrapped executor, whose retry/salvage machinery
    must then recover.  Purely a test/validation instrument — production
    runs get their chaos for free.
    """

    def __init__(self, inner: Executor, chaos) -> None:
        self.inner = inner
        self.chaos = chaos

    @property
    def workers(self) -> int:  # type: ignore[override]
        return self.inner.workers

    def map(self, fn: Callable[[Any], Any], tasks: Iterable[Any]) -> list[Any]:
        return self.inner.map(chaos_wrap(fn, self.chaos), tasks)


def get_executor(
    workers: int | None = 1, resilience: ResilienceConfig | None = None
) -> Executor:
    """Select the executor for a ``workers`` argument (``None``/1 = serial).

    ``resilience`` overrides the process-wide active policy for this
    executor's maps (retries, timeouts, journal, chaos — see
    :mod:`repro.runtime.resilience`).
    """
    workers = 1 if workers is None else int(workers)
    if workers < 1:
        raise ReproError(f"workers must be a positive integer, got {workers}")
    if workers == 1:
        return SerialExecutor(resilience)
    return ParallelExecutor(workers, resilience)


def map_tasks(
    fn: Callable[[Any], Any],
    tasks: Sequence[Any],
    workers: int | None = 1,
    resilience: ResilienceConfig | None = None,
) -> list[Any]:
    """One-shot convenience: ``get_executor(workers, resilience).map(fn, tasks)``."""
    return get_executor(workers, resilience).map(fn, tasks)
