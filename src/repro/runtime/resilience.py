"""Fault-tolerance policy for the execution layer: retries, timeouts, chaos.

Everything here is *policy and bookkeeping*; the mechanics live in
:mod:`repro.runtime.executor`, which resolves the active
:class:`ResilienceConfig` on every ``map`` call.  The pieces:

* :class:`ResilienceConfig` — per-task retry budget, timeout, backoff
  shape, failure policy (``fail`` or ``skip``), optional
  :class:`~repro.runtime.journal.Journal` for checkpoint/resume, and an
  optional :class:`ChaosConfig` for fault injection.  Installed
  process-wide with :func:`use_resilience` (the same pattern as the
  compute cache and instrumentation), so the runner, ``map_points`` and
  the CLI all route through one policy without threading a parameter
  through every experiment signature.
* :func:`backoff_delay` — exponential backoff with *deterministic*
  jitter: the jitter is derived from a hash of (scope, task index,
  attempt), never from a live RNG, so two identical runs retry on an
  identical schedule.
* :class:`TaskFailure` — the structured record of a task that exhausted
  its budget, carrying the worker-side traceback text across the process
  boundary.  Under the ``skip`` policy these stand in for the missing
  results and are collected for ``ExperimentResult.params["runtime"]["failures"]``.
* :class:`ChaosConfig` / :func:`chaos_wrap` — seeded, deterministic fault
  injection (exception crashes, delays, injected timeouts, and hard
  ``os._exit`` worker kills) used by the test suite to prove that results
  under faults remain bit-identical to a fault-free serial run.

Determinism argument: a retried task re-runs the *same* self-contained,
seeded task spec, and task results are keyed by position, so retries,
worker crashes, journal resumes and chaos faults can reorder *when* work
happens but never change *what* any task computes — the executor's
bit-identical contract survives every failure mode short of budget
exhaustion.
"""

from __future__ import annotations

import hashlib
import os
import struct
import time
from contextlib import contextmanager
from dataclasses import dataclass, replace
from typing import Any, Callable, Iterator

from repro.errors import ReproError, TimeoutError
from repro.runtime.journal import Journal, task_fingerprint

__all__ = [
    "ChaosConfig",
    "ChaosError",
    "ResilienceConfig",
    "TaskFailure",
    "backoff_delay",
    "chaos_wrap",
    "drain_failures",
    "fault_decision",
    "get_resilience",
    "record_failure",
    "use_resilience",
]

#: failure policies: abort the whole map, or keep a TaskFailure placeholder
ON_FAILURE = ("fail", "skip")


class ChaosError(ReproError):
    """An injected (not organic) task crash from the chaos layer."""


@dataclass(frozen=True)
class ChaosConfig:
    """Seeded fault-injection plan applied on top of any executor.

    Each task draws one deterministic fault decision from
    ``sha256(seed, task fingerprint)``: with probability ``crash_rate``
    it raises :class:`ChaosError`, with ``delay_rate`` it sleeps
    ``delay_seconds`` before running, with ``timeout_rate`` it raises an
    injected :class:`~repro.errors.TimeoutError`, and with ``kill_rate``
    it hard-kills its worker process via ``os._exit`` (exercising the
    broken-pool salvage path; meaningless under a serial executor, where
    it falls back to :class:`ChaosError`).  Faults fire only while
    ``attempt < faulty_attempts`` — by default only the first attempt —
    so a sufficient retry budget always recovers and results stay
    bit-identical to a fault-free run.
    """

    seed: int = 0
    crash_rate: float = 0.0
    delay_rate: float = 0.0
    timeout_rate: float = 0.0
    kill_rate: float = 0.0
    delay_seconds: float = 0.01
    faulty_attempts: int = 1

    def __post_init__(self) -> None:
        total = self.crash_rate + self.delay_rate + self.timeout_rate + self.kill_rate
        if not 0.0 <= total <= 1.0:
            raise ReproError(f"chaos fault rates must sum to [0, 1], got {total}")


@dataclass(frozen=True)
class ResilienceConfig:
    """The execution layer's failure policy (see module docstring).

    ``max_retries`` is *extra* attempts per task beyond the first;
    ``task_timeout`` (seconds) is enforced by the parent for parallel
    executors (a hung worker is killed and the task charged one attempt —
    serial execution cannot preempt a running task, so there it only
    classifies injected timeouts).  ``on_failure="skip"`` replaces a
    task's result with its :class:`TaskFailure` instead of raising
    :class:`~repro.errors.TaskError`.
    """

    max_retries: int = 0
    task_timeout: float | None = None
    on_failure: str = "fail"
    backoff_base: float = 0.05
    backoff_cap: float = 2.0
    scope: str = ""
    journal: Journal | None = None
    chaos: ChaosConfig | None = None

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ReproError(f"max_retries must be >= 0, got {self.max_retries}")
        if self.task_timeout is not None and self.task_timeout <= 0:
            raise ReproError(f"task_timeout must be positive, got {self.task_timeout}")
        if self.on_failure not in ON_FAILURE:
            raise ReproError(
                f"on_failure must be one of {ON_FAILURE}, got {self.on_failure!r}"
            )

    def scoped(self, scope: str) -> "ResilienceConfig":
        """A copy of this config bound to a run scope (experiment@scale)."""
        return replace(self, scope=scope)


@dataclass(frozen=True)
class TaskFailure:
    """Structured record of one task that exhausted its retry budget.

    Under ``on_failure="skip"`` this object *is* the task's result slot,
    so callers can both detect the hole and read why it happened —
    including the traceback formatted inside the worker process, which a
    pickled exception alone would have lost.
    """

    index: int
    attempts: int
    error: str
    traceback: str = ""
    timeout: bool = False

    def to_dict(self) -> dict:
        """JSON-friendly form for ``params["runtime"]["failures"]``."""
        return {
            "index": self.index,
            "attempts": self.attempts,
            "error": self.error,
            "timeout": self.timeout,
            "traceback": self.traceback,
        }


# -- active policy ------------------------------------------------------------

_DEFAULT = ResilienceConfig()
_ACTIVE: ResilienceConfig = _DEFAULT


def get_resilience() -> ResilienceConfig:
    """The process-wide policy executors resolve when given none."""
    return _ACTIVE


def set_resilience(config: ResilienceConfig | None) -> None:
    """Install (or, with ``None``, reset) the process-wide policy."""
    global _ACTIVE
    _ACTIVE = config if config is not None else _DEFAULT


@contextmanager
def use_resilience(config: ResilienceConfig) -> Iterator[ResilienceConfig]:
    """Scoped install of a policy: ``with use_resilience(cfg): run(...)``."""
    previous = _ACTIVE
    set_resilience(config)
    try:
        yield config
    finally:
        set_resilience(previous)


# -- failure collection -------------------------------------------------------

_FAILURES: list[TaskFailure] = []


def record_failure(failure: TaskFailure) -> None:
    """Collect one skipped task's failure for the end-of-run report."""
    _FAILURES.append(failure)


def drain_failures() -> list[TaskFailure]:
    """Pop every failure recorded since the last drain (run boundary)."""
    failures = list(_FAILURES)
    _FAILURES.clear()
    return failures


# -- deterministic backoff ----------------------------------------------------


def _unit_hash(*parts: Any) -> float:
    """Deterministic uniform-ish value in [0, 1) from hashable parts."""
    digest = hashlib.sha256("\x00".join(str(p) for p in parts).encode()).digest()
    (word,) = struct.unpack("<Q", digest[:8])
    return word / 2**64


def backoff_delay(config: ResilienceConfig, index: int, attempt: int) -> float:
    """Delay before retry ``attempt`` (1-based) of task ``index``, seconds.

    Exponential in the attempt number, capped at ``backoff_cap``, with
    deterministic jitter in [0.5x, 1.0x) derived from
    ``(scope, index, attempt)`` — so identical runs retry on identical
    schedules (no live RNG), while distinct tasks de-synchronize instead
    of thundering back in lockstep.  ``backoff_base=0`` disables waiting.
    """
    if config.backoff_base <= 0 or attempt <= 0:
        return 0.0
    raw = min(config.backoff_cap, config.backoff_base * 2 ** (attempt - 1))
    jitter = 0.5 + 0.5 * _unit_hash(config.scope, index, attempt, "backoff")
    return raw * jitter


# -- chaos injection ----------------------------------------------------------


def fault_decision(chaos: ChaosConfig, task: Any, attempt: int = 0) -> str | None:
    """Which fault (if any) this task draws: a pure function of content.

    Returns one of ``"crash"`` / ``"delay"`` / ``"timeout"`` / ``"kill"``
    or ``None``, derived from ``sha256(seed, fingerprint(task))`` — never
    a live RNG, so identical runs inject identical faults.  Faults fire
    only while ``attempt < faulty_attempts``, which is what lets a retry
    (the executor's, or the serve layer's quarantine-and-rebuild path)
    always converge on the real result.  ``task`` must be picklable.
    """
    if attempt >= chaos.faulty_attempts:
        return None
    draw = _unit_hash(chaos.seed, task_fingerprint("chaos", 0, task), "fault")
    edges = (
        ("crash", chaos.crash_rate),
        ("delay", chaos.delay_rate),
        ("timeout", chaos.timeout_rate),
        ("kill", chaos.kill_rate),
    )
    cumulative = 0.0
    for kind, rate in edges:
        cumulative += rate
        if draw < cumulative:
            return kind
    return None


class _ChaosFn:
    """Picklable fault-injecting wrapper around a task function.

    The executors detect ``accepts_attempt`` and call
    ``fn(task, attempt)`` instead of ``fn(task)``, which is what lets the
    injection be *transient*: the fault decision is a pure function of
    (seed, task content) but only fires while ``attempt`` is below
    ``faulty_attempts``, so retries always converge on the real result.
    """

    accepts_attempt = True

    def __init__(self, fn: Callable[[Any], Any], chaos: ChaosConfig) -> None:
        self.fn = fn
        self.chaos = chaos

    def __call__(self, task: Any, attempt: int = 0) -> Any:
        fault = fault_decision(self.chaos, task, attempt)
        if fault == "crash":
            raise ChaosError(f"injected crash (attempt {attempt})")
        if fault == "delay":
            time.sleep(self.chaos.delay_seconds)
        elif fault == "timeout":
            raise TimeoutError(f"injected timeout (attempt {attempt})")
        elif fault == "kill":
            # hard worker death -> BrokenProcessPool salvage path; in
            # the parent process (serial executor) degrade to a crash
            if os.getpid() != _PARENT_PID:
                os._exit(17)
            raise ChaosError(f"injected kill, serial fallback (attempt {attempt})")
        return self.fn(task)


#: recorded at import time in the parent; forked workers keep this value
#: but get their own pid, which is how injected kills spot worker processes
_PARENT_PID = os.getpid()


def chaos_wrap(fn: Callable[[Any], Any], chaos: ChaosConfig | None) -> Callable:
    """Wrap ``fn`` for fault injection (identity when ``chaos`` is None).

    Already-wrapped functions pass through unchanged, so an explicit
    :class:`~repro.runtime.executor.ChaosExecutor` composed with an
    active chaos policy never injects twice.
    """
    if chaos is None or isinstance(fn, _ChaosFn):
        return fn
    return _ChaosFn(fn, chaos)
