"""Append-only on-disk journal of completed task results (checkpoint/resume).

The executors checkpoint every finished task here when a journal is
attached to the active :class:`~repro.runtime.resilience.ResilienceConfig`.
Each record is keyed by a *content fingerprint* of the task — a SHA-256
over the run scope (experiment name + scale), the task's position in its
mapped sequence, and the pickled task spec itself (which carries the
config and seeds).  Resuming a run therefore skips exactly those tasks
whose inputs are bit-for-bit what they were, and nothing else: change the
seed, the scale or the config and every fingerprint changes with it.

The file format is deliberately boring — one JSON object per line with a
base64-pickled payload::

    {"fp": "<64 hex chars>", "data": "<base64(pickle(result))>"}

Appends are flushed per record, so a killed run leaves at most one
partial trailing line; :meth:`Journal.load` tolerates (and discards) a
truncated or corrupt tail instead of failing, which is what makes the
journal itself crash-safe.  Records are trusted pickles: only resume from
journal files you wrote.

Writers are exclusive: the first append takes an advisory ``flock`` on a
sidecar ``<journal>.lock`` file (held for the journal's lifetime), so two
processes resuming the same run cannot interleave appends and shred each
other's JSONL tail.  Contention raises a diagnosed
:class:`~repro.errors.ReproError` immediately instead of blocking; the
lock dies with its holder (kernel-released on process death), so a killed
run never leaves a stale lock behind.  Pure readers (``load``/``lookup``)
take no lock — a half-appended record is already tolerated by design.
"""

from __future__ import annotations

import base64
import hashlib
import json
import os
import pickle
from pathlib import Path
from typing import Any, IO

try:  # advisory locking is POSIX-only; Windows falls back to no locking
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platform
    fcntl = None  # type: ignore[assignment]

from repro.errors import ReproError

__all__ = ["Journal", "task_fingerprint"]

#: pickle protocol pinned so fingerprints are stable across interpreters
#: of the same major version
_PICKLE_PROTOCOL = 4

#: sentinel distinguishing "no entry" from a journalled ``None`` result
_MISSING = object()


def task_fingerprint(scope: str, index: int, task: Any) -> str:
    """Content fingerprint of one task: sha256(scope, index, pickle(task)).

    ``scope`` identifies the run (e.g. ``"fig11a_hourly@smoke"``),
    ``index`` the task's position in its mapped sequence, and the pickled
    task spec contributes everything the computation depends on
    (topology, config, seeds).  Pickling is deterministic for the
    dataclass/ndarray task specs this harness uses (no sets, no unordered
    containers) — but raw pickle *bytes* are not a pure function of the
    value: string interning and shared-reference accidents of the
    producing process change how pickle's memo deduplicates, so a task
    built in the parent and the same task unpickled in a worker can
    serialize to different byte streams.  One dump→load→dump round-trip
    canonicalizes that (a freshly unpickled object graph always re-pickles
    the same way, verified idempotent), so every process computes the same
    fingerprint for the same task value.
    """
    digest = hashlib.sha256()
    digest.update(scope.encode())
    digest.update(b"\x00")
    digest.update(str(index).encode())
    digest.update(b"\x00")
    try:
        payload = pickle.dumps(task, protocol=_PICKLE_PROTOCOL)
        payload = pickle.dumps(pickle.loads(payload), protocol=_PICKLE_PROTOCOL)
    except Exception as exc:  # unpicklable task specs cannot be journalled
        raise ReproError(f"cannot fingerprint unpicklable task: {exc!r}") from exc
    digest.update(payload)
    return digest.hexdigest()


class Journal:
    """Append-only map of task fingerprint -> pickled result, on disk.

    Opening a journal loads every valid record already present (the
    resume set); :meth:`record` appends-and-flushes one record per
    completed task.  A journal is single-writer — the parent process
    records results as they come back from workers — and the writer's
    exclusivity is *enforced* with an advisory lock taken at the first
    append (see the module docstring); ``lock=False`` opts out for
    callers that manage their own exclusion.
    """

    def __init__(self, path: Path | str, *, lock: bool = True) -> None:
        self.path = Path(path)
        self._entries: dict[str, Any] = {}
        self._handle: IO[str] | None = None
        self._lock = bool(lock)
        self._lock_handle: IO[bytes] | None = None
        self.load()

    # -- reading -----------------------------------------------------------

    def load(self) -> int:
        """(Re)load all valid records from disk; returns how many survive.

        A truncated or corrupt record — the signature of a run killed
        mid-append — is silently skipped rather than fatal.  Skipping is
        safe because each line decodes independently: a damaged line can
        only lose its own record (which simply re-runs), never corrupt a
        neighbouring one.
        """
        self._entries.clear()
        if not self.path.exists():
            return 0
        for line in self.path.read_text().splitlines():
            if not line.strip():
                continue
            try:
                record = json.loads(line)
                fingerprint = record["fp"]
                value = pickle.loads(base64.b64decode(record["data"]))
            except Exception:
                continue  # partial/corrupt line from a crash mid-append
            self._entries[fingerprint] = value
        return len(self._entries)

    def lookup(self, fingerprint: str) -> tuple[bool, Any]:
        """``(hit, value)`` for a fingerprint; ``(False, None)`` on miss."""
        value = self._entries.get(fingerprint, _MISSING)
        if value is _MISSING:
            return False, None
        return True, value

    def __contains__(self, fingerprint: str) -> bool:
        return fingerprint in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    # -- writing -----------------------------------------------------------

    def record(self, fingerprint: str, value: Any) -> None:
        """Append one completed task's result and flush it to disk."""
        if fingerprint in self._entries:
            return  # already journalled (e.g. a resumed hit) — keep append-only
        try:
            blob = pickle.dumps(value, protocol=_PICKLE_PROTOCOL)
        except Exception as exc:
            raise ReproError(f"cannot journal unpicklable result: {exc!r}") from exc
        if self._handle is None:
            self._open_for_append()
        line = json.dumps({"fp": fingerprint, "data": base64.b64encode(blob).decode()})
        self._handle.write(line + "\n")
        self._handle.flush()
        self._entries[fingerprint] = value

    @property
    def lock_path(self) -> Path:
        """Sidecar lock file guarding the journal's writer slot."""
        return self.path.with_name(self.path.name + ".lock")

    def _acquire_lock(self) -> None:
        """Take the exclusive writer lock, or raise a diagnosed error.

        ``flock`` locks follow the open file description: they survive
        ``fork`` into pool workers harmlessly (workers never append) and
        are released by the kernel the instant the holding process dies,
        so crash recovery needs no stale-lock cleanup.
        """
        if not self._lock or fcntl is None or self._lock_handle is not None:
            return
        handle = self.lock_path.open("ab")
        try:
            fcntl.flock(handle.fileno(), fcntl.LOCK_EX | fcntl.LOCK_NB)
        except OSError as exc:
            handle.close()
            raise ReproError(
                f"journal {self.path} is locked by another process "
                f"(lock file: {self.lock_path}). Two concurrent resumes of "
                "the same run would interleave appends and corrupt the "
                "JSONL tail; wait for the other run, point --resume at a "
                "different journal, or remove the stale file if you are "
                "certain no other process holds it."
            ) from exc
        self._lock_handle = handle

    def _release_lock(self) -> None:
        if self._lock_handle is not None:
            try:
                if fcntl is not None:
                    fcntl.flock(self._lock_handle.fileno(), fcntl.LOCK_UN)
            finally:
                self._lock_handle.close()
                self._lock_handle = None

    def _open_for_append(self) -> None:
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._acquire_lock()
        # a run killed mid-append leaves a partial line with no trailing
        # newline; terminate it first so new records never concatenate
        # onto (and get lost with) the corrupt tail
        needs_newline = False
        if self.path.exists() and self.path.stat().st_size:
            with self.path.open("rb") as existing:
                existing.seek(-1, os.SEEK_END)
                needs_newline = existing.read(1) != b"\n"
        self._handle = self.path.open("a")
        if needs_newline:
            self._handle.write("\n")

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None
        self._release_lock()

    def __enter__(self) -> "Journal":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
