"""Counters and phase timers for the execution layer.

The library's hot paths report two kinds of signal here:

* **counters** — monotone event counts (``dp_solves``, ``hours_simulated``,
  …) via :func:`count`;
* **phase timers** — accumulated wall-clock per named phase, via
  ``Timer.timed(name)`` (see :mod:`repro.utils.timing`).

Both are process-global and cheap (a dict increment / a perf-counter
read), so they are always on.  Worker processes accumulate their own
counters, timers and cache statistics; the executor captures a
:func:`snapshot` delta around each task and the parent merges it back
with :func:`merge_snapshot`, so a :func:`report` in the parent reflects
work done *everywhere*, regardless of ``workers``.

The report dict lands in ``ExperimentResult.params["runtime"]`` (see
:func:`repro.experiments.common.run_experiment`) and is rendered by
``repro run --profile`` via :func:`format_report`.
"""

from __future__ import annotations

from collections import Counter
from typing import Mapping

from repro.runtime.cache import get_compute_cache
from repro.utils.timing import Timer, named_timers, reset_named_timers

__all__ = [
    "count",
    "counters",
    "reset",
    "snapshot",
    "snapshot_delta",
    "merge_snapshot",
    "report",
    "format_report",
]

#: keys under which cache statistics travel inside snapshot counters
_CACHE_KEYS = ("cache_hits", "cache_misses", "cache_evictions")

#: prefix under which per-dependency-epoch cache stats travel inside
#: snapshot counters, e.g. ``cache_epoch[apsp].hits`` — flattened so the
#: existing cross-process counter merge carries them for free
_EPOCH_PREFIX = "cache_epoch["

#: resilience counters (counted by the executors) -> report field names
_RESILIENCE_KEYS = {
    "task_retries": "retries",
    "task_timeouts": "timeouts",
    "pool_restarts": "pool_restarts",
    "tasks_skipped": "skipped",
    "journal_hits": "resumed",
}

_COUNTERS: Counter = Counter()


def count(name: str, n: int = 1) -> None:
    """Increment the process-global counter ``name`` by ``n``."""
    _COUNTERS[name] += n


def counters() -> dict[str, int]:
    """Snapshot of the plain counters (cache stats not included)."""
    return dict(_COUNTERS)


def reset() -> None:
    """Zero all counters, named timers, and the active cache's statistics."""
    _COUNTERS.clear()
    reset_named_timers()
    get_compute_cache().reset_stats()


# -- cross-process aggregation ----------------------------------------------


def snapshot() -> dict:
    """Cumulative view of this process's counters, timers and cache stats."""
    cache = get_compute_cache()
    merged = Counter(_COUNTERS)
    merged["cache_hits"] += cache.hits
    merged["cache_misses"] += cache.misses
    merged["cache_evictions"] += cache.evictions
    for name, stats in cache.epoch_stats().items():
        for field in ("hits", "misses", "invalidations"):
            merged[f"{_EPOCH_PREFIX}{name}].{field}"] += stats[field]
    return {
        "counters": dict(merged),
        "timers": {name: (t.total, len(t.laps)) for name, t in named_timers().items()},
    }


def snapshot_delta(after: Mapping, before: Mapping) -> dict:
    """What happened between two :func:`snapshot` calls in one process."""
    d_counters = {
        name: value - before["counters"].get(name, 0)
        for name, value in after["counters"].items()
        if value - before["counters"].get(name, 0)
    }
    d_timers = {}
    for name, (total, laps) in after["timers"].items():
        b_total, b_laps = before["timers"].get(name, (0.0, 0))
        if total - b_total or laps - b_laps:
            d_timers[name] = (total - b_total, laps - b_laps)
    return {"counters": d_counters, "timers": d_timers}


def merge_snapshot(delta: Mapping) -> None:
    """Fold a worker's :func:`snapshot_delta` into this process's totals.

    Counter deltas (including the worker's cache hits/misses) are added to
    the local counters; timer deltas are added to the same-named local
    timers as one synthetic lap per worker-side task batch.
    """
    _COUNTERS.update(delta.get("counters", {}))
    for name, (total, _laps) in delta.get("timers", {}).items():
        timer = Timer.timed(name)
        timer.total += total
        timer.laps.append(total)


# -- reporting ---------------------------------------------------------------


def report(workers: int | None = None, elapsed: float | None = None) -> dict:
    """Assemble the instrumentation report as a JSON-friendly dict.

    Combines local counters/timers with everything previously merged from
    workers, plus the live statistics of this process's compute cache.
    ``elapsed`` (the observed wall time) enables the speedup estimate:
    total task seconds (the ``tasks`` timer, summed across processes)
    divided by wall seconds.
    """
    snap = snapshot()
    all_counters = dict(snap["counters"])
    hits = all_counters.pop("cache_hits", 0)
    misses = all_counters.pop("cache_misses", 0)
    evictions = all_counters.pop("cache_evictions", 0)
    lookups = hits + misses
    epochs: dict[str, dict[str, int]] = {}
    for key in [k for k in all_counters if k.startswith(_EPOCH_PREFIX)]:
        name, _, field = key[len(_EPOCH_PREFIX):].partition("].")
        epochs.setdefault(
            name, {"hits": 0, "misses": 0, "invalidations": 0}
        )[field] = all_counters.pop(key)
    for name in epochs:
        epochs[name]["epoch"] = get_compute_cache().epoch(name)
    resilience = {
        field: all_counters.pop(counter, 0)
        for counter, field in _RESILIENCE_KEYS.items()
    }
    out: dict = {
        "counters": all_counters,
        "resilience": resilience,
        "timers": {
            name: {"seconds": total, "laps": laps}
            for name, (total, laps) in sorted(snap["timers"].items())
        },
        "cache": {
            "hits": hits,
            "misses": misses,
            "evictions": evictions,
            "hit_rate": hits / lookups if lookups else 0.0,
            "entries": len(get_compute_cache()),
            "epochs": dict(sorted(epochs.items())),
        },
    }
    if workers is not None:
        out["workers"] = int(workers)
    if elapsed is not None:
        out["wall_seconds"] = float(elapsed)
        task_seconds = snap["timers"].get("tasks", (0.0, 0))[0]
        if task_seconds and elapsed > 0:
            out["task_seconds"] = task_seconds
            out["speedup"] = task_seconds / elapsed
    return out


def format_report(rep: Mapping) -> str:
    """Human-readable rendering of :func:`report` for ``--profile``."""
    lines = ["runtime profile:"]
    if "workers" in rep:
        lines.append(f"  workers:      {rep['workers']}")
    if "wall_seconds" in rep:
        wall = f"  wall time:    {rep['wall_seconds']:.2f}s"
        if "speedup" in rep:
            wall += (
                f"  (task time {rep['task_seconds']:.2f}s, "
                f"speedup {rep['speedup']:.2f}x)"
            )
        lines.append(wall)
    cache = rep.get("cache", {})
    if cache:
        lines.append(
            "  cache:        "
            f"{cache['hit_rate']:.1%} hit rate "
            f"({cache['hits']} hits / {cache['misses']} misses, "
            f"{cache['evictions']} evictions, {cache['entries']} entries)"
        )
        for name, st in cache.get("epochs", {}).items():
            lines.append(
                f"    epoch {name}: {st.get('epoch', 0)} "
                f"({st['hits']} hits / {st['misses']} misses, "
                f"{st['invalidations']} invalidations)"
            )
    resilience = rep.get("resilience", {})
    if any(resilience.get(field, 0) for field in resilience if field != "failures"):
        lines.append(
            "  resilience:   "
            f"{resilience.get('retries', 0)} retries, "
            f"{resilience.get('timeouts', 0)} timeouts, "
            f"{resilience.get('pool_restarts', 0)} pool restarts, "
            f"{resilience.get('skipped', 0)} skipped, "
            f"{resilience.get('resumed', 0)} resumed from journal"
        )
    failures = rep.get("failures", ())
    if failures:
        lines.append(f"  failures:     {len(failures)} task(s) skipped:")
        for failure in failures:
            kind = "timeout" if failure.get("timeout") else "error"
            lines.append(
                f"    task {failure['index']}: {kind} after "
                f"{failure['attempts']} attempt(s) — {failure['error']}"
            )
    timers = rep.get("timers", {})
    if timers:
        lines.append("  phases:")
        width = max(len(name) for name in timers)
        for name, t in timers.items():
            lines.append(
                f"    {name:<{width}}  {t['seconds']:9.3f}s  ({t['laps']} laps)"
            )
    counters_ = rep.get("counters", {})
    if counters_:
        lines.append(
            "  counters:     "
            + ", ".join(f"{k}={v}" for k, v in sorted(counters_.items()))
        )
    return "\n".join(lines)
