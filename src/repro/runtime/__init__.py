"""The execution layer: executors, compute caches, instrumentation.

This package is how the harness runs "as fast as the hardware allows"
without giving up reproducibility:

* :mod:`repro.runtime.executor` — serial / process-parallel mapping of
  picklable task specs (``workers`` argument, order-preserving,
  bit-identical to the serial path);
* :mod:`repro.runtime.cache` — the bounded, observable
  :class:`~repro.runtime.cache.ComputeCache` behind Algorithm 3's stroll
  matrices and the graphs' all-pairs shortest-path tables;
* :mod:`repro.runtime.instrument` — counters and phase timers whose
  report lands in ``ExperimentResult.params["runtime"]`` and prints via
  ``repro run --profile``.
"""

from repro.runtime.cache import ComputeCache, get_compute_cache, set_compute_cache
from repro.runtime.executor import (
    Executor,
    ParallelExecutor,
    SerialExecutor,
    get_executor,
    map_tasks,
)
from repro.runtime.instrument import (
    count,
    counters,
    format_report,
    merge_snapshot,
    report,
    reset,
    snapshot,
    snapshot_delta,
)

__all__ = [
    # cache
    "ComputeCache",
    "get_compute_cache",
    "set_compute_cache",
    # executor
    "Executor",
    "SerialExecutor",
    "ParallelExecutor",
    "get_executor",
    "map_tasks",
    # instrumentation
    "count",
    "counters",
    "reset",
    "snapshot",
    "snapshot_delta",
    "merge_snapshot",
    "report",
    "format_report",
]
