"""The execution layer: executors, resilience, caches, instrumentation.

This package is how the harness runs "as fast as the hardware allows"
without giving up reproducibility — or results — when things break:

* :mod:`repro.runtime.executor` — serial / process-parallel mapping of
  picklable task specs (``workers`` argument, order-preserving,
  bit-identical to the serial path), plus the fault-injecting
  :class:`~repro.runtime.executor.ChaosExecutor`;
* :mod:`repro.runtime.resilience` — the failure policy the executors
  apply: bounded retries with deterministic backoff, per-task timeouts,
  broken-pool salvage, ``fail``/``skip`` failure handling, and seeded
  chaos injection;
* :mod:`repro.runtime.journal` — the append-only checkpoint journal
  behind ``repro run --resume``;
* :mod:`repro.runtime.cache` — the bounded, observable
  :class:`~repro.runtime.cache.ComputeCache` behind Algorithm 3's stroll
  matrices and the graphs' all-pairs shortest-path tables;
* :mod:`repro.runtime.instrument` — counters and phase timers whose
  report lands in ``ExperimentResult.params["runtime"]`` and prints via
  ``repro run --profile``.
"""

from repro.runtime.cache import ComputeCache, get_compute_cache, set_compute_cache
from repro.runtime.executor import (
    ChaosExecutor,
    Executor,
    ParallelExecutor,
    SerialExecutor,
    get_executor,
    map_tasks,
)
from repro.runtime.instrument import (
    count,
    counters,
    format_report,
    merge_snapshot,
    report,
    reset,
    snapshot,
    snapshot_delta,
)
from repro.runtime.journal import Journal, task_fingerprint
from repro.runtime.resilience import (
    ChaosConfig,
    ChaosError,
    ResilienceConfig,
    TaskFailure,
    backoff_delay,
    drain_failures,
    get_resilience,
    record_failure,
    use_resilience,
)

__all__ = [
    # cache
    "ComputeCache",
    "get_compute_cache",
    "set_compute_cache",
    # executor
    "ChaosExecutor",
    "Executor",
    "SerialExecutor",
    "ParallelExecutor",
    "get_executor",
    "map_tasks",
    # resilience
    "ChaosConfig",
    "ChaosError",
    "ResilienceConfig",
    "TaskFailure",
    "backoff_delay",
    "drain_failures",
    "get_resilience",
    "record_failure",
    "use_resilience",
    # journal
    "Journal",
    "task_fingerprint",
    # instrumentation
    "count",
    "counters",
    "reset",
    "snapshot",
    "snapshot_delta",
    "merge_snapshot",
    "report",
    "format_report",
]
