"""Typed placement constraints: capacity, delay and bandwidth in one object.

The paper's TOP/TOM formulation places VNFs purely by traffic cost;
realistic fabrics add what it does not model — per-switch capacity,
end-to-end delay SLOs, and per-chain bandwidth demands (Sallam et al.'s
SFC-constrained routing, Sang et al.'s joint placement-and-allocation
coupling; see PAPERS.md).  :class:`Constraints` is the one typed object
the whole query surface threads through — ``SolverSession.place /
migrate / solve / place_many``, the constrained solvers, the serve
layer's requests, and the CLI — replacing ad-hoc kwargs.

Semantics (for one chain with total traffic rate ``Λ = Σ_i λ_i`` placed
at ``p = (p_1 … p_n)``):

* **vnf_capacity** — at most this many VNFs may be co-resident on one
  switch, counting the pre-existing ``occupancy``; a single chain uses
  distinct switches (the paper's anti-affinity rule), so the cap binds
  when chains *compete* for the fabric (multi-SFC contention).
* **max_delay** — the shared SFC path delay ``Σ_j c(p_j, p_{j+1})`` must
  not exceed this bound.  The chain segment is the part every flow
  traverses; per-flow host-to-ingress stretches vary per flow and are
  priced (Eq. 1) but not bounded.
* **bandwidth** — per-switch processing bandwidth: the summed traffic of
  chains crossing a switch (its pre-existing ``load`` plus this chain's
  ``Λ``) must fit.  Every VNF of a chain sees the chain's full traffic,
  so one chain charges ``Λ`` to each switch it uses.

``Constraints.none()`` is the explicit "no constraints" value; every
solver treats it exactly like passing nothing, so results on that path
are bit-identical to the unconstrained code (an acceptance criterion of
the constrained family, pinned by tests).

Feasibility failures are *outcomes*, not crashes: helpers here build the
diagnosis dicts :class:`~repro.errors.InfeasibleError` carries, so a
rejected chain can be reported (which constraint, by how much) instead
of silently dropped.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Mapping, Sequence

import numpy as np

from repro.errors import ConstraintError
from repro.topology.base import Topology

__all__ = ["Constraints", "chain_delay", "active_constraints"]

#: slack for re-checking a solver's delay against the bound: both sides
#: sum the same float64 APSP entries, possibly in different orders
DELAY_RTOL = 1e-9


def chain_delay(topology: Topology, placement: Sequence[int] | np.ndarray) -> float:
    """``Σ_j c(p_j, p_{j+1})`` — the shared SFC path delay, from the APSP."""
    p = np.asarray(placement, dtype=np.int64)
    if p.size < 2:
        return 0.0
    return float(topology.graph.distances[p[:-1], p[1:]].sum())


def _canonical_pairs(value, *, kind: str, integral: bool):
    """Normalize a Mapping / pair-iterable into a sorted tuple of pairs."""
    if value is None:
        return ()
    items = value.items() if isinstance(value, Mapping) else value
    out = {}
    for pair in items:
        try:
            switch, amount = pair
        except (TypeError, ValueError):
            raise ConstraintError(
                f"{kind} entries must be (switch, amount) pairs, got {pair!r}"
            ) from None
        switch = int(switch)
        amount = int(amount) if integral else float(amount)
        if amount < 0 or (not integral and not math.isfinite(amount)):
            raise ConstraintError(
                f"{kind}[{switch}] must be a finite non-negative amount, got {amount!r}"
            )
        if switch in out:
            raise ConstraintError(f"{kind} lists switch {switch} twice")
        if amount:
            out[switch] = amount
    return tuple(sorted(out.items()))


@dataclass(frozen=True)
class Constraints:
    """Capacity/delay/bandwidth bounds for one placement query (frozen).

    Attributes
    ----------
    vnf_capacity:
        Max VNFs co-resident on one switch (``None`` = unbounded).
    max_delay:
        Bound on the chain path delay ``Σ_j c(p_j, p_{j+1})``.
    bandwidth:
        Per-switch processing bandwidth in traffic-rate units.
    occupancy:
        Pre-existing VNF counts per switch, as sorted ``(switch, count)``
        pairs (a mapping is accepted and canonicalized).  Zero entries
        are dropped, so two ways of writing "empty" compare equal.
    load:
        Pre-existing per-switch traffic load, same canonical shape.
    """

    vnf_capacity: int | None = None
    max_delay: float | None = None
    bandwidth: float | None = None
    occupancy: tuple[tuple[int, int], ...] = field(default=())
    load: tuple[tuple[int, float], ...] = field(default=())

    def __post_init__(self) -> None:
        if self.vnf_capacity is not None:
            capacity = self.vnf_capacity
            if not isinstance(capacity, (int, np.integer)) or isinstance(capacity, bool):
                raise ConstraintError(
                    f"vnf_capacity must be an int >= 1 or None, got {capacity!r}"
                )
            if capacity < 1:
                raise ConstraintError(
                    f"vnf_capacity must be >= 1 (a zero-capacity switch set is a "
                    f"misconfiguration, not a constraint), got {capacity}"
                )
            object.__setattr__(self, "vnf_capacity", int(capacity))
        for name in ("max_delay", "bandwidth"):
            value = getattr(self, name)
            if value is None:
                continue
            value = float(value)
            if not math.isfinite(value) or value <= 0.0:
                raise ConstraintError(
                    f"{name} must be a finite positive number or None, got {value!r}"
                )
            object.__setattr__(self, name, value)
        object.__setattr__(
            self, "occupancy",
            _canonical_pairs(self.occupancy, kind="occupancy", integral=True),
        )
        object.__setattr__(
            self, "load", _canonical_pairs(self.load, kind="load", integral=False)
        )

    # -- the explicit no-constraints value ------------------------------------

    @classmethod
    def none(cls) -> "Constraints":
        """The explicit "unconstrained" value (compares equal to the default)."""
        return _NONE

    @property
    def is_none(self) -> bool:
        """True iff no field constrains anything (the bit-identity path)."""
        return (
            self.vnf_capacity is None
            and self.max_delay is None
            and self.bandwidth is None
            and not self.occupancy
            and not self.load
        )

    # -- bookkeeping -----------------------------------------------------------

    def occupancy_of(self, switch: int) -> int:
        for sw, count in self.occupancy:
            if sw == switch:
                return count
        return 0

    def load_of(self, switch: int) -> float:
        for sw, amount in self.load:
            if sw == switch:
                return amount
        return 0.0

    # -- feasibility -----------------------------------------------------------

    def admissible_switches(
        self, topology: Topology, chain_rate: float
    ) -> np.ndarray:
        """Switches with a free VNF slot *and* bandwidth headroom for ``Λ``.

        The capacity/bandwidth pruning every constrained solver starts
        from — a switch outside this set can host no VNF of the chain.
        """
        switches = topology.switches
        if self.is_none:
            return switches
        occupancy = dict(self.occupancy)
        load = dict(self.load)
        keep = []
        for sw in switches.tolist():
            if (
                self.vnf_capacity is not None
                and occupancy.get(sw, 0) + 1 > self.vnf_capacity
            ):
                continue
            if (
                self.bandwidth is not None
                and load.get(sw, 0.0) + chain_rate > self.bandwidth
            ):
                continue
            keep.append(sw)
        return np.asarray(keep, dtype=np.int64)

    def check_placement(
        self,
        topology: Topology,
        placement: Sequence[int] | np.ndarray,
        chain_rate: float,
        *,
        rtol: float = DELAY_RTOL,
    ) -> list[str]:
        """Every constraint this placement violates, as plain sentences.

        Recomputes capacity, bandwidth and delay from scratch (APSP table
        plus the occupancy/load pairs) — the independent check the verify
        layer and the solvers' own post-conditions share.  Empty list
        means feasible.
        """
        if self.is_none:
            return []
        p = np.asarray(placement, dtype=np.int64)
        problems: list[str] = []
        for sw in p.tolist():
            used = self.occupancy_of(sw) + int(np.count_nonzero(p == sw))
            if self.vnf_capacity is not None and used > self.vnf_capacity:
                problems.append(
                    f"switch {sw} would host {used} VNFs "
                    f"(vnf_capacity={self.vnf_capacity})"
                )
            if self.bandwidth is not None:
                carried = self.load_of(sw) + chain_rate
                if carried > self.bandwidth * (1.0 + rtol) + rtol:
                    problems.append(
                        f"switch {sw} would carry {carried!r} traffic "
                        f"(bandwidth={self.bandwidth!r})"
                    )
        if self.max_delay is not None:
            delay = chain_delay(topology, p)
            if delay > self.max_delay * (1.0 + rtol) + rtol:
                problems.append(
                    f"chain delay {delay!r} exceeds max_delay {self.max_delay!r}"
                )
        # each violated switch is reported once even if listed twice above
        return sorted(set(problems))

    def diagnosis(
        self, reason: str, **detail
    ) -> dict:
        """A JSON-friendly diagnosis dict for :class:`InfeasibleError`."""
        return {"reason": reason, "constraints": self.to_dict(), **detail}

    # -- contention threading --------------------------------------------------

    def after_placement(
        self, placement: Sequence[int] | np.ndarray, chain_rate: float
    ) -> "Constraints":
        """Constraints as seen by the *next* chain once this one is placed.

        Adds one occupied slot and ``Λ`` of load to every switch the
        placement uses — the sequential-contention bookkeeping of
        :func:`repro.solvers.contention.place_chains`.
        """
        p = np.asarray(placement, dtype=np.int64)
        occupancy = dict(self.occupancy)
        load = dict(self.load)
        for sw in p.tolist():
            occupancy[sw] = occupancy.get(sw, 0) + 1
            load[sw] = load.get(sw, 0.0) + float(chain_rate)
        return Constraints(
            vnf_capacity=self.vnf_capacity,
            max_delay=self.max_delay,
            bandwidth=self.bandwidth,
            occupancy=tuple(sorted(occupancy.items())),
            load=tuple(sorted(load.items())),
        )

    # -- wire format -----------------------------------------------------------

    def to_dict(self) -> dict:
        """JSON-friendly view (the serve layer's wire format)."""
        return {
            "vnf_capacity": self.vnf_capacity,
            "max_delay": self.max_delay,
            "bandwidth": self.bandwidth,
            "occupancy": [list(pair) for pair in self.occupancy],
            "load": [list(pair) for pair in self.load],
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "Constraints":
        """Inverse of :meth:`to_dict`; unknown keys are rejected."""
        known = {"vnf_capacity", "max_delay", "bandwidth", "occupancy", "load"}
        stray = sorted(set(data) - known)
        if stray:
            raise ConstraintError(f"unknown Constraints fields {stray}")
        return cls(
            vnf_capacity=data.get("vnf_capacity"),
            max_delay=data.get("max_delay"),
            bandwidth=data.get("bandwidth"),
            occupancy=tuple(
                (int(sw), int(count)) for sw, count in data.get("occupancy", ())
            ),
            load=tuple(
                (int(sw), float(amount)) for sw, amount in data.get("load", ())
            ),
        )


#: the module-level "no constraints" singleton ``Constraints.none()`` returns
_NONE = Constraints()


def active_constraints(constraints: Constraints | None) -> Constraints | None:
    """``None`` for both ``None`` and ``Constraints.none()``; typed otherwise.

    The single normalization every entry point applies first, so the
    unconstrained path is one identity check away from today's code —
    the structural guarantee behind the bit-identity criterion.
    """
    if constraints is None:
        return None
    if not isinstance(constraints, Constraints):
        raise ConstraintError(
            f"constraints must be a Constraints instance or None, "
            f"got {type(constraints).__name__}"
        )
    return None if constraints.is_none else constraints
