"""Shard verification: the unsharded day loop as differential oracle.

The sharded execution layer (ISSUE 10) promises *bit-identical results
under any scheduling*: splitting a day's flow population into
deterministic shards, aggregating them in supervised pool workers and
folding the partials back (:mod:`repro.shard`) must change **where**
things are computed, never **what**.  Each :class:`ShardCaseSpec`
describes one simulated day — plain, fault-injected or replicating —
and :func:`run_shard_case` pins the contract down three ways:

* **oracle identity** — at the default block size the whole population
  is one block, and the fold degenerates to exactly the unsharded
  expressions; the sharded :class:`~repro.sim.engine.DayResult` must
  serialize to canonical JSON **byte-identical** to
  :func:`~repro.sim.engine.simulate_day`, at every shard count in the
  spec;
* **shard-count invariance** — with a tiny block size (many blocks per
  hour) the canonical ascending-block left fold is shard-count
  independent, so every shard count must produce byte-identical
  results *to each other* (shard assignment is pure scheduling);
* **chaos immunity** — re-running one sharded configuration under
  deterministic fault injection (worker crashes and hard kills, with
  retries, pool rebuilds and re-dispatch) must still produce the same
  bytes: supervision is invisible in the result.

A mid-day diagnosed :class:`~repro.errors.InfeasibleError` is a valid
recorded outcome — but then *every* path (unsharded, each shard count,
chaos) must diagnose it identically.
"""

from __future__ import annotations

import json
import time
from collections import Counter
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.core.placement import dp_placement
from repro.errors import InfeasibleError
from repro.faults import FaultConfig, FaultProcess
from repro.runtime.executor import map_tasks
from repro.runtime.instrument import count, counters
from repro.runtime.journal import Journal
from repro.runtime.resilience import ChaosConfig, ResilienceConfig
from repro.shard import ShardConfig, simulate_day_sharded
from repro.sim.engine import DayResult, simulate_day
from repro.sim.policies import (
    MParetoPolicy,
    NoMigrationPolicy,
    TomReplicationPolicy,
)
from repro.topology.base import Topology
from repro.verify.faults import FAULT_FAMILIES
from repro.verify.invariants import DEFAULT_RTOL, Violation
from repro.verify.scenarios import FAMILIES, sample_rates
from repro.workload.diurnal import DiurnalModel
from repro.workload.dynamics import RedrawnRates
from repro.workload.flows import place_vm_pairs
from repro.workload.traffic import FacebookTrafficModel

__all__ = [
    "SHARD_DAY_KINDS",
    "ShardCaseSpec",
    "generate_shard_cases",
    "run_shard_case",
    "ShardCampaignConfig",
    "run_shard_campaign",
]

#: the three day shapes the sharded engine must reproduce exactly
SHARD_DAY_KINDS = ("plain", "fault", "replication")

#: block size for the multi-block invariance leg: small enough that the
#: campaign's 2–32 flow populations split into many blocks per hour
MULTI_BLOCK_SIZE = 4


@dataclass(frozen=True)
class ShardCaseSpec:
    """Everything needed to rebuild one shard case, bit-for-bit."""

    case_id: int
    day_kind: str  # "plain" | "fault" | "replication"
    family: str
    params: tuple
    n: int
    num_flows: int
    flow_seed: int
    rate_seed: int
    intra_rack: float
    policy: str  # "mpareto" | "no-migration" | "tom-replication"
    mu: float
    rho: float
    sync_fraction: float
    horizon: int
    fault_seed: int
    switch_rate: float
    host_rate: float
    link_rate: float
    mean_repair_hours: float
    shard_counts: tuple  # e.g. (1, 2, 3)
    workers: int  # 1 = in-process serial, 2 = real worker pool
    chaos_seed: int  # -1 = no chaos leg for this case

    def build(self):
        """Materialize ``(topology, flows, rate_process, fault_process|None)``."""
        topology = FAMILIES[self.family].builder(*self.params)
        flows = place_vm_pairs(
            topology, self.num_flows, self.intra_rack, seed=self.flow_seed
        )
        flows = flows.with_rates(
            sample_rates("facebook", self.num_flows, self.rate_seed)
        )
        diurnal = DiurnalModel(num_hours=self.horizon)
        rate_process = RedrawnRates(
            flows,
            diurnal,
            np.zeros(self.num_flows),
            FacebookTrafficModel(),
            seed=self.rate_seed,
        )
        faults = None
        if self.day_kind == "fault" or (
            self.day_kind == "replication" and self.fault_seed >= 0
        ):
            faults = FaultProcess(
                topology,
                FaultConfig(
                    switch_rate=self.switch_rate,
                    host_rate=self.host_rate,
                    link_rate=self.link_rate,
                    mean_repair_hours=self.mean_repair_hours,
                ),
                seed=abs(self.fault_seed),
                horizon=self.horizon,
            )
        return topology, flows, rate_process, faults

    def make_policy(self, topology: Topology):
        if self.policy == "mpareto":
            return MParetoPolicy(topology, mu=self.mu)
        if self.policy == "no-migration":
            return NoMigrationPolicy(topology, mu=self.mu)
        if self.policy == "tom-replication":
            return TomReplicationPolicy(
                topology, mu=self.mu, rho=self.rho,
                sync_fraction=self.sync_fraction,
            )
        raise ValueError(f"unknown shard-case policy {self.policy!r}")

    def chaos(self) -> ChaosConfig:
        """The deterministic fault plan for this case's chaos leg."""
        return ChaosConfig(
            seed=self.chaos_seed,
            crash_rate=0.4,
            kill_rate=0.2 if self.workers > 1 else 0.0,
            faulty_attempts=1,
        )

    def simulate_unsharded(self) -> DayResult:
        """The oracle: one unsharded day, fresh everything."""
        topology, flows, rate_process, faults = self.build()
        placement = dp_placement(topology, flows, self.n).placement
        return simulate_day(
            topology,
            flows,
            self.make_policy(topology),
            rate_process,
            placement,
            range(1, self.horizon + 1),
            faults=faults,
        )

    def simulate_sharded(
        self,
        num_shards: int,
        *,
        block_size: int = 4096,
        chaos: ChaosConfig | None = None,
    ) -> DayResult:
        """One sharded day at ``num_shards``, fresh everything."""
        topology, flows, rate_process, faults = self.build()
        placement = dp_placement(topology, flows, self.n).placement
        config = ShardConfig(
            num_shards=num_shards,
            block_size=block_size,
            workers=self.workers,
            chaos=chaos,
            backoff_base=0.001,
        )
        return simulate_day_sharded(
            topology,
            flows,
            self.make_policy(topology),
            rate_process,
            placement,
            range(1, self.horizon + 1),
            config=config,
            faults=faults,
        )

    def to_dict(self) -> dict:
        return {
            "case_id": self.case_id,
            "day_kind": self.day_kind,
            "family": self.family,
            "params": list(self.params),
            "n": self.n,
            "num_flows": self.num_flows,
            "flow_seed": self.flow_seed,
            "rate_seed": self.rate_seed,
            "intra_rack": self.intra_rack,
            "policy": self.policy,
            "mu": self.mu,
            "rho": self.rho,
            "sync_fraction": self.sync_fraction,
            "horizon": self.horizon,
            "fault_seed": self.fault_seed,
            "switch_rate": self.switch_rate,
            "host_rate": self.host_rate,
            "link_rate": self.link_rate,
            "mean_repair_hours": self.mean_repair_hours,
            "shard_counts": list(self.shard_counts),
            "workers": self.workers,
            "chaos_seed": self.chaos_seed,
        }


def generate_shard_cases(seed: int, cases: int) -> list[ShardCaseSpec]:
    """``cases`` seeded scenarios cycling plain / fault / replication days.

    Mirrors the other campaign generators: each case gets its own
    :class:`~numpy.random.SeedSequence` child, so case ``i`` is
    identical across runs and ``--cases`` counts.  Day kinds cycle
    deterministically so every report covers all three in equal parts.
    """
    root = np.random.SeedSequence(seed)
    specs = []
    for case_id, child in enumerate(root.spawn(cases)):
        rng = np.random.default_rng(child)
        day_kind = SHARD_DAY_KINDS[case_id % len(SHARD_DAY_KINDS)]
        family = sorted(FAULT_FAMILIES)[int(rng.integers(len(FAULT_FAMILIES)))]
        params = FAULT_FAMILIES[family][
            int(rng.integers(len(FAULT_FAMILIES[family])))
        ]
        if day_kind == "replication":
            policy = "tom-replication"
            # ~half the replication days also carry a fault trace
            fault_seed = int(rng.integers(2**31 - 1))
            if rng.random() < 0.5:
                fault_seed = -max(fault_seed, 1)
        else:
            policy = "mpareto" if rng.random() < 0.7 else "no-migration"
            fault_seed = int(rng.integers(2**31 - 1))
        specs.append(
            ShardCaseSpec(
                case_id=case_id,
                day_kind=day_kind,
                family=family,
                params=params,
                n=int(rng.integers(1, 4)),
                num_flows=int(rng.integers(2, 33)),
                flow_seed=int(rng.integers(2**31 - 1)),
                rate_seed=int(rng.integers(2**31 - 1)),
                intra_rack=float(rng.choice([0.0, 0.5, 0.8])),
                policy=policy,
                mu=float(rng.choice([0.0, 5.0, 100.0])),
                rho=float(rng.choice([0.1, 1.0, 10.0])),
                sync_fraction=float(rng.choice([0.0, 0.05])),
                horizon=int(rng.choice([4, 6])),
                fault_seed=fault_seed,
                switch_rate=float(rng.choice([0.02, 0.05, 0.1])),
                host_rate=float(rng.choice([0.0, 0.05])),
                link_rate=float(rng.choice([0.0, 0.02])),
                mean_repair_hours=float(rng.choice([2.0, 4.0])),
                shard_counts=(1, 2, 3),
                workers=2 if rng.random() < 0.2 else 1,
                chaos_seed=(
                    int(rng.integers(2**31 - 1)) if rng.random() < 0.3 else -1
                ),
            )
        )
    return specs


def _outcome(simulate) -> tuple[str, str]:
    """Run one day; return a comparable ``(kind, canonical payload)``.

    A diagnosed infeasibility is a valid outcome, but its diagnosis is
    part of the payload: every execution path must agree on it byte for
    byte, exactly like a completed day's records.
    """
    try:
        day = simulate()
    except InfeasibleError as exc:
        return (
            "infeasible",
            json.dumps(dict(exc.diagnosis), sort_keys=True, default=str),
        )
    return ("ok", json.dumps(day.to_dict(), sort_keys=True))


def run_shard_case(task) -> dict:
    """Oracle identity + shard invariance + chaos immunity for one case."""
    spec, _rtol = task
    count("shard_cases")
    violations: list[Violation] = []
    outcome = "completed"
    checks = 0
    try:
        reference = _outcome(spec.simulate_unsharded)
        if reference[0] == "infeasible":
            outcome = "infeasible"

        # oracle identity: default block size, every shard count
        for num_shards in spec.shard_counts:
            checks += 1
            got = _outcome(lambda: spec.simulate_sharded(num_shards))
            if got != reference:
                violations.append(
                    Violation(
                        "shard_oracle_bits",
                        f"{num_shards}-shard day differs from the unsharded "
                        f"oracle ({reference[0]!r} vs {got[0]!r})",
                        {
                            "num_shards": num_shards,
                            "reference_kind": reference[0],
                            "got_kind": got[0],
                            "len_reference": len(reference[1]),
                            "len_got": len(got[1]),
                        },
                    )
                )

        # shard-count invariance in the multi-block regime
        multi = [
            (
                num_shards,
                _outcome(
                    lambda: spec.simulate_sharded(
                        num_shards, block_size=MULTI_BLOCK_SIZE
                    )
                ),
            )
            for num_shards in spec.shard_counts
        ]
        anchor_shards, anchor = multi[0]
        for num_shards, got in multi[1:]:
            checks += 1
            if got != anchor:
                violations.append(
                    Violation(
                        "shard_count_invariance",
                        f"multi-block day at {num_shards} shards differs "
                        f"from the {anchor_shards}-shard run",
                        {
                            "block_size": MULTI_BLOCK_SIZE,
                            "num_shards": num_shards,
                            "anchor_shards": anchor_shards,
                        },
                    )
                )

        # chaos immunity: crashes, kills, retries change nothing
        if spec.chaos_seed >= 0:
            checks += 1
            shards = spec.shard_counts[-1]
            chaotic = _outcome(
                lambda: spec.simulate_sharded(shards, chaos=spec.chaos())
            )
            if chaotic != reference:
                violations.append(
                    Violation(
                        "shard_chaos_bits",
                        f"chaos-injected {shards}-shard day differs from "
                        "the unsharded oracle",
                        {
                            "num_shards": shards,
                            "chaos_seed": spec.chaos_seed,
                            "reference_kind": reference[0],
                            "got_kind": chaotic[0],
                        },
                    )
                )
    except Exception as exc:  # a crash on a generated scenario is a finding
        violations.append(
            Violation(
                "exception",
                f"{type(exc).__name__}: {exc}",
                {"error": repr(exc)},
            )
        )
        outcome = "error"
    if violations:
        count("shard_violations", len(violations))
    return {
        "case_id": spec.case_id,
        "family": spec.family,
        "day_kind": spec.day_kind,
        "policy": spec.policy,
        "outcome": outcome,
        "checks": checks,
        "violations": [v.to_dict() for v in violations],
        "spec": spec.to_dict(),
    }


@dataclass(frozen=True)
class ShardCampaignConfig:
    cases: int = 200
    seed: int = 0
    workers: int = 1
    rtol: float = DEFAULT_RTOL
    journal_path: str | Path | None = None
    report_path: str | Path | None = None


def run_shard_campaign(config: ShardCampaignConfig) -> dict:
    """Run the shard campaign; returns the JSON-friendly report dict."""
    start = time.perf_counter()
    hits_before = counters().get("journal_hits", 0)
    specs = generate_shard_cases(config.seed, config.cases)
    tasks = [(spec, config.rtol) for spec in specs]
    journal = Journal(config.journal_path) if config.journal_path else None
    try:
        resilience = ResilienceConfig(
            scope=f"verify-shard@{config.seed}", journal=journal
        )
        records = map_tasks(
            run_shard_case, tasks, workers=config.workers, resilience=resilience
        )
    finally:
        if journal is not None:
            journal.close()
    failures = [r for r in records if r["violations"]]
    elapsed = time.perf_counter() - start
    report = {
        "config": {
            "cases": config.cases,
            "seed": config.seed,
            "workers": config.workers,
            "rtol": config.rtol,
        },
        "cases": len(records),
        "checks": int(sum(r["checks"] for r in records)),
        "violations": int(sum(len(r["violations"]) for r in records)),
        "coverage": {
            "by_family": dict(Counter(r["family"] for r in records)),
            "by_day_kind": dict(Counter(r["day_kind"] for r in records)),
            "by_policy": dict(Counter(r["policy"] for r in records)),
            "by_outcome": dict(Counter(r["outcome"] for r in records)),
        },
        "failures": failures,
        "runtime": {
            "elapsed_seconds": elapsed,
            "workers": config.workers,
            "journal_hits": counters().get("journal_hits", 0) - hits_before,
        },
    }
    if config.report_path:
        from repro.utils.results_io import write_text_atomic

        write_text_atomic(Path(config.report_path), json.dumps(report, indent=2))
    return report
