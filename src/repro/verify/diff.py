"""Differential equivalence of solver results, to the bit.

The session/runtime layers promise *bit-identity* with the cold per-call
solvers — same placements, same float64 costs, no "approximately equal".
These helpers state that contract once, so the campaign's differential
checks and the test suites compare results the same way.

Diagnostics fields (``extra``) are deliberately excluded: two paths may
record different provenance (e.g. ``batched: True``) while returning the
same answer.
"""

from __future__ import annotations

import numpy as np

from repro.verify.invariants import Violation

__all__ = ["diff_results", "assert_equivalent", "check_differential"]


def _eq_array(a, b) -> bool:
    return np.array_equal(np.asarray(a), np.asarray(b))


def _eq_float(a: float, b: float) -> bool:
    # bitwise: == except it also equates nan with nan
    return a == b or (np.isnan(a) and np.isnan(b))


def diff_results(a, b) -> list[str]:
    """Human-readable mismatches between two results; empty = equivalent."""
    diffs: list[str] = []
    if not _eq_array(a.placement, b.placement):
        diffs.append(
            f"placement {np.asarray(a.placement).tolist()} != "
            f"{np.asarray(b.placement).tolist()}"
        )
    if not _eq_float(float(a.cost), float(b.cost)):
        diffs.append(f"cost {float(a.cost)!r} != {float(b.cost)!r} (bitwise)")
    for name in ("source", "communication_cost", "migration_cost", "num_migrated"):
        va, vb = getattr(a, name, None), getattr(b, name, None)
        if va is None or vb is None:
            if (va is None) != (vb is None):
                diffs.append(f"only one result has {name}")
            continue
        if isinstance(va, np.ndarray) or isinstance(vb, np.ndarray):
            if not _eq_array(va, vb):
                diffs.append(f"{name} {np.asarray(va).tolist()} != {np.asarray(vb).tolist()}")
        elif not _eq_float(float(va), float(vb)):
            diffs.append(f"{name} {va!r} != {vb!r} (bitwise)")
    # VM baselines: the moved endpoints are part of the answer
    fa, fb = getattr(a, "flows", None), getattr(b, "flows", None)
    if fa is not None and fb is not None:
        if not (_eq_array(fa.sources, fb.sources) and _eq_array(fa.destinations, fb.destinations)):
            diffs.append("post-move VM endpoints differ")
    return diffs


def assert_equivalent(a, b, context: str = "") -> None:
    """Raise :class:`AssertionError` with every mismatch listed."""
    diffs = diff_results(a, b)
    if diffs:
        prefix = f"{context}: " if context else ""
        raise AssertionError(prefix + "; ".join(diffs))


def check_differential(got, want, *, label: str = "cold") -> list[Violation]:
    """The campaign-facing form: mismatches as :class:`Violation` records."""
    diffs = diff_results(got, want)
    if not diffs:
        return []
    return [
        Violation(
            "differential",
            f"result diverges from the {label} reference: " + "; ".join(diffs),
            {"diffs": diffs, "reference": label},
        )
    ]
